//! # dopencl — simulated distributed OpenCL (paper, Section V)
//!
//! The paper sketches **dOpenCL**, "a distributed implementation of the
//! OpenCL API": the native OpenCL implementations of several *server* nodes
//! are integrated into a single unified implementation on a *client* node, so
//! that to an application "all 8 GPUs and 3 multi-core CPUs of this
//! distributed system appear as if they were local devices". Because dOpenCL
//! is a drop-in replacement for OpenCL, SkelCL runs on top of it unchanged.
//!
//! This crate reproduces that architecture for the simulator: a [`Cluster`]
//! groups [`Node`]s (each contributing device profiles) behind a
//! [`NetworkModel`]. Exposing a remote device to the client means every
//! host ↔ device transfer additionally crosses the network, so the cluster
//! produces *adjusted* [`oclsim::DeviceProfile`]s — added latency, bandwidth capped
//! by the interconnect — which can be handed directly to
//! `skelcl::SkelCl::init(DeviceSelection::Profiles(...))`. Nothing else in
//! the stack changes, which is exactly the drop-in property the paper
//! claims.

pub mod cluster;
pub mod network;
pub mod node;
pub mod tier;

pub use cluster::Cluster;
pub use network::NetworkModel;
pub use node::Node;
pub use tier::ClusterTier;

#[cfg(test)]
mod tests {
    use super::*;
    use oclsim::DeviceProfile;

    #[test]
    fn lab_cluster_matches_the_papers_description() {
        // "we use dOpenCL to connect our GPU system described in Section IV-C
        // and two other GPU systems, each equipped with 1 multi-core CPU and
        // 2 GPUs (3 servers) to a desktop PC (the client) with no OpenCL
        // capable devices. To an OpenCL application [...] all 8 GPUs and 3
        // multi-core CPUs of this distributed system appear as if they were
        // local devices."
        let cluster = Cluster::lab_cluster();
        let profiles = cluster.device_profiles();
        let gpus = profiles
            .iter()
            .filter(|p| p.device_type == oclsim::DeviceType::Gpu)
            .count();
        let cpus = profiles
            .iter()
            .filter(|p| p.device_type == oclsim::DeviceType::Cpu)
            .count();
        assert_eq!(gpus, 8);
        assert_eq!(cpus, 3);
    }

    #[test]
    fn remote_devices_pay_the_network_cost() {
        let local = DeviceProfile::tesla_c1060();
        let cluster = Cluster::new(NetworkModel::gigabit_ethernet())
            .with_node(Node::new("server-0").with_devices(vec![local.clone()]));
        let remote = &cluster.device_profiles()[0];
        assert!(remote.transfer_latency > local.transfer_latency);
        assert!(remote.transfer_bandwidth_gbs < local.transfer_bandwidth_gbs);
        // Compute characteristics are untouched: only communication changes.
        assert_eq!(remote.peak_gflops, local.peak_gflops);
        assert_eq!(remote.compute_units, local.compute_units);
    }
}
