//! The live cluster tier: a [`Cluster`] instantiated as a running SkelCL
//! runtime with node-aware fault tolerance.
//!
//! [`Cluster::device_profiles`] only *describes* a distributed system; a
//! [`ClusterTier`] actually boots one. It initialises a `skelcl` runtime
//! over the cluster's network-adjusted device profiles and registers the
//! node topology (which unified device lives on which server) with the
//! runtime, so the recovery layer prefers re-partitioning work onto the
//! *surviving devices of the same node* — data moved inside a node never
//! crosses the interconnect.
//!
//! Node failure is the cluster-level fault: [`ClusterTier::fail_node`] arms
//! a deterministic [`FaultPlan`] that kills **all** devices of one server at
//! the same virtual trigger, modelling a machine dropping off the network.
//! The SkelCL recovery layer then replays affected launches on the
//! remaining nodes.

use std::sync::Arc;

use oclsim::{FaultKind, FaultPlan, FaultSpec, FaultTrigger};
use skelcl::SkelCl;

use crate::cluster::Cluster;

/// A [`Cluster`] booted into a live SkelCL runtime, with the two-level
/// (node / device) view the recovery layer uses.
///
/// ```
/// use dopencl::{Cluster, ClusterTier};
/// use oclsim::FaultTrigger;
///
/// let tier = ClusterTier::launch_gpus(&Cluster::lab_cluster());
/// assert_eq!(tier.runtime().device_count(), 8);
/// assert_eq!(tier.devices_of("gpu-server").len(), 4);
/// // Kill one dual-GPU server at the 5th op of each of its devices:
/// tier.fail_node("small-server-1", FaultTrigger::AtOpCount(5));
/// ```
pub struct ClusterTier {
    runtime: Arc<SkelCl>,
    /// Unified device index → node index.
    node_of: Vec<usize>,
    node_names: Vec<String>,
}

impl ClusterTier {
    /// Boot a runtime over **all** devices of the cluster (GPUs and CPUs).
    pub fn launch(cluster: &Cluster) -> ClusterTier {
        Self::launch_filtered(cluster, |_| true)
    }

    /// Boot a runtime over the cluster's GPUs only (the usual SkelCL
    /// selection; the lab cluster yields 8 devices).
    pub fn launch_gpus(cluster: &Cluster) -> ClusterTier {
        Self::launch_filtered(cluster, |p| p.device_type == oclsim::DeviceType::Gpu)
    }

    fn launch_filtered(
        cluster: &Cluster,
        keep: impl Fn(&oclsim::DeviceProfile) -> bool,
    ) -> ClusterTier {
        let node_names: Vec<String> = cluster.nodes().iter().map(|n| n.name.clone()).collect();
        let mut profiles = Vec::new();
        let mut node_of = Vec::new();
        for device in cluster.remote_devices() {
            if !keep(&device.profile) {
                continue;
            }
            let node_index = node_names
                .iter()
                .position(|n| *n == device.node)
                .unwrap_or(0);
            profiles.push(device.profile);
            node_of.push(node_index);
        }
        let runtime = skelcl::init_profiles(profiles);
        runtime.set_node_topology(node_of.clone());
        ClusterTier {
            runtime,
            node_of,
            node_names,
        }
    }

    /// The live runtime; pass it to containers and skeletons as usual.
    pub fn runtime(&self) -> &Arc<SkelCl> {
        &self.runtime
    }

    /// Name of the node hosting a unified device.
    pub fn node_of(&self, device: usize) -> Option<&str> {
        self.node_of
            .get(device)
            .map(|&n| self.node_names[n].as_str())
    }

    /// The unified device indices living on a node.
    pub fn devices_of(&self, node: &str) -> Vec<usize> {
        let Some(node_index) = self.node_names.iter().position(|n| n == node) else {
            return Vec::new();
        };
        (0..self.node_of.len())
            .filter(|&d| self.node_of[d] == node_index)
            .collect()
    }

    /// Arm a **node failure**: every device of `node` is scheduled to die
    /// ([`FaultKind::DeviceLost`]) at the same deterministic `trigger` —
    /// `AtVirtualTime` fires on each device's first command at or after that
    /// virtual instant; `AtOpCount` on each device's n-th op. Returns the
    /// number of devices armed (0 if the node name is unknown or holds no
    /// launched devices).
    pub fn fail_node(&self, node: &str, trigger: FaultTrigger) -> usize {
        let devices = self.devices_of(node);
        let mut plan = FaultPlan::new();
        for &device in &devices {
            plan = plan.with(FaultSpec {
                device,
                trigger,
                kind: FaultKind::DeviceLost,
            });
        }
        if !plan.is_empty() {
            self.runtime.inject_faults(&plan);
        }
        devices.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lab_cluster_tier_registers_the_node_topology() {
        let tier = ClusterTier::launch(&Cluster::lab_cluster());
        assert_eq!(tier.runtime().device_count(), 11);
        assert_eq!(tier.runtime().node_topology(), tier.node_of);
        // Tesla S1070 server: 4 GPUs + 1 CPU.
        assert_eq!(tier.devices_of("gpu-server").len(), 5);
        assert_eq!(tier.node_of(0), Some("gpu-server"));
        assert_eq!(tier.node_of(10), Some("small-server-2"));
        assert_eq!(tier.node_of(11), None);
    }

    #[test]
    fn gpu_tier_keeps_node_provenance_after_filtering() {
        let tier = ClusterTier::launch_gpus(&Cluster::lab_cluster());
        assert_eq!(tier.runtime().device_count(), 8);
        assert_eq!(tier.devices_of("gpu-server"), vec![0, 1, 2, 3]);
        assert_eq!(tier.devices_of("small-server-1"), vec![4, 5]);
        assert_eq!(tier.devices_of("small-server-2"), vec![6, 7]);
        assert_eq!(tier.devices_of("no-such-node"), Vec::<usize>::new());
    }

    #[test]
    fn node_failure_kills_all_its_devices_at_once() {
        let tier = ClusterTier::launch_gpus(&Cluster::lab_cluster());
        let armed = tier.fail_node("small-server-1", FaultTrigger::AtOpCount(1));
        assert_eq!(armed, 2);
        assert_eq!(
            tier.fail_node("no-such-node", FaultTrigger::AtOpCount(1)),
            0
        );
    }
}
