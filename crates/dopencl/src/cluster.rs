//! The dOpenCL client view: all devices of all server nodes, exposed as if
//! they were local.

use oclsim::{DeviceProfile, SimDuration};

use crate::network::NetworkModel;
use crate::node::Node;

/// A distributed system: a client connected to several server nodes over a
/// network. The client itself contributes no devices (like the desktop PC in
/// the paper's lab set-up).
#[derive(Debug, Clone, PartialEq)]
pub struct Cluster {
    network: NetworkModel,
    nodes: Vec<Node>,
}

/// Where a unified device physically lives.
#[derive(Debug, Clone, PartialEq)]
pub struct RemoteDevice {
    /// Index of the device in the unified (client-visible) device list.
    pub unified_index: usize,
    /// Name of the node hosting the device.
    pub node: String,
    /// The adjusted profile the client sees.
    pub profile: DeviceProfile,
}

impl Cluster {
    /// Create an empty cluster over the given network.
    pub fn new(network: NetworkModel) -> Cluster {
        Cluster {
            network,
            nodes: Vec::new(),
        }
    }

    /// Add a server node.
    pub fn with_node(mut self, node: Node) -> Cluster {
        self.nodes.push(node);
        self
    }

    /// The laboratory system described in Section V of the paper: the
    /// Tesla S1070 machine plus two dual-GPU servers, attached to a desktop
    /// client over Gigabit Ethernet — 8 GPUs and 3 multi-core CPUs in total.
    pub fn lab_cluster() -> Cluster {
        Cluster::new(NetworkModel::gigabit_ethernet())
            .with_node(Node::tesla_s1070_server("gpu-server"))
            .with_node(Node::dual_gpu_server("small-server-1"))
            .with_node(Node::dual_gpu_server("small-server-2"))
    }

    /// The network model of the cluster.
    pub fn network(&self) -> &NetworkModel {
        &self.network
    }

    /// The server nodes.
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// Total number of devices across all nodes.
    pub fn device_count(&self) -> usize {
        self.nodes.iter().map(|n| n.devices.len()).sum()
    }

    /// Adjust a device profile for access through the network: every
    /// host ↔ device transfer of the client additionally crosses the
    /// interconnect, so latency adds up and bandwidth is capped by the
    /// slower of PCIe and the network.
    fn remote_profile(&self, node: &Node, device: &DeviceProfile) -> DeviceProfile {
        let mut p = device.clone();
        p.name = format!("{} @ {}", p.name, node.name);
        p.transfer_latency += self.network.latency;
        p.transfer_bandwidth_gbs = p.transfer_bandwidth_gbs.min(self.network.bandwidth_gbs);
        // Remote kernel launches carry an extra round trip of command
        // forwarding.
        p.kernel_launch_overhead =
            p.kernel_launch_overhead + self.network.latency + self.network.latency;
        p
    }

    /// The unified device list the client sees: every device of every node,
    /// with network-adjusted profiles. The result can be passed directly to
    /// `skelcl::DeviceSelection::Profiles` — SkelCL runs on the distributed
    /// system without modification.
    pub fn device_profiles(&self) -> Vec<DeviceProfile> {
        self.remote_devices()
            .into_iter()
            .map(|d| d.profile)
            .collect()
    }

    /// The unified device list with node provenance.
    pub fn remote_devices(&self) -> Vec<RemoteDevice> {
        let mut out = Vec::with_capacity(self.device_count());
        for node in &self.nodes {
            for device in &node.devices {
                out.push(RemoteDevice {
                    unified_index: out.len(),
                    node: node.name.clone(),
                    profile: self.remote_profile(node, device),
                });
            }
        }
        out
    }

    /// Only the GPU devices of the unified list (the usual SkelCL selection).
    pub fn gpu_profiles(&self) -> Vec<DeviceProfile> {
        self.device_profiles()
            .into_iter()
            .filter(|p| p.device_type == oclsim::DeviceType::Gpu)
            .collect()
    }

    /// Estimated extra round-trip cost the network adds to one kernel launch
    /// plus its argument upload of `bytes` bytes — used by harnesses to
    /// reason about when offloading to a remote device pays off.
    pub fn offload_overhead(&self, bytes: usize) -> SimDuration {
        self.network.transfer_time(bytes) + self.network.latency
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unified_list_preserves_node_order_and_indices() {
        let cluster = Cluster::lab_cluster();
        let devices = cluster.remote_devices();
        assert_eq!(devices.len(), cluster.device_count());
        for (i, d) in devices.iter().enumerate() {
            assert_eq!(d.unified_index, i);
        }
        assert!(devices[0].node == "gpu-server");
        assert!(devices.last().unwrap().node == "small-server-2");
        assert!(devices[0].profile.name.contains("@ gpu-server"));
    }

    #[test]
    fn gpu_profiles_filters_cpus() {
        let cluster = Cluster::lab_cluster();
        assert_eq!(cluster.gpu_profiles().len(), 8);
    }

    #[test]
    fn faster_networks_reduce_offload_overhead() {
        let slow =
            Cluster::new(NetworkModel::gigabit_ethernet()).with_node(Node::dual_gpu_server("s"));
        let fast =
            Cluster::new(NetworkModel::infiniband_qdr()).with_node(Node::dual_gpu_server("s"));
        let bytes = 16 * 1024 * 1024;
        assert!(slow.offload_overhead(bytes) > fast.offload_overhead(bytes));
    }
}
