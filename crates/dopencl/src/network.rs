//! The interconnect model between the dOpenCL client and its server nodes.

use oclsim::SimDuration;

/// Latency/bandwidth model of the network connecting the client to the
/// server nodes.
#[derive(Debug, Clone, PartialEq)]
pub struct NetworkModel {
    /// Human-readable name of the interconnect.
    pub name: String,
    /// One-way latency added to every transfer that crosses the network.
    pub latency: SimDuration,
    /// Sustained bandwidth in GB/s.
    pub bandwidth_gbs: f64,
}

impl NetworkModel {
    /// Gigabit Ethernet (the typical lab interconnect of the paper's era).
    pub fn gigabit_ethernet() -> NetworkModel {
        NetworkModel {
            name: "Gigabit Ethernet".to_string(),
            latency: SimDuration::from_micros(80),
            bandwidth_gbs: 0.117, // ~117 MB/s effective
        }
    }

    /// 10-Gigabit Ethernet.
    pub fn ten_gigabit_ethernet() -> NetworkModel {
        NetworkModel {
            name: "10-Gigabit Ethernet".to_string(),
            latency: SimDuration::from_micros(40),
            bandwidth_gbs: 1.1,
        }
    }

    /// QDR InfiniBand.
    pub fn infiniband_qdr() -> NetworkModel {
        NetworkModel {
            name: "InfiniBand QDR".to_string(),
            latency: SimDuration::from_micros(5),
            bandwidth_gbs: 3.2,
        }
    }

    /// Time to move `bytes` bytes across the network (one way).
    pub fn transfer_time(&self, bytes: usize) -> SimDuration {
        self.latency + SimDuration::from_secs_f64(bytes as f64 / (self.bandwidth_gbs * 1e9))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_ordered_by_speed() {
        let gbe = NetworkModel::gigabit_ethernet();
        let tgbe = NetworkModel::ten_gigabit_ethernet();
        let ib = NetworkModel::infiniband_qdr();
        let bytes = 64 * 1024 * 1024;
        assert!(gbe.transfer_time(bytes) > tgbe.transfer_time(bytes));
        assert!(tgbe.transfer_time(bytes) > ib.transfer_time(bytes));
    }

    #[test]
    fn transfer_time_includes_latency() {
        let net = NetworkModel::infiniband_qdr();
        assert!(net.transfer_time(0) >= net.latency);
    }
}
