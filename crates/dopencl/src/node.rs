//! Server nodes of the distributed system.

use oclsim::DeviceProfile;

/// One server node contributing its OpenCL devices to the cluster.
#[derive(Debug, Clone, PartialEq)]
pub struct Node {
    /// Host name of the node.
    pub name: String,
    /// The device profiles of the node's local OpenCL implementation.
    pub devices: Vec<DeviceProfile>,
}

impl Node {
    /// Create a node without devices.
    pub fn new(name: &str) -> Node {
        Node {
            name: name.to_string(),
            devices: Vec::new(),
        }
    }

    /// Attach devices to the node.
    pub fn with_devices(mut self, devices: Vec<DeviceProfile>) -> Node {
        self.devices = devices;
        self
    }

    /// The paper's evaluation machine as a server node: a quad-core Xeon
    /// E5520 host with an NVIDIA Tesla S1070 (4 GPUs).
    pub fn tesla_s1070_server(name: &str) -> Node {
        let mut devices = vec![DeviceProfile::tesla_c1060(); 4];
        devices.push(DeviceProfile::xeon_e5520());
        Node::new(name).with_devices(devices)
    }

    /// A smaller lab server with one multi-core CPU and two GPUs, as in the
    /// paper's Section V description.
    pub fn dual_gpu_server(name: &str) -> Node {
        Node::new(name).with_devices(vec![
            DeviceProfile::generic_small_gpu(),
            DeviceProfile::generic_small_gpu(),
            DeviceProfile::xeon_e5520(),
        ])
    }

    /// Number of GPU devices on the node.
    pub fn gpu_count(&self) -> usize {
        self.devices
            .iter()
            .filter(|d| d.device_type == oclsim::DeviceType::Gpu)
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preset_nodes_have_expected_devices() {
        let s1070 = Node::tesla_s1070_server("gpu-lab");
        assert_eq!(s1070.gpu_count(), 4);
        assert_eq!(s1070.devices.len(), 5);
        let dual = Node::dual_gpu_server("small-1");
        assert_eq!(dual.gpu_count(), 2);
        assert_eq!(dual.devices.len(), 3);
    }

    #[test]
    fn builder_attaches_devices() {
        let n = Node::new("empty");
        assert_eq!(n.gpu_count(), 0);
        let n = n.with_devices(vec![DeviceProfile::tesla_c1060()]);
        assert_eq!(n.gpu_count(), 1);
    }
}
