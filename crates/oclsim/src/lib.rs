//! # oclsim — a simulated OpenCL runtime
//!
//! SkelCL is built on top of OpenCL and evaluated on an NVIDIA Tesla S1070
//! multi-GPU system. This crate substitutes that hardware with a *simulated*
//! OpenCL runtime so the reproduction runs anywhere:
//!
//! * **Functional behaviour is real.** Buffers hold real data; kernels
//!   (either kernel-language source compiled at runtime via
//!   [`skelcl_kernel`], or native Rust closures) actually execute and produce
//!   exact results.
//! * **Timing is virtual.** Each command-queue has a virtual clock; commands
//!   are charged according to a per-device cost model ([`DeviceProfile`]) and
//!   a programming-model constant set ([`ApiModel`], distinguishing CUDA,
//!   OpenCL and the SkelCL layer). Queues of different devices overlap in
//!   virtual time, so multi-GPU scaling behaviour — the subject of the
//!   paper's Figure 4b — is reproduced structurally.
//!
//! The API deliberately mirrors OpenCL's object model: [`Context`] owns
//! [`Device`]s, [`CommandQueue`]s issue transfers and 1-D NDRange launches of
//! [`Kernel`]s from [`Program`]s onto [`Buffer`]s, and every command yields a
//! profiling [`Event`].
//!
//! ```
//! use oclsim::{Context, KernelArg};
//!
//! let ctx = Context::with_gpus(2);
//! let queue = ctx.queue(0).unwrap();
//! let buf = ctx.create_buffer::<f32>(0, 4).unwrap();
//! queue.enqueue_write_buffer(&buf, &[1.0f32, 2.0, 3.0, 4.0]).unwrap();
//!
//! let program = ctx.build_program(
//!     "__kernel void dbl(__global float* v, int n) {
//!          int i = get_global_id(0);
//!          if (i < n) { v[i] = v[i] * 2.0f; }
//!      }",
//! ).unwrap();
//! let kernel = program.kernel("dbl").unwrap();
//! queue.enqueue_kernel(&kernel, 4, &[KernelArg::Buffer(buf.clone()), KernelArg::i32(4)]).unwrap();
//!
//! let mut out = vec![0.0f32; 4];
//! queue.enqueue_read_buffer(&buf, &mut out).unwrap();
//! assert_eq!(out, vec![2.0, 4.0, 6.0, 8.0]);
//! ```

pub mod buffer;
pub mod context;
pub mod device;
pub mod error;
pub mod event;
pub mod fault;
pub mod ledger;
pub mod platform;
pub mod pod;
pub mod profile;
pub mod program;
pub mod queue;
pub mod time;

pub use buffer::{Buffer, DataKind};
pub use context::Context;
pub use device::{BufferData, Device, DeviceId, TierSnapshot};
pub use error::{OclError, Result};
pub use event::{CommandKind, Event, EventHandle, EventStatus, EventSummary};
pub use fault::{CommandClass, FaultKind, FaultPlan, FaultSpec, FaultTrigger};
pub use ledger::{ResourceLedger, TagUsage};
pub use platform::{default_platforms, select_gpus, Platform};
pub use pod::Pod;
pub use profile::{ApiModel, DeviceProfile, DeviceType};
pub use program::{ArgView, CostHint, Kernel, KernelArg, NativeCtx, NativeKernelDef, Program};
pub use queue::CommandQueue;
pub use time::{SimDuration, SimTime};

/// Scalar values passed to kernels (re-exported from the kernel language).
pub use skelcl_kernel::value::Value;

/// Kernel-language execution-tier selection and per-launch tier traces
/// (re-exported from the kernel language; see [`Context::set_kernel_tier`]).
pub use skelcl_kernel::{LaunchTrace, Tier};
