//! Per-tag resource accounting for multi-tenant use of a context.
//!
//! A [`ResourceLedger`] tracks, per *tag* (typically a tenant name), how many
//! bytes of device storage the tag currently holds against an optional byte
//! quota, plus launch/transfer counters. The ledger itself does not allocate
//! anything: callers (e.g. the serving layer's admission control) charge the
//! estimated footprint of a job *before* creating its buffers from the
//! device pools and credit it back when the buffers are released, so a quota
//! breach is rejected at admission time instead of surfacing as a confusing
//! mid-pipeline allocation failure.
//!
//! All operations are constant-time under one mutex and deterministic:
//! charging, crediting and counting do not touch any virtual clock.

use std::collections::HashMap;

use parking_lot::Mutex;

use crate::error::{OclError, Result};

/// Accounting state of one tag.
#[derive(Debug, Default, Clone)]
struct TagState {
    cap_bytes: Option<usize>,
    used_bytes: usize,
    peak_bytes: usize,
    launches: usize,
    transfers: usize,
    transfer_bytes: usize,
}

/// Snapshot of one tag's accounting, returned by
/// [`ResourceLedger::usage`] / [`ResourceLedger::usages`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TagUsage {
    /// The tag the snapshot describes.
    pub tag: String,
    /// The tag's byte quota, if one is set.
    pub cap_bytes: Option<usize>,
    /// Bytes currently charged to the tag.
    pub used_bytes: usize,
    /// High-water mark of `used_bytes`.
    pub peak_bytes: usize,
    /// Kernel launches noted for the tag.
    pub launches: usize,
    /// Transfers noted for the tag.
    pub transfers: usize,
    /// Bytes moved by the tag's transfers.
    pub transfer_bytes: usize,
}

/// Per-tag byte quotas and usage counters (see the module docs).
#[derive(Debug, Default)]
pub struct ResourceLedger {
    tags: Mutex<HashMap<String, TagState>>,
}

impl ResourceLedger {
    /// Create an empty ledger.
    pub fn new() -> Self {
        ResourceLedger::default()
    }

    /// Set (or clear) a tag's byte quota. Creates the tag if it is new; an
    /// existing tag keeps its usage counters. Lowering the cap below the
    /// current usage does not fail — it only makes further charges fail.
    pub fn set_cap(&self, tag: &str, cap_bytes: Option<usize>) {
        self.tags
            .lock()
            .entry(tag.to_string())
            .or_default()
            .cap_bytes = cap_bytes;
    }

    /// Charge `bytes` to the tag, failing with
    /// [`OclError::QuotaExceeded`] (and charging nothing) if the tag has a
    /// quota and the charge would exceed it.
    pub fn try_charge(&self, tag: &str, bytes: usize) -> Result<()> {
        let mut tags = self.tags.lock();
        let state = tags.entry(tag.to_string()).or_default();
        if let Some(cap) = state.cap_bytes {
            if state.used_bytes + bytes > cap {
                return Err(OclError::QuotaExceeded {
                    tag: tag.to_string(),
                    requested: bytes,
                    used: state.used_bytes,
                    cap,
                });
            }
        }
        state.used_bytes += bytes;
        state.peak_bytes = state.peak_bytes.max(state.used_bytes);
        Ok(())
    }

    /// Credit `bytes` back to the tag (saturating at zero).
    pub fn credit(&self, tag: &str, bytes: usize) {
        let mut tags = self.tags.lock();
        let state = tags.entry(tag.to_string()).or_default();
        state.used_bytes = state.used_bytes.saturating_sub(bytes);
    }

    /// Note one kernel launch on behalf of the tag.
    pub fn note_launch(&self, tag: &str) {
        self.tags
            .lock()
            .entry(tag.to_string())
            .or_default()
            .launches += 1;
    }

    /// Note one transfer of `bytes` on behalf of the tag.
    pub fn note_transfer(&self, tag: &str, bytes: usize) {
        let mut tags = self.tags.lock();
        let state = tags.entry(tag.to_string()).or_default();
        state.transfers += 1;
        state.transfer_bytes += bytes;
    }

    /// Snapshot one tag's accounting (zeroes for an unknown tag).
    pub fn usage(&self, tag: &str) -> TagUsage {
        let tags = self.tags.lock();
        let state = tags.get(tag).cloned().unwrap_or_default();
        TagUsage {
            tag: tag.to_string(),
            cap_bytes: state.cap_bytes,
            used_bytes: state.used_bytes,
            peak_bytes: state.peak_bytes,
            launches: state.launches,
            transfers: state.transfers,
            transfer_bytes: state.transfer_bytes,
        }
    }

    /// Snapshot every tag, sorted by tag name for deterministic output.
    pub fn usages(&self) -> Vec<TagUsage> {
        let tags = self.tags.lock();
        let mut names: Vec<&String> = tags.keys().collect();
        names.sort();
        names
            .into_iter()
            .map(|name| {
                let state = tags[name].clone();
                TagUsage {
                    tag: name.clone(),
                    cap_bytes: state.cap_bytes,
                    used_bytes: state.used_bytes,
                    peak_bytes: state.peak_bytes,
                    launches: state.launches,
                    transfers: state.transfers,
                    transfer_bytes: state.transfer_bytes,
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charges_respect_caps_and_credit_releases() {
        let ledger = ResourceLedger::new();
        ledger.set_cap("a", Some(100));
        ledger.try_charge("a", 60).unwrap();
        ledger.try_charge("a", 40).unwrap();
        let err = ledger.try_charge("a", 1).unwrap_err();
        assert!(
            matches!(err, OclError::QuotaExceeded { used: 100, .. }),
            "{err:?}"
        );
        ledger.credit("a", 40);
        ledger.try_charge("a", 30).unwrap();
        let usage = ledger.usage("a");
        assert_eq!(usage.used_bytes, 90);
        assert_eq!(usage.peak_bytes, 100);
        assert_eq!(usage.cap_bytes, Some(100));
    }

    #[test]
    fn uncapped_tags_accept_any_charge() {
        let ledger = ResourceLedger::new();
        ledger.try_charge("free", usize::MAX / 2).unwrap();
        assert_eq!(ledger.usage("free").used_bytes, usize::MAX / 2);
    }

    #[test]
    fn counters_accumulate_and_snapshots_sort() {
        let ledger = ResourceLedger::new();
        ledger.note_launch("b");
        ledger.note_launch("a");
        ledger.note_transfer("a", 128);
        let all = ledger.usages();
        assert_eq!(all.len(), 2);
        assert_eq!(all[0].tag, "a");
        assert_eq!(all[0].transfers, 1);
        assert_eq!(all[0].transfer_bytes, 128);
        assert_eq!(all[1].tag, "b");
        assert_eq!(all[1].launches, 1);
    }

    #[test]
    fn credit_saturates_at_zero() {
        let ledger = ResourceLedger::new();
        ledger.try_charge("a", 10).unwrap();
        ledger.credit("a", 100);
        assert_eq!(ledger.usage("a").used_bytes, 0);
    }
}
