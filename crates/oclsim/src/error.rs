//! Error type of the simulated OpenCL runtime.

use std::fmt;

use skelcl_kernel::diag::KernelError;

/// Errors returned by the simulated OpenCL runtime.
#[derive(Debug, Clone, PartialEq)]
pub enum OclError {
    /// A device index was out of range for the context.
    NoSuchDevice {
        /// The requested index.
        index: usize,
        /// Number of devices in the context.
        available: usize,
    },
    /// A buffer handle did not refer to a live allocation on its device.
    BufferNotFound {
        /// The buffer id.
        id: u64,
    },
    /// The same buffer was bound to more than one kernel argument.
    BufferAliased {
        /// The buffer id bound twice.
        id: u64,
    },
    /// A buffer belonging to one device was used with a queue of another.
    WrongDevice {
        /// Device owning the buffer.
        buffer_device: usize,
        /// Device of the queue.
        queue_device: usize,
    },
    /// Allocation would exceed the device memory capacity.
    OutOfDeviceMemory {
        /// Requested bytes.
        requested: usize,
        /// Remaining bytes.
        available: usize,
    },
    /// Host/device size mismatch in a transfer.
    SizeMismatch {
        /// Bytes on the host side.
        host_bytes: usize,
        /// Bytes on the device side.
        device_bytes: usize,
    },
    /// Kernel argument binding problem (count or type).
    InvalidKernelArg(String),
    /// An API object was used in a way its state does not allow (e.g.
    /// claiming the read payload of an event twice, or of a non-read
    /// event) — the `CL_INVALID_OPERATION` analogue.
    InvalidOperation(String),
    /// Error from the kernel-language compiler or interpreter.
    Kernel(KernelError),
    /// A named kernel does not exist in the program.
    NoSuchKernel(String),
    /// The device has been lost (permanent death injected by a
    /// [`crate::FaultPlan`] or an administrative kill): the command that
    /// triggered the loss and every later command or allocation on the
    /// device fail with this error.
    DeviceLost {
        /// Index of the lost device.
        device: usize,
    },
    /// A one-shot injected failure of a single transfer or kernel launch
    /// (see [`crate::FaultPlan`]); the device stays healthy and a replay
    /// of the command succeeds.
    TransientFault {
        /// Index of the device the fault fired on.
        device: usize,
        /// The command class that failed.
        class: crate::fault::CommandClass,
    },
    /// A charge against a [`crate::ResourceLedger`] tag would exceed its
    /// byte quota.
    QuotaExceeded {
        /// The tag whose quota was hit.
        tag: String,
        /// Bytes the charge asked for.
        requested: usize,
        /// Bytes already charged to the tag.
        used: usize,
        /// The tag's quota in bytes.
        cap: usize,
    },
}

impl fmt::Display for OclError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OclError::NoSuchDevice { index, available } => {
                write!(f, "device index {index} out of range (context has {available} devices)")
            }
            OclError::BufferNotFound { id } => write!(f, "buffer {id} is not a live allocation"),
            OclError::BufferAliased { id } => write!(
                f,
                "buffer {id} is bound to more than one argument of the same kernel launch"
            ),
            OclError::WrongDevice {
                buffer_device,
                queue_device,
            } => write!(
                f,
                "buffer belongs to device {buffer_device} but was used with a queue on device {queue_device}"
            ),
            OclError::OutOfDeviceMemory { requested, available } => write!(
                f,
                "allocation of {requested} bytes exceeds remaining device memory ({available} bytes)"
            ),
            OclError::SizeMismatch {
                host_bytes,
                device_bytes,
            } => write!(
                f,
                "transfer size mismatch: host range is {host_bytes} bytes, device range is {device_bytes} bytes"
            ),
            OclError::InvalidKernelArg(msg) => write!(f, "invalid kernel argument: {msg}"),
            OclError::InvalidOperation(msg) => write!(f, "invalid operation: {msg}"),
            OclError::Kernel(e) => write!(f, "kernel error: {e}"),
            OclError::DeviceLost { device } => {
                write!(f, "device {device} has been lost")
            }
            OclError::TransientFault { device, class } => {
                let what = match class {
                    crate::fault::CommandClass::Transfer => "transfer",
                    crate::fault::CommandClass::Launch => "kernel launch",
                };
                write!(f, "injected transient {what} fault on device {device}")
            }
            OclError::NoSuchKernel(name) => write!(f, "no kernel named `{name}` in program"),
            OclError::QuotaExceeded {
                tag,
                requested,
                used,
                cap,
            } => write!(
                f,
                "quota exceeded for `{tag}`: requested {requested} bytes with {used} of {cap} bytes already in use"
            ),
        }
    }
}

impl OclError {
    /// `true` for the permanent device-death error ([`OclError::DeviceLost`]).
    pub fn is_device_lost(&self) -> bool {
        matches!(self, OclError::DeviceLost { .. })
    }

    /// `true` for any injected fault — permanent device loss or a one-shot
    /// transient failure. Recovery layers use this to distinguish replayable
    /// faults from genuine program errors.
    pub fn is_injected_fault(&self) -> bool {
        matches!(
            self,
            OclError::DeviceLost { .. } | OclError::TransientFault { .. }
        )
    }
}

impl std::error::Error for OclError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            OclError::Kernel(e) => Some(e),
            _ => None,
        }
    }
}

impl From<KernelError> for OclError {
    fn from(e: KernelError) -> Self {
        OclError::Kernel(e)
    }
}

/// Convenience result alias.
pub type Result<T> = std::result::Result<T, OclError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = OclError::NoSuchDevice {
            index: 4,
            available: 2,
        };
        assert!(e.to_string().contains("index 4"));
        let e = OclError::OutOfDeviceMemory {
            requested: 100,
            available: 10,
        };
        assert!(e.to_string().contains("100 bytes"));
        let e = OclError::from(KernelError::run("boom"));
        assert!(e.to_string().contains("boom"));
    }
}
