//! Deterministic fault injection scheduled on **virtual time**.
//!
//! A [`FaultPlan`] is a reproducible *input* to a simulation run: it lists
//! [`FaultSpec`]s — each naming a device, a [`FaultTrigger`] (an exact
//! virtual timestamp or a per-device op count, never wall-clock) and a
//! [`FaultKind`]. The plan is attached to a [`crate::Context`] with
//! [`crate::Context::inject_faults`]; from then on every command a device
//! worker is about to execute is checked against the device's armed
//! triggers *before* it runs (so a replayed command never applies its side
//! effects twice).
//!
//! Two fault classes exist:
//!
//! * [`FaultKind::DeviceLost`] — permanent death. The device refuses the
//!   triggering command and **every** later command and allocation with
//!   [`OclError::DeviceLost`](crate::OclError::DeviceLost). In-flight and
//!   future events fail through the queue's existing deferred-error
//!   machinery, so waiters observe errors instead of deadlocking.
//! * [`FaultKind::TransientTransfer`] / [`FaultKind::TransientLaunch`] —
//!   one-shot failures of the next matching transfer or kernel launch; the
//!   device stays healthy and a replay of the command succeeds.
//!
//! Determinism: triggers are evaluated against the command's *prospective
//! virtual start time* (the same `max(queue available-at, queued, deps)`
//! the settle path uses) and a per-device monotonic op counter, both of
//! which are interleaving-independent for the one-queue-per-device
//! arrangement the SkelCL runtime uses. A plan whose triggers never become
//! due charges **zero** virtual time — a fault-free run with a plan
//! attached is bit-identical, in results and timestamps, to a run without
//! one.

use crate::time::SimTime;

/// What kind of failure a [`FaultSpec`] injects.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Permanent device death: the triggering command and all subsequent
    /// commands/allocations on the device fail with
    /// [`OclError::DeviceLost`](crate::OclError::DeviceLost).
    DeviceLost,
    /// One-shot failure of the next buffer transfer (write, fill or read)
    /// on the device; later commands succeed.
    TransientTransfer,
    /// One-shot failure of the next kernel launch on the device; later
    /// commands succeed.
    TransientLaunch,
}

/// When an armed [`FaultSpec`] fires. Both triggers are deterministic
/// functions of the virtual schedule — wall-clock never participates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultTrigger {
    /// Fire on the first command of the device whose prospective virtual
    /// start time is `>=` this instant.
    AtVirtualTime(SimTime),
    /// Fire on the `n`-th command (1-based) the device executes, counting
    /// every write, fill, read and kernel launch that reaches the device
    /// in queue order.
    AtOpCount(usize),
}

/// One scheduled fault: a device, a trigger and a failure kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultSpec {
    /// Index of the device the fault targets.
    pub device: usize,
    /// When the fault fires.
    pub trigger: FaultTrigger,
    /// What happens when it fires.
    pub kind: FaultKind,
}

/// A deterministic, reproducible schedule of injected faults.
///
/// Build one with the fluent constructors and attach it with
/// [`crate::Context::inject_faults`]:
///
/// ```
/// use oclsim::{Context, FaultPlan, SimTime};
///
/// let ctx = Context::with_gpus(2);
/// let plan = FaultPlan::new()
///     .device_lost_at(1, SimTime::ZERO + oclsim::SimDuration::from_micros(50))
///     .transient_launch_at_op(0, 3);
/// ctx.inject_faults(&plan);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    specs: Vec<FaultSpec>,
}

impl FaultPlan {
    /// An empty plan (injects nothing).
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// Add an arbitrary [`FaultSpec`].
    pub fn with(mut self, spec: FaultSpec) -> Self {
        self.specs.push(spec);
        self
    }

    /// Permanently kill `device` at virtual time `at`.
    pub fn device_lost_at(self, device: usize, at: SimTime) -> Self {
        self.with(FaultSpec {
            device,
            trigger: FaultTrigger::AtVirtualTime(at),
            kind: FaultKind::DeviceLost,
        })
    }

    /// Permanently kill `device` on its `op`-th executed command (1-based).
    pub fn device_lost_at_op(self, device: usize, op: usize) -> Self {
        self.with(FaultSpec {
            device,
            trigger: FaultTrigger::AtOpCount(op),
            kind: FaultKind::DeviceLost,
        })
    }

    /// Fail the next transfer of `device` at or after virtual time `at`.
    pub fn transient_transfer_at(self, device: usize, at: SimTime) -> Self {
        self.with(FaultSpec {
            device,
            trigger: FaultTrigger::AtVirtualTime(at),
            kind: FaultKind::TransientTransfer,
        })
    }

    /// Fail the transfer that would be the `op`-th executed command of
    /// `device` (or the next transfer after it).
    pub fn transient_transfer_at_op(self, device: usize, op: usize) -> Self {
        self.with(FaultSpec {
            device,
            trigger: FaultTrigger::AtOpCount(op),
            kind: FaultKind::TransientTransfer,
        })
    }

    /// Fail the next kernel launch of `device` at or after virtual time
    /// `at`.
    pub fn transient_launch_at(self, device: usize, at: SimTime) -> Self {
        self.with(FaultSpec {
            device,
            trigger: FaultTrigger::AtVirtualTime(at),
            kind: FaultKind::TransientLaunch,
        })
    }

    /// Fail the kernel launch that would be the `op`-th executed command of
    /// `device` (or the next launch after it).
    pub fn transient_launch_at_op(self, device: usize, op: usize) -> Self {
        self.with(FaultSpec {
            device,
            trigger: FaultTrigger::AtOpCount(op),
            kind: FaultKind::TransientLaunch,
        })
    }

    /// The scheduled faults, in insertion order.
    pub fn specs(&self) -> &[FaultSpec] {
        &self.specs
    }

    /// `true` when the plan schedules nothing.
    pub fn is_empty(&self) -> bool {
        self.specs.is_empty()
    }
}

/// The execution class of a command, used to match transient triggers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CommandClass {
    /// A buffer write, fill or read.
    Transfer,
    /// A kernel launch.
    Launch,
}

impl FaultKind {
    /// Does a fault of this kind apply to a command of `class`?
    /// Device loss applies to everything; transients are class-specific.
    pub(crate) fn matches(self, class: CommandClass) -> bool {
        match self {
            FaultKind::DeviceLost => true,
            FaultKind::TransientTransfer => class == CommandClass::Transfer,
            FaultKind::TransientLaunch => class == CommandClass::Launch,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::Context;
    use crate::error::OclError;
    use crate::program::KernelArg;
    use crate::time::SimDuration;

    const DBL: &str =
        "__kernel void dbl(__global float* v, int n) { int i = get_global_id(0); if (i < n) { v[i] = v[i] * 2.0f; } }";

    #[test]
    fn op_count_device_loss_fails_in_flight_and_future_events_without_deadlock() {
        let ctx = Context::with_gpus(2);
        let q = ctx.queue(0).unwrap();
        let buf = ctx.create_buffer::<f32>(0, 4).unwrap();
        // Ops on device 0: write (1), kernel (2), read (3). Kill on op 2.
        ctx.inject_faults(&FaultPlan::new().device_lost_at_op(0, 2));
        let w = q.enqueue_write_buffer(&buf, &[1.0f32; 4]).unwrap();
        assert!(w.wait().is_ok(), "op 1 precedes the trigger");
        let program = ctx.build_program(DBL).unwrap();
        let kernel = program.kernel("dbl").unwrap();
        let k = q
            .enqueue_kernel(
                &kernel,
                4,
                &[KernelArg::Buffer(buf.clone()), KernelArg::i32(4)],
            )
            .unwrap();
        let err = k.wait().unwrap_err();
        assert!(err.is_device_lost(), "{err:?}");
        // Future commands fail too — waiters see errors, not a hang.
        let mut out = [0.0f32; 4];
        let err = q.enqueue_read_buffer(&buf, &mut out).unwrap_err();
        assert!(err.is_device_lost(), "{err:?}");
        // New allocations are refused.
        assert!(matches!(
            ctx.create_buffer::<f32>(0, 4),
            Err(OclError::DeviceLost { device: 0 })
        ));
        assert_eq!(ctx.lost_devices(), vec![0]);
        assert_eq!(ctx.faults_injected(), 1, "one primary injection");
        // The healthy device is untouched.
        assert!(ctx.create_buffer::<f32>(1, 4).is_ok());
    }

    #[test]
    fn virtual_time_trigger_fires_on_the_first_command_at_or_after_the_instant() {
        // Run once fault-free to learn the exact virtual end of the write;
        // then schedule a loss just before the second command's start.
        let probe = Context::with_gpus(1);
        let q = probe.queue(0).unwrap();
        let buf = probe.create_buffer::<f32>(0, 1024).unwrap();
        let w = q
            .enqueue_write_buffer(&buf, &vec![1.0f32; 1024])
            .unwrap()
            .wait()
            .unwrap();

        let ctx = Context::with_gpus(1);
        ctx.inject_faults(&FaultPlan::new().device_lost_at(0, w.end));
        let q = ctx.queue(0).unwrap();
        let buf = ctx.create_buffer::<f32>(0, 1024).unwrap();
        let first = q.enqueue_write_buffer(&buf, &vec![1.0f32; 1024]).unwrap();
        assert!(
            first.wait().is_ok(),
            "the first write starts before the trigger instant"
        );
        let second = q.enqueue_write_buffer(&buf, &vec![2.0f32; 1024]).unwrap();
        let err = second.wait().unwrap_err();
        assert!(err.is_device_lost(), "{err:?}");
    }

    #[test]
    fn transient_launch_fails_once_and_the_replay_succeeds() {
        let ctx = Context::with_gpus(1);
        ctx.inject_faults(&FaultPlan::new().transient_launch_at(0, SimTime::ZERO));
        let q = ctx.queue(0).unwrap();
        let buf = ctx.create_buffer::<f32>(0, 4).unwrap();
        // Transfers are not matched by a launch fault.
        q.enqueue_write_buffer(&buf, &[1.0f32, 2.0, 3.0, 4.0])
            .unwrap()
            .wait()
            .unwrap();
        let program = ctx.build_program(DBL).unwrap();
        let kernel = program.kernel("dbl").unwrap();
        let args = [KernelArg::Buffer(buf.clone()), KernelArg::i32(4)];
        let first = q.enqueue_kernel(&kernel, 4, &args).unwrap();
        let err = first.wait().unwrap_err();
        assert!(
            matches!(
                err,
                OclError::TransientFault {
                    device: 0,
                    class: CommandClass::Launch
                }
            ),
            "{err:?}"
        );
        assert!(err.is_injected_fault() && !err.is_device_lost());
        // The failed launch left the data untouched; the replay succeeds
        // and produces the correct result.
        q.take_error();
        let replay = q.enqueue_kernel(&kernel, 4, &args).unwrap();
        assert!(replay.wait().is_ok());
        let mut out = [0.0f32; 4];
        q.enqueue_read_buffer(&buf, &mut out).unwrap();
        assert_eq!(out, [2.0, 4.0, 6.0, 8.0]);
        assert_eq!(ctx.faults_injected(), 1);
        assert!(ctx.lost_devices().is_empty());
    }

    #[test]
    fn unfired_plan_is_bitwise_and_virtual_time_identical_to_no_plan() {
        let run = |plan: Option<FaultPlan>| {
            let ctx = Context::with_gpus(2);
            if let Some(plan) = plan {
                ctx.inject_faults(&plan);
            }
            let q0 = ctx.queue(0).unwrap();
            let q1 = ctx.queue(1).unwrap();
            let program = ctx.build_program(DBL).unwrap();
            let kernel = program.kernel("dbl").unwrap();
            let mut outs = Vec::new();
            for (i, q) in [&q0, &q1].into_iter().enumerate() {
                let buf = ctx.create_buffer::<f32>(i, 256).unwrap();
                q.enqueue_write_buffer(&buf, &vec![i as f32 + 1.0; 256])
                    .unwrap();
                q.enqueue_kernel(
                    &kernel,
                    256,
                    &[KernelArg::Buffer(buf.clone()), KernelArg::i32(256)],
                )
                .unwrap();
                let mut out = vec![0.0f32; 256];
                q.enqueue_read_buffer(&buf, &mut out).unwrap();
                outs.push(out);
            }
            (outs, q0.events(), q1.events(), ctx.host_now())
        };
        // Triggers far in the virtual future / past any op count reached.
        let dormant = FaultPlan::new()
            .device_lost_at(0, SimTime::ZERO + SimDuration::from_secs_f64(3600.0))
            .transient_transfer_at_op(1, 1_000_000);
        assert_eq!(
            run(None),
            run(Some(dormant)),
            "a dormant plan must not perturb results or virtual time"
        );
    }

    #[test]
    fn plan_builder_collects_specs_in_order() {
        let plan = FaultPlan::new()
            .device_lost_at_op(2, 5)
            .transient_transfer_at(0, SimTime::ZERO)
            .transient_launch_at_op(1, 3);
        assert_eq!(plan.specs().len(), 3);
        assert!(!plan.is_empty());
        assert_eq!(
            plan.specs()[0],
            FaultSpec {
                device: 2,
                trigger: FaultTrigger::AtOpCount(5),
                kind: FaultKind::DeviceLost,
            }
        );
        assert!(FaultPlan::new().is_empty());
    }
}
