//! Buffer handles: lightweight, cloneable references to device allocations.

use crate::device::DeviceId;

/// Element kind stored in a buffer, used to validate bindings of DSL kernels
/// (which only understand the scalar types of the kernel language). Native
/// kernels may use any [`crate::pod::Pod`] element type (`Opaque`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DataKind {
    /// 32-bit float elements.
    F32,
    /// 64-bit float elements.
    F64,
    /// 32-bit signed integer elements.
    I32,
    /// 32-bit unsigned integer elements.
    U32,
    /// Any other Pod element type (size recorded for transfers).
    Opaque {
        /// Size of one element in bytes.
        elem_size: usize,
    },
}

impl DataKind {
    /// Size of one element in bytes.
    pub fn elem_size(self) -> usize {
        match self {
            DataKind::F32 | DataKind::I32 | DataKind::U32 => 4,
            DataKind::F64 => 8,
            DataKind::Opaque { elem_size } => elem_size,
        }
    }
}

/// A handle to a buffer allocation on one simulated device.
///
/// The handle itself carries no data; it names an allocation in the owning
/// device's storage, like a `cl_mem` object.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Buffer {
    id: u64,
    device: DeviceId,
    len: usize,
    kind: DataKind,
}

impl Buffer {
    /// Create a handle (used by [`crate::device::Device::create_buffer`]).
    pub(crate) fn new<T: crate::pod::Pod>(id: u64, device: DeviceId, len: usize) -> Self {
        Buffer {
            id,
            device,
            len,
            kind: crate::device::data_kind_of::<T>(),
        }
    }

    /// Unique id of the allocation on its device.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Index of the owning device.
    pub fn device(&self) -> DeviceId {
        self.device
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the buffer holds zero elements.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Element kind.
    pub fn kind(&self) -> DataKind {
        self.kind
    }

    /// Total size in bytes.
    pub fn len_bytes(&self) -> usize {
        self.len * self.kind.elem_size()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn elem_sizes() {
        assert_eq!(DataKind::F32.elem_size(), 4);
        assert_eq!(DataKind::F64.elem_size(), 8);
        assert_eq!(DataKind::Opaque { elem_size: 24 }.elem_size(), 24);
    }

    #[test]
    fn handle_accessors() {
        let b = Buffer::new::<f32>(7, 1, 100);
        assert_eq!(b.id(), 7);
        assert_eq!(b.device(), 1);
        assert_eq!(b.len(), 100);
        assert!(!b.is_empty());
        assert_eq!(b.kind(), DataKind::F32);
        assert_eq!(b.len_bytes(), 400);
    }
}
