//! Asynchronous in-order command queues with virtual-time accounting.
//!
//! Every queue owns a **dedicated worker thread**: `enqueue_*` validates the
//! command on the host thread (cheap metadata checks with the same errors as
//! before), charges the host's virtual clock the enqueue overhead, and hands
//! the command to the worker, which executes it — real data movement, real
//! kernel execution through the bytecode VM — and settles its virtual
//! timestamps. Commands enqueued on the queues of *different* devices
//! therefore genuinely overlap in real (wall-clock) time, not just in
//! virtual time.
//!
//! # Virtual-time determinism
//!
//! The timestamp arithmetic is split so that no value ever depends on thread
//! interleaving:
//!
//! * `queued` and the enqueue overhead are taken from the **host clock on
//!   the host thread**, in program order — workers never touch the host
//!   clock.
//! * `start = max(queue available-at, queued)` and `end = start + duration`
//!   are computed by the **worker in FIFO order**; each queue's
//!   `available_at` is only ever advanced by its own worker.
//! * Virtually-blocking operations (blocking reads, [`CommandQueue::finish`])
//!   join the command in real time first, then advance the host clock to the
//!   command's end — the same `max` the eager engine computed atomically.
//!
//! The result: for programs whose commands all succeed, every virtual
//! timestamp, transfer statistic and event log is bit-identical to the
//! previous eager, single-threaded engine, for any interleaving of the
//! workers. The one (deterministic) divergence is on failing commands: the
//! enqueue overhead is charged at enqueue time — the host did perform the
//! enqueue — whereas the eager engine returned the error before charging
//! anything.
//!
//! # Errors
//!
//! Host-side validation errors (wrong device, size mismatches, aliased or
//! ill-typed kernel arguments) are still returned synchronously from
//! `enqueue_*`. Errors that can only occur *during* execution — kernel
//! runtime errors such as out-of-bounds accesses — complete the command's
//! [`EventHandle`] with the error and are additionally latched as the
//! queue's *deferred error*, which the next blocking read on the queue
//! surfaces (so legacy enqueue-then-read code cannot lose them). Runtimes
//! that want the error at the launch site wait on the kernel's handle.

use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::Arc;
use std::thread::JoinHandle;

use parking_lot::Mutex;

use crate::buffer::Buffer;
use crate::device::Device;
use crate::error::{OclError, Result};
use crate::event::{CommandKind, Event, EventHandle};
use crate::pod::{self, Pod};
use crate::profile::ApiModel;
use crate::program::{Kernel, KernelArg};
use crate::time::SimTime;

/// State shared between the host-facing queue object and its worker thread.
struct QueueShared {
    /// Virtual time at which the device will have finished all commands
    /// processed so far (advanced by the worker in FIFO order).
    available_at: Mutex<SimTime>,
    /// Completed-command log, in execution (= enqueue) order.
    log: Mutex<Vec<Event>>,
    /// First execution-time error that has not been surfaced yet.
    deferred_error: Mutex<Option<OclError>>,
    /// Total execution-time errors that ever reached the deferred-error
    /// latch (monotonic; counts every failing command, not just the first
    /// unsurfaced one). Surfaced in `ExecTrace` so fire-and-forget callers
    /// that drop their [`EventHandle`]s still see that launches failed.
    errors_latched: std::sync::atomic::AtomicUsize,
    /// Commands enqueued but not yet settled by the worker.
    pending: std::sync::Mutex<usize>,
    idle: std::sync::Condvar,
}

impl QueueShared {
    /// Record one execution-time command failure: bump the monotonic error
    /// counter and latch the error if no earlier one is still unsurfaced
    /// (first error wins, matching OpenCL's sticky queue-error semantics).
    fn latch_error(&self, error: &OclError) {
        self.errors_latched
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let mut latch = self.deferred_error.lock();
        if latch.is_none() {
            *latch = Some(error.clone());
        }
    }

    fn command_enqueued(&self) {
        *self.pending.lock().expect("queue mutex poisoned") += 1;
    }

    fn command_settled(&self) {
        let mut pending = self.pending.lock().expect("queue mutex poisoned");
        *pending -= 1;
        if *pending == 0 {
            self.idle.notify_all();
        }
    }

    /// Block (in real time) until the worker has settled every command
    /// enqueued so far. Purely a thread join: no virtual clock moves.
    fn quiesce(&self) {
        let mut pending = self.pending.lock().expect("queue mutex poisoned");
        while *pending > 0 {
            pending = self.idle.wait(pending).expect("queue mutex poisoned");
        }
    }
}

/// A command in flight to the worker.
enum Command {
    Write {
        buffer: Buffer,
        offset_bytes: usize,
        data: Vec<u8>,
        event: EventHandle,
    },
    Read {
        buffer: Buffer,
        offset_bytes: usize,
        len_bytes: usize,
        event: EventHandle,
    },
    Kernel {
        kernel: Box<Kernel>,
        global_size: usize,
        args: Vec<KernelArg>,
        /// Wait list: the command may not start (in virtual time) before
        /// these events end, and the worker joins them in real time first.
        deps: Vec<EventHandle>,
        event: EventHandle,
    },
}

impl Command {
    /// The event tracking this command (used by the worker's panic guard).
    fn event(&self) -> &EventHandle {
        match self {
            Command::Write { event, .. }
            | Command::Read { event, .. }
            | Command::Kernel { event, .. } => event,
        }
    }
}

/// An in-order command queue bound to one device, executing asynchronously
/// on a dedicated worker thread.
pub struct CommandQueue {
    device: Arc<Device>,
    api: ApiModel,
    host_clock: Arc<Mutex<SimTime>>,
    shared: Arc<QueueShared>,
    sender: Option<Sender<Command>>,
    worker: Mutex<Option<JoinHandle<()>>>,
}

impl CommandQueue {
    pub(crate) fn new(device: Arc<Device>, api: ApiModel, host_clock: Arc<Mutex<SimTime>>) -> Self {
        let shared = Arc::new(QueueShared {
            available_at: Mutex::new(SimTime::ZERO),
            log: Mutex::new(Vec::new()),
            deferred_error: Mutex::new(None),
            errors_latched: std::sync::atomic::AtomicUsize::new(0),
            pending: std::sync::Mutex::new(0),
            idle: std::sync::Condvar::new(),
        });
        let (sender, receiver) = channel();
        let worker = {
            let device = device.clone();
            let api = api.clone();
            let shared = shared.clone();
            std::thread::Builder::new()
                .name(format!("oclsim-dev{}", device.id))
                .spawn(move || worker_loop(&device, &api, &shared, &receiver))
                .expect("spawning a device worker thread")
        };
        CommandQueue {
            device,
            api,
            host_clock,
            shared,
            sender: Some(sender),
            worker: Mutex::new(Some(worker)),
        }
    }

    /// The device this queue submits to.
    pub fn device(&self) -> &Arc<Device> {
        &self.device
    }

    /// Virtual time at which the device will have finished all commands
    /// enqueued so far. Joins the worker (in real time) so the answer covers
    /// every command already enqueued.
    pub fn available_at(&self) -> SimTime {
        self.shared.quiesce();
        *self.shared.available_at.lock()
    }

    /// All events recorded on this queue so far (completed commands, in
    /// enqueue order; the worker is joined first).
    pub fn events(&self) -> Vec<Event> {
        self.shared.quiesce();
        self.shared.log.lock().clone()
    }

    /// Clear the event log (the virtual clocks are left untouched).
    pub fn clear_events(&self) {
        self.shared.quiesce();
        self.shared.log.lock().clear();
    }

    /// Join the worker in *real* time: returns once every command enqueued
    /// so far has executed. Unlike [`CommandQueue::finish`], the virtual
    /// host clock is untouched — use this before releasing buffers that
    /// in-flight commands may still reference.
    pub fn quiesce(&self) {
        self.shared.quiesce();
    }

    /// Take the queue's first unsurfaced execution-time error, if any.
    /// Blocking reads call this internally; runtimes that wait on kernel
    /// [`EventHandle`]s directly use it to discard the duplicate latch.
    pub fn take_error(&self) -> Option<OclError> {
        self.shared.deferred_error.lock().take()
    }

    /// Explicit drain of the deferred-error latch: wait (in real time) for
    /// every command enqueued so far to settle, then take the queue's first
    /// unsurfaced execution-time error. Unlike [`CommandQueue::take_error`]
    /// this cannot miss an error whose command is still in flight, and
    /// unlike [`CommandQueue::finish_checked`] it never advances the
    /// virtual host clock — the drain path for fire-and-forget callers
    /// (e.g. a serving layer) that must not perturb virtual timing.
    pub fn take_deferred_error(&self) -> Option<OclError> {
        self.shared.quiesce();
        self.take_error()
    }

    /// Total execution-time errors ever latched on this queue (monotonic),
    /// whether or not they have been surfaced or taken. Commands still in
    /// flight are not waited for.
    pub fn deferred_error_count(&self) -> usize {
        self.shared
            .errors_latched
            .load(std::sync::atomic::Ordering::Relaxed)
    }

    fn check_buffer_device(&self, buffer: &Buffer) -> Result<()> {
        if buffer.device() != self.device.id {
            return Err(OclError::WrongDevice {
                buffer_device: buffer.device(),
                queue_device: self.device.id,
            });
        }
        Ok(())
    }

    /// Host-side transfer-range validation shared by writes, fills and
    /// reads; mirrors the device-side check so enqueue-time and
    /// execution-time errors for the same bad range agree.
    fn check_range(&self, buffer: &Buffer, offset_bytes: usize, len_bytes: usize) -> Result<()> {
        self.check_buffer_device(buffer)?;
        if offset_bytes + len_bytes > buffer.len_bytes() {
            return Err(OclError::SizeMismatch {
                host_bytes: len_bytes,
                device_bytes: buffer.len_bytes().saturating_sub(offset_bytes),
            });
        }
        Ok(())
    }

    /// Host-side half of the former `charge`: reads the `queued` timestamp
    /// and advances the host clock by the enqueue overhead, in program
    /// order. The worker computes start/end.
    fn charge_enqueue(&self) -> SimTime {
        let mut host = self.host_clock.lock();
        let queued = *host;
        *host += self.api.enqueue_overhead;
        queued
    }

    fn submit(&self, command: Command) {
        self.shared.command_enqueued();
        self.sender
            .as_ref()
            .expect("sender lives as long as the queue")
            .send(command)
            .expect("worker thread lives as long as the queue");
    }

    /// Block the host until every command enqueued on this queue has
    /// completed: a real-time join of the worker plus the virtual-time
    /// host-clock synchronisation.
    ///
    /// `finish` does not inspect the deferred-error latch; callers that end
    /// a program with a sync rather than a blocking read should use
    /// [`CommandQueue::finish_checked`] (or wait on their kernel
    /// [`EventHandle`]s) so execution-time errors cannot go unnoticed.
    pub fn finish(&self) -> SimTime {
        self.shared.quiesce();
        let mut host = self.host_clock.lock();
        let avail = *self.shared.available_at.lock();
        *host = host.max(avail);
        *host
    }

    /// [`CommandQueue::finish`] that additionally surfaces the queue's first
    /// unreported execution-time error — the `clFinish` analogue for code
    /// that drops its [`EventHandle`]s and never issues a blocking read.
    pub fn finish_checked(&self) -> Result<SimTime> {
        let t = self.finish();
        match self.take_error() {
            Some(error) => Err(error),
            None => Ok(t),
        }
    }

    /// Non-blocking host → device transfer of a whole slice into the start of
    /// a buffer.
    pub fn enqueue_write_buffer<T: Pod>(&self, buffer: &Buffer, data: &[T]) -> Result<EventHandle> {
        self.enqueue_write_buffer_region(buffer, 0, data)
    }

    /// Non-blocking host → device transfer into the buffer starting at
    /// element `elem_offset`.
    pub fn enqueue_write_buffer_region<T: Pod>(
        &self,
        buffer: &Buffer,
        elem_offset: usize,
        data: &[T],
    ) -> Result<EventHandle> {
        self.enqueue_write_bytes(
            buffer,
            elem_offset * std::mem::size_of::<T>(),
            pod::as_bytes(data).to_vec(),
        )
    }

    /// Non-blocking fill of `count` elements starting at element
    /// `elem_offset` with a repeated value (the `clEnqueueFillBuffer`
    /// analogue, used for policy-filled halo padding). Charged exactly like
    /// the equivalent host → device transfer of `count` elements; the fill
    /// payload is materialised once, directly as the worker's owned bytes.
    pub fn enqueue_fill_buffer_region<T: Pod>(
        &self,
        buffer: &Buffer,
        elem_offset: usize,
        value: T,
        count: usize,
    ) -> Result<EventHandle> {
        let elem = std::mem::size_of::<T>();
        let mut data = vec![0u8; count * elem];
        for chunk in data.chunks_exact_mut(elem) {
            chunk.copy_from_slice(pod::as_bytes(std::slice::from_ref(&value)));
        }
        self.enqueue_write_bytes(buffer, elem_offset * elem, data)
    }

    /// Shared validated submit path of writes and fills: `data` is handed to
    /// the worker as-is (single allocation, single host-side copy).
    fn enqueue_write_bytes(
        &self,
        buffer: &Buffer,
        offset_bytes: usize,
        data: Vec<u8>,
    ) -> Result<EventHandle> {
        self.check_range(buffer, offset_bytes, data.len())?;
        let queued = self.charge_enqueue();
        let event = EventHandle::pending(CommandKind::WriteBuffer, self.device.id, queued);
        self.submit(Command::Write {
            buffer: buffer.clone(),
            offset_bytes,
            data,
            event: event.clone(),
        });
        Ok(event)
    }

    /// Blocking device → host transfer of a whole buffer into `out`.
    pub fn enqueue_read_buffer<T: Pod>(&self, buffer: &Buffer, out: &mut [T]) -> Result<Event> {
        self.enqueue_read_buffer_region(buffer, 0, out)
    }

    /// Blocking device → host transfer starting at element `elem_offset`:
    /// joins the command in real time, synchronises the host's virtual clock
    /// with the transfer's end, and surfaces any earlier execution-time
    /// error of this queue.
    pub fn enqueue_read_buffer_region<T: Pod>(
        &self,
        buffer: &Buffer,
        elem_offset: usize,
        out: &mut [T],
    ) -> Result<Event> {
        let handle = self.enqueue_read_buffer_region_nb::<T>(buffer, elem_offset, out.len())?;
        let result = handle.wait_into(out);
        // An earlier command's failure is the root cause — surface it first
        // (the in-order queue guarantees it is older than this read).
        if let Some(earlier) = self.take_error() {
            return Err(earlier);
        }
        let record = result?;
        let mut host = self.host_clock.lock();
        *host = host.max(record.end);
        Ok(record)
    }

    /// Non-blocking device → host read of `len` elements starting at element
    /// `elem_offset`. The data travels in the returned [`EventHandle`];
    /// claim it with [`EventHandle::wait_into`]. Reads enqueued on the
    /// queues of different devices overlap in real time.
    pub fn enqueue_read_buffer_region_nb<T: Pod>(
        &self,
        buffer: &Buffer,
        elem_offset: usize,
        len: usize,
    ) -> Result<EventHandle> {
        let bytes = len * std::mem::size_of::<T>();
        let offset_bytes = elem_offset * std::mem::size_of::<T>();
        self.check_range(buffer, offset_bytes, bytes)?;
        let queued = self.charge_enqueue();
        let event = EventHandle::pending(CommandKind::ReadBuffer, self.device.id, queued);
        self.submit(Command::Read {
            buffer: buffer.clone(),
            offset_bytes,
            len_bytes: bytes,
            event: event.clone(),
        });
        Ok(event)
    }

    /// Enqueue a 1-D NDRange kernel launch (non-blocking).
    ///
    /// Buffer arguments must live on this queue's device, the same buffer
    /// may not be bound to two arguments of one launch, and the arguments
    /// must match a runtime-compiled kernel's signature — all validated
    /// synchronously. Execution-time errors complete the returned handle.
    pub fn enqueue_kernel(
        &self,
        kernel: &Kernel,
        global_size: usize,
        args: &[KernelArg],
    ) -> Result<EventHandle> {
        self.enqueue_kernel_after(kernel, global_size, args, &[])
    }

    /// Like [`CommandQueue::enqueue_kernel`], with an explicit wait list:
    /// the launch may not start (in virtual time) before every event in
    /// `wait_list` has ended, mirroring OpenCL's event wait lists. The
    /// worker joins the dependencies in real time before executing.
    pub fn enqueue_kernel_after(
        &self,
        kernel: &Kernel,
        global_size: usize,
        args: &[KernelArg],
        wait_list: &[EventHandle],
    ) -> Result<EventHandle> {
        let mut buffer_ids = Vec::new();
        for arg in args {
            if let KernelArg::Buffer(b) = arg {
                self.check_buffer_device(b)?;
                if buffer_ids.contains(&b.id()) {
                    return Err(OclError::BufferAliased { id: b.id() });
                }
                buffer_ids.push(b.id());
            }
        }
        kernel.validate_args(args)?;
        let queued = self.charge_enqueue();
        let event = EventHandle::pending(
            CommandKind::Kernel(kernel.name.clone()),
            self.device.id,
            queued,
        );
        self.submit(Command::Kernel {
            kernel: Box::new(kernel.clone()),
            global_size,
            args: args.to_vec(),
            deps: wait_list.to_vec(),
            event: event.clone(),
        });
        Ok(event)
    }

    /// Enqueue a kernel whose cost hint is overridden for this launch (used
    /// when the per-item cost depends on runtime data, e.g. the average LOR
    /// path length in the OSEM study).
    pub fn enqueue_kernel_with_cost(
        &self,
        kernel: &Kernel,
        global_size: usize,
        args: &[KernelArg],
        cost: crate::program::CostHint,
    ) -> Result<EventHandle> {
        let adjusted = kernel.clone().with_cost(cost);
        self.enqueue_kernel(&adjusted, global_size, args)
    }
}

impl Drop for CommandQueue {
    fn drop(&mut self) {
        // Closing the channel ends the worker loop; join it so no command
        // outlives the queue.
        drop(self.sender.take());
        if let Some(worker) = self.worker.lock().take() {
            let _ = worker.join();
        }
    }
}

/// The worker: executes commands in FIFO order against the device, settles
/// their virtual timestamps on the queue's clock and completes their events.
fn worker_loop(
    device: &Arc<Device>,
    api: &ApiModel,
    shared: &Arc<QueueShared>,
    receiver: &Receiver<Command>,
) {
    while let Ok(command) = receiver.recv() {
        // A panic while processing a command (a latent bug in the VM or a
        // panicking native kernel) must not strand the host: the eager
        // engine panicked loudly on the host thread, so the async engine
        // converts the unwind into a failed event + latched queue error and
        // keeps the pending count balanced — waiters see the error instead
        // of deadlocking on a worker that died.
        let event = command.event().clone();
        let processed = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            process_command(device, api, shared, command)
        }));
        if let Err(payload) = processed {
            let msg = payload
                .downcast_ref::<&str>()
                .map(|s| (*s).to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "unknown panic".to_string());
            let error = OclError::Kernel(skelcl_kernel::diag::KernelError::run(format!(
                "device worker panicked while executing a command: {msg}"
            )));
            if !event.is_done() {
                shared.latch_error(&error);
                event.complete(Err(error), None);
            }
        }
        shared.command_settled();
    }
}

/// The command's prospective virtual start time, computed *before*
/// execution: `max(queue available-at, queued, deps)`. Deterministic —
/// only this worker ever advances the queue's `available_at`, so reading
/// it ahead of `settle` yields exactly the start the settle path will
/// compute. Armed fault triggers are evaluated against this instant.
fn prospective_start(shared: &QueueShared, event: &EventHandle, deps_end: SimTime) -> SimTime {
    shared
        .available_at
        .lock()
        .max(event.queued_at())
        .max(deps_end)
}

/// Execute one command against the device and settle its event.
fn process_command(
    device: &Arc<Device>,
    api: &ApiModel,
    shared: &Arc<QueueShared>,
    command: Command,
) {
    {
        match command {
            Command::Write {
                buffer,
                offset_bytes,
                data,
                event,
            } => {
                let bytes = data.len();
                let start = prospective_start(shared, &event, SimTime::ZERO);
                let outcome = device
                    .fault_check(start, crate::fault::CommandClass::Transfer)
                    .and_then(|()| device.write_buffer_bytes(&buffer, offset_bytes, &data));
                settle(
                    device,
                    api,
                    shared,
                    &event,
                    outcome.map(|()| {
                        let dur = api.transfer_time(&device.profile, bytes);
                        (dur, bytes, 0, None)
                    }),
                    SimTime::ZERO,
                );
            }
            Command::Read {
                buffer,
                offset_bytes,
                len_bytes,
                event,
            } => {
                let mut payload = vec![0u8; len_bytes];
                let start = prospective_start(shared, &event, SimTime::ZERO);
                let outcome = device
                    .fault_check(start, crate::fault::CommandClass::Transfer)
                    .and_then(|()| device.read_buffer_bytes(&buffer, offset_bytes, &mut payload));
                settle(
                    device,
                    api,
                    shared,
                    &event,
                    outcome.map(|()| {
                        let dur = api.transfer_time(&device.profile, len_bytes);
                        (dur, len_bytes, 0, Some(payload))
                    }),
                    SimTime::ZERO,
                );
            }
            Command::Kernel {
                kernel,
                global_size,
                args,
                deps,
                event,
            } => {
                // Join the wait list (real time) and collect the virtual
                // lower bound on the start time. A failed dependency fails
                // this command without executing it (and without bumping
                // the device's fault-op counter — it never reached the
                // device).
                let mut deps_end = SimTime::ZERO;
                let mut dep_error = None;
                for dep in &deps {
                    match dep.wait() {
                        Ok(record) => deps_end = deps_end.max(record.end),
                        Err(e) => {
                            dep_error = Some(e);
                            break;
                        }
                    }
                }
                let outcome = match dep_error {
                    Some(e) => Err(e),
                    None => {
                        let start = prospective_start(shared, &event, deps_end);
                        device
                            .fault_check(start, crate::fault::CommandClass::Launch)
                            .and_then(|()| execute_kernel(device, api, &kernel, global_size, &args))
                    }
                };
                settle(
                    device,
                    api,
                    shared,
                    &event,
                    outcome.map(|(dur, work_items)| (dur, 0, work_items, None)),
                    deps_end,
                );
            }
        }
    }
}

/// Run a kernel against the device's buffer storage and return its virtual
/// duration (from the measured cost of runtime-compiled kernels, or the
/// author-provided hint of native ones).
fn execute_kernel(
    device: &Arc<Device>,
    api: &ApiModel,
    kernel: &Kernel,
    global_size: usize,
    args: &[KernelArg],
) -> Result<(crate::time::SimDuration, usize)> {
    let mut buffer_ids = Vec::new();
    for arg in args {
        if let KernelArg::Buffer(b) = arg {
            buffer_ids.push(b.id());
        }
    }
    // Return the taken storage to the device even if the kernel panics
    // (the worker's panic guard keeps the queue alive; the buffers must
    // survive too).
    struct ReturnOnDrop<'a> {
        device: &'a Device,
        taken: Vec<(u64, crate::device::BufferData)>,
    }
    impl Drop for ReturnOnDrop<'_> {
        fn drop(&mut self) {
            self.device.return_buffers(std::mem::take(&mut self.taken));
        }
    }
    let mut guard = ReturnOnDrop {
        device,
        taken: device.take_buffers(&buffer_ids)?,
    };
    let result = kernel.execute(global_size, args, &mut guard.taken);
    drop(guard);
    let (measured, trace) = result?;
    if let Some(trace) = &trace {
        device.note_kernel_tier(trace);
    }
    let cost = measured.unwrap_or_else(|| kernel.cost());
    let dur = api.kernel_time(
        &device.profile,
        global_size,
        cost.flops_per_item,
        cost.bytes_per_item,
    );
    Ok((dur, global_size))
}

/// Settle one executed command: on success compute start/end on the queue's
/// virtual clock (FIFO order makes this deterministic), advance
/// `available_at`, log the event and complete the handle; on failure latch
/// the queue's deferred error and fail the handle. Failed commands charge no
/// *execution* time and never advance `available_at` — only the enqueue
/// overhead the host already paid when submitting (see the module docs).
fn settle(
    device: &Arc<Device>,
    _api: &ApiModel,
    shared: &Arc<QueueShared>,
    event: &EventHandle,
    outcome: Result<(crate::time::SimDuration, usize, usize, Option<Vec<u8>>)>,
    deps_end: SimTime,
) {
    match outcome {
        Ok((duration, bytes, work_items, payload)) => {
            let record = {
                let mut avail = shared.available_at.lock();
                let start = avail.max(event.queued_at()).max(deps_end);
                let end = start + duration;
                *avail = end;
                Event {
                    kind: event.kind().clone(),
                    device: device.id,
                    queued: event.queued_at(),
                    start,
                    end,
                    bytes,
                    work_items,
                }
            };
            shared.log.lock().push(record.clone());
            event.complete(Ok(record), payload);
        }
        Err(error) => {
            shared.latch_error(&error);
            event.complete(Err(error), None);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::Context;
    use crate::event::EventStatus;
    use crate::profile::{ApiModel, DeviceProfile};
    use crate::program::{CostHint, NativeKernelDef};

    fn two_gpu_context() -> Context {
        Context::new(
            vec![DeviceProfile::tesla_c1060(), DeviceProfile::tesla_c1060()],
            ApiModel::opencl(),
        )
    }

    #[test]
    fn write_kernel_read_round_trip() {
        let ctx = two_gpu_context();
        let q = ctx.queue(0).unwrap();
        let buf = ctx.create_buffer::<f32>(0, 4).unwrap();
        q.enqueue_write_buffer(&buf, &[1.0f32, 2.0, 3.0, 4.0])
            .unwrap();

        let program = ctx
            .build_program(
                "__kernel void dbl(__global float* v, int n) { int i = get_global_id(0); if (i < n) { v[i] = v[i] * 2.0f; } }",
            )
            .unwrap();
        let kernel = program.kernel("dbl").unwrap();
        q.enqueue_kernel(
            &kernel,
            4,
            &[KernelArg::Buffer(buf.clone()), KernelArg::i32(4)],
        )
        .unwrap();

        let mut out = vec![0.0f32; 4];
        q.enqueue_read_buffer(&buf, &mut out).unwrap();
        assert_eq!(out, vec![2.0, 4.0, 6.0, 8.0]);
    }

    #[test]
    fn virtual_time_advances_and_orders_commands() {
        let ctx = two_gpu_context();
        let q = ctx.queue(0).unwrap();
        let buf = ctx.create_buffer::<f32>(0, 1024).unwrap();
        let w = q
            .enqueue_write_buffer(&buf, &vec![0.0f32; 1024])
            .unwrap()
            .wait()
            .unwrap();
        let mut out = vec![0.0f32; 1024];
        let r = q.enqueue_read_buffer(&buf, &mut out).unwrap();
        assert!(w.end <= r.start, "in-order queue must serialise commands");
        assert!(r.duration().as_nanos() > 0);
        assert!(
            ctx.host_now() >= r.end,
            "blocking read syncs the host clock"
        );
    }

    #[test]
    fn queues_of_different_devices_overlap_in_virtual_time() {
        let ctx = two_gpu_context();
        let q0 = ctx.queue(0).unwrap();
        let q1 = ctx.queue(1).unwrap();
        let def = NativeKernelDef::new("spin", CostHint::new(1000.0, 4.0), |_ctx| Ok(()));
        let program = ctx.native_program([def]);
        let k = program.kernel("spin").unwrap();
        let b0 = ctx.create_buffer::<f32>(0, 1).unwrap();
        let b1 = ctx.create_buffer::<f32>(1, 1).unwrap();
        let e0 = q0
            .enqueue_kernel(&k, 1_000_000, &[KernelArg::Buffer(b0)])
            .unwrap();
        let e1 = q1
            .enqueue_kernel(&k, 1_000_000, &[KernelArg::Buffer(b1)])
            .unwrap();
        let (e0, e1) = (e0.wait().unwrap(), e1.wait().unwrap());
        // The second launch starts (virtually) before the first ends: overlap.
        assert!(e1.start < e0.end, "multi-device launches must overlap");
    }

    #[test]
    fn wrong_device_buffers_are_rejected() {
        let ctx = two_gpu_context();
        let q0 = ctx.queue(0).unwrap();
        let buf1 = ctx.create_buffer::<f32>(1, 4).unwrap();
        let err = q0.enqueue_write_buffer(&buf1, &[0.0f32; 4]).unwrap_err();
        assert!(matches!(err, OclError::WrongDevice { .. }));
    }

    #[test]
    fn aliased_kernel_buffers_are_rejected() {
        let ctx = two_gpu_context();
        let q = ctx.queue(0).unwrap();
        let buf = ctx.create_buffer::<f32>(0, 4).unwrap();
        let program = ctx
            .build_program(
                "__kernel void addv(__global float* a, __global float* b, int n) { int i = get_global_id(0); if (i < n) { a[i] += b[i]; } }",
            )
            .unwrap();
        let k = program.kernel("addv").unwrap();
        let err = q
            .enqueue_kernel(
                &k,
                4,
                &[
                    KernelArg::Buffer(buf.clone()),
                    KernelArg::Buffer(buf.clone()),
                    KernelArg::i32(4),
                ],
            )
            .unwrap_err();
        assert!(matches!(err, OclError::BufferAliased { .. }));
        // The buffer must still be usable afterwards.
        assert!(q.enqueue_write_buffer(&buf, &[1.0f32; 4]).is_ok());
    }

    #[test]
    fn ill_typed_kernel_arguments_are_rejected_at_enqueue() {
        let ctx = two_gpu_context();
        let q = ctx.queue(0).unwrap();
        let program = ctx
            .build_program("__kernel void k(__global float* v, int n) { v[0] = n; }")
            .unwrap();
        let kernel = program.kernel("k").unwrap();
        // Too few arguments.
        assert!(q.enqueue_kernel(&kernel, 1, &[]).is_err());
        // Scalar where a buffer is expected.
        assert!(q
            .enqueue_kernel(&kernel, 1, &[KernelArg::i32(1), KernelArg::i32(1)])
            .is_err());
        // Wrong buffer element type.
        let ibuf = ctx.create_buffer::<i32>(0, 4).unwrap();
        assert!(q
            .enqueue_kernel(&kernel, 1, &[KernelArg::Buffer(ibuf), KernelArg::i32(4)])
            .is_err());
    }

    #[test]
    fn enqueue_time_validation_matches_the_vm_bind_errors_verbatim() {
        // `Kernel::validate_args` replicates the bytecode VM's binding
        // checks so ill-typed launches still fail synchronously at enqueue.
        // This pins the promised message equality: for each ill-typed
        // launch, the enqueue error text must equal what `Vm::bind_kernel`
        // reports for the equivalent bindings — any drift between the two
        // validators fails here.
        use skelcl_kernel::interp::{ArgBinding, BufferView};
        use skelcl_kernel::value::Value as KValue;
        use skelcl_kernel::vm::Vm;

        let src = "__kernel void k(__global float* v, int n) { v[0] = n; }";
        let ctx = two_gpu_context();
        let q = ctx.queue(0).unwrap();
        let program = ctx.build_program(src).unwrap();
        let kernel = program.kernel("k").unwrap();
        let fbuf = ctx.create_buffer::<f32>(0, 4).unwrap();
        let ibuf = ctx.create_buffer::<i32>(0, 4).unwrap();

        let kprog = skelcl_kernel::Program::build(src).unwrap();
        let khandle = kprog.kernel("k").unwrap();
        let bind_error = |args: &[ArgBinding<'_>]| -> String {
            let mut vm = Vm::new(kprog.compiled());
            vm.bind_kernel(khandle.index(), args).unwrap_err().message
        };

        // Wrong argument count.
        let enqueue = q.enqueue_kernel(&kernel, 1, &[]).unwrap_err();
        assert_eq!(format!("kernel error: run error: {}", bind_error(&[])), {
            let OclError::Kernel(e) = &enqueue else {
                panic!("{enqueue:?}")
            };
            format!("kernel error: run error: {}", e.message)
        });

        // Scalar bound where a buffer is expected.
        let enqueue = q
            .enqueue_kernel(&kernel, 1, &[KernelArg::i32(1), KernelArg::i32(1)])
            .unwrap_err();
        let oracle = bind_error(&[
            ArgBinding::Scalar(KValue::Int(1)),
            ArgBinding::Scalar(KValue::Int(1)),
        ]);
        let OclError::Kernel(e) = &enqueue else {
            panic!("{enqueue:?}")
        };
        assert_eq!(e.message, oracle);

        // Wrong buffer element type.
        let enqueue = q
            .enqueue_kernel(
                &kernel,
                1,
                &[KernelArg::Buffer(ibuf.clone()), KernelArg::i32(4)],
            )
            .unwrap_err();
        let mut data = vec![0i32; 4];
        let oracle = bind_error(&[
            ArgBinding::Buffer(BufferView::I32(&mut data)),
            ArgBinding::Scalar(KValue::Int(4)),
        ]);
        let OclError::Kernel(e) = &enqueue else {
            panic!("{enqueue:?}")
        };
        assert_eq!(e.message, oracle);

        // Buffer bound where a scalar is expected.
        let enqueue = q
            .enqueue_kernel(
                &kernel,
                1,
                &[
                    KernelArg::Buffer(fbuf.clone()),
                    KernelArg::Buffer(ibuf.clone()),
                ],
            )
            .unwrap_err();
        let mut fdata = vec![0f32; 4];
        let mut idata = vec![0i32; 4];
        let oracle = bind_error(&[
            ArgBinding::Buffer(BufferView::F32(&mut fdata)),
            ArgBinding::Buffer(BufferView::I32(&mut idata)),
        ]);
        let OclError::Kernel(e) = &enqueue else {
            panic!("{enqueue:?}")
        };
        assert_eq!(e.message, oracle);
    }

    #[test]
    fn finish_synchronises_host_clock() {
        let ctx = two_gpu_context();
        let q = ctx.queue(0).unwrap();
        let buf = ctx.create_buffer::<f32>(0, 1 << 20).unwrap();
        q.enqueue_write_buffer(&buf, &vec![0.0f32; 1 << 20])
            .unwrap();
        assert!(ctx.host_now() < q.available_at());
        let t = q.finish();
        assert_eq!(t, q.available_at());
        assert_eq!(ctx.host_now(), q.available_at());
    }

    #[test]
    fn event_log_accumulates_and_clears() {
        let ctx = two_gpu_context();
        let q = ctx.queue(0).unwrap();
        let buf = ctx.create_buffer::<f32>(0, 4).unwrap();
        q.enqueue_write_buffer(&buf, &[0.0f32; 4]).unwrap();
        let mut out = [0.0f32; 4];
        q.enqueue_read_buffer(&buf, &mut out).unwrap();
        assert_eq!(q.events().len(), 2);
        q.clear_events();
        assert!(q.events().is_empty());
    }

    #[test]
    fn event_handles_transition_to_complete() {
        let ctx = two_gpu_context();
        let q = ctx.queue(0).unwrap();
        let buf = ctx.create_buffer::<f32>(0, 64).unwrap();
        let handle = q.enqueue_write_buffer(&buf, &[0.5f32; 64]).unwrap();
        let record = handle.wait().unwrap();
        assert_eq!(handle.status(), EventStatus::Complete);
        assert!(handle.is_done());
        assert_eq!(record.bytes, 256);
        assert_eq!(record.device, 0);
        assert!(record.queued <= record.start && record.start <= record.end);
        // Waiting again returns the same record.
        assert_eq!(handle.wait().unwrap(), record);
    }

    #[test]
    fn kernel_runtime_errors_fail_the_event_and_latch_on_the_queue() {
        let ctx = two_gpu_context();
        let q = ctx.queue(0).unwrap();
        let buf = ctx.create_buffer::<f32>(0, 4).unwrap();
        let program = ctx
            .build_program("__kernel void oob(__global float* v, int n) { v[n + 10] = 1.0f; }")
            .unwrap();
        let kernel = program.kernel("oob").unwrap();
        let handle = q
            .enqueue_kernel(
                &kernel,
                1,
                &[KernelArg::Buffer(buf.clone()), KernelArg::i32(4)],
            )
            .unwrap();
        let err = handle.wait().unwrap_err();
        assert!(matches!(err, OclError::Kernel(_)), "{err:?}");
        assert_eq!(handle.status(), EventStatus::Failed);
        // The next blocking read surfaces the same (root-cause) error.
        let mut out = [0.0f32; 4];
        let err2 = q.enqueue_read_buffer(&buf, &mut out).unwrap_err();
        assert_eq!(format!("{err}"), format!("{err2}"));
        // Once surfaced, the queue is clean again.
        assert!(q.take_error().is_none());
        assert!(q.enqueue_read_buffer(&buf, &mut out).is_ok());
    }

    #[test]
    fn panicking_kernels_fail_the_event_instead_of_hanging_the_queue() {
        let ctx = two_gpu_context();
        let q = ctx.queue(0).unwrap();
        let def = NativeKernelDef::new("boom", CostHint::DEFAULT, |_ctx| {
            panic!("native kernel exploded")
        });
        let program = ctx.native_program([def]);
        let k = program.kernel("boom").unwrap();
        let buf = ctx.create_buffer::<f32>(0, 4).unwrap();
        let handle = q
            .enqueue_kernel(&k, 4, &[KernelArg::Buffer(buf.clone())])
            .unwrap();
        // Waiters must observe the failure, and the queue must stay usable —
        // not deadlock on a dead worker.
        let err = handle.wait().unwrap_err();
        assert!(format!("{err}").contains("panicked"), "{err}");
        assert!(q.finish_checked().is_err());
        assert!(q.enqueue_write_buffer(&buf, &[0.0f32; 4]).is_ok());
        assert!(q.finish_checked().is_ok());
    }

    #[test]
    fn finish_checked_surfaces_errors_that_blocking_reads_would_miss() {
        let ctx = two_gpu_context();
        let q = ctx.queue(0).unwrap();
        let buf = ctx.create_buffer::<f32>(0, 4).unwrap();
        let program = ctx
            .build_program("__kernel void oob(__global float* v, int n) { v[n + 10] = 1.0f; }")
            .unwrap();
        let kernel = program.kernel("oob").unwrap();
        // Enqueue-and-drop: the handle is discarded and no blocking read
        // follows — the clFinish analogue must still report the failure.
        let _ = q
            .enqueue_kernel(&kernel, 1, &[KernelArg::Buffer(buf), KernelArg::i32(4)])
            .unwrap();
        let err = q.finish_checked().unwrap_err();
        assert!(matches!(err, OclError::Kernel(_)), "{err:?}");
        // Surfaced once: the queue is clean afterwards.
        assert!(q.finish_checked().is_ok());
    }

    #[test]
    fn take_deferred_error_drains_without_touching_the_virtual_clock() {
        let ctx = two_gpu_context();
        let q = ctx.queue(0).unwrap();
        let buf = ctx.create_buffer::<f32>(0, 4).unwrap();
        let program = ctx
            .build_program("__kernel void oob(__global float* v, int n) { v[n + 10] = 1.0f; }")
            .unwrap();
        let kernel = program.kernel("oob").unwrap();
        assert_eq!(q.deferred_error_count(), 0);
        // Fire-and-forget: both handles are dropped immediately.
        for _ in 0..2 {
            let _ = q
                .enqueue_kernel(
                    &kernel,
                    1,
                    &[KernelArg::Buffer(buf.clone()), KernelArg::i32(4)],
                )
                .unwrap();
        }
        let host_before = ctx.host_now();
        let err = q.take_deferred_error().expect("first error is latched");
        assert!(matches!(err, OclError::Kernel(_)), "{err:?}");
        assert_eq!(
            ctx.host_now(),
            host_before,
            "the drain must not advance the virtual host clock"
        );
        // Both failures are counted even though only the first was latched.
        assert_eq!(q.deferred_error_count(), 2);
        assert!(q.take_deferred_error().is_none(), "latch surfaced once");
    }

    #[test]
    fn non_blocking_reads_deliver_their_payload_once() {
        let ctx = two_gpu_context();
        let q = ctx.queue(0).unwrap();
        let buf = ctx.create_buffer::<f32>(0, 8).unwrap();
        q.enqueue_write_buffer(&buf, &[3.0f32; 8]).unwrap();
        let handle = q.enqueue_read_buffer_region_nb::<f32>(&buf, 2, 4).unwrap();
        let mut out = [0.0f32; 4];
        handle.wait_into(&mut out).unwrap();
        assert_eq!(out, [3.0f32; 4]);
        // The payload is claimed; a second wait_into errors, a plain wait
        // still returns the record.
        assert!(handle.wait_into(&mut out).is_err());
        assert!(handle.wait().is_ok());
    }

    #[test]
    fn wait_lists_order_cross_queue_commands_in_virtual_time() {
        let ctx = two_gpu_context();
        let q0 = ctx.queue(0).unwrap();
        let q1 = ctx.queue(1).unwrap();
        let def = NativeKernelDef::new("spin", CostHint::new(500.0, 4.0), |_ctx| Ok(()));
        let program = ctx.native_program([def]);
        let k = program.kernel("spin").unwrap();
        let b0 = ctx.create_buffer::<f32>(0, 1).unwrap();
        let b1 = ctx.create_buffer::<f32>(1, 1).unwrap();
        let first = q0
            .enqueue_kernel(&k, 500_000, &[KernelArg::Buffer(b0)])
            .unwrap();
        let second = q1
            .enqueue_kernel_after(
                &k,
                10,
                &[KernelArg::Buffer(b1)],
                std::slice::from_ref(&first),
            )
            .unwrap();
        let (first, second) = (first.wait().unwrap(), second.wait().unwrap());
        assert!(
            second.start >= first.end,
            "a wait list must defer the dependent start past the dependency's end"
        );
    }

    #[test]
    fn threaded_queue_virtual_times_are_deterministic() {
        // The exact start/end values of a multi-command, multi-device
        // workload must not depend on worker interleaving: repeat the same
        // program and compare the full event logs.
        let run = || {
            let ctx = two_gpu_context();
            let q0 = ctx.queue(0).unwrap();
            let q1 = ctx.queue(1).unwrap();
            let program = ctx
                .build_program(
                    "__kernel void inc(__global float* v, int n) { int i = get_global_id(0); if (i < n) { v[i] = v[i] + 1.0f; } }",
                )
                .unwrap();
            let kernel = program.kernel("inc").unwrap();
            let b0 = ctx.create_buffer::<f32>(0, 512).unwrap();
            let b1 = ctx.create_buffer::<f32>(1, 512).unwrap();
            for (q, b) in [(&q0, &b0), (&q1, &b1)] {
                q.enqueue_write_buffer(b, &vec![0.0f32; 512]).unwrap();
                q.enqueue_kernel(
                    &kernel,
                    512,
                    &[KernelArg::Buffer(b.clone()), KernelArg::i32(512)],
                )
                .unwrap();
            }
            let mut out = vec![0.0f32; 512];
            q0.enqueue_read_buffer(&b0, &mut out).unwrap();
            q1.enqueue_read_buffer(&b1, &mut out).unwrap();
            (q0.events(), q1.events(), ctx.host_now())
        };
        let a = run();
        let b = run();
        assert_eq!(a, b, "virtual telemetry must be interleaving-independent");
    }
}
