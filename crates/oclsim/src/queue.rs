//! In-order command queues with virtual-time accounting.
//!
//! Commands execute *eagerly* on the host thread (results are always real),
//! while their timing is charged to per-queue virtual clocks. Because every
//! queue has its own clock and non-blocking commands only advance the host
//! clock by a small enqueue overhead, launches issued to the queues of
//! different devices overlap in virtual time exactly as concurrent GPU
//! commands would.

use std::sync::Arc;

use parking_lot::Mutex;

use crate::buffer::Buffer;
use crate::device::Device;
use crate::error::{OclError, Result};
use crate::event::{CommandKind, Event};
use crate::pod::{self, Pod};
use crate::profile::ApiModel;
use crate::program::{Kernel, KernelArg};
use crate::time::{SimDuration, SimTime};

/// An in-order command queue bound to one device.
pub struct CommandQueue {
    device: Arc<Device>,
    api: ApiModel,
    host_clock: Arc<Mutex<SimTime>>,
    available_at: Mutex<SimTime>,
    log: Mutex<Vec<Event>>,
}

impl CommandQueue {
    pub(crate) fn new(device: Arc<Device>, api: ApiModel, host_clock: Arc<Mutex<SimTime>>) -> Self {
        CommandQueue {
            device,
            api,
            host_clock,
            available_at: Mutex::new(SimTime::ZERO),
            log: Mutex::new(Vec::new()),
        }
    }

    /// The device this queue submits to.
    pub fn device(&self) -> &Arc<Device> {
        &self.device
    }

    /// Virtual time at which the device will have finished all commands
    /// enqueued so far.
    pub fn available_at(&self) -> SimTime {
        *self.available_at.lock()
    }

    /// All events recorded on this queue so far.
    pub fn events(&self) -> Vec<Event> {
        self.log.lock().clone()
    }

    /// Clear the event log (the virtual clocks are left untouched).
    pub fn clear_events(&self) {
        self.log.lock().clear();
    }

    fn check_buffer_device(&self, buffer: &Buffer) -> Result<()> {
        if buffer.device() != self.device.id {
            return Err(OclError::WrongDevice {
                buffer_device: buffer.device(),
                queue_device: self.device.id,
            });
        }
        Ok(())
    }

    /// Charge a command: computes start/end on this queue's clock, advances
    /// the host clock by the enqueue overhead, records and returns the event.
    fn charge(
        &self,
        kind: CommandKind,
        duration: SimDuration,
        bytes: usize,
        work_items: usize,
        blocking: bool,
    ) -> Event {
        let mut host = self.host_clock.lock();
        let queued = *host;
        let mut avail = self.available_at.lock();
        let start = avail.max(queued);
        let end = start + duration;
        *avail = end;
        *host += self.api.enqueue_overhead;
        if blocking {
            *host = host.max(end);
        }
        let event = Event {
            kind,
            device: self.device.id,
            queued,
            start,
            end,
            bytes,
            work_items,
        };
        self.log.lock().push(event.clone());
        event
    }

    /// Block the host until every command enqueued on this queue has
    /// completed (in virtual time).
    pub fn finish(&self) -> SimTime {
        let mut host = self.host_clock.lock();
        let avail = *self.available_at.lock();
        *host = host.max(avail);
        *host
    }

    /// Non-blocking host → device transfer of a whole slice into the start of
    /// a buffer.
    pub fn enqueue_write_buffer<T: Pod>(&self, buffer: &Buffer, data: &[T]) -> Result<Event> {
        self.enqueue_write_buffer_region(buffer, 0, data)
    }

    /// Non-blocking host → device transfer into the buffer starting at
    /// element `elem_offset`.
    pub fn enqueue_write_buffer_region<T: Pod>(
        &self,
        buffer: &Buffer,
        elem_offset: usize,
        data: &[T],
    ) -> Result<Event> {
        self.check_buffer_device(buffer)?;
        let bytes = std::mem::size_of_val(data);
        let offset_bytes = elem_offset * std::mem::size_of::<T>();
        self.device
            .write_buffer_bytes(buffer, offset_bytes, pod::as_bytes(data))?;
        let dur = self.api.transfer_time(&self.device.profile, bytes);
        Ok(self.charge(CommandKind::WriteBuffer, dur, bytes, 0, false))
    }

    /// Non-blocking fill of `count` elements starting at element
    /// `elem_offset` with a repeated value (the `clEnqueueFillBuffer`
    /// analogue, used for policy-filled halo padding). Charged exactly like
    /// the equivalent host → device transfer of `count` elements.
    pub fn enqueue_fill_buffer_region<T: Pod>(
        &self,
        buffer: &Buffer,
        elem_offset: usize,
        value: T,
        count: usize,
    ) -> Result<Event> {
        self.enqueue_write_buffer_region(buffer, elem_offset, &vec![value; count])
    }

    /// Blocking device → host transfer of a whole buffer into `out`.
    pub fn enqueue_read_buffer<T: Pod>(&self, buffer: &Buffer, out: &mut [T]) -> Result<Event> {
        self.enqueue_read_buffer_region(buffer, 0, out)
    }

    /// Blocking device → host transfer starting at element `elem_offset`.
    pub fn enqueue_read_buffer_region<T: Pod>(
        &self,
        buffer: &Buffer,
        elem_offset: usize,
        out: &mut [T],
    ) -> Result<Event> {
        self.check_buffer_device(buffer)?;
        let bytes = std::mem::size_of_val(out);
        let offset_bytes = elem_offset * std::mem::size_of::<T>();
        // The read must observe all previously enqueued commands on this
        // in-order queue; since commands execute eagerly, the data is already
        // up to date and only the clocks need the ordering.
        let mut byte_out = vec![0u8; bytes];
        self.device
            .read_buffer_bytes(buffer, offset_bytes, &mut byte_out)?;
        out.copy_from_slice(&pod::from_bytes_vec::<T>(&byte_out));
        let dur = self.api.transfer_time(&self.device.profile, bytes);
        Ok(self.charge(CommandKind::ReadBuffer, dur, bytes, 0, true))
    }

    /// Enqueue a 1-D NDRange kernel launch.
    ///
    /// Buffer arguments must live on this queue's device, and the same buffer
    /// may not be bound to two arguments of one launch.
    pub fn enqueue_kernel(
        &self,
        kernel: &Kernel,
        global_size: usize,
        args: &[KernelArg],
    ) -> Result<Event> {
        let mut buffer_ids = Vec::new();
        for arg in args {
            if let KernelArg::Buffer(b) = arg {
                self.check_buffer_device(b)?;
                buffer_ids.push(b.id());
            }
        }
        let mut taken = self.device.take_buffers(&buffer_ids)?;
        let result = kernel.execute(global_size, args, &mut taken);
        self.device.return_buffers(taken);
        let measured = result?;

        // Runtime-compiled (DSL) kernels report the cost they actually
        // executed; native kernels fall back to their author-provided hint.
        let cost = measured.unwrap_or_else(|| kernel.cost());
        let dur = self.api.kernel_time(
            &self.device.profile,
            global_size,
            cost.flops_per_item,
            cost.bytes_per_item,
        );
        Ok(self.charge(
            CommandKind::Kernel(kernel.name.clone()),
            dur,
            0,
            global_size,
            false,
        ))
    }

    /// Enqueue a kernel whose cost hint is overridden for this launch (used
    /// when the per-item cost depends on runtime data, e.g. the average LOR
    /// path length in the OSEM study).
    pub fn enqueue_kernel_with_cost(
        &self,
        kernel: &Kernel,
        global_size: usize,
        args: &[KernelArg],
        cost: crate::program::CostHint,
    ) -> Result<Event> {
        let adjusted = kernel.clone().with_cost(cost);
        self.enqueue_kernel(&adjusted, global_size, args)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::Context;
    use crate::profile::{ApiModel, DeviceProfile};
    use crate::program::{CostHint, NativeKernelDef};

    fn two_gpu_context() -> Context {
        Context::new(
            vec![DeviceProfile::tesla_c1060(), DeviceProfile::tesla_c1060()],
            ApiModel::opencl(),
        )
    }

    #[test]
    fn write_kernel_read_round_trip() {
        let ctx = two_gpu_context();
        let q = ctx.queue(0).unwrap();
        let buf = ctx.create_buffer::<f32>(0, 4).unwrap();
        q.enqueue_write_buffer(&buf, &[1.0f32, 2.0, 3.0, 4.0])
            .unwrap();

        let program = ctx
            .build_program(
                "__kernel void dbl(__global float* v, int n) { int i = get_global_id(0); if (i < n) { v[i] = v[i] * 2.0f; } }",
            )
            .unwrap();
        let kernel = program.kernel("dbl").unwrap();
        q.enqueue_kernel(
            &kernel,
            4,
            &[KernelArg::Buffer(buf.clone()), KernelArg::i32(4)],
        )
        .unwrap();

        let mut out = vec![0.0f32; 4];
        q.enqueue_read_buffer(&buf, &mut out).unwrap();
        assert_eq!(out, vec![2.0, 4.0, 6.0, 8.0]);
    }

    #[test]
    fn virtual_time_advances_and_orders_commands() {
        let ctx = two_gpu_context();
        let q = ctx.queue(0).unwrap();
        let buf = ctx.create_buffer::<f32>(0, 1024).unwrap();
        let w = q.enqueue_write_buffer(&buf, &vec![0.0f32; 1024]).unwrap();
        let mut out = vec![0.0f32; 1024];
        let r = q.enqueue_read_buffer(&buf, &mut out).unwrap();
        assert!(w.end <= r.start, "in-order queue must serialise commands");
        assert!(r.duration().as_nanos() > 0);
        assert!(
            ctx.host_now() >= r.end,
            "blocking read syncs the host clock"
        );
    }

    #[test]
    fn queues_of_different_devices_overlap_in_virtual_time() {
        let ctx = two_gpu_context();
        let q0 = ctx.queue(0).unwrap();
        let q1 = ctx.queue(1).unwrap();
        let def = NativeKernelDef::new("spin", CostHint::new(1000.0, 4.0), |_ctx| Ok(()));
        let program = ctx.native_program([def]);
        let k = program.kernel("spin").unwrap();
        let b0 = ctx.create_buffer::<f32>(0, 1).unwrap();
        let b1 = ctx.create_buffer::<f32>(1, 1).unwrap();
        let e0 = q0
            .enqueue_kernel(&k, 1_000_000, &[KernelArg::Buffer(b0)])
            .unwrap();
        let e1 = q1
            .enqueue_kernel(&k, 1_000_000, &[KernelArg::Buffer(b1)])
            .unwrap();
        // The second launch starts (virtually) before the first ends: overlap.
        assert!(e1.start < e0.end, "multi-device launches must overlap");
    }

    #[test]
    fn wrong_device_buffers_are_rejected() {
        let ctx = two_gpu_context();
        let q0 = ctx.queue(0).unwrap();
        let buf1 = ctx.create_buffer::<f32>(1, 4).unwrap();
        let err = q0.enqueue_write_buffer(&buf1, &[0.0f32; 4]).unwrap_err();
        assert!(matches!(err, OclError::WrongDevice { .. }));
    }

    #[test]
    fn aliased_kernel_buffers_are_rejected() {
        let ctx = two_gpu_context();
        let q = ctx.queue(0).unwrap();
        let buf = ctx.create_buffer::<f32>(0, 4).unwrap();
        let program = ctx
            .build_program(
                "__kernel void addv(__global float* a, __global float* b, int n) { int i = get_global_id(0); if (i < n) { a[i] += b[i]; } }",
            )
            .unwrap();
        let k = program.kernel("addv").unwrap();
        let err = q
            .enqueue_kernel(
                &k,
                4,
                &[
                    KernelArg::Buffer(buf.clone()),
                    KernelArg::Buffer(buf.clone()),
                    KernelArg::i32(4),
                ],
            )
            .unwrap_err();
        assert!(matches!(err, OclError::BufferAliased { .. }));
        // The buffer must still be usable afterwards.
        assert!(q.enqueue_write_buffer(&buf, &[1.0f32; 4]).is_ok());
    }

    #[test]
    fn finish_synchronises_host_clock() {
        let ctx = two_gpu_context();
        let q = ctx.queue(0).unwrap();
        let buf = ctx.create_buffer::<f32>(0, 1 << 20).unwrap();
        q.enqueue_write_buffer(&buf, &vec![0.0f32; 1 << 20])
            .unwrap();
        assert!(ctx.host_now() < q.available_at());
        let t = q.finish();
        assert_eq!(t, q.available_at());
        assert_eq!(ctx.host_now(), q.available_at());
    }

    #[test]
    fn event_log_accumulates_and_clears() {
        let ctx = two_gpu_context();
        let q = ctx.queue(0).unwrap();
        let buf = ctx.create_buffer::<f32>(0, 4).unwrap();
        q.enqueue_write_buffer(&buf, &[0.0f32; 4]).unwrap();
        let mut out = [0.0f32; 4];
        q.enqueue_read_buffer(&buf, &mut out).unwrap();
        assert_eq!(q.events().len(), 2);
        q.clear_events();
        assert!(q.events().is_empty());
    }
}
