//! Platform discovery, mirroring OpenCL's `clGetPlatformIDs` /
//! `clGetDeviceIDs` boilerplate.
//!
//! The paper's Figure 4a attributes a large part of the OpenCL host program's
//! length to "code for selecting the target platform and an OpenCL device and
//! for compiling kernel functions at runtime". This module exists so that the
//! low-level baseline implementations in this repository have to go through
//! the same motions against the simulator, keeping the lines-of-code
//! comparison honest.

use crate::profile::{DeviceProfile, DeviceType};

/// A platform: a vendor runtime exposing a set of devices.
#[derive(Debug, Clone, PartialEq)]
pub struct Platform {
    /// Vendor / platform name.
    pub name: String,
    /// Profiles of the devices the platform exposes.
    pub devices: Vec<DeviceProfile>,
}

impl Platform {
    /// Devices of a given type on this platform.
    pub fn devices_of_type(&self, ty: DeviceType) -> Vec<DeviceProfile> {
        self.devices
            .iter()
            .filter(|d| d.device_type == ty)
            .cloned()
            .collect()
    }
}

/// Enumerate the simulated platforms of the paper's evaluation machine: an
/// NVIDIA platform exposing the four Tesla GPUs of the S1070, and an Intel
/// platform exposing the Xeon E5520 CPU.
pub fn default_platforms() -> Vec<Platform> {
    vec![
        Platform {
            name: "NVIDIA CUDA (simulated)".to_string(),
            devices: vec![DeviceProfile::tesla_c1060(); 4],
        },
        Platform {
            name: "Intel(R) OpenCL (simulated)".to_string(),
            devices: vec![DeviceProfile::xeon_e5520()],
        },
    ]
}

/// Find the first platform that has at least `min_gpus` GPU devices and
/// return that many of them — the typical device-selection dance of an OpenCL
/// host program.
pub fn select_gpus(min_gpus: usize) -> Option<Vec<DeviceProfile>> {
    for platform in default_platforms() {
        let gpus = platform.devices_of_type(DeviceType::Gpu);
        if gpus.len() >= min_gpus {
            return Some(gpus.into_iter().take(min_gpus).collect());
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_platforms_expose_paper_hardware() {
        let platforms = default_platforms();
        assert_eq!(platforms.len(), 2);
        assert_eq!(platforms[0].devices_of_type(DeviceType::Gpu).len(), 4);
        assert_eq!(platforms[1].devices_of_type(DeviceType::Cpu).len(), 1);
    }

    #[test]
    fn gpu_selection() {
        assert_eq!(select_gpus(1).unwrap().len(), 1);
        assert_eq!(select_gpus(4).unwrap().len(), 4);
        assert!(select_gpus(5).is_none());
    }
}
