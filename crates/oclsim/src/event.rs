//! Profiling events, mirroring OpenCL's `cl_event` model: an [`EventHandle`]
//! tracks an asynchronously executing command through its status transitions
//! (pending → complete/failed) and can be waited on; a completed command
//! yields an [`Event`] record with its virtual timestamps.
//!
//! The two-type split mirrors the execution engine's split between *real*
//! and *virtual* time: commands really run on per-device worker threads (so
//! [`EventHandle::wait`] is a genuine thread join), while their timestamps
//! are computed on each queue's virtual clock. Waiting on a handle does
//! **not** advance the host's virtual clock — only virtually-blocking
//! operations (blocking reads, [`crate::CommandQueue::finish`]) do, exactly
//! as in the previous eager engine, so all virtual-time numbers are
//! preserved bit for bit regardless of thread interleaving.

use std::sync::{Condvar, Mutex};

use crate::error::OclError;
use crate::time::{SimDuration, SimTime};

/// The kind of command an event describes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CommandKind {
    /// Host → device transfer.
    WriteBuffer,
    /// Device → host transfer.
    ReadBuffer,
    /// Kernel launch (kernel name recorded).
    Kernel(String),
    /// Program build (runtime compilation).
    BuildProgram,
    /// Synchronisation marker (`finish`).
    Marker,
}

/// A completed command with its virtual timestamps.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// What the command was.
    pub kind: CommandKind,
    /// Device the command executed on.
    pub device: usize,
    /// When the host enqueued the command.
    pub queued: SimTime,
    /// When the device started executing it.
    pub start: SimTime,
    /// When the device finished executing it.
    pub end: SimTime,
    /// Bytes moved (transfers) or zero.
    pub bytes: usize,
    /// Work-items executed (kernels) or zero.
    pub work_items: usize,
}

impl Event {
    /// Time the command spent executing on the device.
    pub fn duration(&self) -> SimDuration {
        self.end - self.start
    }

    /// Time from enqueue to completion (includes waiting for earlier
    /// commands on the same in-order queue).
    pub fn latency(&self) -> SimDuration {
        self.end - self.queued
    }

    /// Whether the event is a kernel launch.
    pub fn is_kernel(&self) -> bool {
        matches!(self.kind, CommandKind::Kernel(_))
    }

    /// Whether the event is a data transfer.
    pub fn is_transfer(&self) -> bool {
        matches!(
            self.kind,
            CommandKind::WriteBuffer | CommandKind::ReadBuffer
        )
    }

    /// Whether the event is a host → device transfer (an upload).
    pub fn is_write(&self) -> bool {
        matches!(self.kind, CommandKind::WriteBuffer)
    }

    /// Whether the event is a device → host transfer (a download).
    pub fn is_read(&self) -> bool {
        matches!(self.kind, CommandKind::ReadBuffer)
    }
}

/// Execution status of an asynchronously enqueued command, the analogue of
/// OpenCL's `CL_QUEUED … CL_COMPLETE` execution-status values.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventStatus {
    /// Enqueued; the device worker has not finished it yet.
    Pending,
    /// The command completed; its [`Event`] record is available.
    Complete,
    /// The command failed; waiting returns the error.
    Failed,
}

/// Completion state shared between the enqueuing host thread and the
/// device's worker thread.
enum Completion {
    Pending,
    Done {
        result: Result<Event, OclError>,
        /// Device → host payload of non-blocking reads, claimed once by
        /// [`EventHandle::wait_into`].
        payload: Option<Vec<u8>>,
    },
}

struct EventCore {
    kind: CommandKind,
    device: usize,
    queued: SimTime,
    state: Mutex<Completion>,
    done: Condvar,
}

/// Handle to an asynchronously executing command, returned by the
/// non-blocking `enqueue_*` operations of [`crate::CommandQueue`].
///
/// Cloning the handle shares the underlying event. [`EventHandle::wait`]
/// joins the command in *real* time and returns its [`Event`] record (or the
/// command's error); it never advances the host's virtual clock.
#[derive(Clone)]
pub struct EventHandle {
    core: std::sync::Arc<EventCore>,
}

impl std::fmt::Debug for EventHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventHandle")
            .field("kind", &self.core.kind)
            .field("device", &self.core.device)
            .field("status", &self.status())
            .finish()
    }
}

impl EventHandle {
    /// Create a pending handle (called by the queue at enqueue time).
    pub(crate) fn pending(kind: CommandKind, device: usize, queued: SimTime) -> EventHandle {
        EventHandle {
            core: std::sync::Arc::new(EventCore {
                kind,
                device,
                queued,
                state: Mutex::new(Completion::Pending),
                done: Condvar::new(),
            }),
        }
    }

    /// The kind of command the handle tracks.
    pub fn kind(&self) -> &CommandKind {
        &self.core.kind
    }

    /// Device the command was enqueued on.
    pub fn device(&self) -> usize {
        self.core.device
    }

    /// Virtual time at which the host enqueued the command.
    pub fn queued_at(&self) -> SimTime {
        self.core.queued
    }

    /// Current execution status (non-blocking).
    pub fn status(&self) -> EventStatus {
        match &*self.core.state.lock().expect("event mutex poisoned") {
            Completion::Pending => EventStatus::Pending,
            Completion::Done { result: Ok(_), .. } => EventStatus::Complete,
            Completion::Done { result: Err(_), .. } => EventStatus::Failed,
        }
    }

    /// Whether the command has finished (successfully or not).
    pub fn is_done(&self) -> bool {
        self.status() != EventStatus::Pending
    }

    /// Block the calling thread (in real time — the virtual host clock is
    /// untouched) until the command completes; return its [`Event`] record
    /// or the error the command failed with.
    pub fn wait(&self) -> Result<Event, OclError> {
        let mut state = self.core.state.lock().expect("event mutex poisoned");
        while matches!(*state, Completion::Pending) {
            state = self.core.done.wait(state).expect("event mutex poisoned");
        }
        match &*state {
            Completion::Done { result, .. } => result.clone(),
            Completion::Pending => unreachable!("loop exits only when done"),
        }
    }

    /// Wait for a non-blocking read and copy its payload into `out`. The
    /// payload is claimed by the first successful call.
    pub fn wait_into<T: crate::pod::Pod>(&self, out: &mut [T]) -> Result<Event, OclError> {
        let mut state = self.core.state.lock().expect("event mutex poisoned");
        while matches!(*state, Completion::Pending) {
            state = self.core.done.wait(state).expect("event mutex poisoned");
        }
        match &mut *state {
            Completion::Done { result, payload } => {
                let record = result.clone()?;
                let data = payload.take().ok_or_else(|| {
                    OclError::InvalidOperation(
                        "event carries no read payload (not a read, or already claimed)".into(),
                    )
                })?;
                let out_bytes = std::mem::size_of_val(out);
                if data.len() != out_bytes {
                    return Err(OclError::SizeMismatch {
                        host_bytes: out_bytes,
                        device_bytes: data.len(),
                    });
                }
                out.copy_from_slice(&crate::pod::from_bytes_vec::<T>(&data));
                Ok(record)
            }
            Completion::Pending => unreachable!("loop exits only when done"),
        }
    }

    /// Complete the command (called by the device worker).
    pub(crate) fn complete(&self, result: Result<Event, OclError>, payload: Option<Vec<u8>>) {
        let mut state = self.core.state.lock().expect("event mutex poisoned");
        *state = Completion::Done { result, payload };
        self.core.done.notify_all();
    }
}

/// Aggregate statistics over a sequence of events, used by the benchmark
/// harnesses to report per-phase breakdowns (upload / compute / download) of
/// the OSEM iteration like Figure 3 of the paper.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct EventSummary {
    /// Total kernel execution time.
    pub kernel_time: SimDuration,
    /// Total transfer time.
    pub transfer_time: SimDuration,
    /// Total bytes transferred.
    pub bytes_transferred: usize,
    /// Number of kernel launches.
    pub kernel_launches: usize,
    /// Number of transfers.
    pub transfers: usize,
}

impl EventSummary {
    /// Summarise a slice of events.
    pub fn from_events<'a>(events: impl IntoIterator<Item = &'a Event>) -> Self {
        let mut s = EventSummary::default();
        for e in events {
            if e.is_kernel() {
                s.kernel_time += e.duration();
                s.kernel_launches += 1;
            } else if e.is_transfer() {
                s.transfer_time += e.duration();
                s.bytes_transferred += e.bytes;
                s.transfers += 1;
            }
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(kind: CommandKind, start: u64, end: u64, bytes: usize) -> Event {
        Event {
            kind,
            device: 0,
            queued: SimTime(start.saturating_sub(1)),
            start: SimTime(start),
            end: SimTime(end),
            bytes,
            work_items: 0,
        }
    }

    #[test]
    fn durations_and_latency() {
        let e = ev(CommandKind::WriteBuffer, 100, 250, 64);
        assert_eq!(e.duration(), SimDuration(150));
        assert_eq!(e.latency(), SimDuration(151));
        assert!(e.is_transfer());
        assert!(!e.is_kernel());
    }

    #[test]
    fn summary_accumulates_by_kind() {
        let events = vec![
            ev(CommandKind::WriteBuffer, 0, 100, 1000),
            ev(CommandKind::Kernel("k".into()), 100, 600, 0),
            ev(CommandKind::ReadBuffer, 600, 650, 500),
            ev(CommandKind::Marker, 650, 650, 0),
        ];
        let s = EventSummary::from_events(&events);
        assert_eq!(s.kernel_time, SimDuration(500));
        assert_eq!(s.transfer_time, SimDuration(150));
        assert_eq!(s.bytes_transferred, 1500);
        assert_eq!(s.kernel_launches, 1);
        assert_eq!(s.transfers, 2);
    }
}
