//! Profiling events, mirroring OpenCL's `cl_event` timestamps but in virtual
//! time.

use crate::time::{SimDuration, SimTime};

/// The kind of command an event describes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CommandKind {
    /// Host → device transfer.
    WriteBuffer,
    /// Device → host transfer.
    ReadBuffer,
    /// Kernel launch (kernel name recorded).
    Kernel(String),
    /// Program build (runtime compilation).
    BuildProgram,
    /// Synchronisation marker (`finish`).
    Marker,
}

/// A completed command with its virtual timestamps.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// What the command was.
    pub kind: CommandKind,
    /// Device the command executed on.
    pub device: usize,
    /// When the host enqueued the command.
    pub queued: SimTime,
    /// When the device started executing it.
    pub start: SimTime,
    /// When the device finished executing it.
    pub end: SimTime,
    /// Bytes moved (transfers) or zero.
    pub bytes: usize,
    /// Work-items executed (kernels) or zero.
    pub work_items: usize,
}

impl Event {
    /// Time the command spent executing on the device.
    pub fn duration(&self) -> SimDuration {
        self.end - self.start
    }

    /// Time from enqueue to completion (includes waiting for earlier
    /// commands on the same in-order queue).
    pub fn latency(&self) -> SimDuration {
        self.end - self.queued
    }

    /// Whether the event is a kernel launch.
    pub fn is_kernel(&self) -> bool {
        matches!(self.kind, CommandKind::Kernel(_))
    }

    /// Whether the event is a data transfer.
    pub fn is_transfer(&self) -> bool {
        matches!(
            self.kind,
            CommandKind::WriteBuffer | CommandKind::ReadBuffer
        )
    }

    /// Whether the event is a host → device transfer (an upload).
    pub fn is_write(&self) -> bool {
        matches!(self.kind, CommandKind::WriteBuffer)
    }

    /// Whether the event is a device → host transfer (a download).
    pub fn is_read(&self) -> bool {
        matches!(self.kind, CommandKind::ReadBuffer)
    }
}

/// Aggregate statistics over a sequence of events, used by the benchmark
/// harnesses to report per-phase breakdowns (upload / compute / download) of
/// the OSEM iteration like Figure 3 of the paper.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct EventSummary {
    /// Total kernel execution time.
    pub kernel_time: SimDuration,
    /// Total transfer time.
    pub transfer_time: SimDuration,
    /// Total bytes transferred.
    pub bytes_transferred: usize,
    /// Number of kernel launches.
    pub kernel_launches: usize,
    /// Number of transfers.
    pub transfers: usize,
}

impl EventSummary {
    /// Summarise a slice of events.
    pub fn from_events<'a>(events: impl IntoIterator<Item = &'a Event>) -> Self {
        let mut s = EventSummary::default();
        for e in events {
            if e.is_kernel() {
                s.kernel_time += e.duration();
                s.kernel_launches += 1;
            } else if e.is_transfer() {
                s.transfer_time += e.duration();
                s.bytes_transferred += e.bytes;
                s.transfers += 1;
            }
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(kind: CommandKind, start: u64, end: u64, bytes: usize) -> Event {
        Event {
            kind,
            device: 0,
            queued: SimTime(start.saturating_sub(1)),
            start: SimTime(start),
            end: SimTime(end),
            bytes,
            work_items: 0,
        }
    }

    #[test]
    fn durations_and_latency() {
        let e = ev(CommandKind::WriteBuffer, 100, 250, 64);
        assert_eq!(e.duration(), SimDuration(150));
        assert_eq!(e.latency(), SimDuration(151));
        assert!(e.is_transfer());
        assert!(!e.is_kernel());
    }

    #[test]
    fn summary_accumulates_by_kind() {
        let events = vec![
            ev(CommandKind::WriteBuffer, 0, 100, 1000),
            ev(CommandKind::Kernel("k".into()), 100, 600, 0),
            ev(CommandKind::ReadBuffer, 600, 650, 500),
            ev(CommandKind::Marker, 650, 650, 0),
        ];
        let s = EventSummary::from_events(&events);
        assert_eq!(s.kernel_time, SimDuration(500));
        assert_eq!(s.transfer_time, SimDuration(150));
        assert_eq!(s.bytes_transferred, 1500);
        assert_eq!(s.kernel_launches, 1);
        assert_eq!(s.transfers, 2);
    }
}
