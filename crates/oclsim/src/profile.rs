//! Device profiles, the programming-model (API) cost model, and the
//! analytical timing functions used to advance virtual time.
//!
//! The paper's evaluation machine is "a quad-core CPU (Intel Xeon E5520,
//! 2.26 GHz) and an NVIDIA Tesla S1070 system with 4 Tesla GPUs. Each GPU
//! consists of 240 streaming processors. The CPU has 12 GB of main memory,
//! while each GPU owns 4 GB of dedicated memory." The profiles below encode
//! published characteristics of that hardware; the benchmark harnesses use
//! them so the reproduced figures have the same hardware ratios as the
//! paper's, even though everything runs on a laptop.

use crate::time::SimDuration;

/// Kind of OpenCL device.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DeviceType {
    /// A GPU device.
    Gpu,
    /// A CPU device.
    Cpu,
    /// Another kind of accelerator.
    Accelerator,
}

/// Static description of a device's performance characteristics.
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceProfile {
    /// Human-readable device name.
    pub name: String,
    /// Device kind.
    pub device_type: DeviceType,
    /// Number of compute units (streaming multiprocessors / cores).
    pub compute_units: usize,
    /// Peak single-precision throughput in GFLOP/s.
    pub peak_gflops: f64,
    /// Device (global) memory bandwidth in GB/s.
    pub mem_bandwidth_gbs: f64,
    /// Host ↔ device interconnect bandwidth in GB/s (PCIe for GPUs).
    pub transfer_bandwidth_gbs: f64,
    /// Fixed latency of one host ↔ device transfer.
    pub transfer_latency: SimDuration,
    /// Fixed overhead of launching one kernel.
    pub kernel_launch_overhead: SimDuration,
    /// Dedicated device memory in bytes.
    pub memory_bytes: usize,
    /// One-time cost of building (compiling) a program at runtime.
    pub program_build_time: SimDuration,
}

impl DeviceProfile {
    /// One GPU of the NVIDIA Tesla S1070 used in the paper (a Tesla C1060
    /// class device: 240 streaming processors, 4 GB of GDDR3).
    pub fn tesla_c1060() -> Self {
        DeviceProfile {
            name: "NVIDIA Tesla C1060 (simulated)".to_string(),
            device_type: DeviceType::Gpu,
            compute_units: 30, // 30 SMs × 8 SPs = 240 streaming processors
            peak_gflops: 622.0,
            mem_bandwidth_gbs: 102.0,
            transfer_bandwidth_gbs: 5.2, // PCIe 2.0 x16 effective
            transfer_latency: SimDuration::from_micros(15),
            kernel_launch_overhead: SimDuration::from_micros(8),
            memory_bytes: 4 * 1024 * 1024 * 1024usize,
            program_build_time: SimDuration::from_secs_f64(0.15),
        }
    }

    /// The Intel Xeon E5520 host CPU used in the paper, exposed as an OpenCL
    /// CPU device (relevant for the Section V heterogeneous-scheduling
    /// experiments).
    pub fn xeon_e5520() -> Self {
        DeviceProfile {
            name: "Intel Xeon E5520 (simulated)".to_string(),
            device_type: DeviceType::Cpu,
            compute_units: 4,
            peak_gflops: 36.0,
            mem_bandwidth_gbs: 25.6,
            transfer_bandwidth_gbs: 12.0, // host memory copies
            transfer_latency: SimDuration::from_micros(1),
            kernel_launch_overhead: SimDuration::from_micros(2),
            memory_bytes: 12 * 1024 * 1024 * 1024usize,
            program_build_time: SimDuration::from_secs_f64(0.05),
        }
    }

    /// A small generic GPU, useful for heterogeneous-system tests where two
    /// different GPU classes are mixed.
    pub fn generic_small_gpu() -> Self {
        DeviceProfile {
            name: "Generic small GPU (simulated)".to_string(),
            device_type: DeviceType::Gpu,
            compute_units: 8,
            peak_gflops: 150.0,
            mem_bandwidth_gbs: 40.0,
            transfer_bandwidth_gbs: 4.0,
            transfer_latency: SimDuration::from_micros(20),
            kernel_launch_overhead: SimDuration::from_micros(10),
            memory_bytes: 1024 * 1024 * 1024usize,
            program_build_time: SimDuration::from_secs_f64(0.1),
        }
    }

    /// Time to move `bytes` bytes between host and this device, excluding any
    /// API-model multiplier.
    pub fn transfer_time(&self, bytes: usize) -> SimDuration {
        let seconds = bytes as f64 / (self.transfer_bandwidth_gbs * 1e9);
        self.transfer_latency + SimDuration::from_secs_f64(seconds)
    }

    /// Time to execute a kernel of `work_items` items, each performing
    /// `flops_per_item` floating-point operations and `bytes_per_item` bytes
    /// of global memory traffic, excluding launch overhead and API-model
    /// multipliers. The kernel is modelled as the slower of its compute and
    /// memory phases (roofline style).
    pub fn execution_time(
        &self,
        work_items: usize,
        flops_per_item: f64,
        bytes_per_item: f64,
    ) -> SimDuration {
        let items = work_items as f64;
        // Charge at least one flop and four bytes per item so that empty or
        // degenerate kernels still cost the dispatch work of each item.
        let flops = items * flops_per_item.max(1.0);
        let bytes = items * bytes_per_item.max(4.0);
        let compute_s = flops / (self.peak_gflops * 1e9);
        let memory_s = bytes / (self.mem_bandwidth_gbs * 1e9);
        SimDuration::from_secs_f64(compute_s.max(memory_s))
    }
}

/// The programming-model constants that distinguish CUDA, OpenCL and the
/// SkelCL layer in the paper's Figure 4b: identical hardware, different
/// driver/runtime overheads and compiler efficiency.
#[derive(Debug, Clone, PartialEq)]
pub struct ApiModel {
    /// Name used in reports ("CUDA", "OpenCL", "SkelCL").
    pub name: String,
    /// Multiplier on kernel launch overhead (CUDA < OpenCL).
    pub launch_overhead_factor: f64,
    /// Multiplier on transfer time (driver stack differences).
    pub transfer_overhead_factor: f64,
    /// Efficiency of generated device code relative to the hardware peak
    /// (the paper observes CUDA ≈ 20 % faster than OpenCL end to end).
    pub compute_efficiency: f64,
    /// Host-side virtual time consumed by each enqueue call.
    pub enqueue_overhead: SimDuration,
    /// Extra host-side virtual time per *skeleton* call; zero for raw APIs,
    /// small for the SkelCL layer (argument marshalling, distribution checks).
    pub dispatch_overhead: SimDuration,
}

impl ApiModel {
    /// Plain OpenCL: the baseline (factor 1.0 everywhere).
    pub fn opencl() -> Self {
        ApiModel {
            name: "OpenCL".to_string(),
            launch_overhead_factor: 1.0,
            transfer_overhead_factor: 1.0,
            compute_efficiency: 0.70,
            enqueue_overhead: SimDuration::from_micros(4),
            dispatch_overhead: SimDuration::ZERO,
        }
    }

    /// CUDA: lower launch/driver overhead and better generated code, matching
    /// the paper's observation of roughly 20 % faster end-to-end runtimes.
    pub fn cuda() -> Self {
        ApiModel {
            name: "CUDA".to_string(),
            launch_overhead_factor: 0.6,
            transfer_overhead_factor: 0.9,
            compute_efficiency: 0.85,
            enqueue_overhead: SimDuration::from_micros(3),
            dispatch_overhead: SimDuration::ZERO,
        }
    }

    /// SkelCL: identical to OpenCL underneath (SkelCL is built on top of
    /// OpenCL), plus a small per-skeleton dispatch overhead. The paper
    /// measures the total overhead at below 5 % of the OpenCL runtime.
    pub fn skelcl() -> Self {
        ApiModel {
            dispatch_overhead: SimDuration::from_micros(15),
            name: "SkelCL".to_string(),
            ..ApiModel::opencl()
        }
    }

    /// Launch overhead for a device under this API.
    pub fn launch_overhead(&self, profile: &DeviceProfile) -> SimDuration {
        SimDuration::from_secs_f64(
            profile.kernel_launch_overhead.as_secs_f64() * self.launch_overhead_factor,
        )
    }

    /// Full kernel time (launch overhead + roofline execution) for a device
    /// under this API.
    pub fn kernel_time(
        &self,
        profile: &DeviceProfile,
        work_items: usize,
        flops_per_item: f64,
        bytes_per_item: f64,
    ) -> SimDuration {
        let exec = profile.execution_time(work_items, flops_per_item, bytes_per_item);
        let scaled = SimDuration::from_secs_f64(exec.as_secs_f64() / self.compute_efficiency);
        self.launch_overhead(profile) + scaled
    }

    /// Full transfer time for `bytes` under this API.
    pub fn transfer_time(&self, profile: &DeviceProfile, bytes: usize) -> SimDuration {
        SimDuration::from_secs_f64(
            profile.transfer_time(bytes).as_secs_f64() * self.transfer_overhead_factor,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tesla_profile_matches_paper_hardware() {
        let p = DeviceProfile::tesla_c1060();
        assert_eq!(p.compute_units * 8, 240, "240 streaming processors");
        assert_eq!(p.memory_bytes, 4 * 1024 * 1024 * 1024usize, "4 GB per GPU");
        assert_eq!(p.device_type, DeviceType::Gpu);
    }

    #[test]
    fn transfer_time_scales_with_bytes() {
        let p = DeviceProfile::tesla_c1060();
        let small = p.transfer_time(1024);
        let large = p.transfer_time(1024 * 1024 * 100);
        assert!(large > small);
        // 100 MB over ~5.2 GB/s should be roughly 19 ms, plus latency.
        let secs = large.as_secs_f64();
        assert!(
            secs > 0.015 && secs < 0.03,
            "unexpected transfer time {secs}"
        );
    }

    #[test]
    fn execution_time_is_roofline_limited() {
        let p = DeviceProfile::tesla_c1060();
        // Compute-bound: many flops per byte.
        let compute_bound = p.execution_time(1_000_000, 1000.0, 4.0);
        // Memory-bound: few flops, many bytes.
        let memory_bound = p.execution_time(1_000_000, 1.0, 1000.0);
        assert!(compute_bound.as_secs_f64() > 0.0);
        assert!(memory_bound.as_secs_f64() > 0.0);
        // The compute-bound kernel's time must equal the compute phase.
        let expect = 1_000_000.0 * 1000.0 / (p.peak_gflops * 1e9);
        assert!((compute_bound.as_secs_f64() - expect).abs() / expect < 0.01);
    }

    #[test]
    fn cuda_is_faster_than_opencl_on_identical_kernels() {
        let p = DeviceProfile::tesla_c1060();
        let cuda = ApiModel::cuda().kernel_time(&p, 1_000_000, 100.0, 16.0);
        let ocl = ApiModel::opencl().kernel_time(&p, 1_000_000, 100.0, 16.0);
        let ratio = ocl.as_secs_f64() / cuda.as_secs_f64();
        assert!(
            ratio > 1.1 && ratio < 1.35,
            "OpenCL/CUDA ratio {ratio} outside the paper's ~1.2 range"
        );
    }

    #[test]
    fn skelcl_adds_only_dispatch_overhead_over_opencl() {
        let p = DeviceProfile::tesla_c1060();
        let skel = ApiModel::skelcl();
        let ocl = ApiModel::opencl();
        assert_eq!(
            skel.kernel_time(&p, 1 << 20, 50.0, 12.0),
            ocl.kernel_time(&p, 1 << 20, 50.0, 12.0),
            "kernel execution itself is identical; overhead is charged per skeleton call"
        );
        assert!(skel.dispatch_overhead > SimDuration::ZERO);
    }

    #[test]
    fn cpu_profile_is_slower_but_lower_latency() {
        let cpu = DeviceProfile::xeon_e5520();
        let gpu = DeviceProfile::tesla_c1060();
        assert!(cpu.peak_gflops < gpu.peak_gflops);
        assert!(cpu.kernel_launch_overhead < gpu.kernel_launch_overhead);
        assert!(cpu.transfer_latency < gpu.transfer_latency);
    }
}
