//! Plain-old-data support for typed access to raw device memory.
//!
//! OpenCL buffers are untyped byte ranges; host code reinterprets them as
//! arrays of scalars or user structs. This module provides the same facility
//! for the simulated device memory with a small, explicitly-audited amount of
//! `unsafe`:
//!
//! * [`Pod`] marks types that can be safely round-tripped through raw bytes:
//!   `Copy`, no references/pointers/interior mutability, and every byte
//!   pattern written by a valid value can be read back as that value.
//! * Device memory is stored 8-byte aligned (see `device::BufferData`), so
//!   casting to any `Pod` type with alignment ≤ 8 is sound.
//!
//! Implementations are provided for the primitive numeric types; application
//! crates (e.g. the OSEM study's `Event` struct) opt in with
//! `unsafe impl Pod for TheirType {}` after checking the requirements.

/// Marker for plain-old-data types that may live in simulated device memory.
///
/// # Safety
///
/// Implementors must guarantee that the type
///
/// * is `Copy` with no drop glue,
/// * contains no references, pointers, or interior mutability,
/// * has an alignment of at most 8 bytes,
/// * can be reconstructed from the bytes of any previously-valid value
///   (padding bytes are preserved verbatim by the simulator, so types with
///   padding are acceptable).
pub unsafe trait Pod: Copy + Send + Sync + 'static {}

unsafe impl Pod for u8 {}
unsafe impl Pod for i8 {}
unsafe impl Pod for u16 {}
unsafe impl Pod for i16 {}
unsafe impl Pod for u32 {}
unsafe impl Pod for i32 {}
unsafe impl Pod for u64 {}
unsafe impl Pod for i64 {}
unsafe impl Pod for usize {}
unsafe impl Pod for f32 {}
unsafe impl Pod for f64 {}
unsafe impl<T: Pod, const N: usize> Pod for [T; N] {}

/// View a `Pod` slice as raw bytes.
pub fn as_bytes<T: Pod>(data: &[T]) -> &[u8] {
    // SAFETY: `T: Pod` guarantees the value representation is plain bytes;
    // the length is the exact byte length of the slice.
    unsafe { std::slice::from_raw_parts(data.as_ptr().cast::<u8>(), std::mem::size_of_val(data)) }
}

/// Copy raw bytes into a freshly-allocated, properly-aligned `Vec<T>`.
///
/// # Panics
///
/// Panics if `bytes.len()` is not a multiple of `size_of::<T>()`.
pub fn from_bytes_vec<T: Pod>(bytes: &[u8]) -> Vec<T> {
    let size = std::mem::size_of::<T>();
    assert!(size > 0, "zero-sized Pod types are not supported");
    assert_eq!(
        bytes.len() % size,
        0,
        "byte length {} is not a multiple of element size {}",
        bytes.len(),
        size
    );
    let len = bytes.len() / size;
    let mut out = Vec::<T>::with_capacity(len);
    // SAFETY: the destination has capacity for `len` elements, the source
    // holds `len * size` bytes, and `T: Pod` allows constructing values from
    // bytes of previously-valid values.
    unsafe {
        std::ptr::copy_nonoverlapping(bytes.as_ptr(), out.as_mut_ptr().cast::<u8>(), bytes.len());
        out.set_len(len);
    }
    out
}

/// Reinterpret an aligned byte slice as a `Pod` slice without copying.
///
/// # Panics
///
/// Panics if the pointer is not aligned for `T` or the length is not a
/// multiple of `size_of::<T>()`.
pub fn cast_slice<T: Pod>(bytes: &[u8]) -> &[T] {
    let size = std::mem::size_of::<T>();
    assert_eq!(
        bytes.len() % size,
        0,
        "length not a multiple of element size"
    );
    assert_eq!(
        bytes.as_ptr() as usize % std::mem::align_of::<T>(),
        0,
        "byte slice is not aligned for the target type"
    );
    // SAFETY: alignment and length checked above; `T: Pod`.
    unsafe { std::slice::from_raw_parts(bytes.as_ptr().cast::<T>(), bytes.len() / size) }
}

/// Mutable version of [`cast_slice`].
pub fn cast_slice_mut<T: Pod>(bytes: &mut [u8]) -> &mut [T] {
    let size = std::mem::size_of::<T>();
    assert_eq!(
        bytes.len() % size,
        0,
        "length not a multiple of element size"
    );
    assert_eq!(
        bytes.as_ptr() as usize % std::mem::align_of::<T>(),
        0,
        "byte slice is not aligned for the target type"
    );
    // SAFETY: alignment and length checked above; `T: Pod`; exclusive borrow.
    unsafe { std::slice::from_raw_parts_mut(bytes.as_mut_ptr().cast::<T>(), bytes.len() / size) }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_f32() {
        let data = vec![1.0f32, -2.5, 3.25];
        let bytes = as_bytes(&data).to_vec();
        let back: Vec<f32> = from_bytes_vec(&bytes);
        assert_eq!(back, data);
    }

    #[test]
    fn round_trip_struct() {
        #[derive(Debug, Clone, Copy, PartialEq)]
        struct P {
            x: f32,
            y: f32,
            id: u32,
        }
        unsafe impl Pod for P {}
        let data = vec![
            P {
                x: 1.0,
                y: 2.0,
                id: 7,
            },
            P {
                x: -1.0,
                y: 0.5,
                id: 9,
            },
        ];
        let bytes = as_bytes(&data).to_vec();
        let back: Vec<P> = from_bytes_vec(&bytes);
        assert_eq!(back, data);
    }

    #[test]
    #[should_panic(expected = "not a multiple")]
    fn from_bytes_rejects_partial_elements() {
        let bytes = vec![0u8; 6];
        let _ = from_bytes_vec::<f32>(&bytes);
    }

    #[test]
    fn cast_slice_views_aligned_memory() {
        let mut words = vec![0u64; 2];
        let bytes = unsafe { std::slice::from_raw_parts_mut(words.as_mut_ptr().cast::<u8>(), 16) };
        let floats = cast_slice_mut::<f32>(bytes);
        floats[0] = 1.5;
        floats[3] = -2.0;
        let read = cast_slice::<f32>(as_bytes(&words));
        assert_eq!(read[0], 1.5);
        assert_eq!(read[3], -2.0);
    }
}
