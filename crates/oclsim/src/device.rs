//! The simulated device: profile + global-memory allocator.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};

use parking_lot::Mutex;

use crate::buffer::{Buffer, DataKind};
use crate::error::{OclError, Result};
use crate::fault::{CommandClass, FaultKind, FaultSpec, FaultTrigger};
use crate::pod::{self, Pod};
use crate::profile::{DeviceProfile, DeviceType};
use crate::time::SimTime;

/// Identifier of a device within a context (its index).
pub type DeviceId = usize;

/// Backing storage of one buffer. Data is kept in 8-byte words so that any
/// [`Pod`] type with alignment ≤ 8 can be viewed in place without copies.
#[derive(Debug, Clone)]
pub struct BufferData {
    words: Vec<u64>,
    len_bytes: usize,
    /// Storage revived from the buffer pool still holding its previous
    /// contents. Fresh-allocation (all-zero) semantics are established
    /// *lazily* on first access: a write zeroes only the bytes it does not
    /// cover (nothing at all for a full overwrite — the common
    /// upload-after-alloc path), a read or kernel launch settles the whole
    /// buffer.
    pending_zero: bool,
}

impl BufferData {
    /// Allocate zero-initialised storage of `len_bytes` bytes.
    pub fn new(len_bytes: usize) -> Self {
        BufferData {
            words: vec![0u64; len_bytes.div_ceil(8)],
            len_bytes,
            pending_zero: false,
        }
    }

    /// Length in bytes.
    pub fn len_bytes(&self) -> usize {
        self.len_bytes
    }

    /// Raw byte view.
    pub fn as_bytes(&self) -> &[u8] {
        &pod::as_bytes(&self.words)[..self.len_bytes]
    }

    /// Mutable raw byte view.
    pub fn as_bytes_mut(&mut self) -> &mut [u8] {
        let len = self.len_bytes;
        // SAFETY: u64 -> u8 reinterpretation of an exclusively borrowed,
        // fully initialised allocation; the byte length never exceeds the
        // word storage.
        let bytes = unsafe {
            std::slice::from_raw_parts_mut(
                self.words.as_mut_ptr().cast::<u8>(),
                self.words.len() * 8,
            )
        };
        &mut bytes[..len]
    }

    /// Typed view of the contents.
    pub fn as_slice<T: Pod>(&self) -> &[T] {
        pod::cast_slice(self.as_bytes())
    }

    /// Mutable typed view of the contents.
    pub fn as_slice_mut<T: Pod>(&mut self) -> &mut [T] {
        pod::cast_slice_mut(self.as_bytes_mut())
    }

    /// Establish fresh-allocation semantics now if the storage was revived
    /// from the pool and has not been settled yet.
    fn settle_zero(&mut self) {
        if self.pending_zero {
            self.words.fill(0);
            self.pending_zero = false;
        }
    }

    /// Settle a revived buffer around a write of `[offset, end)` bytes:
    /// zero only the uncovered ranges. Returns `true` when the write covers
    /// the whole buffer and no zeroing was needed at all.
    fn settle_zero_around(&mut self, offset: usize, end: usize) -> bool {
        debug_assert!(self.pending_zero);
        self.pending_zero = false;
        if offset == 0 && end == self.len_bytes {
            return true;
        }
        let total = self.words.len() * 8;
        // SAFETY: u64 -> u8 reinterpretation of an exclusively borrowed,
        // fully initialised allocation (same as `as_bytes_mut`, but over the
        // whole word storage so the tail padding is settled too).
        let bytes =
            unsafe { std::slice::from_raw_parts_mut(self.words.as_mut_ptr().cast::<u8>(), total) };
        bytes[..offset].fill(0);
        bytes[end..].fill(0);
        false
    }
}

/// Maximum number of parked allocations kept per size bucket of a device's
/// buffer pool; releases beyond this drop their storage for real.
const POOL_BUCKET_CAP: usize = 8;

/// Default high-water byte cap of a device's buffer pool (configurable per
/// device via [`Device::set_pool_cap_bytes`]); parking a release above the
/// cap evicts the least-recently-parked entries until the pool fits again.
const POOL_MAX_BYTES: usize = 256 * 1024 * 1024;

/// One parked allocation: the storage plus the monotonic sequence number of
/// the park operation, which orders evictions (oldest park evicted first).
#[derive(Debug)]
struct PooledEntry {
    seq: u64,
    data: BufferData,
}

/// The free list of one device: released storage parked by byte length.
/// Bounded by a per-bucket entry cap and a total high-water byte cap with
/// LRU (oldest-park-first) eviction.
#[derive(Debug)]
struct BufferPool {
    buckets: HashMap<usize, Vec<PooledEntry>>,
    total_bytes: usize,
    cap_bytes: usize,
    next_seq: u64,
}

impl Default for BufferPool {
    fn default() -> Self {
        BufferPool {
            buckets: HashMap::new(),
            total_bytes: 0,
            cap_bytes: POOL_MAX_BYTES,
            next_seq: 0,
        }
    }
}

impl BufferPool {
    /// Evict least-recently-parked entries until `total_bytes <= cap_bytes`.
    /// Returns `(entries_evicted, bytes_evicted)`. Entries within a bucket
    /// are parked in sequence order, so each bucket's front is its oldest.
    fn trim_to_cap(&mut self) -> (usize, usize) {
        let mut evicted = 0usize;
        let mut evicted_bytes = 0usize;
        while self.total_bytes > self.cap_bytes {
            let oldest = self
                .buckets
                .iter()
                .filter_map(|(&len, bucket)| bucket.first().map(|e| (e.seq, len)))
                .min();
            let Some((_, len)) = oldest else { break };
            let bucket = self.buckets.get_mut(&len).expect("bucket exists");
            bucket.remove(0);
            if bucket.is_empty() {
                self.buckets.remove(&len);
            }
            self.total_bytes -= len;
            evicted += 1;
            evicted_bytes += len;
        }
        (evicted, evicted_bytes)
    }
}

/// Live per-device counters of which kernel-language execution tier handled
/// each DSL launch, plus the native tier's compilation work. Bumped by the
/// queue worker after every launch; snapshot with [`Device::kernel_tiers`].
#[derive(Debug, Default)]
struct TierCounters {
    interp: AtomicUsize,
    scalar: AtomicUsize,
    batched: AtomicUsize,
    native: AtomicUsize,
    compiles: AtomicUsize,
    compile_ns: AtomicU64,
}

/// Snapshot of one device's kernel-tier telemetry (see
/// [`Device::kernel_tiers`]). Native launches that fall back to the batched
/// VM because the kernel is ineligible count as batched launches.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TierSnapshot {
    /// DSL launches executed by the AST interpreter.
    pub interp_launches: usize,
    /// DSL launches executed by the scalar (one-item-at-a-time) VM.
    pub scalar_launches: usize,
    /// DSL launches executed by the lane-batched VM.
    pub batched_launches: usize,
    /// DSL launches executed by the closure-compiled native tier.
    pub native_launches: usize,
    /// Kernels compiled to the native tier on this device.
    pub native_compiles: usize,
    /// Total wall-clock nanoseconds spent in native-tier compilation.
    pub native_compile_ns: u64,
}

/// A simulated OpenCL device: a performance profile plus its dedicated
/// global memory, which holds the live buffer allocations.
#[derive(Debug)]
pub struct Device {
    /// Index of the device within its context.
    pub id: DeviceId,
    /// Performance characteristics.
    pub profile: DeviceProfile,
    storage: Mutex<HashMap<u64, BufferData>>,
    /// Size-bucketed free list: released allocations parked by byte length
    /// so repeated same-shape `create_buffer` calls (the skeleton
    /// `alloc_output` steady state) reuse the storage instead of hitting the
    /// allocator every launch. Revived buffers get a *fresh* id: recycling
    /// ids would turn an erroneous double release of a stale handle into
    /// silent destruction of an unrelated live buffer instead of the
    /// [`OclError::BufferNotFound`] it reports today.
    pool: Mutex<BufferPool>,
    pool_hits: AtomicUsize,
    /// Parked entries dropped by the pool's high-water LRU trim.
    pool_evictions: AtomicUsize,
    /// Bytes of parked storage dropped by the pool's high-water LRU trim.
    pool_evicted_bytes: AtomicUsize,
    /// Pool revivals whose first access was a full overwrite, so the
    /// fresh-allocation zeroing was elided entirely (see
    /// [`BufferData::settle_zero_around`]).
    zero_elisions: AtomicUsize,
    allocated: AtomicUsize,
    next_buffer_id: AtomicU64,
    tiers: TierCounters,
    /// Armed fault triggers from the context's [`crate::FaultPlan`]
    /// (shared by every queue of the device).
    fault_triggers: Mutex<Vec<FaultSpec>>,
    /// Set once a [`FaultKind::DeviceLost`] trigger fires (or
    /// [`Device::mark_lost`] is called): the device refuses all further
    /// commands and allocations.
    lost: AtomicBool,
    /// Commands that reached execution on this device, in queue order —
    /// the op counter [`crate::FaultTrigger::AtOpCount`] fires against.
    fault_ops: AtomicUsize,
    /// Fault triggers that have fired on this device (primary injections
    /// only; follow-on failures of a lost device are not counted).
    faults_fired: AtomicUsize,
}

impl Device {
    /// Create a device with the given index and profile.
    pub fn new(id: DeviceId, profile: DeviceProfile) -> Self {
        Device {
            id,
            profile,
            storage: Mutex::new(HashMap::new()),
            pool: Mutex::new(BufferPool::default()),
            pool_hits: AtomicUsize::new(0),
            pool_evictions: AtomicUsize::new(0),
            pool_evicted_bytes: AtomicUsize::new(0),
            zero_elisions: AtomicUsize::new(0),
            allocated: AtomicUsize::new(0),
            next_buffer_id: AtomicU64::new(1),
            tiers: TierCounters::default(),
            fault_triggers: Mutex::new(Vec::new()),
            lost: AtomicBool::new(false),
            fault_ops: AtomicUsize::new(0),
            faults_fired: AtomicUsize::new(0),
        }
    }

    /// Arm a fault trigger on this device (normally via
    /// [`crate::Context::inject_faults`]).
    pub fn arm_fault(&self, spec: FaultSpec) {
        self.fault_triggers.lock().push(spec);
    }

    /// Administratively kill the device right now: every later command and
    /// allocation fails with [`OclError::DeviceLost`]. Counted as one
    /// injected fault.
    pub fn mark_lost(&self) {
        if !self.lost.swap(true, Ordering::SeqCst) {
            self.faults_fired.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Has the device been lost (by a fired [`FaultKind::DeviceLost`]
    /// trigger or [`Device::mark_lost`])?
    pub fn is_lost(&self) -> bool {
        self.lost.load(Ordering::SeqCst)
    }

    /// Fault triggers that have fired on this device so far (primary
    /// injections only — the cascade of failures a lost device produces
    /// afterwards is not counted).
    pub fn faults_injected(&self) -> usize {
        self.faults_fired.load(Ordering::Relaxed)
    }

    /// Check a command that is about to execute against the device's armed
    /// fault triggers. Called by the queue worker with the command's
    /// prospective virtual `start` (deterministic: only the worker advances
    /// the queue clock) *before* any side effect is applied, so a replayed
    /// command never executes twice. Bumps the per-device op counter,
    /// fires every due trigger whose kind matches `class`, and returns the
    /// injected error if one fired (or the device is already lost).
    /// Charges no virtual time when nothing fires.
    pub(crate) fn fault_check(&self, start: SimTime, class: CommandClass) -> Result<()> {
        let op = self.fault_ops.fetch_add(1, Ordering::SeqCst) + 1;
        let mut fired_lost = false;
        let mut fired_transient = false;
        {
            let mut armed = self.fault_triggers.lock();
            if !armed.is_empty() {
                armed.retain(|spec| {
                    let due = match spec.trigger {
                        FaultTrigger::AtOpCount(n) => op >= n,
                        FaultTrigger::AtVirtualTime(t) => start >= t,
                    };
                    if due && spec.kind.matches(class) {
                        match spec.kind {
                            FaultKind::DeviceLost => fired_lost = true,
                            _ => fired_transient = true,
                        }
                        false
                    } else {
                        true
                    }
                });
            }
        }
        if fired_lost {
            self.faults_fired.fetch_add(1, Ordering::Relaxed);
            self.lost.store(true, Ordering::SeqCst);
        }
        if self.is_lost() {
            return Err(OclError::DeviceLost { device: self.id });
        }
        if fired_transient {
            self.faults_fired.fetch_add(1, Ordering::Relaxed);
            return Err(OclError::TransientFault {
                device: self.id,
                class,
            });
        }
        Ok(())
    }

    /// Record which execution tier handled one DSL kernel launch (called by
    /// the queue worker with the launch's [`skelcl_kernel::LaunchTrace`]).
    pub(crate) fn note_kernel_tier(&self, trace: &skelcl_kernel::LaunchTrace) {
        use skelcl_kernel::Tier;
        let counter = match trace.tier {
            Tier::Interp => &self.tiers.interp,
            Tier::Scalar => &self.tiers.scalar,
            Tier::Batched => &self.tiers.batched,
            // The trace's tier is always resolved before execution.
            Tier::Native | Tier::Auto => &self.tiers.native,
        };
        counter.fetch_add(1, Ordering::Relaxed);
        if trace.native_compiled {
            self.tiers.compiles.fetch_add(1, Ordering::Relaxed);
            self.tiers
                .compile_ns
                .fetch_add(trace.native_compile_ns, Ordering::Relaxed);
        }
    }

    /// Snapshot this device's kernel-tier launch counters.
    pub fn kernel_tiers(&self) -> TierSnapshot {
        TierSnapshot {
            interp_launches: self.tiers.interp.load(Ordering::Relaxed),
            scalar_launches: self.tiers.scalar.load(Ordering::Relaxed),
            batched_launches: self.tiers.batched.load(Ordering::Relaxed),
            native_launches: self.tiers.native.load(Ordering::Relaxed),
            native_compiles: self.tiers.compiles.load(Ordering::Relaxed),
            native_compile_ns: self.tiers.compile_ns.load(Ordering::Relaxed),
        }
    }

    /// Device kind (GPU / CPU / accelerator).
    pub fn device_type(&self) -> DeviceType {
        self.profile.device_type
    }

    /// Human-readable name.
    pub fn name(&self) -> &str {
        &self.profile.name
    }

    /// Bytes of device memory currently allocated.
    pub fn allocated_bytes(&self) -> usize {
        self.allocated.load(Ordering::Relaxed)
    }

    /// Bytes of device memory still available.
    pub fn available_bytes(&self) -> usize {
        self.profile
            .memory_bytes
            .saturating_sub(self.allocated_bytes())
    }

    /// Number of live buffer allocations.
    pub fn live_buffers(&self) -> usize {
        self.storage.lock().len()
    }

    /// Allocate a buffer of `len` elements of type `T` on this device.
    ///
    /// Same-size allocations released earlier are served from the device's
    /// buffer pool: the parked storage is zeroed and revived (under a fresh
    /// id), so steady-state launch loops never touch the allocator.
    pub fn create_buffer<T: Pod>(&self, len: usize) -> Result<Buffer> {
        if self.is_lost() {
            return Err(OclError::DeviceLost { device: self.id });
        }
        let len_bytes = len * std::mem::size_of::<T>();
        let available = self.available_bytes();
        if len_bytes > available {
            return Err(OclError::OutOfDeviceMemory {
                requested: len_bytes,
                available,
            });
        }
        let recycled = {
            let mut pool = self.pool.lock();
            // Pop the most recently parked entry (LIFO keeps the storage
            // warm); eviction takes from the front, i.e. the oldest park.
            let data = pool
                .buckets
                .get_mut(&len_bytes)
                .and_then(Vec::pop)
                .map(|e| e.data);
            if data.is_some() {
                pool.total_bytes -= len_bytes;
            }
            data
        };
        let data = match recycled {
            Some(mut data) => {
                // Fresh-allocation semantics are established lazily: the
                // first command decides how much (if any) zeroing is needed.
                data.pending_zero = true;
                self.pool_hits.fetch_add(1, Ordering::Relaxed);
                data
            }
            None => BufferData::new(len_bytes),
        };
        let id = self.next_buffer_id.fetch_add(1, Ordering::Relaxed);
        self.storage.lock().insert(id, data);
        self.allocated.fetch_add(len_bytes, Ordering::Relaxed);
        Ok(Buffer::new::<T>(id, self.id, len))
    }

    /// Release a buffer allocation. Releasing an already-released buffer is
    /// an error. The storage is parked in the device's size-bucketed pool
    /// (bounded per bucket and in total bytes) for reuse by a later
    /// same-size allocation.
    pub fn release_buffer(&self, buffer: &Buffer) -> Result<()> {
        let removed = self.storage.lock().remove(&buffer.id());
        match removed {
            Some(data) => {
                let len_bytes = data.len_bytes();
                self.allocated.fetch_sub(len_bytes, Ordering::Relaxed);
                let mut pool = self.pool.lock();
                // An allocation larger than the whole pool budget can never
                // be parked; drop it without churning the resident entries.
                if len_bytes <= pool.cap_bytes {
                    let seq = pool.next_seq;
                    pool.next_seq += 1;
                    let bucket = pool.buckets.entry(len_bytes).or_default();
                    if bucket.len() < POOL_BUCKET_CAP {
                        bucket.push(PooledEntry { seq, data });
                        pool.total_bytes += len_bytes;
                        // Newly parked storage may push the pool over its
                        // high-water cap: evict the oldest parks to fit.
                        let (evicted, bytes) = pool.trim_to_cap();
                        self.note_pool_evictions(evicted, bytes);
                    }
                }
                Ok(())
            }
            None => Err(OclError::BufferNotFound { id: buffer.id() }),
        }
    }

    fn note_pool_evictions(&self, evicted: usize, bytes: usize) {
        if evicted > 0 {
            self.pool_evictions.fetch_add(evicted, Ordering::Relaxed);
            self.pool_evicted_bytes.fetch_add(bytes, Ordering::Relaxed);
        }
    }

    /// Set the pool's high-water byte cap and trim immediately: while the
    /// parked total exceeds the cap, the least-recently-parked entries are
    /// dropped (and counted as evictions). Long-running servers use this to
    /// bound pooled memory; the default is 256 MiB.
    pub fn set_pool_cap_bytes(&self, cap_bytes: usize) {
        let mut pool = self.pool.lock();
        pool.cap_bytes = cap_bytes;
        let (evicted, bytes) = pool.trim_to_cap();
        drop(pool);
        self.note_pool_evictions(evicted, bytes);
    }

    /// The pool's current high-water byte cap.
    pub fn pool_cap_bytes(&self) -> usize {
        self.pool.lock().cap_bytes
    }

    /// Parked entries dropped so far by the pool's high-water LRU trim.
    pub fn pool_evictions(&self) -> usize {
        self.pool_evictions.load(Ordering::Relaxed)
    }

    /// Bytes of parked storage dropped so far by the pool's LRU trim.
    pub fn pool_evicted_bytes(&self) -> usize {
        self.pool_evicted_bytes.load(Ordering::Relaxed)
    }

    /// Number of released allocations currently parked in the buffer pool.
    pub fn pooled_buffers(&self) -> usize {
        self.pool.lock().buckets.values().map(Vec::len).sum()
    }

    /// Bytes of storage currently parked in the buffer pool.
    pub fn pooled_bytes(&self) -> usize {
        self.pool.lock().total_bytes
    }

    /// How many allocations have been served from the pool so far.
    pub fn pool_hit_count(&self) -> usize {
        self.pool_hits.load(Ordering::Relaxed)
    }

    /// How many pool revivals skipped the re-zeroing memset entirely because
    /// their first command fully overwrote the buffer.
    pub fn lazy_zero_elisions(&self) -> usize {
        self.zero_elisions.load(Ordering::Relaxed)
    }

    /// Drop every parked allocation (frees the host memory backing them).
    pub fn trim_pool(&self) {
        let mut pool = self.pool.lock();
        pool.buckets.clear();
        pool.total_bytes = 0;
    }

    /// Copy host data into a device buffer.
    pub fn write_buffer_bytes(
        &self,
        buffer: &Buffer,
        offset_bytes: usize,
        data: &[u8],
    ) -> Result<()> {
        let mut storage = self.storage.lock();
        let dst = storage
            .get_mut(&buffer.id())
            .ok_or(OclError::BufferNotFound { id: buffer.id() })?;
        let end = offset_bytes + data.len();
        if end > dst.len_bytes() {
            return Err(OclError::SizeMismatch {
                host_bytes: data.len(),
                device_bytes: dst.len_bytes().saturating_sub(offset_bytes),
            });
        }
        if dst.pending_zero && dst.settle_zero_around(offset_bytes, end) {
            self.zero_elisions.fetch_add(1, Ordering::Relaxed);
        }
        dst.as_bytes_mut()[offset_bytes..end].copy_from_slice(data);
        Ok(())
    }

    /// Copy a device buffer range back to the host.
    pub fn read_buffer_bytes(
        &self,
        buffer: &Buffer,
        offset_bytes: usize,
        out: &mut [u8],
    ) -> Result<()> {
        let mut storage = self.storage.lock();
        let src = storage
            .get_mut(&buffer.id())
            .ok_or(OclError::BufferNotFound { id: buffer.id() })?;
        src.settle_zero();
        let end = offset_bytes + out.len();
        if end > src.len_bytes() {
            return Err(OclError::SizeMismatch {
                host_bytes: out.len(),
                device_bytes: src.len_bytes().saturating_sub(offset_bytes),
            });
        }
        out.copy_from_slice(&src.as_bytes()[offset_bytes..end]);
        Ok(())
    }

    /// Temporarily take the storage of the given buffers out of the device so
    /// a kernel launch can access them mutably without aliasing. The same
    /// buffer may not appear twice.
    pub(crate) fn take_buffers(&self, ids: &[u64]) -> Result<Vec<(u64, BufferData)>> {
        let mut storage = self.storage.lock();
        let mut taken = Vec::with_capacity(ids.len());
        for &id in ids {
            match storage.remove(&id) {
                Some(mut data) => {
                    // A kernel may read any part of the buffer.
                    data.settle_zero();
                    taken.push((id, data));
                }
                None => {
                    // Either the buffer never existed, was released, or is
                    // bound twice in this launch. Distinguish aliasing for a
                    // clearer error message.
                    let aliased = taken.iter().any(|(t, _)| *t == id);
                    // Put back whatever we already removed before erroring.
                    for (tid, data) in taken {
                        storage.insert(tid, data);
                    }
                    return Err(if aliased {
                        OclError::BufferAliased { id }
                    } else {
                        OclError::BufferNotFound { id }
                    });
                }
            }
        }
        Ok(taken)
    }

    /// Return storage previously taken with [`Device::take_buffers`].
    pub(crate) fn return_buffers(&self, taken: Vec<(u64, BufferData)>) {
        let mut storage = self.storage.lock();
        for (id, data) in taken {
            storage.insert(id, data);
        }
    }

    /// Look up the byte length of a live buffer.
    pub fn buffer_len_bytes(&self, buffer: &Buffer) -> Result<usize> {
        self.storage
            .lock()
            .get(&buffer.id())
            .map(BufferData::len_bytes)
            .ok_or(OclError::BufferNotFound { id: buffer.id() })
    }
}

/// Helper: the [`DataKind`] for a `Pod` type, used to validate DSL kernel
/// argument bindings.
pub fn data_kind_of<T: Pod>() -> DataKind {
    use std::any::TypeId;
    let t = TypeId::of::<T>();
    if t == TypeId::of::<f32>() {
        DataKind::F32
    } else if t == TypeId::of::<f64>() {
        DataKind::F64
    } else if t == TypeId::of::<i32>() {
        DataKind::I32
    } else if t == TypeId::of::<u32>() {
        DataKind::U32
    } else {
        DataKind::Opaque {
            elem_size: std::mem::size_of::<T>(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn device() -> Device {
        Device::new(0, DeviceProfile::tesla_c1060())
    }

    #[test]
    fn allocate_write_read_release() {
        let dev = device();
        let buf = dev.create_buffer::<f32>(8).unwrap();
        assert_eq!(dev.allocated_bytes(), 32);
        assert_eq!(dev.live_buffers(), 1);

        let data = [1.0f32, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0];
        dev.write_buffer_bytes(&buf, 0, pod::as_bytes(&data))
            .unwrap();
        let mut out = vec![0u8; 32];
        dev.read_buffer_bytes(&buf, 0, &mut out).unwrap();
        let back: Vec<f32> = pod::from_bytes_vec(&out);
        assert_eq!(back, data);

        dev.release_buffer(&buf).unwrap();
        assert_eq!(dev.allocated_bytes(), 0);
        assert!(dev.release_buffer(&buf).is_err());
    }

    #[test]
    fn partial_writes_with_offsets() {
        let dev = device();
        let buf = dev.create_buffer::<f32>(4).unwrap();
        let part = [9.0f32, 10.0];
        dev.write_buffer_bytes(&buf, 8, pod::as_bytes(&part))
            .unwrap();
        let mut out = vec![0u8; 16];
        dev.read_buffer_bytes(&buf, 0, &mut out).unwrap();
        let back: Vec<f32> = pod::from_bytes_vec(&out);
        assert_eq!(back, vec![0.0, 0.0, 9.0, 10.0]);
    }

    #[test]
    fn out_of_range_transfers_are_rejected() {
        let dev = device();
        let buf = dev.create_buffer::<f32>(2).unwrap();
        let too_big = [0.0f32; 4];
        assert!(matches!(
            dev.write_buffer_bytes(&buf, 0, pod::as_bytes(&too_big)),
            Err(OclError::SizeMismatch { .. })
        ));
        let mut out = vec![0u8; 12];
        assert!(dev.read_buffer_bytes(&buf, 0, &mut out).is_err());
    }

    #[test]
    fn allocation_respects_capacity() {
        let mut profile = DeviceProfile::tesla_c1060();
        profile.memory_bytes = 64;
        let dev = Device::new(0, profile);
        assert!(dev.create_buffer::<f32>(8).is_ok());
        assert!(matches!(
            dev.create_buffer::<f32>(16),
            Err(OclError::OutOfDeviceMemory { .. })
        ));
    }

    #[test]
    fn take_buffers_detects_aliasing_and_restores_on_error() {
        let dev = device();
        let a = dev.create_buffer::<f32>(4).unwrap();
        let b = dev.create_buffer::<f32>(4).unwrap();
        let err = dev.take_buffers(&[a.id(), b.id(), a.id()]).unwrap_err();
        assert!(matches!(err, OclError::BufferAliased { .. }));
        // Both buffers must still be live.
        assert_eq!(dev.live_buffers(), 2);

        let taken = dev.take_buffers(&[a.id(), b.id()]).unwrap();
        assert_eq!(dev.live_buffers(), 0);
        dev.return_buffers(taken);
        assert_eq!(dev.live_buffers(), 2);
    }

    #[test]
    fn released_buffers_are_pooled_and_reused() {
        let dev = device();
        let a = dev.create_buffer::<f32>(16).unwrap();
        dev.write_buffer_bytes(&a, 0, &[0xAB; 64]).unwrap();
        dev.release_buffer(&a).unwrap();
        assert_eq!(dev.pooled_buffers(), 1);
        assert_eq!(dev.pooled_bytes(), 64);
        assert_eq!(dev.allocated_bytes(), 0);

        // Same-size allocation revives the parked storage (fresh id),
        // zeroed like a fresh allocation.
        let b = dev.create_buffer::<i32>(16).unwrap();
        assert_eq!(dev.pool_hit_count(), 1);
        assert_eq!(dev.pooled_buffers(), 0);
        let mut out = vec![0xFFu8; 64];
        dev.read_buffer_bytes(&b, 0, &mut out).unwrap();
        assert!(out.iter().all(|&x| x == 0), "reused storage must be zeroed");

        // A different size is a genuine new allocation, not a pool hit.
        dev.release_buffer(&b).unwrap();
        let _c = dev.create_buffer::<f32>(8).unwrap();
        assert_eq!(dev.pool_hit_count(), 1);
    }

    #[test]
    fn full_overwrite_of_a_revived_buffer_elides_the_rezeroing() {
        let dev = device();
        let a = dev.create_buffer::<f32>(16).unwrap();
        dev.write_buffer_bytes(&a, 0, &[0xAB; 64]).unwrap();
        dev.release_buffer(&a).unwrap();
        let b = dev.create_buffer::<f32>(16).unwrap();
        assert_eq!(dev.pool_hit_count(), 1);
        assert_eq!(dev.lazy_zero_elisions(), 0);
        // First command covers the whole buffer: no memset happens at all.
        dev.write_buffer_bytes(&b, 0, &[0xCD; 64]).unwrap();
        assert_eq!(dev.lazy_zero_elisions(), 1);
        let mut out = vec![0u8; 64];
        dev.read_buffer_bytes(&b, 0, &mut out).unwrap();
        assert!(out.iter().all(|&x| x == 0xCD));
    }

    #[test]
    fn partial_write_to_a_revived_buffer_zeroes_only_the_uncovered_range() {
        let dev = device();
        let a = dev.create_buffer::<f32>(16).unwrap();
        dev.write_buffer_bytes(&a, 0, &[0xAB; 64]).unwrap();
        dev.release_buffer(&a).unwrap();
        let b = dev.create_buffer::<f32>(16).unwrap();
        // First command covers bytes 8..24 only: everything else must read
        // as zero (fresh-allocation semantics), nothing may leak from `a`.
        dev.write_buffer_bytes(&b, 8, &[0xEE; 16]).unwrap();
        assert_eq!(dev.lazy_zero_elisions(), 0, "partial writes settle");
        let mut out = vec![0xFFu8; 64];
        dev.read_buffer_bytes(&b, 0, &mut out).unwrap();
        assert!(out[..8].iter().all(|&x| x == 0));
        assert!(out[8..24].iter().all(|&x| x == 0xEE));
        assert!(out[24..].iter().all(|&x| x == 0));
    }

    #[test]
    fn double_release_of_a_stale_handle_cannot_destroy_a_live_buffer() {
        let dev = device();
        let a = dev.create_buffer::<f32>(16).unwrap();
        dev.release_buffer(&a).unwrap();
        // `b` revives a's storage; a second (erroneous) release of the
        // stale handle must fail, not free b.
        let b = dev.create_buffer::<f32>(16).unwrap();
        assert_ne!(b.id(), a.id(), "revived storage must get a fresh id");
        assert!(matches!(
            dev.release_buffer(&a),
            Err(OclError::BufferNotFound { .. })
        ));
        let mut out = vec![0u8; 64];
        dev.read_buffer_bytes(&b, 0, &mut out).unwrap();
    }

    #[test]
    fn pool_total_bytes_are_bounded() {
        let dev = device();
        // One allocation larger than the whole pool budget: released storage
        // must be dropped, not parked.
        let big = dev.create_buffer::<f32>(POOL_MAX_BYTES / 4 + 1024).unwrap();
        dev.release_buffer(&big).unwrap();
        assert_eq!(dev.pooled_buffers(), 0, "oversized releases are dropped");
        assert_eq!(dev.pool_evictions(), 0, "oversized drops are not trims");
    }

    #[test]
    fn pool_cap_evicts_least_recently_parked_first() {
        let dev = device();
        // Cap the pool below four parks' worth, then park four releases of
        // two different sizes in a known order.
        dev.set_pool_cap_bytes(160);
        let sizes = [16usize, 16, 8, 8]; // f32 elements: 64, 64, 32, 32 bytes
        let buffers: Vec<_> = sizes
            .iter()
            .map(|&n| dev.create_buffer::<f32>(n).unwrap())
            .collect();
        for b in &buffers {
            dev.release_buffer(b).unwrap();
        }
        // Parks: 64, 64, 32, 32 -> the last park overflows the 160-byte cap
        // (total 192): the OLDEST park (the first 64-byte entry) is evicted,
        // not the newest.
        assert_eq!(dev.pool_evictions(), 1);
        assert_eq!(dev.pool_evicted_bytes(), 64);
        assert_eq!(dev.pooled_bytes(), 128);
        assert_eq!(dev.pooled_buffers(), 3);
        // Reviving a 64-byte buffer still hits the pool: the younger
        // 64-byte park survived the trim.
        let _r = dev.create_buffer::<f32>(16).unwrap();
        assert_eq!(dev.pool_hit_count(), 1);
    }

    #[test]
    fn shrinking_the_pool_cap_trims_immediately() {
        let dev = device();
        let buffers: Vec<_> = (0..3)
            .map(|_| dev.create_buffer::<f32>(256).unwrap())
            .collect();
        for b in &buffers {
            dev.release_buffer(b).unwrap();
        }
        assert_eq!(dev.pooled_bytes(), 3072);
        dev.set_pool_cap_bytes(1024);
        assert_eq!(dev.pool_evictions(), 2);
        assert_eq!(dev.pool_evicted_bytes(), 2048);
        assert_eq!(dev.pooled_bytes(), 1024);
        assert_eq!(dev.pool_cap_bytes(), 1024);
    }

    #[test]
    fn pool_buckets_are_capped_and_trimmable() {
        let dev = device();
        let buffers: Vec<_> = (0..POOL_BUCKET_CAP + 3)
            .map(|_| dev.create_buffer::<f32>(4).unwrap())
            .collect();
        for b in &buffers {
            dev.release_buffer(b).unwrap();
        }
        assert_eq!(dev.pooled_buffers(), POOL_BUCKET_CAP);
        dev.trim_pool();
        assert_eq!(dev.pooled_buffers(), 0);
        assert_eq!(dev.pooled_bytes(), 0);
    }

    #[test]
    fn buffer_data_typed_views() {
        let mut data = BufferData::new(16);
        data.as_slice_mut::<f32>()[2] = 5.0;
        assert_eq!(data.as_slice::<f32>()[2], 5.0);
        assert_eq!(data.as_slice::<f32>().len(), 4);
        assert_eq!(data.len_bytes(), 16);
    }

    #[test]
    fn data_kind_mapping() {
        assert_eq!(data_kind_of::<f32>(), DataKind::F32);
        assert_eq!(data_kind_of::<i32>(), DataKind::I32);
        assert_eq!(data_kind_of::<u32>(), DataKind::U32);
        assert_eq!(data_kind_of::<f64>(), DataKind::F64);
        assert_eq!(
            data_kind_of::<[f32; 4]>(),
            DataKind::Opaque { elem_size: 16 }
        );
    }
}
