//! Programs and kernels: runtime-compiled DSL kernels and native Rust
//! kernels, plus the argument model shared by both.

use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

use skelcl_kernel::interp::{ArgBinding, BufferView};
use skelcl_kernel::KernelHandle;

use crate::buffer::{Buffer, DataKind};
use crate::device::BufferData;
use crate::error::{OclError, Result};
use crate::pod::Pod;
use crate::Value;

/// Per-work-item cost hint used by the virtual-time model for kernels whose
/// cost cannot be derived statically (native Rust kernels).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostHint {
    /// Floating-point operations per work-item.
    pub flops_per_item: f64,
    /// Bytes of global memory traffic per work-item.
    pub bytes_per_item: f64,
}

impl CostHint {
    /// A neutral hint: one flop and eight bytes per item.
    pub const DEFAULT: CostHint = CostHint {
        flops_per_item: 1.0,
        bytes_per_item: 8.0,
    };

    /// Construct a hint.
    pub fn new(flops_per_item: f64, bytes_per_item: f64) -> Self {
        CostHint {
            flops_per_item,
            bytes_per_item,
        }
    }
}

/// One kernel argument as passed at enqueue time.
#[derive(Debug, Clone, PartialEq)]
pub enum KernelArg {
    /// A device buffer.
    Buffer(Buffer),
    /// A scalar value.
    Scalar(Value),
}

impl KernelArg {
    /// Convenience constructor for a float scalar.
    pub fn f32(v: f32) -> Self {
        KernelArg::Scalar(Value::Float(v))
    }

    /// Convenience constructor for an int scalar.
    pub fn i32(v: i32) -> Self {
        KernelArg::Scalar(Value::Int(v))
    }

    /// Convenience constructor for a uint scalar.
    pub fn u32(v: u32) -> Self {
        KernelArg::Scalar(Value::Uint(v))
    }
}

/// Execution context handed to a native Rust kernel. The kernel is invoked
/// once per launch and is expected to loop over `0..global_size()` itself.
pub struct NativeCtx<'a> {
    global_size: usize,
    slots: Vec<NativeSlot<'a>>,
}

enum NativeSlot<'a> {
    Buffer(&'a mut BufferData),
    Scalar(Value),
}

impl<'a> NativeCtx<'a> {
    /// Number of work-items of this launch.
    pub fn global_size(&self) -> usize {
        self.global_size
    }

    /// Number of bound arguments.
    pub fn arg_count(&self) -> usize {
        self.slots.len()
    }

    fn slot(&self, index: usize) -> std::result::Result<&NativeSlot<'a>, String> {
        self.slots
            .get(index)
            .ok_or_else(|| format!("kernel argument index {index} out of range"))
    }

    /// The scalar bound at `index`.
    pub fn scalar(&self, index: usize) -> std::result::Result<Value, String> {
        match self.slot(index)? {
            NativeSlot::Scalar(v) => Ok(*v),
            NativeSlot::Buffer(_) => Err(format!("argument {index} is a buffer, not a scalar")),
        }
    }

    /// The scalar bound at `index`, as `f32`.
    pub fn scalar_f32(&self, index: usize) -> std::result::Result<f32, String> {
        Ok(self.scalar(index)?.as_f64() as f32)
    }

    /// The scalar bound at `index`, as `usize` (negative values are an error).
    pub fn scalar_usize(&self, index: usize) -> std::result::Result<usize, String> {
        let v = self.scalar(index)?.as_i64();
        usize::try_from(v).map_err(|_| format!("argument {index} is negative ({v})"))
    }

    /// Immutable typed view of the buffer bound at `index`.
    pub fn slice<T: Pod>(&self, index: usize) -> std::result::Result<&[T], String> {
        match self.slot(index)? {
            NativeSlot::Buffer(data) => Ok(data.as_slice::<T>()),
            NativeSlot::Scalar(_) => Err(format!("argument {index} is a scalar, not a buffer")),
        }
    }

    /// Mutable typed view of the buffer bound at `index`.
    pub fn slice_mut<T: Pod>(&mut self, index: usize) -> std::result::Result<&mut [T], String> {
        match self
            .slots
            .get_mut(index)
            .ok_or_else(|| format!("kernel argument index {index} out of range"))?
        {
            NativeSlot::Buffer(data) => Ok(data.as_slice_mut::<T>()),
            NativeSlot::Scalar(_) => Err(format!("argument {index} is a scalar, not a buffer")),
        }
    }

    /// Decompose the context into one [`ArgView`] per argument, giving
    /// simultaneous (disjoint) mutable access to every buffer argument. This
    /// is how generic skeleton kernels built on top of the simulator split
    /// their input, output and additional-argument buffers.
    pub fn arg_views(&mut self) -> Vec<ArgView<'_>> {
        self.slots
            .iter_mut()
            .map(|slot| match slot {
                NativeSlot::Buffer(data) => ArgView::Buffer(data),
                NativeSlot::Scalar(v) => ArgView::Scalar(*v),
            })
            .collect()
    }

    /// Mutable typed views of two distinct buffer arguments at once (needed
    /// by kernels that read one buffer while writing another).
    pub fn two_slices_mut<A: Pod, B: Pod>(
        &mut self,
        a: usize,
        b: usize,
    ) -> std::result::Result<(&mut [A], &mut [B]), String> {
        if a == b {
            return Err("two_slices_mut requires distinct argument indices".to_string());
        }
        let (lo, hi, swapped) = if a < b { (a, b, false) } else { (b, a, true) };
        if hi >= self.slots.len() {
            return Err(format!("kernel argument index {hi} out of range"));
        }
        let (head, tail) = self.slots.split_at_mut(hi);
        let lo_slot = &mut head[lo];
        let hi_slot = &mut tail[0];
        match (lo_slot, hi_slot) {
            (NativeSlot::Buffer(x), NativeSlot::Buffer(y)) => {
                if swapped {
                    Ok((y.as_slice_mut::<A>(), x.as_slice_mut::<B>()))
                } else {
                    Ok((x.as_slice_mut::<A>(), y.as_slice_mut::<B>()))
                }
            }
            _ => Err("both arguments must be buffers".to_string()),
        }
    }
}

/// A view of one kernel argument, produced by [`NativeCtx::arg_views`].
pub enum ArgView<'a> {
    /// A scalar argument value.
    Scalar(Value),
    /// Mutable access to a buffer argument's storage.
    Buffer(&'a mut BufferData),
}

impl<'a> ArgView<'a> {
    /// The scalar value, if this argument is a scalar.
    pub fn scalar(&self) -> Option<Value> {
        match self {
            ArgView::Scalar(v) => Some(*v),
            ArgView::Buffer(_) => None,
        }
    }

    /// Immutable typed view, if this argument is a buffer.
    pub fn as_slice<T: Pod>(&self) -> Option<&[T]> {
        match self {
            ArgView::Buffer(data) => Some(data.as_slice::<T>()),
            ArgView::Scalar(_) => None,
        }
    }

    /// Mutable typed view, if this argument is a buffer.
    pub fn as_slice_mut<T: Pod>(&mut self) -> Option<&mut [T]> {
        match self {
            ArgView::Buffer(data) => Some(data.as_slice_mut::<T>()),
            ArgView::Scalar(_) => None,
        }
    }
}

/// Signature of a native Rust kernel body.
pub type NativeKernelFn =
    dyn Fn(&mut NativeCtx<'_>) -> std::result::Result<(), String> + Send + Sync;

/// A named native kernel with its cost hint.
#[derive(Clone)]
pub struct NativeKernelDef {
    /// Kernel name (used for lookup and in event logs).
    pub name: String,
    /// Per-work-item cost used by the virtual-time model.
    pub cost: CostHint,
    func: Arc<NativeKernelFn>,
}

impl NativeKernelDef {
    /// Define a native kernel.
    pub fn new<F>(name: &str, cost: CostHint, func: F) -> Self
    where
        F: Fn(&mut NativeCtx<'_>) -> std::result::Result<(), String> + Send + Sync + 'static,
    {
        NativeKernelDef {
            name: name.to_string(),
            cost,
            func: Arc::new(func),
        }
    }
}

impl fmt::Debug for NativeKernelDef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("NativeKernelDef")
            .field("name", &self.name)
            .field("cost", &self.cost)
            .finish()
    }
}

#[derive(Debug, Clone)]
enum ProgramInner {
    Dsl(skelcl_kernel::Program),
    Native(HashMap<String, NativeKernelDef>),
}

/// A program: either a runtime-compiled kernel-language translation unit
/// (the SkelCL path — user-defined functions merged into skeleton source) or
/// a collection of native Rust kernels (used for large application kernels
/// such as the OSEM path tracer).
#[derive(Debug, Clone)]
pub struct Program {
    inner: ProgramInner,
}

impl Program {
    /// Build a program from kernel-language source.
    pub fn from_source(source: &str) -> Result<Program> {
        let p = skelcl_kernel::Program::build(source)?;
        Ok(Program {
            inner: ProgramInner::Dsl(p),
        })
    }

    /// Build a program from native kernel definitions.
    pub fn from_native(defs: impl IntoIterator<Item = NativeKernelDef>) -> Program {
        Program {
            inner: ProgramInner::Native(defs.into_iter().map(|d| (d.name.clone(), d)).collect()),
        }
    }

    /// Whether this program was compiled from kernel-language source at
    /// runtime (true) or registered as native code (false). Runtime-compiled
    /// programs pay the build-time cost, like OpenCL and unlike CUDA.
    pub fn is_runtime_compiled(&self) -> bool {
        matches!(self.inner, ProgramInner::Dsl(_))
    }

    /// Names of the kernels in the program.
    pub fn kernel_names(&self) -> Vec<String> {
        match &self.inner {
            ProgramInner::Dsl(p) => p.kernel_names(),
            ProgramInner::Native(map) => map.keys().cloned().collect(),
        }
    }

    /// Pin the kernel-language execution tier for every kernel in this
    /// program (see [`skelcl_kernel::Tier`]). A no-op for native-Rust
    /// programs, which never go through the kernel-language engines. Clones
    /// of a DSL program share tier state, so setting the tier on a cached
    /// program also affects kernels already handed out from it.
    pub fn set_kernel_tier(&self, tier: skelcl_kernel::Tier) {
        if let ProgramInner::Dsl(p) = &self.inner {
            p.set_tier(tier);
        }
    }

    /// Look up a kernel by name.
    pub fn kernel(&self, name: &str) -> Result<Kernel> {
        match &self.inner {
            ProgramInner::Dsl(p) => {
                let handle = p.kernel(name)?;
                let est = p.cost_estimate(&handle);
                Ok(Kernel {
                    name: name.to_string(),
                    cost: CostHint::new(est.flops + est.ops * 0.25, est.global_bytes),
                    inner: KernelInner::Dsl {
                        program: p.clone(),
                        handle,
                    },
                })
            }
            ProgramInner::Native(map) => map
                .get(name)
                .map(|def| Kernel {
                    name: name.to_string(),
                    cost: def.cost,
                    inner: KernelInner::Native(def.clone()),
                })
                .ok_or_else(|| OclError::NoSuchKernel(name.to_string())),
        }
    }
}

#[derive(Debug, Clone)]
enum KernelInner {
    Dsl {
        program: skelcl_kernel::Program,
        handle: KernelHandle,
    },
    Native(NativeKernelDef),
}

/// An executable kernel handle.
#[derive(Debug, Clone)]
pub struct Kernel {
    /// Kernel name.
    pub name: String,
    cost: CostHint,
    inner: KernelInner,
}

impl Kernel {
    /// Per-work-item cost (estimated statically for DSL kernels, provided by
    /// the author for native kernels).
    pub fn cost(&self) -> CostHint {
        self.cost
    }

    /// Override the cost hint (useful when the static estimate is known to be
    /// off, e.g. data-dependent loop bounds).
    pub fn with_cost(mut self, cost: CostHint) -> Self {
        self.cost = cost;
        self
    }

    /// Validate an argument list against the kernel's signature without
    /// executing anything — the synchronous half of an asynchronous enqueue.
    /// Replicates the bytecode VM's binding checks (same errors), so an
    /// ill-typed launch still fails at `enqueue_kernel` even though the
    /// launch itself now runs on the device's worker thread. Native kernels
    /// carry no signature and validate nothing here (their closure reports
    /// argument problems at execution).
    pub fn validate_args(&self, args: &[KernelArg]) -> Result<()> {
        use skelcl_kernel::diag::KernelError;
        let KernelInner::Dsl { handle, .. } = &self.inner else {
            return Ok(());
        };
        if args.len() != handle.params.len() {
            return Err(KernelError::run(format!(
                "kernel `{}` expects {} arguments, {} bound",
                self.name,
                handle.params.len(),
                args.len()
            ))
            .into());
        }
        for (i, (param, arg)) in handle.params.iter().zip(args.iter()).enumerate() {
            match (param.is_buffer, arg) {
                (true, KernelArg::Buffer(buf)) => {
                    let got = match buf.kind() {
                        DataKind::F32 => skelcl_kernel::types::ScalarType::Float,
                        DataKind::F64 => skelcl_kernel::types::ScalarType::Double,
                        DataKind::I32 => skelcl_kernel::types::ScalarType::Int,
                        DataKind::U32 => skelcl_kernel::types::ScalarType::Uint,
                        DataKind::Opaque { .. } => {
                            return Err(OclError::InvalidKernelArg(format!(
                                "buffer argument {i} has an opaque element type; \
                                 kernel-language kernels only accept float/double/int/uint buffers"
                            )))
                        }
                    };
                    if param.ty != got {
                        return Err(KernelError::run(format!(
                            "argument `{}` of kernel `{}`: expected __global {}*, bound {got} buffer",
                            param.name, self.name, param.ty
                        ))
                        .into());
                    }
                }
                (true, KernelArg::Scalar(_)) => {
                    return Err(KernelError::run(format!(
                        "argument `{}` of kernel `{}` is a buffer but a scalar was bound",
                        param.name, self.name
                    ))
                    .into());
                }
                (false, KernelArg::Buffer(_)) => {
                    return Err(KernelError::run(format!(
                        "argument `{}` of kernel `{}` is a scalar but a buffer was bound",
                        param.name, self.name
                    ))
                    .into());
                }
                (false, KernelArg::Scalar(_)) => {}
            }
        }
        Ok(())
    }

    /// Execute the kernel against the taken buffer storage. `taken` must
    /// contain exactly the buffers referenced by `args` (enforced by the
    /// queue, which took them from the device).
    ///
    /// Returns the *measured* per-work-item cost for runtime-compiled (DSL)
    /// kernels — the interpreter counts the floating-point operations and
    /// global-memory bytes it actually executed — plus the launch's
    /// execution-tier trace, or `(None, None)` for native kernels, whose
    /// author-provided [`CostHint`] is used instead.
    pub(crate) fn execute(
        &self,
        global_size: usize,
        args: &[KernelArg],
        taken: &mut [(u64, BufferData)],
    ) -> Result<(Option<CostHint>, Option<skelcl_kernel::LaunchTrace>)> {
        // Map buffer id -> &mut BufferData, consumed as bindings are built so
        // each buffer is borrowed exactly once.
        let mut by_id: HashMap<u64, &mut BufferData> =
            taken.iter_mut().map(|(id, data)| (*id, data)).collect();

        match &self.inner {
            KernelInner::Dsl { program, handle } => {
                let mut bindings: Vec<ArgBinding<'_>> = Vec::with_capacity(args.len());
                for (i, arg) in args.iter().enumerate() {
                    match arg {
                        KernelArg::Scalar(v) => bindings.push(ArgBinding::Scalar(*v)),
                        KernelArg::Buffer(buf) => {
                            let data = by_id.remove(&buf.id()).ok_or_else(|| {
                                OclError::InvalidKernelArg(format!(
                                    "buffer argument {i} was not taken from the device"
                                ))
                            })?;
                            let view = match buf.kind() {
                                DataKind::F32 => BufferView::F32(data.as_slice_mut::<f32>()),
                                DataKind::F64 => BufferView::F64(data.as_slice_mut::<f64>()),
                                DataKind::I32 => BufferView::I32(data.as_slice_mut::<i32>()),
                                DataKind::U32 => BufferView::U32(data.as_slice_mut::<u32>()),
                                DataKind::Opaque { .. } => {
                                    return Err(OclError::InvalidKernelArg(format!(
                                        "buffer argument {i} has an opaque element type; \
                                         kernel-language kernels only accept float/double/int/uint buffers"
                                    )))
                                }
                            };
                            bindings.push(ArgBinding::Buffer(view));
                        }
                    }
                }
                let (stats, trace) =
                    program.run_ndrange_traced(handle, global_size, &mut bindings)?;
                let per_item = stats.per_item(global_size);
                Ok((
                    Some(CostHint::new(
                        per_item.flops + per_item.ops * 0.25,
                        per_item.global_bytes,
                    )),
                    Some(trace),
                ))
            }
            KernelInner::Native(def) => {
                let mut slots: Vec<NativeSlot<'_>> = Vec::with_capacity(args.len());
                for (i, arg) in args.iter().enumerate() {
                    match arg {
                        KernelArg::Scalar(v) => slots.push(NativeSlot::Scalar(*v)),
                        KernelArg::Buffer(buf) => {
                            let data = by_id.remove(&buf.id()).ok_or_else(|| {
                                OclError::InvalidKernelArg(format!(
                                    "buffer argument {i} was not taken from the device"
                                ))
                            })?;
                            slots.push(NativeSlot::Buffer(data));
                        }
                    }
                }
                let mut ctx = NativeCtx { global_size, slots };
                (def.func)(&mut ctx).map_err(OclError::InvalidKernelArg)?;
                Ok((None, None))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dsl_program_kernel_lookup_and_cost() {
        let p = Program::from_source(
            r#"
            __kernel void scale(__global float* v, int n, float a) {
                int i = get_global_id(0);
                if (i < n) { v[i] = v[i] * a; }
            }
        "#,
        )
        .unwrap();
        assert!(p.is_runtime_compiled());
        assert_eq!(p.kernel_names(), vec!["scale".to_string()]);
        let k = p.kernel("scale").unwrap();
        assert!(k.cost().flops_per_item > 0.0);
        assert!(p.kernel("missing").is_err());
    }

    #[test]
    fn native_program_kernel_lookup() {
        let def = NativeKernelDef::new("noop", CostHint::DEFAULT, |_ctx| Ok(()));
        let p = Program::from_native([def]);
        assert!(!p.is_runtime_compiled());
        let k = p.kernel("noop").unwrap();
        assert_eq!(k.cost(), CostHint::DEFAULT);
        assert!(p.kernel("other").is_err());
    }

    #[test]
    fn dsl_execution_against_taken_storage() {
        let p = Program::from_source(
            r#"
            __kernel void fill(__global float* v, int n) {
                int i = get_global_id(0);
                if (i < n) { v[i] = i * 2.0f; }
            }
        "#,
        )
        .unwrap();
        let k = p.kernel("fill").unwrap();
        let buf = Buffer::new::<f32>(1, 0, 4);
        let mut taken = vec![(1u64, BufferData::new(16))];
        k.execute(4, &[KernelArg::Buffer(buf), KernelArg::i32(4)], &mut taken)
            .unwrap();
        assert_eq!(taken[0].1.as_slice::<f32>(), &[0.0, 2.0, 4.0, 6.0]);
    }

    #[test]
    fn native_execution_with_two_buffers() {
        let def = NativeKernelDef::new("axpy", CostHint::new(2.0, 12.0), |ctx| {
            let n = ctx.global_size();
            let a = ctx.scalar_f32(2)?;
            let (xs, ys) = ctx.two_slices_mut::<f32, f32>(0, 1)?;
            for i in 0..n {
                ys[i] += a * xs[i];
            }
            Ok(())
        });
        let p = Program::from_native([def]);
        let k = p.kernel("axpy").unwrap();
        let x = Buffer::new::<f32>(1, 0, 3);
        let y = Buffer::new::<f32>(2, 0, 3);
        let mut taken = vec![(1u64, BufferData::new(12)), (2u64, BufferData::new(12))];
        taken[0]
            .1
            .as_slice_mut::<f32>()
            .copy_from_slice(&[1.0, 2.0, 3.0]);
        taken[1]
            .1
            .as_slice_mut::<f32>()
            .copy_from_slice(&[10.0, 20.0, 30.0]);
        k.execute(
            3,
            &[
                KernelArg::Buffer(x),
                KernelArg::Buffer(y),
                KernelArg::f32(2.0),
            ],
            &mut taken,
        )
        .unwrap();
        assert_eq!(taken[1].1.as_slice::<f32>(), &[12.0, 24.0, 36.0]);
    }

    #[test]
    fn native_ctx_accessors_report_errors() {
        let def = NativeKernelDef::new("bad", CostHint::DEFAULT, |ctx| {
            ctx.scalar(5).map(|_| ())?;
            Ok(())
        });
        let p = Program::from_native([def]);
        let k = p.kernel("bad").unwrap();
        let err = k.execute(1, &[], &mut []).unwrap_err();
        assert!(matches!(err, OclError::InvalidKernelArg(_)));
    }

    #[test]
    fn dsl_rejects_opaque_buffers() {
        let p = Program::from_source("__kernel void k(__global float* v, int n) { v[0] = n; }")
            .unwrap();
        let k = p.kernel("k").unwrap();
        let buf = Buffer::new::<[f32; 4]>(1, 0, 2);
        let mut taken = vec![(1u64, BufferData::new(32))];
        let err = k
            .execute(1, &[KernelArg::Buffer(buf), KernelArg::i32(1)], &mut taken)
            .unwrap_err();
        assert!(matches!(err, OclError::InvalidKernelArg(_)));
    }
}
