//! The context: the set of simulated devices, the API cost model and the
//! host's virtual clock.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::Mutex;

use crate::buffer::Buffer;
use crate::device::Device;
use crate::error::{OclError, Result};
use crate::ledger::ResourceLedger;
use crate::pod::Pod;
use crate::profile::{ApiModel, DeviceProfile, DeviceType};
use crate::program::{NativeKernelDef, Program};
use crate::queue::CommandQueue;
use crate::time::{SimDuration, SimTime};

/// A context owning one or more simulated devices, analogous to
/// `cl_context`.
pub struct Context {
    devices: Vec<Arc<Device>>,
    api: ApiModel,
    host_clock: Arc<Mutex<SimTime>>,
    program_cache: Mutex<HashMap<String, Program>>,
    kernel_tier: Mutex<Option<skelcl_kernel::Tier>>,
    ledger: ResourceLedger,
}

impl Context {
    /// Create a context from device profiles under the given API model.
    pub fn new(profiles: Vec<DeviceProfile>, api: ApiModel) -> Self {
        let devices = profiles
            .into_iter()
            .enumerate()
            .map(|(i, p)| Arc::new(Device::new(i, p)))
            .collect();
        Context {
            devices,
            api,
            host_clock: Arc::new(Mutex::new(SimTime::ZERO)),
            program_cache: Mutex::new(HashMap::new()),
            kernel_tier: Mutex::new(None),
            ledger: ResourceLedger::new(),
        }
    }

    /// Pin the kernel-language execution tier for every DSL program built
    /// through this context — already-cached programs (and kernels handed out
    /// from them, which share tier state) as well as future builds. This is
    /// the programmatic counterpart of the `SKELCL_KERNEL_TIER` environment
    /// variable and overrides it, since it is applied after `Program::build`
    /// reads the environment.
    pub fn set_kernel_tier(&self, tier: skelcl_kernel::Tier) {
        *self.kernel_tier.lock() = Some(tier);
        for program in self.program_cache.lock().values() {
            program.set_kernel_tier(tier);
        }
    }

    /// The tier pinned with [`Context::set_kernel_tier`], if any. `None`
    /// means programs keep whatever `Program::build` chose (the
    /// `SKELCL_KERNEL_TIER` environment variable, or automatic selection).
    pub fn kernel_tier(&self) -> Option<skelcl_kernel::Tier> {
        *self.kernel_tier.lock()
    }

    /// Convenience: a context of `n` Tesla-C1060-class GPUs (the paper's
    /// evaluation system has four) under the OpenCL API model.
    pub fn with_gpus(n: usize) -> Self {
        Context::new(vec![DeviceProfile::tesla_c1060(); n], ApiModel::opencl())
    }

    /// Convenience: a context of `n` Tesla GPUs under a specific API model.
    pub fn with_gpus_api(n: usize, api: ApiModel) -> Self {
        Context::new(vec![DeviceProfile::tesla_c1060(); n], api)
    }

    /// Number of devices in the context.
    pub fn device_count(&self) -> usize {
        self.devices.len()
    }

    /// All devices.
    pub fn devices(&self) -> &[Arc<Device>] {
        &self.devices
    }

    /// A device by index.
    pub fn device(&self, index: usize) -> Result<&Arc<Device>> {
        self.devices.get(index).ok_or(OclError::NoSuchDevice {
            index,
            available: self.devices.len(),
        })
    }

    /// Indices of all GPU devices.
    pub fn gpu_indices(&self) -> Vec<usize> {
        self.devices
            .iter()
            .filter(|d| d.device_type() == DeviceType::Gpu)
            .map(|d| d.id)
            .collect()
    }

    /// The API model of the context.
    pub fn api(&self) -> &ApiModel {
        &self.api
    }

    /// Create an in-order command queue for a device.
    pub fn queue(&self, device_index: usize) -> Result<CommandQueue> {
        let device = self.device(device_index)?.clone();
        Ok(CommandQueue::new(
            device,
            self.api.clone(),
            self.host_clock.clone(),
        ))
    }

    /// Allocate a buffer of `len` elements of `T` on a device. Released
    /// same-size allocations are served from the device's buffer pool (see
    /// [`Device::create_buffer`]), so repeated same-shape launches reuse
    /// allocations instead of hitting the allocator every call.
    pub fn create_buffer<T: Pod>(&self, device_index: usize, len: usize) -> Result<Buffer> {
        self.device(device_index)?.create_buffer::<T>(len)
    }

    /// Release a buffer allocation (parked in the owning device's pool).
    pub fn release_buffer(&self, buffer: &Buffer) -> Result<()> {
        self.device(buffer.device())?.release_buffer(buffer)
    }

    /// Total allocations served from buffer pools across all devices.
    pub fn buffer_pool_hits(&self) -> usize {
        self.devices.iter().map(|d| d.pool_hit_count()).sum()
    }

    /// Total pool revivals (across all devices) whose re-zeroing memset was
    /// elided because the first command fully overwrote the buffer.
    pub fn lazy_zero_elisions(&self) -> usize {
        self.devices.iter().map(|d| d.lazy_zero_elisions()).sum()
    }

    /// Total released allocations currently parked across all device pools.
    pub fn pooled_buffers(&self) -> usize {
        self.devices.iter().map(|d| d.pooled_buffers()).sum()
    }

    /// Total bytes of storage currently parked across all device pools.
    pub fn pooled_bytes(&self) -> usize {
        self.devices.iter().map(|d| d.pooled_bytes()).sum()
    }

    /// Drop every parked allocation on every device.
    pub fn trim_buffer_pools(&self) {
        for d in &self.devices {
            d.trim_pool();
        }
    }

    /// Set the high-water byte cap of every device's buffer pool. Pools over
    /// the new cap are trimmed immediately, least-recently-parked first (see
    /// [`Device::set_pool_cap_bytes`]).
    pub fn set_pool_cap_bytes(&self, cap_bytes: usize) {
        for d in &self.devices {
            d.set_pool_cap_bytes(cap_bytes);
        }
    }

    /// Total parked allocations evicted by pool-cap trims across all devices.
    pub fn pool_evictions(&self) -> usize {
        self.devices.iter().map(|d| d.pool_evictions()).sum()
    }

    /// Total bytes evicted by pool-cap trims across all devices.
    pub fn pool_evicted_bytes(&self) -> usize {
        self.devices.iter().map(|d| d.pool_evicted_bytes()).sum()
    }

    /// Attach a deterministic fault schedule: every [`crate::FaultSpec`] in
    /// the plan is armed on its target device (specs naming devices outside
    /// the context are ignored). Plans compose — injecting twice arms both
    /// sets of triggers. A plan whose triggers never fire costs zero
    /// virtual time; see [`crate::FaultPlan`] for the fault model.
    pub fn inject_faults(&self, plan: &crate::fault::FaultPlan) {
        for spec in plan.specs() {
            if let Some(device) = self.devices.get(spec.device) {
                device.arm_fault(*spec);
            }
        }
    }

    /// Total fault triggers that have fired across all devices (primary
    /// injections only, not the cascade of failures a lost device produces).
    pub fn faults_injected(&self) -> usize {
        self.devices.iter().map(|d| d.faults_injected()).sum()
    }

    /// Indices of devices that have been lost so far.
    pub fn lost_devices(&self) -> Vec<usize> {
        self.devices
            .iter()
            .filter(|d| d.is_lost())
            .map(|d| d.id)
            .collect()
    }

    /// The context's per-tag resource ledger (tenant byte quotas and
    /// launch/transfer counters). Purely an accounting facility: nothing in
    /// the simulator charges it automatically — callers such as the serving
    /// layer charge/credit it around their own allocations.
    pub fn ledger(&self) -> &ResourceLedger {
        &self.ledger
    }

    /// Build a program from kernel-language source. Charges the runtime
    /// compilation time of the slowest device to the host clock — the paper
    /// notes that OpenCL and SkelCL compile kernels at runtime while CUDA does
    /// not, and excludes this one-time cost from its runtime measurements.
    ///
    /// Built programs are cached per context, keyed by their source: building
    /// the same source again returns the cached program and charges no
    /// compilation time, mirroring the "compilation is only required once,
    /// when launching the implementation" behaviour the paper relies on to
    /// exclude compile time from its measurements.
    pub fn build_program(&self, source: &str) -> Result<Program> {
        if let Some(cached) = self.program_cache.lock().get(source) {
            return Ok(cached.clone());
        }
        let program = Program::from_source(source)?;
        if let Some(tier) = *self.kernel_tier.lock() {
            program.set_kernel_tier(tier);
        }
        let build_time = self
            .devices
            .iter()
            .map(|d| d.profile.program_build_time)
            .max()
            .unwrap_or(SimDuration::ZERO);
        self.charge_host(build_time);
        self.program_cache
            .lock()
            .insert(source.to_string(), program.clone());
        Ok(program)
    }

    /// Number of distinct programs that have been built (and cached) so far.
    pub fn built_program_count(&self) -> usize {
        self.program_cache.lock().len()
    }

    /// Register a program of native Rust kernels (no runtime compilation
    /// cost, mirroring CUDA's offline compilation).
    pub fn native_program(&self, defs: impl IntoIterator<Item = NativeKernelDef>) -> Program {
        Program::from_native(defs)
    }

    /// Current host virtual time.
    pub fn host_now(&self) -> SimTime {
        *self.host_clock.lock()
    }

    /// Charge additional host-side virtual time (used by higher layers such
    /// as SkelCL to model their own per-call overheads).
    pub fn charge_host(&self, duration: SimDuration) {
        let mut clock = self.host_clock.lock();
        *clock += duration;
    }

    /// Advance the host's virtual clock to at least `time` — the
    /// virtually-blocking half of waiting on an [`crate::EventHandle`]
    /// (e.g. a non-blocking read whose payload the host is about to
    /// consume). A no-op when the host clock is already past `time`.
    pub fn sync_host_to(&self, time: SimTime) {
        let mut clock = self.host_clock.lock();
        *clock = (*clock).max(time);
    }

    /// Reset the host clock to zero. Queues created afterwards start from a
    /// clean timeline; existing queues keep their own clocks, so this is
    /// intended to be used between measurement repetitions that recreate
    /// their queues.
    pub fn reset_host_clock(&self) {
        *self.host_clock.lock() = SimTime::ZERO;
    }
}

impl std::fmt::Debug for Context {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Context")
            .field("api", &self.api.name)
            .field(
                "devices",
                &self
                    .devices
                    .iter()
                    .map(|d| d.name().to_string())
                    .collect::<Vec<_>>(),
            )
            .field("host_now", &self.host_now())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn context_construction_and_device_access() {
        let ctx = Context::with_gpus(4);
        assert_eq!(ctx.device_count(), 4);
        assert_eq!(ctx.gpu_indices(), vec![0, 1, 2, 3]);
        assert!(ctx.device(3).is_ok());
        assert!(matches!(
            ctx.device(4),
            Err(OclError::NoSuchDevice {
                index: 4,
                available: 4
            })
        ));
        assert_eq!(ctx.api().name, "OpenCL");
    }

    #[test]
    fn mixed_context_reports_gpu_indices() {
        let ctx = Context::new(
            vec![
                DeviceProfile::xeon_e5520(),
                DeviceProfile::tesla_c1060(),
                DeviceProfile::tesla_c1060(),
            ],
            ApiModel::opencl(),
        );
        assert_eq!(ctx.gpu_indices(), vec![1, 2]);
    }

    #[test]
    fn build_program_charges_host_time() {
        let ctx = Context::with_gpus(1);
        let before = ctx.host_now();
        ctx.build_program("__kernel void k(__global float* v, int n) { v[0] = n; }")
            .unwrap();
        assert!(ctx.host_now() > before);
    }

    #[test]
    fn rebuilding_the_same_source_hits_the_cache_and_is_free() {
        let ctx = Context::with_gpus(2);
        let src = "__kernel void k(__global float* v, int n) { v[0] = n; }";
        let first = ctx.build_program(src).unwrap();
        let after_first = ctx.host_now();
        let second = ctx.build_program(src).unwrap();
        assert_eq!(
            ctx.host_now(),
            after_first,
            "cache hit must not charge time"
        );
        assert_eq!(first.kernel_names(), second.kernel_names());
        assert_eq!(ctx.built_program_count(), 1);
        // A different source is a genuine build and is charged again.
        ctx.build_program("__kernel void other(__global int* v, int n) { v[0] = n; }")
            .unwrap();
        assert!(ctx.host_now() > after_first);
        assert_eq!(ctx.built_program_count(), 2);
    }

    #[test]
    fn native_program_is_free_to_register() {
        let ctx = Context::with_gpus(1);
        let before = ctx.host_now();
        ctx.native_program([NativeKernelDef::new(
            "noop",
            crate::program::CostHint::DEFAULT,
            |_| Ok(()),
        )]);
        assert_eq!(ctx.host_now(), before);
    }

    #[test]
    fn buffer_lifecycle_through_context() {
        let ctx = Context::with_gpus(2);
        let b = ctx.create_buffer::<f32>(1, 16).unwrap();
        assert_eq!(b.device(), 1);
        assert_eq!(ctx.device(1).unwrap().live_buffers(), 1);
        ctx.release_buffer(&b).unwrap();
        assert_eq!(ctx.device(1).unwrap().live_buffers(), 0);
    }

    #[test]
    fn repeated_same_shape_allocations_hit_the_pool() {
        let ctx = Context::with_gpus(2);
        // Steady-state launch loop: allocate an output per device, release,
        // repeat. After the first round every allocation is a pool hit.
        for _round in 0..5 {
            for device in 0..2 {
                let b = ctx.create_buffer::<f32>(device, 1024).unwrap();
                ctx.release_buffer(&b).unwrap();
            }
        }
        assert_eq!(ctx.buffer_pool_hits(), 8, "rounds 2-5 hit the pool");
        assert_eq!(ctx.pooled_buffers(), 2);
        ctx.trim_buffer_pools();
        assert_eq!(ctx.pooled_buffers(), 0);
    }

    #[test]
    fn charge_and_reset_host_clock() {
        let ctx = Context::with_gpus(1);
        ctx.charge_host(SimDuration::from_micros(500));
        assert_eq!(ctx.host_now().as_nanos(), 500_000);
        ctx.reset_host_clock();
        assert_eq!(ctx.host_now(), SimTime::ZERO);
    }
}
