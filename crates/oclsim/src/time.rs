//! Virtual time used by the device simulator.
//!
//! Every command (transfer, kernel launch) advances per-queue virtual clocks
//! according to the device cost model. Virtual time is counted in
//! nanoseconds and exposed through [`SimTime`] (a point in time) and
//! [`SimDuration`] (a span).

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in virtual time (nanoseconds since context creation).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default, Hash)]
pub struct SimTime(pub u64);

/// A span of virtual time in nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default, Hash)]
pub struct SimDuration(pub u64);

impl SimTime {
    /// The zero point.
    pub const ZERO: SimTime = SimTime(0);

    /// Nanoseconds since the context epoch.
    pub fn as_nanos(self) -> u64 {
        self.0
    }

    /// Seconds since the context epoch (lossy).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// The later of two points in time.
    pub fn max(self, other: SimTime) -> SimTime {
        SimTime(self.0.max(other.0))
    }

    /// The span from `earlier` to `self`; zero if `earlier` is later.
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl SimDuration {
    /// A zero-length span.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Construct from seconds.
    pub fn from_secs_f64(secs: f64) -> SimDuration {
        SimDuration((secs.max(0.0) * 1e9).round() as u64)
    }

    /// Construct from microseconds.
    pub fn from_micros(us: u64) -> SimDuration {
        SimDuration(us * 1_000)
    }

    /// Construct from nanoseconds.
    pub fn from_nanos(ns: u64) -> SimDuration {
        SimDuration(ns)
    }

    /// The span in nanoseconds.
    pub fn as_nanos(self) -> u64 {
        self.0
    }

    /// The span in seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// The span in milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Saturating addition of two spans.
    pub fn saturating_add(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(other.0))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ns = self.0;
        if ns >= 1_000_000_000 {
            write!(f, "{:.3} s", self.as_secs_f64())
        } else if ns >= 1_000_000 {
            write!(f, "{:.3} ms", ns as f64 / 1e6)
        } else if ns >= 1_000 {
            write!(f, "{:.3} µs", ns as f64 / 1e3)
        } else {
            write!(f, "{ns} ns")
        }
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t+{}", SimDuration(self.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        let t = SimTime(100) + SimDuration(50);
        assert_eq!(t, SimTime(150));
        assert_eq!(t - SimTime(100), SimDuration(50));
        assert_eq!(SimTime(10) - SimTime(100), SimDuration(0));
        assert_eq!(SimTime(10).max(SimTime(100)), SimTime(100));
    }

    #[test]
    fn conversions() {
        assert_eq!(SimDuration::from_secs_f64(1.5).as_nanos(), 1_500_000_000);
        assert_eq!(SimDuration::from_micros(3).as_nanos(), 3_000);
        assert!((SimDuration(2_000_000).as_millis_f64() - 2.0).abs() < 1e-12);
        assert_eq!(SimDuration::from_secs_f64(-1.0), SimDuration::ZERO);
    }

    #[test]
    fn display_picks_sensible_units() {
        assert_eq!(format!("{}", SimDuration(500)), "500 ns");
        assert_eq!(format!("{}", SimDuration(2_500)), "2.500 µs");
        assert_eq!(format!("{}", SimDuration(3_000_000)), "3.000 ms");
        assert_eq!(format!("{}", SimDuration(1_200_000_000)), "1.200 s");
    }
}
