//! Property-based tests of the simulated OpenCL runtime: the timing model is
//! monotone and roofline-shaped, the API-model constants keep the paper's
//! CUDA/OpenCL/SkelCL relationships for any workload, buffers round-trip
//! arbitrary data, and in-order queues keep their commands ordered in
//! virtual time.

use proptest::prelude::*;

use oclsim::{
    ApiModel, ArgView, Context, CostHint, DeviceProfile, KernelArg, NativeKernelDef, Program,
};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn transfer_time_is_monotone_in_bytes_and_at_least_the_latency(
        a in 0usize..64 * 1024 * 1024,
        b in 0usize..64 * 1024 * 1024,
    ) {
        let p = DeviceProfile::tesla_c1060();
        let (small, large) = (a.min(b), a.max(b));
        prop_assert!(p.transfer_time(small) <= p.transfer_time(large));
        prop_assert!(p.transfer_time(small) >= p.transfer_latency);
    }

    #[test]
    fn execution_time_is_the_roofline_maximum(
        items in 1usize..5_000_000,
        flops in 0.0f64..5_000.0,
        bytes in 0.0f64..5_000.0,
    ) {
        let p = DeviceProfile::tesla_c1060();
        let t = p.execution_time(items, flops, bytes).as_secs_f64();
        let compute = items as f64 * flops.max(1.0) / (p.peak_gflops * 1e9);
        let memory = items as f64 * bytes.max(4.0) / (p.mem_bandwidth_gbs * 1e9);
        let expected = compute.max(memory);
        // Virtual time is kept in integer nanoseconds, so allow one
        // nanosecond of quantisation on top of the relative tolerance.
        prop_assert!((t - expected).abs() <= expected * 1e-6 + 1e-9);
    }

    #[test]
    fn execution_time_is_monotone_in_every_argument(
        items in 1usize..1_000_000,
        flops in 1.0f64..2_000.0,
        bytes in 4.0f64..2_000.0,
    ) {
        let p = DeviceProfile::tesla_c1060();
        let base = p.execution_time(items, flops, bytes);
        prop_assert!(p.execution_time(items * 2, flops, bytes) >= base);
        prop_assert!(p.execution_time(items, flops * 2.0, bytes) >= base);
        prop_assert!(p.execution_time(items, flops, bytes * 2.0) >= base);
    }

    #[test]
    fn cuda_is_never_slower_than_opencl_and_skelcl_matches_opencl(
        items in 1usize..2_000_000,
        flops in 1.0f64..2_000.0,
        bytes in 4.0f64..500.0,
    ) {
        let p = DeviceProfile::tesla_c1060();
        let cuda = ApiModel::cuda().kernel_time(&p, items, flops, bytes);
        let opencl = ApiModel::opencl().kernel_time(&p, items, flops, bytes);
        let skelcl = ApiModel::skelcl().kernel_time(&p, items, flops, bytes);
        prop_assert!(cuda <= opencl, "CUDA must never lose on identical kernels");
        prop_assert_eq!(
            skelcl, opencl,
            "SkelCL device-side execution is plain OpenCL underneath"
        );
    }

    #[test]
    fn buffers_round_trip_arbitrary_data(
        data in prop::collection::vec(any::<f32>().prop_filter("finite", |x| x.is_finite()), 1..512),
        device in 0usize..4,
    ) {
        let ctx = Context::with_gpus(4);
        let queue = ctx.queue(device).unwrap();
        let buf = ctx.create_buffer::<f32>(device, data.len()).unwrap();
        queue.enqueue_write_buffer(&buf, &data).unwrap();
        let mut back = vec![0.0f32; data.len()];
        queue.enqueue_read_buffer(&buf, &mut back).unwrap();
        prop_assert_eq!(back, data);
    }

    #[test]
    fn buffer_region_writes_only_touch_their_region(
        len in 8usize..256,
        split in 1usize..7,
    ) {
        let split = split.min(len - 1);
        let ctx = Context::with_gpus(1);
        let queue = ctx.queue(0).unwrap();
        let buf = ctx.create_buffer::<f32>(0, len).unwrap();
        queue.enqueue_write_buffer(&buf, &vec![1.0f32; len]).unwrap();
        // Overwrite the tail only.
        let tail = vec![9.0f32; len - split];
        queue.enqueue_write_buffer_region(&buf, split, &tail).unwrap();
        let mut back = vec![0.0f32; len];
        queue.enqueue_read_buffer(&buf, &mut back).unwrap();
        prop_assert!(back[..split].iter().all(|&x| x == 1.0));
        prop_assert!(back[split..].iter().all(|&x| x == 9.0));
    }

    #[test]
    fn fill_buffer_region_writes_the_repeated_value_and_charges_like_a_write(
        len in 8usize..256,
        split in 1usize..7,
    ) {
        let split = split.min(len - 1);
        let ctx = Context::with_gpus(1);
        let queue = ctx.queue(0).unwrap();
        let buf = ctx.create_buffer::<f32>(0, len).unwrap();
        queue.enqueue_write_buffer(&buf, &vec![1.0f32; len]).unwrap();
        let event = queue
            .enqueue_fill_buffer_region(&buf, split, -2.5f32, len - split)
            .unwrap()
            .wait()
            .unwrap();
        prop_assert_eq!(event.bytes, (len - split) * 4);
        let mut back = vec![0.0f32; len];
        queue.enqueue_read_buffer(&buf, &mut back).unwrap();
        prop_assert!(back[..split].iter().all(|&x| x == 1.0));
        prop_assert!(back[split..].iter().all(|&x| x == -2.5));
    }

    #[test]
    fn in_order_queues_never_overlap_their_commands(
        sizes in prop::collection::vec(1usize..4_096, 2..10),
    ) {
        let ctx = Context::with_gpus(1);
        let queue = ctx.queue(0).unwrap();
        let def = NativeKernelDef::new("touch", CostHint::new(10.0, 8.0), |ctx| {
            let n = ctx.global_size();
            let mut views = ctx.arg_views();
            let data = views[0]
                .as_slice_mut::<f32>()
                .ok_or("buffer expected")?;
            for i in 0..n.min(data.len()) {
                data[i] += 1.0;
            }
            Ok(())
        });
        let program = Program::from_native([def]);
        let kernel = program.kernel("touch").unwrap();
        for &n in &sizes {
            let buf = ctx.create_buffer::<f32>(0, n).unwrap();
            queue.enqueue_write_buffer(&buf, &vec![0.0f32; n]).unwrap();
            queue
                .enqueue_kernel(&kernel, n, &[KernelArg::Buffer(buf)])
                .unwrap();
        }
        queue.finish();
        let events = queue.events();
        prop_assert!(events.len() >= sizes.len() * 2);
        for w in events.windows(2) {
            prop_assert!(w[0].end <= w[1].start, "in-order queue must serialise commands");
            prop_assert!(w[0].start >= w[0].queued);
            prop_assert!(w[0].end >= w[0].start);
        }
    }

    #[test]
    fn dsl_kernels_charge_more_virtual_time_for_more_measured_work(
        items in 64usize..2_048,
    ) {
        // Two kernels with identical static shape but different runtime loop
        // bounds: the one that executes more iterations must take longer in
        // virtual time because the interpreter reports measured counts.
        let src = r#"
            __kernel void spin(__global float* v, int n, int iters) {
                int gid = get_global_id(0);
                float acc = v[gid];
                for (int i = 0; i < iters; i++) { acc = acc * 1.0001f + 1.0f; }
                v[gid] = acc;
            }
        "#;
        let ctx = Context::with_gpus(1);
        let program = ctx.build_program(src).unwrap();
        let kernel = program.kernel("spin").unwrap();
        let queue = ctx.queue(0).unwrap();

        let time_with = |iters: i32| {
            let buf = ctx.create_buffer::<f32>(0, items).unwrap();
            queue.enqueue_write_buffer(&buf, &vec![1.0f32; items]).unwrap();
            let ev = queue
                .enqueue_kernel(
                    &kernel,
                    items,
                    &[
                        KernelArg::Buffer(buf),
                        KernelArg::i32(items as i32),
                        KernelArg::i32(iters),
                    ],
                )
                .unwrap();
            ev.wait().unwrap().duration()
        };
        let short = time_with(2);
        let long = time_with(200);
        prop_assert!(long > short, "measured cost must follow the executed work");
    }
}

#[test]
fn arg_view_type_mismatches_are_errors_not_silent_reinterpretation() {
    let ctx = Context::with_gpus(1);
    let queue = ctx.queue(0).unwrap();
    let def = NativeKernelDef::new("typed", CostHint::DEFAULT, |ctx| {
        let mut views = ctx.arg_views();
        match &mut views[0] {
            ArgView::Buffer(_) => Ok(()),
            ArgView::Scalar(_) => Err("expected a buffer".to_string()),
        }
    });
    let program = Program::from_native([def]);
    let kernel = program.kernel("typed").unwrap();
    // Passing a scalar where the kernel expects a buffer is reported when
    // the (asynchronously executing) launch is waited on — native kernels
    // have no signature to validate at enqueue time.
    let handle = queue
        .enqueue_kernel(&kernel, 1, &[KernelArg::i32(3)])
        .unwrap();
    assert!(handle.wait().is_err());
    assert!(queue.take_error().is_some(), "the queue latches the error");
}
