//! Configuration, error type and the deterministic case RNG.

use std::fmt;

/// Per-property configuration; only `cases` is honoured by the shim.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Failure of one generated case (produced by `prop_assert!` and friends).
#[derive(Debug, Clone)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// A failed assertion with the given message.
    pub fn fail(message: impl Into<String>) -> TestCaseError {
        TestCaseError {
            message: message.into(),
        }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for TestCaseError {}

/// Deterministic splitmix64 generator, seeded from the property name and the
/// case index so every run regenerates the same inputs.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// RNG for case `case` of the property named `name`.
    pub fn for_case(name: &str, case: u32) -> TestRng {
        // FNV-1a over the name, mixed with the case index.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        TestRng {
            state: h ^ ((case as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
        }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`.
    pub fn below(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            0
        } else {
            self.next_u64() % bound
        }
    }

    /// Uniform float in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distinct_names_and_cases_give_distinct_streams() {
        let a = TestRng::for_case("a", 0).next_u64();
        let b = TestRng::for_case("b", 0).next_u64();
        let c = TestRng::for_case("a", 1).next_u64();
        assert_ne!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn below_respects_bound() {
        let mut rng = TestRng::for_case("bound", 0);
        for _ in 0..1000 {
            assert!(rng.below(7) < 7);
        }
        assert_eq!(rng.below(0), 0);
    }
}
