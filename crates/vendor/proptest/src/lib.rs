//! Minimal offline stand-in for the `proptest` crate.
//!
//! The build environment has no network access, so the workspace vendors the
//! slice of proptest it uses: the [`proptest!`] macro, `prop_assert!` /
//! `prop_assert_eq!`, range and collection strategies, `any::<T>()` with
//! `prop_filter`, `prop::array::uniform3`, and simple `[class]{m,n}` string
//! patterns. Case generation is deterministic (seeded per test name and case
//! index), so failures are reproducible; there is no shrinking — the failing
//! inputs are printed instead.

pub mod strategy;
pub mod test_runner;

/// `prop::collection`, `prop::array`, … namespace mirroring proptest.
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        pub use crate::strategy::vec;
    }
    /// Fixed-size array strategies.
    pub mod array {
        pub use crate::strategy::{uniform3, uniform4};
    }
}

/// Strategy producing arbitrary values of `T` (full bit patterns for floats).
pub fn any<T: strategy::Arbitrary>() -> strategy::Any<T> {
    strategy::Any::new()
}

/// The everything-you-need import, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::strategy::{Arbitrary, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{any, prop, prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Assert a condition inside a `proptest!` body; failure reports the case
/// instead of panicking mid-generator.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Assert two values are equal inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = &$left;
        let right = &$right;
        if !(*left == *right) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(
                    "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                    stringify!($left),
                    stringify!($right),
                    left,
                    right
                ),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let left = &$left;
        let right = &$right;
        if !(*left == *right) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(
                    "{}\n  left: {:?}\n right: {:?}",
                    format!($($fmt)+),
                    left,
                    right
                ),
            ));
        }
    }};
}

/// Assert two values differ inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let left = &$left;
        let right = &$right;
        if *left == *right {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `{} != {}`\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                left
            )));
        }
    }};
}

/// Define property tests: each function runs `config.cases` times over
/// freshly generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            config = ($crate::test_runner::ProptestConfig::default());
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = ($cfg:expr);) => {};
    (config = ($cfg:expr);
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            for case in 0..config.cases {
                let mut rng = $crate::test_runner::TestRng::for_case(stringify!($name), case);
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                let inputs = format!(
                    concat!($(stringify!($arg), " = {:?}; ",)+),
                    $(&$arg),+
                );
                let result: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (move || {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                if let ::std::result::Result::Err(err) = result {
                    panic!(
                        "property `{}` failed at case {}/{}:\n{}\ninputs: {}",
                        stringify!($name),
                        case + 1,
                        config.cases,
                        err,
                        inputs
                    );
                }
            }
        }
        $crate::__proptest_impl! { config = ($cfg); $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(
            a in 0usize..100,
            b in 1usize..=8,
            f in -2.5f32..7.5,
        ) {
            prop_assert!(a < 100);
            prop_assert!((1..=8).contains(&b));
            prop_assert!((-2.5..7.5).contains(&f), "f = {f}");
        }

        #[test]
        fn collections_and_tuples(
            data in prop::collection::vec((-10.0f32..10.0, 0i32..5), 1..20),
            arr in prop::array::uniform3(-1.0f32..1.0),
        ) {
            prop_assert!(!data.is_empty() && data.len() < 20);
            for (x, y) in &data {
                prop_assert!((-10.0..10.0).contains(x));
                prop_assert!((0..5).contains(y));
            }
            prop_assert_eq!(arr.len(), 3);
        }

        #[test]
        fn filters_and_strings(
            x in any::<f32>().prop_filter("finite", |v| v.is_finite()),
            s in "[ -~\n]{0,20}",
        ) {
            prop_assert!(x.is_finite());
            prop_assert!(s.len() <= 20);
            prop_assert!(s.chars().all(|c| c == '\n' || (' '..='~').contains(&c)));
        }
    }

    #[test]
    fn cases_are_deterministic() {
        let mut a = crate::test_runner::TestRng::for_case("t", 3);
        let mut b = crate::test_runner::TestRng::for_case("t", 3);
        let s = 0usize..1000;
        assert_eq!(
            Strategy::generate(&s, &mut a),
            Strategy::generate(&s, &mut b)
        );
    }

    #[test]
    #[should_panic(expected = "property `always_fails` failed")]
    fn failures_report_inputs() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(1))]
            #[allow(dead_code)]
            fn always_fails(x in 0usize..10) {
                prop_assert!(x > 100, "x was {x}");
            }
        }
        always_fails();
    }
}
