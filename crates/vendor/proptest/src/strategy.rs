//! Value-generation strategies: numeric ranges, tuples, collections, arrays,
//! `any::<T>()`, filtering/mapping combinators and `[class]{m,n}` string
//! patterns.

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

use crate::test_runner::TestRng;

/// A recipe for generating values of one type.
pub trait Strategy {
    /// The generated value type.
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Keep only values satisfying `pred` (regenerates on rejection).
    fn prop_filter<F>(self, label: &'static str, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            label,
            pred,
        }
    }

    /// Transform generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// Strategy yielding always the same value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

// --- numeric ranges --------------------------------------------------------

macro_rules! int_range_strategy {
    ($($t:ty),+) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                let span = (end as i128 - start as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (start as i128 + v as i128) as $t
            }
        }
    )+};
}

int_range_strategy!(usize, u8, u16, u32, u64, isize, i8, i16, i32, i64);

macro_rules! float_range_strategy {
    ($($t:ty),+) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let v = self.start as f64
                    + rng.unit_f64() * (self.end as f64 - self.start as f64);
                if v >= self.end as f64 { self.start } else { v as $t }
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                (start as f64 + rng.unit_f64() * (end as f64 - start as f64)) as $t
            }
        }
    )+};
}

float_range_strategy!(f32, f64);

// --- tuples ----------------------------------------------------------------

impl<A: Strategy, B: Strategy> Strategy for (A, B) {
    type Value = (A::Value, B::Value);
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (self.0.generate(rng), self.1.generate(rng))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
    type Value = (A::Value, B::Value, C::Value);
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (
            self.0.generate(rng),
            self.1.generate(rng),
            self.2.generate(rng),
        )
    }
}

impl<A: Strategy, B: Strategy, C: Strategy, D: Strategy> Strategy for (A, B, C, D) {
    type Value = (A::Value, B::Value, C::Value, D::Value);
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (
            self.0.generate(rng),
            self.1.generate(rng),
            self.2.generate(rng),
            self.3.generate(rng),
        )
    }
}

// --- collections and arrays -------------------------------------------------

/// Strategy for `Vec`s with lengths drawn from a range.
pub struct VecStrategy<S: Strategy> {
    element: S,
    len: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let len = self.len.generate(rng);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// `prop::collection::vec(element, len_range)`.
pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
    VecStrategy { element, len }
}

/// Strategy for fixed-size arrays of three elements.
pub struct Uniform3<S: Strategy>(S);

impl<S: Strategy> Strategy for Uniform3<S> {
    type Value = [S::Value; 3];
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        [
            self.0.generate(rng),
            self.0.generate(rng),
            self.0.generate(rng),
        ]
    }
}

/// `prop::array::uniform3(element)`.
pub fn uniform3<S: Strategy>(element: S) -> Uniform3<S> {
    Uniform3(element)
}

/// Strategy for fixed-size arrays of four elements.
pub struct Uniform4<S: Strategy>(S);

impl<S: Strategy> Strategy for Uniform4<S> {
    type Value = [S::Value; 4];
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        [
            self.0.generate(rng),
            self.0.generate(rng),
            self.0.generate(rng),
            self.0.generate(rng),
        ]
    }
}

/// `prop::array::uniform4(element)`.
pub fn uniform4<S: Strategy>(element: S) -> Uniform4<S> {
    Uniform4(element)
}

// --- any::<T>() --------------------------------------------------------------

/// Types `any::<T>()` can generate (full value-space, including non-finite
/// floats).
pub trait Arbitrary: Sized {
    /// Generate an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        f32::from_bits((rng.next_u64() >> 32) as u32)
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        f64::from_bits(rng.next_u64())
    }
}

impl Arbitrary for i32 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() as i32
    }
}

impl Arbitrary for u32 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() as u32
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// The strategy returned by [`crate::any`].
pub struct Any<T: Arbitrary>(PhantomData<T>);

impl<T: Arbitrary> Any<T> {
    pub(crate) fn new() -> Any<T> {
        Any(PhantomData)
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

// --- combinators --------------------------------------------------------------

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    label: &'static str,
    pred: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..10_000 {
            let v = self.inner.generate(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter `{}` rejected 10000 consecutive candidates",
            self.label
        );
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

// --- string patterns -----------------------------------------------------------

/// `&str` patterns of the shape `[class]{m,n}` (character class plus a
/// repetition count) generate strings; any other pattern is produced
/// verbatim.
impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        match parse_class_pattern(self) {
            Some((chars, lo, hi)) if !chars.is_empty() => {
                let len = lo + rng.below((hi - lo + 1) as u64) as usize;
                (0..len)
                    .map(|_| chars[rng.below(chars.len() as u64) as usize])
                    .collect()
            }
            _ => (*self).to_string(),
        }
    }
}

/// Parse `[class]{m,n}` into (allowed characters, m, n).
fn parse_class_pattern(pattern: &str) -> Option<(Vec<char>, usize, usize)> {
    let rest = pattern.strip_prefix('[')?;
    let close = rest.find(']')?;
    let (class, tail) = rest.split_at(close);
    let tail = tail.strip_prefix(']')?;
    let tail = tail.strip_prefix('{')?;
    let tail = tail.strip_suffix('}')?;
    let (lo, hi) = match tail.split_once(',') {
        Some((a, b)) => (a.trim().parse().ok()?, b.trim().parse().ok()?),
        None => {
            let n = tail.trim().parse().ok()?;
            (n, n)
        }
    };
    if lo > hi {
        return None;
    }

    let mut chars = Vec::new();
    let mut it = class.chars().peekable();
    while let Some(c) = it.next() {
        let c = if c == '\\' {
            match it.next()? {
                'n' => '\n',
                't' => '\t',
                'r' => '\r',
                other => other,
            }
        } else {
            c
        };
        // A range `a-b` (a dash that is neither first nor last).
        if it.peek() == Some(&'-') {
            let mut look = it.clone();
            look.next(); // the dash
            if let Some(&end) = look.peek() {
                if end != ']' {
                    it.next(); // consume '-'
                    let end = it.next()?;
                    let end = if end == '\\' {
                        match it.next()? {
                            'n' => '\n',
                            't' => '\t',
                            'r' => '\r',
                            other => other,
                        }
                    } else {
                        end
                    };
                    if c as u32 <= end as u32 {
                        chars.extend((c as u32..=end as u32).filter_map(char::from_u32));
                    }
                    continue;
                }
            }
        }
        chars.push(c);
    }
    Some((chars, lo, hi))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> TestRng {
        TestRng::for_case("strategy_tests", 0)
    }

    #[test]
    fn class_pattern_parses_ranges_and_escapes() {
        let (chars, lo, hi) = parse_class_pattern("[ -~\n]{0,200}").unwrap();
        assert_eq!((lo, hi), (0, 200));
        assert!(chars.contains(&' '));
        assert!(chars.contains(&'~'));
        assert!(chars.contains(&'\n'));
        assert!(!chars.contains(&'\x01'));
    }

    #[test]
    fn string_strategy_respects_length_bounds() {
        let mut r = rng();
        for _ in 0..200 {
            let s = "[a-c]{2,5}".generate(&mut r);
            assert!(s.len() >= 2 && s.len() <= 5, "{s:?}");
            assert!(s.chars().all(|c| ('a'..='c').contains(&c)));
        }
    }

    #[test]
    fn ranges_and_collections_generate_in_bounds() {
        let mut r = rng();
        for _ in 0..500 {
            let v = (1usize..=8).generate(&mut r);
            assert!((1..=8).contains(&v));
            let xs = vec(-1.0f32..1.0, 1..10).generate(&mut r);
            assert!(!xs.is_empty() && xs.len() < 10);
            let arr = uniform3(0i32..3).generate(&mut r);
            assert!(arr.iter().all(|x| (0..3).contains(x)));
        }
    }

    #[test]
    fn filter_and_map_compose() {
        let mut r = rng();
        let s = any::<f32>()
            .prop_filter("finite", |x| x.is_finite())
            .prop_map(|x| x.abs());
        for _ in 0..100 {
            let v = s.generate(&mut r);
            assert!(v.is_finite() && v >= 0.0);
        }
    }

    use crate::any;
}
