//! Minimal offline stand-in for the `parking_lot` crate.
//!
//! The build environment has no network access, so the workspace vendors the
//! small slice of the `parking_lot` API it actually uses: [`Mutex`] and
//! [`RwLock`] with non-poisoning `lock()`/`read()`/`write()` accessors.
//! Everything is a thin wrapper over `std::sync`; a poisoned std lock (a
//! panic while holding the guard) is recovered into the inner value, which
//! matches parking_lot's no-poisoning semantics.

use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual-exclusion lock with parking_lot's non-poisoning `lock()`.
#[derive(Default, Debug)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Create a new mutex holding `value`.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex(sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A reader-writer lock with parking_lot's non-poisoning accessors.
#[derive(Default, Debug)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Create a new rwlock holding `value`.
    pub const fn new(value: T) -> RwLock<T> {
        RwLock(sync::RwLock::new(value))
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquire an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_round_trip() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(l.into_inner(), vec![1, 2, 3]);
    }

    #[test]
    fn poisoned_mutex_recovers() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison");
        })
        .join();
        assert_eq!(*m.lock(), 0);
    }
}
