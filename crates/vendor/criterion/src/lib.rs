//! Minimal offline stand-in for the `criterion` benchmark harness.
//!
//! Implements the API surface the workspace's benches use — `Criterion`,
//! benchmark groups, `bench_function` / `bench_with_input`, `BenchmarkId`,
//! `criterion_group!` / `criterion_main!` — with simple wall-clock timing
//! and a text report instead of criterion's statistical machinery. Benches
//! compile under `cargo test` (where they only build) and run under
//! `cargo bench`, printing mean time per iteration.

use std::time::{Duration, Instant};

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// An id made of a function name and a parameter value.
    pub fn new(name: impl Into<String>, parameter: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId {
            name: format!("{}/{}", name.into(), parameter),
        }
    }

    /// An id made of the parameter value only.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId {
            name: parameter.to_string(),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.name)
    }
}

/// Passed to the closure under test; `iter` runs and times the payload.
pub struct Bencher {
    samples: u64,
    elapsed: Duration,
    iterations: u64,
}

impl Bencher {
    /// Run `f` repeatedly and record the mean time per call.
    pub fn iter<R>(&mut self, mut f: impl FnMut() -> R) {
        // One warm-up call outside the measurement.
        std::hint::black_box(f());
        let start = Instant::now();
        for _ in 0..self.samples {
            std::hint::black_box(f());
        }
        self.elapsed = start.elapsed();
        self.iterations = self.samples;
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
    sample_size: u64,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timed iterations per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1) as u64;
        self
    }

    /// Benchmark a closure.
    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id);
        let sample_size = self.sample_size;
        self.criterion.run_one(&full, sample_size, f);
        self
    }

    /// Benchmark a closure that receives an input value.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id);
        let sample_size = self.sample_size;
        self.criterion
            .run_one(&full, sample_size, |b: &mut Bencher| f(b, input));
        self
    }

    /// End the group (report output happens per benchmark; nothing to do).
    pub fn finish(&mut self) {}
}

/// The benchmark driver.
#[derive(Default)]
pub struct Criterion {
    default_sample_size: u64,
}

impl Criterion {
    /// Driver with the default sample size.
    fn new() -> Criterion {
        Criterion {
            default_sample_size: 10,
        }
    }

    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = self.default_sample_size;
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size,
        }
    }

    /// Benchmark a closure outside any group.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let sample_size = self.default_sample_size;
        self.run_one(name, sample_size, f);
        self
    }

    fn run_one<F>(&mut self, name: &str, samples: u64, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            samples,
            elapsed: Duration::ZERO,
            iterations: 0,
        };
        f(&mut bencher);
        let per_iter = if bencher.iterations > 0 {
            bencher.elapsed / bencher.iterations as u32
        } else {
            Duration::ZERO
        };
        println!(
            "bench {name:<50} {:>12.3} µs/iter ({} iters)",
            per_iter.as_secs_f64() * 1e6,
            bencher.iterations
        );
    }
}

/// Prevent the compiler from optimising a value away.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Collect benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::__new_for_macro();
            $( $target(&mut criterion); )+
        }
    };
}

/// Entry point running every group named in the invocation.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

impl Criterion {
    /// Constructor used by the `criterion_group!` macro expansion.
    #[doc(hidden)]
    pub fn __new_for_macro() -> Criterion {
        Criterion::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_payload() {
        let mut c = Criterion::new();
        let mut count = 0u64;
        c.bench_function("count", |b| b.iter(|| count += 1));
        assert!(count > 0);
    }

    #[test]
    fn groups_and_ids_format() {
        assert_eq!(BenchmarkId::new("f", 4).to_string(), "f/4");
        assert_eq!(BenchmarkId::from_parameter(7).to_string(), "7");
        let mut c = Criterion::new();
        let mut g = c.benchmark_group("g");
        g.sample_size(3)
            .bench_with_input(BenchmarkId::new("x", 1), &1, |b, &v| {
                b.iter(|| black_box(v + 1))
            });
        g.finish();
    }
}
