//! Minimal offline stand-in for the `rand` crate.
//!
//! Provides the subset this workspace uses: `StdRng::seed_from_u64`,
//! `Rng::gen_range` over half-open numeric ranges, and `Rng::gen` for a few
//! primitive types. The generator is xoshiro256++ seeded via splitmix64 —
//! deterministic across platforms, which is all the experiments need
//! (reproducible synthetic event streams), not cryptographic quality.

use std::ops::Range;

/// Seedable random number generators.
pub trait SeedableRng: Sized {
    /// Construct a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from a half-open range.
pub trait SampleUniform: Copy + PartialOrd {
    /// Sample uniformly from `[low, high)`.
    fn sample_half_open(rng: &mut dyn RngCore, low: Self, high: Self) -> Self;
}

/// The raw 64-bit generator interface.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Sample uniformly from the half-open range `low..high`.
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T
    where
        Self: Sized,
    {
        assert!(
            range.start < range.end,
            "gen_range called with an empty range"
        );
        T::sample_half_open(self, range.start, range.end)
    }

    /// Generate a value of a supported primitive type.
    fn gen<T: Generatable>(&mut self) -> T
    where
        Self: Sized,
    {
        T::generate(self)
    }
}

impl<R: RngCore> Rng for R {}

/// Types [`Rng::gen`] can produce.
pub trait Generatable {
    /// Produce one uniformly distributed value.
    fn generate(rng: &mut dyn RngCore) -> Self;
}

impl Generatable for u64 {
    fn generate(rng: &mut dyn RngCore) -> Self {
        rng.next_u64()
    }
}

impl Generatable for u32 {
    fn generate(rng: &mut dyn RngCore) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Generatable for f64 {
    fn generate(rng: &mut dyn RngCore) -> Self {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Generatable for f32 {
    fn generate(rng: &mut dyn RngCore) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Generatable for bool {
    fn generate(rng: &mut dyn RngCore) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_sample_float {
    ($t:ty) => {
        impl SampleUniform for $t {
            fn sample_half_open(rng: &mut dyn RngCore, low: Self, high: Self) -> Self {
                let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
                let v = low as f64 + unit * (high as f64 - low as f64);
                // Clamp against rounding up to `high` exactly.
                if v >= high as f64 {
                    low
                } else {
                    v as $t
                }
            }
        }
    };
}

impl_sample_float!(f32);
impl_sample_float!(f64);

macro_rules! impl_sample_int {
    ($t:ty) => {
        impl SampleUniform for $t {
            fn sample_half_open(rng: &mut dyn RngCore, low: Self, high: Self) -> Self {
                let span = (high as i128 - low as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (low as i128 + v as i128) as $t
            }
        }
    };
}

impl_sample_int!(i32);
impl_sample_int!(i64);
impl_sample_int!(u32);
impl_sample_int!(u64);
impl_sample_int!(usize);

/// The standard generator: xoshiro256++ seeded through splitmix64.
#[derive(Debug, Clone)]
pub struct StdRng {
    state: [u64; 4],
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        StdRng {
            state: [next(), next(), next(), next()],
        }
    }
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        let [mut s0, mut s1, mut s2, mut s3] = self.state;
        let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
        let t = s1 << 17;
        s2 ^= s0;
        s3 ^= s1;
        s1 ^= s2;
        s0 ^= s3;
        s2 ^= t;
        s3 = s3.rotate_left(45);
        self.state = [s0, s1, s2, s3];
        result
    }
}

/// Namespaced re-exports mirroring `rand::rngs`.
pub mod rngs {
    pub use super::StdRng;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeding_is_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let mut c = StdRng::seed_from_u64(43);
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let vc: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let f = rng.gen_range(-2.5f32..4.0);
            assert!((-2.5..4.0).contains(&f), "{f}");
            let i = rng.gen_range(-3i32..9);
            assert!((-3..9).contains(&i), "{i}");
            let u = rng.gen_range(5usize..6);
            assert_eq!(u, 5);
        }
    }

    #[test]
    fn gen_produces_unit_floats() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1_000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
            let f: f32 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }
}
