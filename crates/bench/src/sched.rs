//! Section V experiments: heterogeneous scheduling and dOpenCL.
//!
//! The paper argues that (a) on heterogeneous systems SkelCL "should not
//! assign evenly-sized workload to the devices" and uses a static scheduler
//! with performance prediction, and (b) with dOpenCL, remote devices appear
//! local but communication becomes more expensive. This harness measures
//! both effects with the map skeleton.

use skelcl::prelude::*;
use skelcl::{DeviceSelection, SkelCl, StaticScheduler};

use oclsim::DeviceProfile;

/// Result of one scheduling comparison.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SchedulingRow {
    /// Runtime with an even block distribution (virtual seconds).
    pub even_s: f64,
    /// Runtime with the scheduler's weighted block distribution.
    pub weighted_s: f64,
}

impl SchedulingRow {
    /// Speed-up of the weighted distribution over the even one.
    pub fn speedup(&self) -> f64 {
        self.even_s / self.weighted_s
    }
}

/// The heterogeneous device set of the experiment: one Tesla-class GPU, one
/// small GPU and one CPU device.
pub fn heterogeneous_profiles() -> Vec<DeviceProfile> {
    vec![
        DeviceProfile::tesla_c1060(),
        DeviceProfile::generic_small_gpu(),
        DeviceProfile::xeon_e5520(),
    ]
}

const HEAVY_UDF: &str = r#"
float func(float x) {
    float acc = x;
    for (int i = 0; i < 64; i++) { acc = acc * 1.0001f + 0.5f; }
    return acc;
}
"#;

fn run_map(runtime: &std::sync::Arc<SkelCl>, distribution: Distribution, n: usize) -> Result<f64> {
    let map = Map::<f32, f32>::from_source(HEAVY_UDF);
    let v = Vector::from_vec(runtime, vec![1.0f32; n]);
    v.set_distribution(distribution)?;
    // Warm-up builds the kernel so runtime compilation is not measured.
    v.map(&map)?;
    runtime.finish_all();
    let t0 = runtime.now();
    let out = v.map(&map)?;
    out.with_host(|_| ())?; // force completion including downloads
    runtime.finish_all();
    Ok((runtime.now() - t0).as_secs_f64())
}

/// Compare an even block distribution against the scheduler's weighted one on
/// a heterogeneous device set.
pub fn even_vs_weighted(n: usize) -> Result<SchedulingRow> {
    let cost = CostHint::new(130.0, 8.0);
    let even_rt = skelcl::init_profiles(heterogeneous_profiles());
    let even_s = run_map(&even_rt, Distribution::Block, n)?;

    let weighted_rt = skelcl::init_profiles(heterogeneous_profiles());
    let scheduler = StaticScheduler::analytical(&weighted_rt);
    let weighted_s = run_map(&weighted_rt, scheduler.weighted_block(cost), n)?;
    Ok(SchedulingRow { even_s, weighted_s })
}

/// Result of the dOpenCL comparison: the same skeleton on local devices vs
/// on the same devices reached through the (simulated) network.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DistributedRow {
    /// Runtime on local devices (virtual seconds).
    pub local_s: f64,
    /// Runtime on the same devices accessed through dOpenCL.
    pub remote_s: f64,
}

/// Run the same map on four local GPUs and on four GPUs of a dOpenCL cluster
/// (the paper's lab system) to quantify the communication penalty.
pub fn local_vs_distributed(n: usize) -> Result<DistributedRow> {
    let local_rt = SkelCl::init(DeviceSelection::Gpus(4));
    let local_s = run_map(&local_rt, Distribution::Block, n)?;

    let cluster = dopencl::Cluster::lab_cluster();
    let profiles: Vec<DeviceProfile> = cluster.gpu_profiles().into_iter().take(4).collect();
    let remote_rt = skelcl::init_profiles(profiles);
    let remote_s = run_map(&remote_rt, Distribution::Block, n)?;
    Ok(DistributedRow { local_s, remote_s })
}

/// Text report for the scheduling harness.
pub fn report(n: usize) -> Result<String> {
    let sched = even_vs_weighted(n)?;
    let dist = local_vs_distributed(n)?;
    let mut out = String::new();
    out.push_str("Section V — heterogeneous scheduling (map skeleton, heavy UDF)\n");
    out.push_str(&format!(
        "  even block distribution     : {:.6} s\n  scheduler-weighted blocks   : {:.6} s\n  speed-up                    : {:.2}x\n",
        sched.even_s,
        sched.weighted_s,
        sched.speedup()
    ));
    out.push_str("Section V — dOpenCL: local GPUs vs remote GPUs over Gigabit Ethernet\n");
    out.push_str(&format!(
        "  4 local GPUs                : {:.6} s\n  4 remote GPUs (dOpenCL)     : {:.6} s\n  communication penalty       : {:.2}x\n",
        dist.local_s,
        dist.remote_s,
        dist.remote_s / dist.local_s
    ));
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weighted_distribution_beats_even_on_heterogeneous_devices() {
        let row = even_vs_weighted(300_000).unwrap();
        assert!(
            row.speedup() > 1.1,
            "weighted scheduling should help; even {:.6} s vs weighted {:.6} s",
            row.even_s,
            row.weighted_s
        );
    }

    #[test]
    fn remote_devices_are_slower_but_usable() {
        let row = local_vs_distributed(200_000).unwrap();
        assert!(
            row.remote_s > row.local_s,
            "the network penalty must show up"
        );
    }
}
