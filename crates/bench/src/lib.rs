//! # skelcl-bench — experiment harnesses
//!
//! Shared code behind the figure-reproduction binaries (`fig4a_loc`,
//! `fig4b_runtime`, `sched_heterogeneous`, `mandelbrot_compare`) and the
//! Criterion benchmarks. Each harness regenerates the data of one figure of
//! the paper; EXPERIMENTS.md records the paper-vs-measured comparison.

pub mod fig4a;
pub mod fig4b;
pub mod mandel;
pub mod sched;

/// Render a simple textual bar of `value` scaled to `max` (for terminal
/// "figures").
pub fn text_bar(value: f64, max: f64, width: usize) -> String {
    if max <= 0.0 {
        return String::new();
    }
    let n = ((value / max) * width as f64).round() as usize;
    "#".repeat(n.min(width))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn text_bar_scales() {
        assert_eq!(text_bar(5.0, 10.0, 10), "#####");
        assert_eq!(text_bar(10.0, 10.0, 10), "##########");
        assert_eq!(text_bar(20.0, 10.0, 10), "##########");
        assert_eq!(text_bar(1.0, 0.0, 10), "");
    }
}
