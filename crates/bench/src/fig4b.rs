//! Figure 4b: average runtime of one list-mode OSEM subset iteration on
//! 1, 2 and 4 GPUs for the SkelCL, OpenCL and CUDA implementations.
//!
//! Runtime here is *virtual* time from the device simulator: the same
//! control path (transfers, launches, synchronisations) the real
//! implementations execute, charged against profiles of the paper's
//! hardware. Absolute seconds therefore differ from the paper's testbed, but
//! the relationships the paper reports — CUDA fastest by roughly 20 %,
//! SkelCL within a few percent of OpenCL, runtime decreasing with the GPU
//! count — are properties of that control path and are asserted in the
//! tests below.

use osem::{sequential, CudaOsem, OpenClOsem, ReconstructionConfig, SkelclOsem};
use skelcl::DeviceSelection;

/// Runtime of one subset iteration for every implementation at one GPU count.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RuntimeRow {
    /// Number of GPUs used.
    pub gpus: usize,
    /// SkelCL runtime in (virtual) seconds.
    pub skelcl_s: f64,
    /// OpenCL runtime in (virtual) seconds.
    pub opencl_s: f64,
    /// CUDA runtime in (virtual) seconds.
    pub cuda_s: f64,
}

impl RuntimeRow {
    /// SkelCL overhead relative to OpenCL, in percent.
    pub fn skelcl_overhead_pct(&self) -> f64 {
        (self.skelcl_s / self.opencl_s - 1.0) * 100.0
    }

    /// How much faster CUDA is than OpenCL, in percent.
    pub fn cuda_advantage_pct(&self) -> f64 {
        (self.opencl_s / self.cuda_s - 1.0) * 100.0
    }
}

/// Measure one subset iteration for all three implementations at the given
/// GPU counts.
pub fn measure(config: &ReconstructionConfig, gpu_counts: &[usize]) -> Vec<RuntimeRow> {
    let subsets = sequential::generate_subsets(config);
    let subset = &subsets[0];
    gpu_counts
        .iter()
        .map(|&gpus| {
            let rt = skelcl::SkelCl::init(DeviceSelection::Gpus(gpus));
            let skel = SkelclOsem::new(rt, config.clone());
            let (skelcl_s, skel_img) = skel.time_one_subset(subset).expect("SkelCL OSEM");

            let ocl = OpenClOsem::new(gpus, config.clone()).expect("OpenCL OSEM setup");
            let (opencl_s, ocl_img) = ocl.time_one_subset(subset).expect("OpenCL OSEM");

            let cuda = CudaOsem::new(gpus, config.clone()).expect("CUDA OSEM setup");
            let (cuda_s, cuda_img) = cuda.time_one_subset(subset).expect("CUDA OSEM");

            // All three implementations must compute the same image.
            assert!(osem::max_relative_difference(&skel_img, &ocl_img) < 1e-3);
            assert!(osem::max_relative_difference(&ocl_img, &cuda_img) < 1e-3);

            RuntimeRow {
                gpus,
                skelcl_s,
                opencl_s,
                cuda_s,
            }
        })
        .collect()
}

/// Format the figure as a text table.
pub fn report(rows: &[RuntimeRow]) -> String {
    let mut out = String::new();
    out.push_str("Figure 4b — average runtime of one OSEM subset iteration (simulated seconds)\n");
    out.push_str("GPUs | SkelCL    | OpenCL    | CUDA      | SkelCL overhead vs OpenCL | CUDA faster than OpenCL\n");
    out.push_str("-----+-----------+-----------+-----------+---------------------------+------------------------\n");
    for r in rows {
        out.push_str(&format!(
            "{:>4} | {:>9.4} | {:>9.4} | {:>9.4} | {:>24.1} % | {:>21.1} %\n",
            r.gpus,
            r.skelcl_s,
            r.opencl_s,
            r.cuda_s,
            r.skelcl_overhead_pct(),
            r.cuda_advantage_pct()
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure_4b_shape_holds() {
        // A compute-weighted workload (many events on a small volume) keeps
        // the test fast while preserving the paper's compute/transfer
        // balance, so the percentage claims are meaningful.
        let config = ReconstructionConfig::test_scale().with_events_per_subset(50_000);
        let rows = measure(&config, &[1, 2, 4]);
        assert_eq!(rows.len(), 3);
        for r in &rows {
            // CUDA always provides the best performance (paper: ~20 % faster
            // than OpenCL); allow a generous band around it.
            assert!(
                r.cuda_s < r.opencl_s && r.cuda_advantage_pct() > 5.0,
                "CUDA advantage at {} GPUs = {:.1} %",
                r.gpus,
                r.cuda_advantage_pct()
            );
            // SkelCL introduces only a moderate overhead versus OpenCL
            // (paper: below 5 %; allow a slightly wider band for the
            // simulator).
            assert!(
                r.skelcl_overhead_pct() < 10.0,
                "SkelCL overhead at {} GPUs = {:.1} %",
                r.gpus,
                r.skelcl_overhead_pct()
            );
        }
        // Using more GPUs reduces the runtime of every implementation.
        assert!(rows[2].skelcl_s < rows[0].skelcl_s);
        assert!(rows[2].opencl_s < rows[0].opencl_s);
        assert!(rows[2].cuda_s < rows[0].cuda_s);
    }
}
