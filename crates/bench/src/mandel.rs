//! The Mandelbrot comparison referenced in the paper's conclusion: SkelCL vs
//! a low-level implementation, programming effort and runtime.

use mandelbrot::{render_lowlevel, render_sequential, render_skelcl, MandelbrotConfig};
use skelcl::DeviceSelection;

/// Runtime of the Mandelbrot rendering at one GPU count.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MandelRow {
    /// Number of GPUs used.
    pub gpus: usize,
    /// SkelCL (map skeleton) runtime in virtual seconds.
    pub skelcl_s: f64,
    /// Low-level (direct simulated OpenCL) runtime in virtual seconds.
    pub lowlevel_s: f64,
}

/// Measure the SkelCL and low-level renderings at the given GPU counts and
/// check they produce the same image.
pub fn measure(config: &MandelbrotConfig, gpu_counts: &[usize]) -> Vec<MandelRow> {
    let reference = render_sequential(config);
    gpu_counts
        .iter()
        .map(|&gpus| {
            let rt = skelcl::SkelCl::init(DeviceSelection::Gpus(gpus));
            // Warm-up to exclude runtime kernel compilation, as in the paper.
            render_skelcl(&rt, config).expect("SkelCL mandelbrot");
            rt.finish_all();
            let t0 = rt.now();
            let image = render_skelcl(&rt, config).expect("SkelCL mandelbrot");
            rt.finish_all();
            let skelcl_s = (rt.now() - t0).as_secs_f64();
            assert_eq!(image, reference, "SkelCL image must match the reference");

            // The low-level version: check correctness through the public
            // entry point, then time an equivalent explicit run in virtual
            // seconds.
            let image = render_lowlevel(gpus, config).expect("low-level mandelbrot");
            assert_eq!(image, reference, "low-level image must match the reference");
            let lowlevel_s = render_lowlevel_timed(gpus, config);
            MandelRow {
                gpus,
                skelcl_s,
                lowlevel_s,
            }
        })
        .collect()
}

fn render_lowlevel_timed(gpus: usize, config: &MandelbrotConfig) -> f64 {
    // render_lowlevel creates its own context internally; measure by running
    // it and reading the virtual time of an equivalent explicit run.
    use oclsim::{ApiModel, Context, KernelArg, NativeKernelDef, Program};
    let context = Context::new(
        vec![oclsim::DeviceProfile::tesla_c1060(); gpus],
        ApiModel::opencl(),
    );
    let cfg = *config;
    let def = NativeKernelDef::new("mandelbrot", config.cost_hint(), move |ctx| {
        let n = ctx.global_size();
        let offset = ctx.scalar_usize(1)?;
        let mut views = ctx.arg_views();
        let out = views[0]
            .as_slice_mut::<u32>()
            .ok_or("output must be a buffer")?;
        for i in 0..n {
            out[i] = mandelbrot::escape_time(&cfg, offset + i);
        }
        Ok(())
    });
    let program = Program::from_native([def]);
    let kernel = program.kernel("mandelbrot").expect("kernel exists");
    let pixels = config.pixels();
    let per_gpu = pixels.div_ceil(gpus.max(1));
    let t0 = context.host_now();
    let mut image = vec![0u32; pixels];
    let mut launches = Vec::new();
    for gpu in 0..gpus {
        let start = (gpu * per_gpu).min(pixels);
        let end = ((gpu + 1) * per_gpu).min(pixels);
        if start == end {
            continue;
        }
        let queue = context.queue(gpu).expect("queue");
        let buffer = context
            .create_buffer::<u32>(gpu, end - start)
            .expect("buffer");
        queue
            .enqueue_kernel(
                &kernel,
                end - start,
                &[
                    KernelArg::Buffer(buffer.clone()),
                    KernelArg::Scalar(oclsim::Value::Uint(start as u32)),
                ],
            )
            .expect("launch");
        launches.push((queue, buffer, start..end));
    }
    for (queue, buffer, range) in &launches {
        queue
            .enqueue_read_buffer(buffer, &mut image[range.clone()])
            .expect("read");
    }
    (context.host_now() - t0).as_secs_f64()
}

/// Text report.
pub fn report(rows: &[MandelRow]) -> String {
    let mut out = String::new();
    out.push_str(
        "Mandelbrot — SkelCL (map skeleton) vs low-level OpenCL-style (simulated seconds)\n",
    );
    out.push_str("GPUs | SkelCL    | low-level | SkelCL overhead\n");
    out.push_str("-----+-----------+-----------+----------------\n");
    for r in rows {
        out.push_str(&format!(
            "{:>4} | {:>9.4} | {:>9.4} | {:>13.1} %\n",
            r.gpus,
            r.skelcl_s,
            r.lowlevel_s,
            (r.skelcl_s / r.lowlevel_s - 1.0) * 100.0
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn skelcl_mandelbrot_stays_close_to_lowlevel() {
        // At this tiny test size (64×48) the runtime is dominated by fixed
        // per-device overheads, so multi-GPU scaling is not asserted here —
        // the `mandelbrot_compare` binary exercises it at benchmark scale.
        let config = MandelbrotConfig::test_scale();
        let rows = measure(&config, &[1, 4]);
        assert_eq!(rows.len(), 2);
        for r in &rows {
            assert!(
                r.skelcl_s < r.lowlevel_s * 2.0,
                "SkelCL {} s vs low-level {} s at {} GPUs",
                r.skelcl_s,
                r.lowlevel_s,
                r.gpus
            );
        }
    }
}
