//! Wall-clock device-scaling benchmark for the threaded execution engine.
//!
//! PR 5 gave every simulated device a dedicated worker thread, so N-device
//! launches execute concurrently in *real* time (previously only the virtual
//! clocks overlapped). This harness measures end-to-end wall-clock
//! elements/sec for 1–4 devices over three workloads — a four-stage map
//! chain, a reduction, and an iterative heat-diffusion stencil — plus the
//! lane-batched vs scalar VM column, and emits `BENCH_scaling.json`.
//!
//! Both wall-clock and virtual-time figures are reported. Virtual time is
//! the simulator's device model (near-linear by construction); wall-clock
//! scaling additionally requires real CPU cores for the workers, so the
//! emitted JSON records `host_cpus` — on a single-core host the wall-clock
//! column collapses to parity while the same binary shows the scaling on a
//! multi-core machine.
//!
//! Usage:
//!   cargo run --release -p skelcl_bench --bin scaling_bench
//!   cargo run --release -p skelcl_bench --bin scaling_bench -- --smoke
//!   cargo run --release -p skelcl_bench --bin scaling_bench -- --out path.json

use std::time::Instant;

use skelcl::prelude::*;
use skelcl_kernel::interp::ArgBinding;
use skelcl_kernel::value::Value;

/// One measured configuration.
struct Row {
    workload: &'static str,
    devices: usize,
    wall_eps: f64,
    virt_eps: f64,
}

fn seeded(len: usize, seed: u64) -> Vec<f32> {
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    (0..len)
        .map(|_| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 40) as f32) / 1e6
        })
        .collect()
}

/// Best-of-`reps` measurement of one scenario: returns (wall seconds,
/// virtual seconds) for the fastest wall-clock repetition.
fn measure(
    devices: usize,
    reps: usize,
    scenario: impl Fn(&std::sync::Arc<skelcl::SkelCl>),
) -> (f64, f64) {
    let mut best = (f64::INFINITY, 0.0);
    for _ in 0..reps {
        let rt = skelcl::init_gpus(devices);
        let virt_start = rt.now();
        let wall_start = Instant::now();
        scenario(&rt);
        rt.finish_all();
        let wall = wall_start.elapsed().as_secs_f64();
        let virt = (rt.now() - virt_start).as_secs_f64();
        if wall < best.0 {
            best = (wall, virt);
        }
    }
    best
}

/// The lane-batched vs scalar VM comparison on the generated map kernel —
/// the single-device engine-throughput column of the report.
fn vm_batched_vs_scalar(n: usize, reps: usize) -> (f64, f64) {
    const MAP_SRC: &str = r#"
        float func(float x) { return x * x * x - 2.0f * x + 1.0f; }
        __kernel void SKELCL_MAP(__global float* skelcl_in, __global float* skelcl_out, int skelcl_n) {
            int skelcl_gid = get_global_id(0);
            if (skelcl_gid < skelcl_n) {
                skelcl_out[skelcl_gid] = func(skelcl_in[skelcl_gid]);
            }
        }
    "#;
    let program = skelcl_kernel::Program::build(MAP_SRC).expect("bench kernel builds");
    let kernel = program.kernel("SKELCL_MAP").expect("kernel exists");
    let time = |batched: bool| -> f64 {
        let mut best = f64::INFINITY;
        for _ in 0..reps {
            let mut input = seeded(n, 5);
            let mut out = vec![0.0f32; n];
            let mut args = vec![
                ArgBinding::buffer_f32(&mut input),
                ArgBinding::buffer_f32(&mut out),
                ArgBinding::Scalar(Value::Int(n as i32)),
            ];
            let start = Instant::now();
            let stats = if batched {
                program.run_ndrange_measured(&kernel, n, &mut args)
            } else {
                program.run_ndrange_measured_scalar(&kernel, n, &mut args)
            }
            .expect("bench kernel runs");
            let elapsed = start.elapsed().as_secs_f64();
            std::hint::black_box(stats);
            best = best.min(elapsed);
        }
        best
    };
    let scalar = n as f64 / time(false);
    let batched = n as f64 / time(true);
    (scalar, batched)
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_scaling.json".to_string());

    let host_cpus = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    let reps = if smoke { 1 } else { 3 };

    // Workload sizes: total elements processed per run (for elements/sec).
    let map_n: usize = if smoke { 20_000 } else { 1_000_000 };
    let map_sweeps = 4usize;
    let reduce_n: usize = if smoke { 40_000 } else { 2_000_000 };
    let (heat_rows, heat_cols) = if smoke { (48, 32) } else { (384, 256) };
    let heat_sweeps = if smoke { 3 } else { 10 };

    let mut rows: Vec<Row> = Vec::new();
    for devices in 1..=4 {
        // --- map-chain: four dependent element-wise sweeps ---
        let (wall, virt) = measure(devices, reps, |rt| {
            let cube = Map::<f32, f32>::from_source(
                "float func(float x) { return x * x * x - 2.0f * x + 1.0f; }",
            );
            let v = Vector::from_vec(rt, seeded(map_n, 23));
            let mut cur = v;
            for _ in 0..map_sweeps {
                cur = cube.run(&cur).exec().expect("map chain");
            }
            std::hint::black_box(cur.to_vec().expect("gather"));
        });
        let total = (map_n * map_sweeps) as f64;
        rows.push(Row {
            workload: "map_chain",
            devices,
            wall_eps: total / wall,
            virt_eps: total / virt,
        });

        // --- reduce: one full sum ---
        let (wall, virt) = measure(devices, reps, |rt| {
            let sum = Reduce::<f32>::from_source("float func(float a, float b) { return a + b; }");
            let v = Vector::from_vec(rt, seeded(reduce_n, 31));
            std::hint::black_box(sum.run(&v).exec().expect("reduce"));
        });
        rows.push(Row {
            workload: "reduce",
            devices,
            wall_eps: reduce_n as f64 / wall,
            virt_eps: reduce_n as f64 / virt,
        });

        // --- heat diffusion: iterative 5-point stencil with halo exchange ---
        let (wall, virt) = measure(devices, reps, |rt| {
            let heat = MapOverlap::<f32, f32>::from_source(
                "float func(float x) { return x + 0.2f * (get(0, -1) + get(0, 1) + get(-1, 0) + get(1, 0) - 4.0f * x); }",
            )
            .with_halo(1)
            .with_boundary(Boundary::Clamp);
            let m = Matrix::from_vec(rt, heat_rows, heat_cols, seeded(heat_rows * heat_cols, 47))
                .expect("matrix");
            let out = heat.run(&m).run_iter(heat_sweeps).expect("heat");
            std::hint::black_box(out.to_vec().expect("gather"));
        });
        let total = (heat_rows * heat_cols * heat_sweeps) as f64;
        rows.push(Row {
            workload: "heat_diffusion",
            devices,
            wall_eps: total / wall,
            virt_eps: total / virt,
        });
    }

    let (vm_scalar_eps, vm_batched_eps) = vm_batched_vs_scalar(map_n, reps);

    println!("host_cpus = {host_cpus}");
    for w in ["map_chain", "reduce", "heat_diffusion"] {
        let base = rows
            .iter()
            .find(|r| r.workload == w && r.devices == 1)
            .expect("baseline row");
        for r in rows.iter().filter(|r| r.workload == w) {
            println!(
                "{:<15} {} device(s)  wall {:>12.0} elem/s ({:>4.2}x)  virtual {:>13.0} elem/s ({:>4.2}x)",
                r.workload,
                r.devices,
                r.wall_eps,
                r.wall_eps / base.wall_eps,
                r.virt_eps,
                r.virt_eps / base.virt_eps,
            );
        }
    }
    println!(
        "vm (map, n={map_n})  scalar {vm_scalar_eps:>12.0} elem/s  batched {vm_batched_eps:>12.0} elem/s  ({:.2}x)",
        vm_batched_eps / vm_scalar_eps
    );

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"bench\": \"scaling\",\n");
    json.push_str(&format!("  \"smoke\": {smoke},\n"));
    json.push_str(&format!("  \"host_cpus\": {host_cpus},\n"));
    json.push_str(
        "  \"generated_by\": \"cargo run --release -p skelcl_bench --bin scaling_bench\",\n",
    );
    json.push_str("  \"units\": \"elements_per_second\",\n");
    json.push_str(
        "  \"note\": \"wall_eps is real wall-clock throughput (needs >= devices host cores to scale); virtual_eps is the simulator's device model\",\n",
    );
    json.push_str("  \"workloads\": {\n");
    for (wi, w) in ["map_chain", "reduce", "heat_diffusion"].iter().enumerate() {
        json.push_str(&format!("    \"{w}\": {{\n"));
        let base = rows
            .iter()
            .find(|r| r.workload == *w && r.devices == 1)
            .expect("baseline row");
        let of: Vec<&Row> = rows.iter().filter(|r| r.workload == *w).collect();
        for (i, r) in of.iter().enumerate() {
            let comma = if i + 1 < of.len() { "," } else { "" };
            json.push_str(&format!(
                "      \"devices_{}\": {{ \"wall_eps\": {:.0}, \"wall_speedup\": {:.2}, \"virtual_eps\": {:.0}, \"virtual_speedup\": {:.2} }}{comma}\n",
                r.devices,
                r.wall_eps,
                r.wall_eps / base.wall_eps,
                r.virt_eps,
                r.virt_eps / base.virt_eps,
            ));
        }
        // `vm_map` always follows, so every workload object takes a comma.
        let _ = wi;
        json.push_str("    },\n");
    }
    json.push_str(&format!(
        "    \"vm_map\": {{ \"scalar_eps\": {vm_scalar_eps:.0}, \"batched_eps\": {vm_batched_eps:.0}, \"batched_speedup\": {:.2} }}\n",
        vm_batched_eps / vm_scalar_eps
    ));
    json.push_str("  }\n}\n");
    std::fs::write(&out_path, &json).expect("write benchmark json");
    println!("wrote {out_path}");
}
