//! The Mandelbrot comparison mentioned in the paper's conclusion: SkelCL map
//! skeleton vs hand-written low-level code, on 1, 2 and 4 GPUs.
//!
//! Run with `cargo run --release -p skelcl-bench --bin mandelbrot_compare`.

use mandelbrot::MandelbrotConfig;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let full = std::env::args().any(|a| a == "--full");
    let config = if quick {
        MandelbrotConfig {
            width: 256,
            height: 256,
            max_iterations: 200,
            ..MandelbrotConfig::test_scale()
        }
    } else if full {
        // The 2048×2048 / 1000-iteration rendering of the companion paper.
        // The SkelCL kernel runs through the interpreter, so this takes
        // several minutes of host time; the default below keeps the same
        // comparison shape at a fraction of the cost.
        MandelbrotConfig::benchmark_scale()
    } else {
        MandelbrotConfig {
            width: 512,
            height: 512,
            max_iterations: 500,
            ..MandelbrotConfig::test_scale()
        }
    };
    println!(
        "workload: {}x{} pixels, {} max iterations",
        config.width, config.height, config.max_iterations
    );
    let rows = skelcl_bench::mandel::measure(&config, &[1, 2, 4]);
    print!("{}", skelcl_bench::mandel::report(&rows));
}
