//! Section V experiments: even vs performance-predicted workload
//! distribution on heterogeneous devices, and local vs dOpenCL-remote GPUs.
//!
//! Run with `cargo run --release -p skelcl-bench --bin sched_heterogeneous`.

fn main() {
    let n = 300_000;
    match skelcl_bench::sched::report(n) {
        Ok(report) => print!("{report}"),
        Err(e) => {
            eprintln!("scheduling experiment failed: {e}");
            std::process::exit(1);
        }
    }
}
