//! Reproduce Figure 4b: average runtime of one list-mode OSEM subset
//! iteration on 1, 2 and 4 GPUs for SkelCL, OpenCL and CUDA.
//!
//! Run with `cargo run --release -p skelcl-bench --bin fig4b_runtime`.
//! Pass `--quick` for a smaller workload (used in CI-style runs).

use osem::ReconstructionConfig;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    // The paper's workload processes ~10^6 events per subset against a
    // 150×150×280 volume, so step 1 (per-event path tracing) dominates the
    // image transfers. The default below keeps that compute-to-transfer
    // balance on the scaled-down volume; `--quick` trades some of it for a
    // faster run.
    let config = if quick {
        ReconstructionConfig::benchmark_scale().with_events_per_subset(50_000)
    } else {
        ReconstructionConfig::benchmark_scale().with_events_per_subset(200_000)
    };
    println!(
        "workload: {}x{}x{} voxels, {} events per subset{}",
        config.volume.nx,
        config.volume.ny,
        config.volume.nz,
        config.events_per_subset,
        if quick { " (quick mode)" } else { "" }
    );
    let rows = skelcl_bench::fig4b::measure(&config, &[1, 2, 4]);
    print!("{}", skelcl_bench::fig4b::report(&rows));
    println!();
    println!("paper (Tesla S1070, 150x150x280 voxels, ~10^6 events/subset):");
    println!("  CUDA is ~20% faster than OpenCL at every GPU count;");
    println!("  SkelCL introduces <5% overhead over OpenCL;");
    println!("  runtime decreases with the number of GPUs (sub-linearly).");
}
