//! Fault-tolerance benchmark: heat diffusion on the paper's 8-GPU lab
//! cluster under deterministic node failure.
//!
//! Runs an iterative 5-point heat stencil on the `dopencl` lab cluster
//! (Section IV-C / V: 4 + 2 + 2 GPUs across three servers) in four
//! configurations — {fault-free, one dual-GPU node lost mid-run} ×
//! {checkpointing off, checkpoint every 2 sweeps} — and emits
//! `BENCH_faults.json` with virtual runtime (the simulator's cost model),
//! wall time, recovery counters and checkpoint traffic, so future PRs have
//! a trajectory for the *cost of resilience*: what checkpointing charges on
//! the fault-free path and how much replay it saves under failure.
//!
//! The harness also asserts the recovery contract: every faulted run's
//! result is bit-identical to the fault-free run (the stencil is
//! elementwise, so re-partitioning cannot change bits), and the lost node's
//! devices are the exact set reported dead.
//!
//! Usage:
//!   cargo run --release -p skelcl_bench --bin faults_bench
//!   cargo run --release -p skelcl_bench --bin faults_bench -- --smoke
//!   cargo run --release -p skelcl_bench --bin faults_bench -- --out path.json
//!
//! `--smoke` shrinks the image and sweep count so CI can use the binary as
//! a compile-and-run check (no thresholds).

use std::time::Instant;

use dopencl::{Cluster, ClusterTier};
use oclsim::FaultTrigger;
use skelcl::{Boundary, MapOverlap, Matrix};

const HEAT_STEP: &str = r#"
    float func(float u) {
        return u + 0.2f * (get(0, -1) + get(0, 1) + get(-1, 0) + get(1, 0) - 4.0f * u);
    }
"#;

/// The node whose loss the benchmark injects (2 of the cluster's 8 GPUs).
const FAILED_NODE: &str = "small-server-1";

fn image(rows: usize, cols: usize) -> Vec<f32> {
    (0..rows * cols)
        .map(|i| ((i * 37 + 11) % 251) as f32 * 0.25)
        .collect()
}

struct Row {
    fault: &'static str,
    checkpoint_every: usize,
    virtual_ms: f64,
    wall_s: f64,
    recoveries: usize,
    repartitions: usize,
    replayed_sweeps: usize,
    checkpoint_kib: f64,
    result_bits: Vec<u32>,
}

/// One configuration: `sweeps` heat sweeps on the 8-GPU lab tier, with an
/// optional node death armed at each of its devices' `fail_at_op`-th op.
fn run_config(
    size: usize,
    sweeps: usize,
    checkpoint_every: usize,
    fail_at_op: Option<usize>,
) -> Row {
    let tier = ClusterTier::launch_gpus(&Cluster::lab_cluster());
    let rt = tier.runtime().clone();
    if let Some(op) = fail_at_op {
        let armed = tier.fail_node(FAILED_NODE, FaultTrigger::AtOpCount(op));
        assert_eq!(armed, 2, "the failed node holds two GPUs");
    }
    let heat = MapOverlap::<f32, f32>::from_source(HEAT_STEP)
        .with_halo(1)
        .with_boundary(Boundary::Constant(0.0));
    let m = Matrix::from_vec(&rt, size, size, image(size, size)).expect("square image");

    let t0 = rt.now();
    let wall = Instant::now();
    let out = heat
        .run(&m)
        .checkpoint_every(checkpoint_every)
        .run_iter(sweeps)
        .expect("the run recovers (or is fault-free)");
    let virtual_ms = (rt.finish_all() - t0).as_nanos() as f64 / 1.0e6;
    let wall_s = wall.elapsed().as_secs_f64();
    let result = out.to_vec().expect("download survives recovery");

    if fail_at_op.is_some() {
        let mut lost = rt.lost_devices();
        lost.sort_unstable();
        assert_eq!(
            lost,
            tier.devices_of(FAILED_NODE),
            "exactly the failed node's devices are dead"
        );
    } else {
        assert!(rt.lost_devices().is_empty());
    }

    let trace = rt.exec_trace();
    Row {
        fault: if fail_at_op.is_some() {
            "node_loss"
        } else {
            "none"
        },
        checkpoint_every,
        virtual_ms,
        wall_s,
        recoveries: trace.recoveries,
        repartitions: trace.repartitions,
        replayed_sweeps: trace.replayed_launches,
        checkpoint_kib: trace.checkpoint_bytes as f64 / 1024.0,
        result_bits: result.iter().map(|x| x.to_bits()).collect(),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke" || a == "--quick");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_faults.json".to_string());

    let size = if smoke { 48 } else { 256 };
    let sweeps = if smoke { 6 } else { 16 };
    // Mid-run: each sweep costs each device a handful of ops (halo
    // exchanges + kernel), so this lands well inside the sweep loop.
    let fail_at_op = if smoke { 8 } else { 40 };

    let configs: [(Option<usize>, usize); 4] = [
        (None, 0),
        (None, 2),
        (Some(fail_at_op), 0),
        (Some(fail_at_op), 2),
    ];
    let mut rows = Vec::new();
    for (fault, every) in configs {
        rows.push(run_config(size, sweeps, every, fault));
    }

    // Recovery contract: all four configurations produce the same bits.
    let baseline = rows[0].result_bits.clone();
    for row in &rows[1..] {
        assert_eq!(
            row.result_bits, baseline,
            "fault={} checkpoint_every={} diverged from the fault-free result",
            row.fault, row.checkpoint_every
        );
    }
    for row in &rows {
        if row.fault == "node_loss" {
            assert!(row.recoveries >= 1, "the node loss forced a recovery");
        }
    }
    // Checkpoints bound the replay: the checkpointed faulted run replays no
    // more sweeps than the restart-from-scratch run.
    let replay_without = rows[2].replayed_sweeps;
    let replay_with = rows[3].replayed_sweeps;
    assert!(
        replay_with <= replay_without,
        "checkpointing must not increase replay ({replay_with} > {replay_without})"
    );

    println!(
        "heat diffusion, {size}x{size}, {sweeps} sweeps, 8-GPU lab cluster \
         (node loss = {FAILED_NODE} at op {fail_at_op}):"
    );
    println!(
        "{:<10} {:>16} {:>12} {:>9} {:>11} {:>13} {:>15} {:>15}",
        "fault",
        "checkpoint_every",
        "virtual_ms",
        "wall_s",
        "recoveries",
        "repartitions",
        "replayed_sweeps",
        "checkpoint_kib"
    );
    for row in &rows {
        println!(
            "{:<10} {:>16} {:>12.3} {:>9.4} {:>11} {:>13} {:>15} {:>15.1}",
            row.fault,
            row.checkpoint_every,
            row.virtual_ms,
            row.wall_s,
            row.recoveries,
            row.repartitions,
            row.replayed_sweeps,
            row.checkpoint_kib
        );
    }

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"bench\": \"faults\",\n");
    json.push_str(&format!("  \"smoke\": {smoke},\n"));
    json.push_str("  \"workload\": \"heat_diffusion\",\n");
    json.push_str("  \"cluster\": \"lab_cluster_gpus\",\n");
    json.push_str(&format!("  \"image\": [{size}, {size}],\n"));
    json.push_str(&format!("  \"sweeps\": {sweeps},\n"));
    json.push_str(&format!("  \"failed_node\": \"{FAILED_NODE}\",\n"));
    json.push_str(&format!("  \"fail_at_op\": {fail_at_op},\n"));
    json.push_str("  \"rows\": [\n");
    for (i, row) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"fault\": \"{}\", \"checkpoint_every\": {}, \"virtual_ms\": {:.6}, \
             \"wall_s\": {:.6}, \"recoveries\": {}, \"repartitions\": {}, \
             \"replayed_sweeps\": {}, \"checkpoint_kib\": {:.3}}}{}\n",
            row.fault,
            row.checkpoint_every,
            row.virtual_ms,
            row.wall_s,
            row.recoveries,
            row.repartitions,
            row.replayed_sweeps,
            row.checkpoint_kib,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");
    std::fs::write(&out_path, &json).expect("write benchmark json");
    println!("wrote {out_path}");
}
