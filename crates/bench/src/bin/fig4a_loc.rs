//! Reproduce Figure 4a: lines-of-code comparison of the three list-mode OSEM
//! host programs. Run with `cargo run -p skelcl-bench --bin fig4a_loc`.

fn main() {
    print!("{}", skelcl_bench::fig4a::report());
}
