//! Kernel-engine throughput benchmark: AST interpreter vs batched bytecode
//! VM vs the closure-compiled native tier.
//!
//! Runs the four generated skeleton kernel shapes (map, zip, reduce, scan)
//! over 1M elements through all three engines and emits
//! `BENCH_kernel_vm.json` with elements/sec per engine and the speedups, so
//! future PRs have a perf trajectory to compare against.
//!
//! Usage:
//!   cargo run --release -p skelcl_bench --bin kernel_vm_bench
//!   cargo run --release -p skelcl_bench --bin kernel_vm_bench -- --quick
//!   cargo run --release -p skelcl_bench --bin kernel_vm_bench -- --out path.json
//!
//! `--quick` shrinks the element count so CI can use the binary as a smoke
//! check (compile + run both engines, no thresholds).

use std::time::Instant;

use skelcl_kernel::interp::{ArgBinding, BufferView};
use skelcl_kernel::value::Value;
use skelcl_kernel::{Program, Tier};

/// Which engine a timing run drives.
#[derive(Clone, Copy, PartialEq)]
enum Engine {
    Interp,
    Batched,
    Native,
}

const MAP_SRC: &str = r#"
    float func(float x) { return x * x * x - 2.0f * x + 1.0f; }
    __kernel void SKELCL_MAP(__global float* skelcl_in, __global float* skelcl_out, int skelcl_n) {
        int skelcl_gid = get_global_id(0);
        if (skelcl_gid < skelcl_n) {
            skelcl_out[skelcl_gid] = func(skelcl_in[skelcl_gid]);
        }
    }
"#;

const ZIP_SRC: &str = r#"
    float func(float x, float y, float a) { return a * x + y; }
    __kernel void SKELCL_ZIP(__global float* skelcl_left, __global float* skelcl_right, __global float* skelcl_out, int skelcl_n, float skelcl_arg_a) {
        int skelcl_gid = get_global_id(0);
        if (skelcl_gid < skelcl_n) {
            skelcl_out[skelcl_gid] = func(skelcl_left[skelcl_gid], skelcl_right[skelcl_gid], skelcl_arg_a);
        }
    }
"#;

const REDUCE_SRC: &str = r#"
    float func(float a, float b) { return a + b; }
    __kernel void SKELCL_REDUCE(__global float* skelcl_in, __global float* skelcl_out, int skelcl_n) {
        float skelcl_acc = skelcl_in[0];
        for (int skelcl_i = 1; skelcl_i < skelcl_n; skelcl_i++) {
            skelcl_acc = func(skelcl_acc, skelcl_in[skelcl_i]);
        }
        skelcl_out[0] = skelcl_acc;
    }
"#;

const SCAN_SRC: &str = r#"
    float func(float a, float b) { return a + b; }
    __kernel void SKELCL_SCAN(__global float* skelcl_in, __global float* skelcl_out, int skelcl_n) {
        float skelcl_acc = skelcl_in[0];
        skelcl_out[0] = skelcl_acc;
        for (int skelcl_i = 1; skelcl_i < skelcl_n; skelcl_i++) {
            skelcl_acc = func(skelcl_acc, skelcl_in[skelcl_i]);
            skelcl_out[skelcl_i] = skelcl_acc;
        }
    }
"#;

struct Workload {
    name: &'static str,
    src: &'static str,
    kernel: &'static str,
    /// Number of input buffers before the single output buffer.
    inputs: usize,
    /// Extra scalar args appended after `n`.
    extra: &'static [Value],
    /// Work-items per launch given `n` elements (1 for the sequential
    /// reduce/scan kernels).
    items: fn(usize) -> usize,
}

const WORKLOADS: &[Workload] = &[
    Workload {
        name: "map",
        src: MAP_SRC,
        kernel: "SKELCL_MAP",
        inputs: 1,
        extra: &[],
        items: |n| n,
    },
    Workload {
        name: "zip",
        src: ZIP_SRC,
        kernel: "SKELCL_ZIP",
        inputs: 2,
        extra: &[Value::Float(2.5)],
        items: |n| n,
    },
    Workload {
        name: "reduce",
        src: REDUCE_SRC,
        kernel: "SKELCL_REDUCE",
        inputs: 1,
        extra: &[],
        items: |_| 1,
    },
    Workload {
        name: "scan",
        src: SCAN_SRC,
        kernel: "SKELCL_SCAN",
        inputs: 1,
        extra: &[],
        items: |_| 1,
    },
];

/// Best-of-`reps` wall-clock seconds for one engine over one workload.
fn time_engine(w: &Workload, n: usize, reps: usize, engine: Engine) -> f64 {
    let program = Program::build(w.src).expect("benchmark kernels build");
    if engine == Engine::Native {
        program.set_tier(Tier::Native);
        // Compile outside the timed region: launches amortize it in
        // production, and the JSON reports steady-state throughput.
        let k = program.kernel(w.kernel).expect("kernel exists");
        program
            .native_outcome(&k)
            .result
            .as_ref()
            .expect("benchmark kernels are native-eligible");
    }
    let kernel = program.kernel(w.kernel).expect("kernel exists");
    let items = (w.items)(n);
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let mut bufs: Vec<Vec<f32>> = (0..w.inputs)
            .map(|b| (0..n).map(|i| ((i + b) % 97) as f32 * 0.25 + 0.5).collect())
            .collect();
        bufs.push(vec![0.0f32; n]);
        let mut args: Vec<ArgBinding<'_>> = bufs
            .iter_mut()
            .map(|b| ArgBinding::Buffer(BufferView::F32(b)))
            .collect();
        args.push(ArgBinding::Scalar(Value::Int(n as i32)));
        args.extend(w.extra.iter().map(|v| ArgBinding::Scalar(*v)));

        let start = Instant::now();
        let stats = match engine {
            Engine::Interp => program.run_ndrange_measured_interp(&kernel, items, &mut args),
            Engine::Batched => program.run_ndrange_measured_batched(&kernel, items, &mut args),
            Engine::Native => program.run_ndrange_measured(&kernel, items, &mut args),
        }
        .expect("benchmark kernels run");
        let elapsed = start.elapsed().as_secs_f64();
        std::hint::black_box(stats);
        best = best.min(elapsed);
    }
    best
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_kernel_vm.json".to_string());

    let n: usize = if quick { 20_000 } else { 1_000_000 };
    let reps = if quick { 1 } else { 3 };

    let mut rows = Vec::new();
    for w in WORKLOADS {
        let t_interp = time_engine(w, n, reps.min(2), Engine::Interp);
        let t_vm = time_engine(w, n, reps, Engine::Batched);
        let t_native = time_engine(w, n, reps, Engine::Native);
        let interp_eps = n as f64 / t_interp;
        let vm_eps = n as f64 / t_vm;
        let native_eps = n as f64 / t_native;
        let speedup = vm_eps / interp_eps;
        let native_vs_vm = native_eps / vm_eps;
        println!(
            "{:<8} n={n:>8}  interp {:>11.0} elem/s  vm {:>11.0} elem/s  native {:>11.0} elem/s  native/vm {:>5.1}x",
            w.name, interp_eps, vm_eps, native_eps, native_vs_vm
        );
        rows.push((
            w.name,
            interp_eps,
            vm_eps,
            native_eps,
            speedup,
            native_vs_vm,
        ));
    }

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"bench\": \"kernel_vm\",\n");
    json.push_str(&format!("  \"elements\": {n},\n"));
    json.push_str(&format!("  \"quick\": {quick},\n"));
    json.push_str(
        "  \"generated_by\": \"cargo run --release -p skelcl_bench --bin kernel_vm_bench\",\n",
    );
    json.push_str("  \"units\": \"elements_per_second\",\n");
    json.push_str("  \"workloads\": {\n");
    for (i, (name, interp_eps, vm_eps, native_eps, speedup, native_vs_vm)) in
        rows.iter().enumerate()
    {
        let comma = if i + 1 < rows.len() { "," } else { "" };
        json.push_str(&format!(
            "    \"{name}\": {{ \"interp_eps\": {interp_eps:.0}, \"vm_eps\": {vm_eps:.0}, \"native_eps\": {native_eps:.0}, \"speedup\": {speedup:.2}, \"native_vs_vm\": {native_vs_vm:.2} }}{comma}\n",
        ));
    }
    json.push_str("  }\n}\n");
    std::fs::write(&out_path, &json).expect("write benchmark json");
    println!("wrote {out_path}");
}
