//! Multi-tenant serving benchmark: throughput and latency of the admission
//! scheduler at 1/100/1k/10k concurrent sessions, coalesced vs uncoalesced.
//!
//! Each session is one client submitting a small elementwise pipeline job
//! to a shared server (4 tenants, weights 1–4, 2 simulated devices). The
//! harness reports jobs/sec in wall-clock AND virtual time plus p50/p99
//! virtual job latency (admission → completion), asserts that coalescing
//! reduces the simulator's kernel-launch count whenever more than one job
//! is in play, checks that a fixed submission order is bit-identical
//! (results and virtual clock) across repetitions, and emits
//! `BENCH_serving.json`.
//!
//! Usage:
//!   cargo run --release -p skelcl_bench --bin serving_bench
//!   cargo run --release -p skelcl_bench --bin serving_bench -- --smoke
//!   cargo run --release -p skelcl_bench --bin serving_bench -- --out path.json

use std::time::Instant;

use skelcl::prelude::*;
use skelcl_serving::{Server, ServerConfig, TenantConfig};

const TENANTS: [&str; 4] = ["alpha", "beta", "gamma", "delta"];

struct ScaleResult {
    sessions: usize,
    coalesced: bool,
    wall_jps: f64,
    virt_jps: f64,
    p50_virt_us: f64,
    p99_virt_us: f64,
    launches: usize,
    packed_batches: usize,
    checksum: u64,
    virt_secs: f64,
}

fn seeded(len: usize, seed: u64) -> Vec<f32> {
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    (0..len)
        .map(|_| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 40) as f32) / 1e6
        })
        .collect()
}

fn total_launches(trace: &skelcl::ExecTrace) -> usize {
    trace.interp_launches()
        + trace.scalar_launches()
        + trace.batched_launches()
        + trace.native_launches()
}

fn percentile(sorted: &[f64], pct: usize) -> f64 {
    let idx = (sorted.len() * pct / 100).min(sorted.len().saturating_sub(1));
    sorted[idx]
}

/// One serving scenario: `sessions` clients, one job each, round-robin
/// across the four tenants, submitted in a fixed order.
fn run_scale(sessions: usize, coalescing: bool, len: usize) -> ScaleResult {
    let rt = skelcl::init_gpus(2);
    let server = Server::with_config(
        rt.clone(),
        ServerConfig {
            coalescing,
            coalesce_cap: 64,
            max_queue_depth: 1024,
            ..ServerConfig::default()
        },
    );
    for (i, tenant) in TENANTS.iter().enumerate() {
        server
            .add_tenant(tenant, TenantConfig::weighted(i as u32 + 1))
            .expect("register tenant");
    }
    let saxpyish = Map::<f32, f32>::from_source("float func(float x) { return 2.0f * x + 0.5f; }");

    // Warm-up: compiles the (length-independent) packed kernel source.
    {
        let session = server.session("alpha").expect("session");
        let v = Vector::from_vec(&rt, seeded(len, 999_999));
        session
            .submit_vec(&v.lazy().map(&saxpyish))
            .expect("warmup submit")
            .wait()
            .expect("warmup job");
    }

    let launches_before = total_launches(&rt.exec_trace());
    let virt_start = rt.now();
    let wall_start = Instant::now();
    let mut handles = Vec::with_capacity(sessions);
    for i in 0..sessions {
        let session = server.session(TENANTS[i % TENANTS.len()]).expect("session");
        let v = Vector::from_vec(&rt, seeded(len, i as u64));
        handles.push(
            session
                .submit_vec(&v.lazy().map(&saxpyish))
                .expect("submit"),
        );
    }
    server.flush();
    let mut checksum = 0u64;
    let mut latencies = Vec::with_capacity(sessions);
    for handle in handles {
        let (out, report) = handle.wait().expect("job result");
        for x in &out {
            checksum = checksum.rotate_left(7).wrapping_add(u64::from(x.to_bits()));
        }
        latencies.push(report.latency().as_secs_f64());
    }
    let wall_secs = wall_start.elapsed().as_secs_f64();
    let virt_secs = (rt.now() - virt_start).as_secs_f64();
    latencies.sort_by(f64::total_cmp);

    let trace = server.trace();
    assert_eq!(trace.jobs_completed, sessions + 1, "all jobs must complete");
    ScaleResult {
        sessions,
        coalesced: coalescing,
        wall_jps: sessions as f64 / wall_secs,
        virt_jps: sessions as f64 / virt_secs,
        p50_virt_us: percentile(&latencies, 50) * 1e6,
        p99_virt_us: percentile(&latencies, 99) * 1e6,
        launches: total_launches(&rt.exec_trace()) - launches_before,
        packed_batches: trace.packed_batches,
        checksum,
        virt_secs,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_serving.json".to_string());

    let host_cpus = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    let len = if smoke { 16 } else { 64 };
    let scales = [1usize, 100, 1_000, 10_000];

    let mut rows: Vec<ScaleResult> = Vec::new();
    for &sessions in &scales {
        let on = run_scale(sessions, true, len);
        let off = run_scale(sessions, false, len);
        assert_eq!(
            on.checksum, off.checksum,
            "coalesced and uncoalesced results must be bit-identical"
        );
        if sessions > 1 {
            assert!(
                on.launches < off.launches,
                "coalescing must reduce launches at {sessions} sessions: {} vs {}",
                on.launches,
                off.launches
            );
        }
        rows.push(on);
        rows.push(off);
    }

    // Determinism: a fixed submission order is bit-identical — results and
    // the virtual clock — across repetitions.
    let rep_a = run_scale(100, true, len);
    let rep_b = run_scale(100, true, len);
    assert_eq!(rep_a.checksum, rep_b.checksum, "result determinism");
    assert_eq!(
        rep_a.virt_secs.to_bits(),
        rep_b.virt_secs.to_bits(),
        "virtual-time determinism"
    );

    println!("host_cpus = {host_cpus}");
    for r in &rows {
        println!(
            "{:>6} sessions  {}  {:>10.0} jobs/s wall  {:>12.0} jobs/s virtual  p50 {:>8.2} us  p99 {:>8.2} us  {:>6} launches ({} packed batches)",
            r.sessions,
            if r.coalesced { "coalesced  " } else { "uncoalesced" },
            r.wall_jps,
            r.virt_jps,
            r.p50_virt_us,
            r.p99_virt_us,
            r.launches,
            r.packed_batches,
        );
    }

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"bench\": \"serving\",\n");
    json.push_str(&format!("  \"smoke\": {smoke},\n"));
    json.push_str(&format!("  \"host_cpus\": {host_cpus},\n"));
    json.push_str(
        "  \"generated_by\": \"cargo run --release -p skelcl_bench --bin serving_bench\",\n",
    );
    json.push_str(&format!("  \"elements_per_job\": {len},\n"));
    json.push_str(
        "  \"note\": \"4 tenants (weights 1-4) on 2 simulated devices, one elementwise job per session; latencies are virtual (admission to completion); coalesced and uncoalesced results are bit-identical and a fixed submission order is deterministic across reps (asserted)\",\n",
    );
    json.push_str("  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let comma = if i + 1 < rows.len() { "," } else { "" };
        json.push_str(&format!(
            "    {{ \"sessions\": {}, \"coalesced\": {}, \"wall_jobs_per_sec\": {:.0}, \"virtual_jobs_per_sec\": {:.0}, \"p50_virtual_us\": {:.2}, \"p99_virtual_us\": {:.2}, \"launches\": {}, \"packed_batches\": {} }}{comma}\n",
            r.sessions,
            r.coalesced,
            r.wall_jps,
            r.virt_jps,
            r.p50_virt_us,
            r.p99_virt_us,
            r.launches,
            r.packed_batches,
        ));
    }
    json.push_str("  ]\n}\n");
    std::fs::write(&out_path, &json).expect("write benchmark json");
    println!("wrote {out_path}");
}
