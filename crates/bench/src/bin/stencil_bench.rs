//! Stencil (MapOverlap) benchmark: device-count × halo-width sweep.
//!
//! Runs iterative stencils over a square image on 1–4 simulated devices with
//! halo widths 1, 2 and 4, plus the two shipped example workloads (3×3
//! Gaussian blur, 5-point heat diffusion), and emits `BENCH_stencil.json`
//! with virtual runtime (the simulator's cost model), halo-exchange traffic
//! and host wall time, so future PRs have a trajectory to compare against.
//!
//! Usage:
//!   cargo run --release -p skelcl_bench --bin stencil_bench
//!   cargo run --release -p skelcl_bench --bin stencil_bench -- --smoke
//!   cargo run --release -p skelcl_bench --bin stencil_bench -- --out path.json
//!
//! `--smoke` shrinks the image and sweep count so CI can use the binary as a
//! compile-and-run check (no thresholds).

use std::time::Instant;

use skelcl::{Boundary, MapOverlap, Matrix};

const GAUSSIAN_BLUR: &str = r#"
    float func(float x) {
        float acc = 4.0f * x;
        acc += 2.0f * (get(-1, 0) + get(1, 0) + get(0, -1) + get(0, 1));
        acc += get(-1, -1) + get(1, -1) + get(-1, 1) + get(1, 1);
        return acc / 16.0f;
    }
"#;

const HEAT_STEP: &str = r#"
    float func(float u, float alpha) {
        return u + alpha * (get(0, -1) + get(0, 1) + get(-1, 0) + get(1, 0) - 4.0f * u);
    }
"#;

/// A vertical box average over `2 * halo + 1` rows — the workload of the
/// halo-width sweep (wider halos read further, replicate more rows per part
/// and move more bytes per exchange).
fn vertical_box_src(halo: usize) -> String {
    let mut taps = String::from("x");
    for dy in 1..=halo {
        taps.push_str(&format!(" + get(0, -{dy}) + get(0, {dy})"));
    }
    let norm = (2 * halo + 1) as f32;
    format!("float func(float x) {{ return ({taps}) / {norm:.1}f; }}")
}

struct Row {
    workload: String,
    devices: usize,
    halo: usize,
    virtual_ms: f64,
    wall_s: f64,
    halo_transfers: usize,
    halo_kib: f64,
}

fn image(rows: usize, cols: usize) -> Vec<f32> {
    (0..rows * cols)
        .map(|i| ((i * 37 + 11) % 251) as f32 * 0.25)
        .collect()
}

/// Run `sweeps` iterative sweeps of `stencil` on `devices` devices and
/// report the virtual time, wall time and halo traffic of the launch phase
/// (setup and result download excluded from the timed region).
fn run_stencil(
    workload: &str,
    src: &str,
    halo: usize,
    alpha: Option<f32>,
    devices: usize,
    size: usize,
    sweeps: usize,
) -> Row {
    let rt = skelcl::init_gpus(devices);
    let stencil = MapOverlap::<f32, f32>::from_source(src)
        .with_halo(halo)
        .with_boundary(Boundary::Clamp);
    let m = Matrix::from_vec(&rt, size, size, image(size, size)).expect("square image");
    // Warm up: build the program and upload the parts outside the timed run.
    let warm = match alpha {
        Some(a) => stencil.run(&m).arg(a).exec(),
        None => stencil.run(&m).exec(),
    }
    .expect("stencil runs");
    drop(warm);

    let trace_before = rt.exec_trace();
    let t0 = rt.now();
    let wall = Instant::now();
    let out = match alpha {
        Some(a) => stencil.run(&m).arg(a).run_iter(sweeps),
        None => stencil.run(&m).run_iter(sweeps),
    }
    .expect("stencil runs");
    let virtual_ms = (rt.finish_all() - t0).as_nanos() as f64 / 1.0e6;
    let wall_s = wall.elapsed().as_secs_f64();
    let trace = rt.exec_trace();
    std::hint::black_box(out.to_vec().expect("download"));
    Row {
        workload: workload.to_string(),
        devices,
        halo,
        virtual_ms,
        wall_s,
        halo_transfers: trace.halo_transfers() - trace_before.halo_transfers(),
        halo_kib: (trace.halo_bytes() - trace_before.halo_bytes()) as f64 / 1024.0,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke" || a == "--quick");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_stencil.json".to_string());

    let size = if smoke { 64 } else { 512 };
    let sweeps = if smoke { 2 } else { 10 };

    let mut rows = Vec::new();
    for devices in 1..=4 {
        for halo in [1usize, 2, 4] {
            let src = vertical_box_src(halo);
            rows.push(run_stencil(
                "vertical_box",
                &src,
                halo,
                None,
                devices,
                size,
                sweeps,
            ));
        }
        rows.push(run_stencil(
            "gaussian_blur",
            GAUSSIAN_BLUR,
            1,
            None,
            devices,
            size,
            sweeps,
        ));
        rows.push(run_stencil(
            "heat_diffusion",
            HEAT_STEP,
            1,
            Some(0.2),
            devices,
            size,
            sweeps,
        ));
    }

    for r in &rows {
        println!(
            "{:<14} devices={} halo={}  virtual {:>9.3} ms  wall {:>7.3} s  halo {:>6} xfers / {:>9.1} KiB",
            r.workload, r.devices, r.halo, r.virtual_ms, r.wall_s, r.halo_transfers, r.halo_kib
        );
    }

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"bench\": \"stencil\",\n");
    json.push_str(&format!("  \"image\": \"{size}x{size}\",\n"));
    json.push_str(&format!("  \"sweeps\": {sweeps},\n"));
    json.push_str(&format!("  \"smoke\": {smoke},\n"));
    json.push_str(
        "  \"generated_by\": \"cargo run --release -p skelcl_bench --bin stencil_bench\",\n",
    );
    json.push_str("  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let comma = if i + 1 < rows.len() { "," } else { "" };
        json.push_str(&format!(
            "    {{ \"workload\": \"{}\", \"devices\": {}, \"halo\": {}, \"virtual_ms\": {:.3}, \"wall_s\": {:.4}, \"halo_transfers\": {}, \"halo_kib\": {:.1} }}{comma}\n",
            r.workload, r.devices, r.halo, r.virtual_ms, r.wall_s, r.halo_transfers, r.halo_kib
        ));
    }
    json.push_str("  ]\n}\n");
    std::fs::write(&out_path, &json).expect("write benchmark json");
    println!("wrote {out_path}");
}
