//! Fused vs unfused pipeline benchmark for the lazy plan subsystem.
//!
//! Each workload is built once as a lazy plan and executed under the default
//! `FusionPolicy::Auto` (the cost model fuses every boundary of these
//! chains) and under `FusionPolicy::Never` (one launch group per stage —
//! the eager-equivalent baseline). Both lowerings are bit-identical in
//! results; the difference is launches and intermediate containers, so the
//! harness reports wall-clock and virtual-time elements/sec side by side
//! plus the intermediate bytes fusion elided, and emits
//! `BENCH_pipeline.json`.
//!
//! Workloads: a 2-stage and a 3-stage map chain, zip∘map, and map∘reduce,
//! at 100k and 1M elements on 1–4 simulated devices.
//!
//! Usage:
//!   cargo run --release -p skelcl_bench --bin pipeline_bench
//!   cargo run --release -p skelcl_bench --bin pipeline_bench -- --smoke
//!   cargo run --release -p skelcl_bench --bin pipeline_bench -- --out path.json

use std::sync::Arc;
use std::time::Instant;

use skelcl::prelude::*;
use skelcl::FusionPolicy;

struct Row {
    workload: &'static str,
    n: usize,
    devices: usize,
    fused_wall_eps: f64,
    fused_virt_eps: f64,
    unfused_wall_eps: f64,
    unfused_virt_eps: f64,
    bytes_elided: usize,
}

fn seeded(len: usize, seed: u64) -> Vec<f32> {
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    (0..len)
        .map(|_| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 40) as f32) / 1e6
        })
        .collect()
}

/// Best-of-`reps` measurement of one pre-warmed scenario: returns (wall
/// seconds, virtual seconds) for the fastest wall-clock repetition.
fn measure(rt: &Arc<skelcl::SkelCl>, reps: usize, scenario: impl Fn()) -> (f64, f64) {
    let mut best = (f64::INFINITY, 0.0);
    for _ in 0..reps {
        let virt_start = rt.now();
        let wall_start = Instant::now();
        scenario();
        rt.finish_all();
        let wall = wall_start.elapsed().as_secs_f64();
        let virt = (rt.now() - virt_start).as_secs_f64();
        if wall < best.0 {
            best = (wall, virt);
        }
    }
    best
}

/// Run one workload at (n, devices): build the plan, warm both lowerings
/// (kernel compilation + uploads), then measure fused and unfused and read
/// the intermediate bytes one fused execution elides.
fn bench_workload(
    workload: &'static str,
    n: usize,
    devices: usize,
    reps: usize,
    run: impl Fn(&Arc<skelcl::SkelCl>, FusionPolicy),
) -> Row {
    let rt = skelcl::init_gpus(devices);
    // Warm-up: compiles the fused and per-stage kernels and uploads inputs.
    run(&rt, FusionPolicy::Auto);
    run(&rt, FusionPolicy::Never);
    rt.finish_all();
    rt.drain_events();

    let before = rt.exec_trace();
    let (fused_wall, fused_virt) = measure(&rt, reps, || run(&rt, FusionPolicy::Auto));
    let after = rt.exec_trace();
    let bytes_elided =
        (after.intermediate_bytes_elided - before.intermediate_bytes_elided) / reps.max(1);

    let (unfused_wall, unfused_virt) = measure(&rt, reps, || run(&rt, FusionPolicy::Never));

    Row {
        workload,
        n,
        devices,
        fused_wall_eps: n as f64 / fused_wall,
        fused_virt_eps: n as f64 / fused_virt,
        unfused_wall_eps: n as f64 / unfused_wall,
        unfused_virt_eps: n as f64 / unfused_virt,
        bytes_elided,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_pipeline.json".to_string());

    let host_cpus = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    let reps = if smoke { 1 } else { 3 };
    let sizes: Vec<usize> = if smoke {
        vec![10_000]
    } else {
        vec![100_000, 1_000_000]
    };

    let square = Map::<f32, f32>::from_source("float func(float x) { return x * x; }");
    let cube =
        Map::<f32, f32>::from_source("float func(float x) { return x * x * x - 2.0f * x + 1.0f; }");
    let mul = Zip::<f32, f32, f32>::from_source("float func(float x, float y) { return x * y; }");
    let sum = Reduce::<f32>::from_source("float func(float a, float b) { return a + b; }");

    let mut rows: Vec<Row> = Vec::new();
    for &n in &sizes {
        for devices in 1..=4 {
            rows.push(bench_workload("map_map", n, devices, reps, |rt, policy| {
                let v = Vector::from_vec(rt, seeded(n, 23));
                let out = v
                    .lazy()
                    .policy(policy)
                    .map(&square)
                    .map(&cube)
                    .into_vector()
                    .expect("map_map");
                std::hint::black_box(out.len());
            }));
            rows.push(bench_workload(
                "map_map_map",
                n,
                devices,
                reps,
                |rt, policy| {
                    let v = Vector::from_vec(rt, seeded(n, 29));
                    let out = v
                        .lazy()
                        .policy(policy)
                        .map(&square)
                        .map(&cube)
                        .map(&square)
                        .into_vector()
                        .expect("map_map_map");
                    std::hint::black_box(out.len());
                },
            ));
            rows.push(bench_workload("zip_map", n, devices, reps, |rt, policy| {
                let v = Vector::from_vec(rt, seeded(n, 31));
                let w = Vector::from_vec(rt, seeded(n, 37));
                let out = v
                    .lazy()
                    .policy(policy)
                    .zip(&w, &mul)
                    .map(&cube)
                    .into_vector()
                    .expect("zip_map");
                std::hint::black_box(out.len());
            }));
            rows.push(bench_workload(
                "map_reduce",
                n,
                devices,
                reps,
                |rt, policy| {
                    let v = Vector::from_vec(rt, seeded(n, 41));
                    let total = v
                        .lazy()
                        .policy(policy)
                        .map(&square)
                        .reduce(&sum)
                        .scalar()
                        .expect("map_reduce");
                    std::hint::black_box(total);
                },
            ));
        }
    }

    println!("host_cpus = {host_cpus}");
    for r in &rows {
        println!(
            "{:<12} n={:<8} {} device(s)  fused wall {:>12.0} elem/s  virtual {:>13.0} elem/s  ({:.2}x / {:.2}x vs unfused, {} B elided)",
            r.workload,
            r.n,
            r.devices,
            r.fused_wall_eps,
            r.fused_virt_eps,
            r.fused_wall_eps / r.unfused_wall_eps,
            r.fused_virt_eps / r.unfused_virt_eps,
            r.bytes_elided,
        );
    }

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"bench\": \"pipeline\",\n");
    json.push_str(&format!("  \"smoke\": {smoke},\n"));
    json.push_str(&format!("  \"host_cpus\": {host_cpus},\n"));
    json.push_str(
        "  \"generated_by\": \"cargo run --release -p skelcl_bench --bin pipeline_bench\",\n",
    );
    json.push_str("  \"units\": \"elements_per_second\",\n");
    json.push_str(
        "  \"note\": \"fused = FusionPolicy::Auto (cost model fuses every boundary of these chains), unfused = FusionPolicy::Never (one launch group per stage); results are bit-identical, intermediate_bytes_elided is per fused execution\",\n",
    );
    json.push_str("  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let comma = if i + 1 < rows.len() { "," } else { "" };
        json.push_str(&format!(
            "    {{ \"workload\": \"{}\", \"n\": {}, \"devices\": {}, \"fused_wall_eps\": {:.0}, \"fused_virtual_eps\": {:.0}, \"unfused_wall_eps\": {:.0}, \"unfused_virtual_eps\": {:.0}, \"wall_speedup\": {:.2}, \"virtual_speedup\": {:.2}, \"intermediate_bytes_elided\": {} }}{comma}\n",
            r.workload,
            r.n,
            r.devices,
            r.fused_wall_eps,
            r.fused_virt_eps,
            r.unfused_wall_eps,
            r.unfused_virt_eps,
            r.fused_wall_eps / r.unfused_wall_eps,
            r.fused_virt_eps / r.unfused_virt_eps,
            r.bytes_elided,
        ));
    }
    json.push_str("  ]\n}\n");
    std::fs::write(&out_path, &json).expect("write benchmark json");
    println!("wrote {out_path}");
}
