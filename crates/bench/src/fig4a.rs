//! Figure 4a: program size (lines of code) of the three list-mode OSEM host
//! programs, single- and multi-GPU, plus the kernel code.

use osem::{figure_4a, Implementation, LocBreakdown};

/// One bar group of Figure 4a.
#[derive(Debug, Clone, PartialEq)]
pub struct LocRow {
    /// Implementation name ("SkelCL", "OpenCL", "CUDA").
    pub implementation: &'static str,
    /// Host lines, single-GPU version.
    pub host_single: usize,
    /// Host lines, multi-GPU version.
    pub host_multi: usize,
    /// Device (kernel) lines.
    pub kernel: usize,
}

/// The paper's reported values for reference (Section IV-B).
pub fn paper_reference() -> Vec<LocRow> {
    vec![
        LocRow {
            implementation: "SkelCL",
            host_single: 18,
            host_multi: 18 + 8,
            kernel: 200,
        },
        LocRow {
            implementation: "OpenCL",
            host_single: 206,
            host_multi: 206 + 37,
            kernel: 200,
        },
        LocRow {
            implementation: "CUDA",
            host_single: 88,
            host_multi: 88 + 42,
            kernel: 200,
        },
    ]
}

/// Measure the lines of code of this repository's three implementations.
pub fn measured() -> Vec<LocRow> {
    figure_4a()
        .into_iter()
        .map(
            |(implementation, loc): (Implementation, LocBreakdown)| LocRow {
                implementation: implementation.name(),
                host_single: loc.host_single,
                host_multi: loc.host_multi_total(),
                kernel: loc.kernel,
            },
        )
        .collect()
}

/// Format the figure as a text table comparing measured against the paper.
pub fn report() -> String {
    let mut out = String::new();
    out.push_str("Figure 4a — program size of list-mode OSEM (lines of code)\n");
    out.push_str(
        "impl     | host single | host multi | kernel || paper: single | multi | kernel\n",
    );
    out.push_str(
        "---------+-------------+------------+--------++---------------+-------+-------\n",
    );
    for (m, p) in measured().iter().zip(paper_reference()) {
        out.push_str(&format!(
            "{:<8} | {:>11} | {:>10} | {:>6} || {:>13} | {:>5} | {:>6}\n",
            m.implementation,
            m.host_single,
            m.host_multi,
            m.kernel,
            p.host_single,
            p.host_multi,
            p.kernel
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measured_rows_follow_the_papers_ordering() {
        let rows = measured();
        assert_eq!(rows.len(), 3);
        let skelcl = &rows[0];
        let opencl = &rows[1];
        let cuda = &rows[2];
        assert_eq!(skelcl.implementation, "SkelCL");
        // Shape of Figure 4a: SkelCL ≪ CUDA < OpenCL for the host program,
        // and the multi-GPU delta is smallest for SkelCL.
        assert!(skelcl.host_single * 2 < cuda.host_single);
        assert!(cuda.host_single < opencl.host_single);
        assert!(skelcl.host_multi - skelcl.host_single < cuda.host_multi - cuda.host_single);
        assert!(skelcl.host_multi - skelcl.host_single < opencl.host_multi - opencl.host_single);
    }

    #[test]
    fn report_contains_all_implementations() {
        let r = report();
        assert!(r.contains("SkelCL"));
        assert!(r.contains("OpenCL"));
        assert!(r.contains("CUDA"));
    }
}
