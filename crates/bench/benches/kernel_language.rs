//! Criterion benches of the kernel-language substrate: how much the
//! runtime-compiled user-function path costs compared to native closures,
//! what a program build (and a program-cache hit) costs, and the overhead of
//! the index-map variant that needs no input upload.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use skelcl::prelude::*;

const POLY_UDF: &str = "float func(float x) { return x * x * x - 2.0f * x + 1.0f; }";

fn bench_dsl_vs_native_map(c: &mut Criterion) {
    let mut group = c.benchmark_group("dsl_vs_native_map");
    group.sample_size(20);
    for &n in &[4 * 1024usize, 64 * 1024] {
        group.bench_with_input(BenchmarkId::new("dsl_source", n), &n, |b, &n| {
            let rt = skelcl::init_gpus(2);
            let map = Map::<f32, f32>::from_source(POLY_UDF);
            let v = Vector::from_vec(&rt, vec![1.5f32; n]);
            v.map(&map).unwrap();
            b.iter(|| std::hint::black_box(v.map(&map).unwrap().len()));
        });
        group.bench_with_input(BenchmarkId::new("native_closure", n), &n, |b, &n| {
            let rt = skelcl::init_gpus(2);
            let map = Map::<f32, f32>::new(|x, _| x * x * x - 2.0 * x + 1.0);
            let v = Vector::from_vec(&rt, vec![1.5f32; n]);
            v.map(&map).unwrap();
            b.iter(|| std::hint::black_box(v.map(&map).unwrap().len()));
        });
    }
    group.finish();
}

fn bench_program_build_and_cache(c: &mut Criterion) {
    let mut group = c.benchmark_group("program_build");
    group.sample_size(30);
    let source = r#"
        float helper(float x) { return x * x; }
        __kernel void k(__global float* v, int n, float a) {
            int gid = get_global_id(0);
            if (gid < n) { v[gid] = helper(v[gid]) * a + 1.0f; }
        }
    "#;
    group.bench_function("cold_build_lex_parse_check", |b| {
        b.iter(|| std::hint::black_box(skelcl_kernel::Program::build(source).unwrap()));
    });
    group.bench_function("context_cache_hit", |b| {
        let ctx = oclsim::Context::with_gpus(1);
        ctx.build_program(source).unwrap();
        b.iter(|| std::hint::black_box(ctx.build_program(source).unwrap()));
    });
    group.bench_function("udf_analysis_and_kernel_generation", |b| {
        b.iter(|| {
            let info = skelcl::kernelgen::UdfInfo::analyze(POLY_UDF, 1).unwrap();
            std::hint::black_box(skelcl::kernelgen::map_kernel(&info).unwrap())
        });
    });
    group.finish();
}

fn bench_index_map_vs_explicit_input(c: &mut Criterion) {
    // The index map avoids allocating and uploading an input vector; this
    // ablation measures how much host-side work that saves per call.
    let mut group = c.benchmark_group("index_map");
    group.sample_size(20);
    let n = 64 * 1024;
    let udf = "int func(int i, int scale) { return i * scale; }";
    group.bench_function("run_index", |b| {
        let rt = skelcl::init_gpus(2);
        let map = Map::<i32, i32>::from_source(udf);
        map.run_index(&rt, n).arg(3i32).exec().unwrap();
        b.iter(|| std::hint::black_box(map.run_index(&rt, n).arg(3i32).exec().unwrap().len()));
    });
    group.bench_function("explicit_index_vector", |b| {
        let rt = skelcl::init_gpus(2);
        let map = Map::<i32, i32>::from_source(udf);
        b.iter(|| {
            let idx = Vector::from_vec(&rt, (0..n as i32).collect());
            std::hint::black_box(map.run(&idx).arg(3i32).exec().unwrap().len())
        });
    });
    group.finish();
}

fn bench_vm_vs_interpreter(c: &mut Criterion) {
    // The execution engines head to head on the generated map-kernel shape:
    // the bytecode VM (the engine behind every launch) against the
    // tree-walking AST interpreter it replaced (retained as the
    // differential-testing oracle).
    use skelcl_kernel::interp::{ArgBinding, BufferView};
    use skelcl_kernel::value::Value;

    let info = skelcl::kernelgen::UdfInfo::analyze(POLY_UDF, 1).unwrap();
    let kernel_src = skelcl::kernelgen::map_kernel(&info).unwrap();
    let program = skelcl_kernel::Program::build(&kernel_src).unwrap();
    let kernel = program.kernel(skelcl::kernelgen::MAP_KERNEL).unwrap();
    let n = 64 * 1024;

    let mut group = c.benchmark_group("kernel_vm_vs_interp");
    group.sample_size(10);
    group.bench_function("bytecode_vm_map_64k", |b| {
        let mut input = vec![1.5f32; n];
        let mut output = vec![0.0f32; n];
        b.iter(|| {
            let mut args = vec![
                ArgBinding::Buffer(BufferView::F32(&mut input)),
                ArgBinding::Buffer(BufferView::F32(&mut output)),
                ArgBinding::Scalar(Value::Int(n as i32)),
            ];
            std::hint::black_box(program.run_ndrange_measured(&kernel, n, &mut args).unwrap())
        });
    });
    group.bench_function("ast_interpreter_map_64k", |b| {
        let mut input = vec![1.5f32; n];
        let mut output = vec![0.0f32; n];
        b.iter(|| {
            let mut args = vec![
                ArgBinding::Buffer(BufferView::F32(&mut input)),
                ArgBinding::Buffer(BufferView::F32(&mut output)),
                ArgBinding::Scalar(Value::Int(n as i32)),
            ];
            std::hint::black_box(
                program
                    .run_ndrange_measured_interp(&kernel, n, &mut args)
                    .unwrap(),
            )
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_dsl_vs_native_map,
    bench_program_build_and_cache,
    bench_index_map_vs_explicit_input,
    bench_vm_vs_interpreter
);
criterion_main!(benches);
