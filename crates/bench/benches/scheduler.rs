//! Criterion bench of the Section V scheduling machinery: performance-model
//! prediction cost and the even vs weighted distribution ablation.

use criterion::{criterion_group, criterion_main, Criterion};

use skelcl::prelude::*;
use skelcl::{PerfModel, StaticScheduler};

fn bench_prediction(c: &mut Criterion) {
    let rt = skelcl::init_profiles(skelcl_bench::sched::heterogeneous_profiles());
    let model = PerfModel::analytical(&rt);
    c.bench_function("perf_model_weights", |b| {
        b.iter(|| std::hint::black_box(model.weights(CostHint::new(64.0, 8.0))));
    });
    let scheduler = StaticScheduler::analytical(&rt);
    c.bench_function("final_reduce_placement", |b| {
        b.iter(|| {
            std::hint::black_box(
                scheduler
                    .final_reduce_placement(4, 4, CostHint::new(1.0, 8.0))
                    .unwrap(),
            )
        });
    });
}

fn bench_even_vs_weighted(c: &mut Criterion) {
    let mut group = c.benchmark_group("heterogeneous_map_100k");
    group.sample_size(10);
    let udf = "float func(float x) { float acc = x; for (int i = 0; i < 16; i++) { acc = acc * 1.01f + 0.5f; } return acc; }";

    group.bench_function("even_block", |b| {
        let rt = skelcl::init_profiles(skelcl_bench::sched::heterogeneous_profiles());
        let map = Map::<f32, f32>::from_source(udf);
        let v = Vector::from_vec(&rt, vec![1.0f32; 100_000]);
        v.map(&map).unwrap();
        b.iter(|| std::hint::black_box(v.map(&map).unwrap().len()));
    });
    group.bench_function("scheduler_weighted", |b| {
        let rt = skelcl::init_profiles(skelcl_bench::sched::heterogeneous_profiles());
        let scheduler = StaticScheduler::analytical(&rt);
        let map = Map::<f32, f32>::from_source(udf);
        let v = Vector::from_vec(&rt, vec![1.0f32; 100_000]);
        v.set_distribution(scheduler.weighted_block(CostHint::new(40.0, 8.0)))
            .unwrap();
        v.map(&map).unwrap();
        b.iter(|| std::hint::black_box(v.map(&map).unwrap().len()));
    });
    group.finish();
}

criterion_group!(benches, bench_prediction, bench_even_vs_weighted);
criterion_main!(benches);
