//! Criterion benches of the dOpenCL layer (Section V): the cost of driving
//! skeletons over many (simulated) remote devices compared to a local
//! multi-GPU system, and the host-side cost of the network model itself.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use dopencl::{Cluster, NetworkModel, Node};
use skelcl::prelude::*;

fn run_map_once(v: &Vector<f32>, map: &Map<f32, f32>) {
    let out = v.map(map).unwrap();
    std::hint::black_box(out.len());
}

fn bench_local_vs_cluster(c: &mut Criterion) {
    let mut group = c.benchmark_group("local_vs_cluster_map");
    group.sample_size(20);
    let n = 128 * 1024;

    group.bench_function("local_4_gpus", |b| {
        let rt = skelcl::init_gpus(4);
        let map = Map::<f32, f32>::from_source("float func(float x) { return x * 0.5f + 1.0f; }");
        let v = Vector::from_vec(&rt, vec![1.0f32; n]);
        v.map(&map).unwrap();
        b.iter(|| run_map_once(&v, &map));
    });

    group.bench_function("cluster_8_gpus_3_cpus", |b| {
        let cluster = Cluster::lab_cluster();
        let rt = skelcl::init_profiles(cluster.device_profiles());
        let map = Map::<f32, f32>::from_source("float func(float x) { return x * 0.5f + 1.0f; }");
        let v = Vector::from_vec(&rt, vec![1.0f32; n]);
        v.map(&map).unwrap();
        b.iter(|| run_map_once(&v, &map));
    });
    group.finish();
}

fn bench_cluster_assembly_and_network_model(c: &mut Criterion) {
    let mut group = c.benchmark_group("dopencl_model");
    group.bench_function("assemble_lab_cluster", |b| {
        b.iter(|| std::hint::black_box(Cluster::lab_cluster().device_count()));
    });
    group.bench_function("assemble_custom_cluster", |b| {
        b.iter(|| {
            let cluster = Cluster::new(NetworkModel::ten_gigabit_ethernet())
                .with_node(Node::tesla_s1070_server("a"))
                .with_node(Node::dual_gpu_server("b"))
                .with_node(Node::dual_gpu_server("c"));
            std::hint::black_box(cluster.gpu_profiles().len())
        });
    });
    for (name, network) in [
        ("gigabit", NetworkModel::gigabit_ethernet()),
        ("ten_gigabit", NetworkModel::ten_gigabit_ethernet()),
        ("infiniband", NetworkModel::infiniband_qdr()),
    ] {
        group.bench_with_input(
            BenchmarkId::new("transfer_time_model", name),
            &network,
            |b, network| {
                b.iter(|| {
                    let mut acc = 0u64;
                    for bytes in [1usize << 10, 1 << 16, 1 << 20, 1 << 26] {
                        acc = acc.wrapping_add(network.transfer_time(bytes).as_nanos());
                    }
                    std::hint::black_box(acc)
                });
            },
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_local_vs_cluster,
    bench_cluster_assembly_and_network_model
);
criterion_main!(benches);
