//! Criterion benches of the core skeletons: wall-clock cost of the SkelCL
//! layer itself (dispatch, kernel-source generation, coherence tracking) and
//! the scaling of the generated execution plans with the device count.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use skelcl::prelude::*;

fn bench_map(c: &mut Criterion) {
    let mut group = c.benchmark_group("map_skeleton");
    group.sample_size(20);
    for devices in [1usize, 2, 4] {
        group.bench_with_input(
            BenchmarkId::new("square_64k", devices),
            &devices,
            |b, &devices| {
                let rt = skelcl::init_gpus(devices);
                let map = Map::<f32, f32>::from_source("float func(float x) { return x * x; }");
                let v = Vector::from_vec(&rt, vec![1.5f32; 64 * 1024]);
                // Build the kernel and upload once.
                v.map(&map).unwrap();
                b.iter(|| {
                    let out = v.map(&map).unwrap();
                    std::hint::black_box(out.len());
                });
            },
        );
    }
    group.finish();
}

fn bench_zip_saxpy(c: &mut Criterion) {
    let mut group = c.benchmark_group("zip_saxpy");
    group.sample_size(20);
    for devices in [1usize, 4] {
        group.bench_with_input(
            BenchmarkId::from_parameter(devices),
            &devices,
            |b, &devices| {
                let rt = skelcl::init_gpus(devices);
                let saxpy = Zip::<f32, f32, f32>::from_source(
                    "float func(float x, float y, float a) { return a * x + y; }",
                );
                let x = Vector::from_vec(&rt, vec![1.0f32; 64 * 1024]);
                let y = Vector::from_vec(&rt, vec![2.0f32; 64 * 1024]);
                saxpy.run(&x, &y).arg(2.0f32).exec().unwrap();
                b.iter(|| {
                    let out = saxpy.run(&x, &y).arg(2.0f32).exec().unwrap();
                    std::hint::black_box(out.len());
                });
            },
        );
    }
    group.finish();
}

fn bench_reduce_and_scan(c: &mut Criterion) {
    let mut group = c.benchmark_group("reduce_scan");
    group.sample_size(20);
    for devices in [1usize, 4] {
        group.bench_with_input(
            BenchmarkId::new("reduce_sum_64k", devices),
            &devices,
            |b, &devices| {
                let rt = skelcl::init_gpus(devices);
                let sum =
                    Reduce::<f32>::from_source("float func(float a, float b) { return a + b; }");
                let v = Vector::from_vec(&rt, vec![1.0f32; 64 * 1024]);
                v.reduce(&sum).unwrap();
                b.iter(|| std::hint::black_box(v.reduce(&sum).unwrap()));
            },
        );
        group.bench_with_input(
            BenchmarkId::new("scan_sum_16k", devices),
            &devices,
            |b, &devices| {
                let rt = skelcl::init_gpus(devices);
                let scan =
                    Scan::<f32>::from_source("float func(float a, float b) { return a + b; }");
                let v = Vector::from_vec(&rt, vec![1.0f32; 16 * 1024]);
                v.scan(&scan).unwrap();
                b.iter(|| std::hint::black_box(v.scan(&scan).unwrap().len()));
            },
        );
    }
    group.finish();
}

fn bench_redistribution(c: &mut Criterion) {
    // Ablation for the distribution mechanism (Figure 1 / Section III-A):
    // cost of switching a 256k-element vector between distributions.
    let mut group = c.benchmark_group("redistribution");
    group.sample_size(20);
    group.bench_function("block_to_copy_to_block_4gpus", |b| {
        let rt = skelcl::init_gpus(4);
        let v = Vector::from_vec(&rt, vec![1.0f32; 256 * 1024]);
        v.copy_data_to_devices().unwrap();
        b.iter(|| {
            v.set_distribution(Distribution::Copy).unwrap();
            v.copy_data_to_devices().unwrap();
            v.set_distribution(Distribution::Block).unwrap();
            v.copy_data_to_devices().unwrap();
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_map,
    bench_zip_saxpy,
    bench_reduce_and_scan,
    bench_redistribution
);
criterion_main!(benches);
