//! Criterion bench of the Mandelbrot application: SkelCL map skeleton vs the
//! low-level implementation vs the sequential reference.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use mandelbrot::{render_lowlevel, render_sequential, render_skelcl, MandelbrotConfig};

fn bench_mandelbrot(c: &mut Criterion) {
    let config = MandelbrotConfig {
        width: 256,
        height: 192,
        max_iterations: 100,
        ..MandelbrotConfig::test_scale()
    };
    let mut group = c.benchmark_group("mandelbrot_256x192");
    group.sample_size(10);

    group.bench_function("sequential", |b| {
        b.iter(|| std::hint::black_box(render_sequential(&config).len()));
    });
    for devices in [1usize, 4] {
        group.bench_with_input(
            BenchmarkId::new("skelcl", devices),
            &devices,
            |b, &devices| {
                let rt = skelcl::init_gpus(devices);
                render_skelcl(&rt, &config).unwrap();
                b.iter(|| std::hint::black_box(render_skelcl(&rt, &config).unwrap().len()));
            },
        );
        group.bench_with_input(
            BenchmarkId::new("lowlevel", devices),
            &devices,
            |b, &devices| {
                b.iter(|| std::hint::black_box(render_lowlevel(devices, &config).unwrap().len()));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_mandelbrot);
criterion_main!(benches);
