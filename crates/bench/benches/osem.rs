//! Criterion bench behind Figure 4b: one list-mode OSEM subset iteration for
//! the three implementations on 1, 2 and 4 GPUs (wall-clock of the simulated
//! run; the virtual-time figure itself is produced by the `fig4b_runtime`
//! binary).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use osem::{sequential, CudaOsem, OpenClOsem, ReconstructionConfig, SkelclOsem};
use skelcl::prelude::*;
use skelcl::DeviceSelection;

fn config() -> ReconstructionConfig {
    ReconstructionConfig::test_scale().with_events_per_subset(5_000)
}

fn bench_osem_subset(c: &mut Criterion) {
    let cfg = config();
    let subsets = sequential::generate_subsets(&cfg);
    let subset = &subsets[0];

    let mut group = c.benchmark_group("osem_subset_iteration");
    group.sample_size(10);
    for gpus in [1usize, 2, 4] {
        group.bench_with_input(BenchmarkId::new("skelcl", gpus), &gpus, |b, &gpus| {
            let rt = skelcl::SkelCl::init(DeviceSelection::Gpus(gpus));
            let osem = SkelclOsem::new(rt.clone(), cfg.clone());
            osem.warmup(subset).unwrap();
            b.iter(|| {
                let mut f = Vector::filled(&rt, cfg.volume.voxel_count(), 1.0f32);
                osem.process_subset(subset, &mut f).unwrap();
                std::hint::black_box(f.len());
            });
        });
        group.bench_with_input(BenchmarkId::new("opencl", gpus), &gpus, |b, &gpus| {
            let osem = OpenClOsem::new(gpus, cfg.clone()).unwrap();
            b.iter(|| {
                let mut f = vec![1.0f32; cfg.volume.voxel_count()];
                osem.process_subset(subset, &mut f).unwrap();
                std::hint::black_box(f.len());
            });
        });
        group.bench_with_input(BenchmarkId::new("cuda", gpus), &gpus, |b, &gpus| {
            let osem = CudaOsem::new(gpus, cfg.clone()).unwrap();
            b.iter(|| {
                let mut f = vec![1.0f32; cfg.volume.voxel_count()];
                osem.process_subset(subset, &mut f).unwrap();
                std::hint::black_box(f.len());
            });
        });
    }
    group.finish();
}

fn bench_siddon(c: &mut Criterion) {
    // The sequential building block: path computation per event.
    let cfg = config();
    let events = sequential::generate_subsets(&cfg)[0].clone();
    c.bench_function("siddon_path_per_event", |b| {
        let mut path = Vec::new();
        let mut i = 0usize;
        b.iter(|| {
            osem::siddon::compute_path_into(&cfg.volume, &events[i % events.len()], &mut path);
            i += 1;
            std::hint::black_box(path.len());
        });
    });
}

criterion_group!(benches, bench_osem_subset, bench_siddon);
criterion_main!(benches);
