//! Property tests of the unified container layer: element-wise skeletons
//! over `Matrix` must be bit-identical to scalar host references on any
//! device count, and the shared `Storage` coherence core must reproduce the
//! exact transfer behaviour the `Vector` machinery had before the refactor
//! (same event counts, same bytes, same laziness).

use proptest::prelude::*;

use skelcl::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// `Map` over a matrix is bit-identical to the scalar host reference —
    /// the same f32 operation applied element-wise — on 1 to 4 devices.
    #[test]
    fn map_over_matrix_is_bit_identical_to_the_host_reference(
        rows in 1usize..=9,
        cols in 1usize..=7,
        devices in 1usize..=4,
        data in prop::collection::vec(-1.0e3f32..1.0e3, 63..64),
    ) {
        let rt = skelcl::init_gpus(devices);
        let elems: Vec<f32> = (0..rows * cols).map(|i| data[i % data.len()]).collect();
        let m = Matrix::from_vec(&rt, rows, cols, elems.clone()).unwrap();
        let affine = Map::<f32, f32>::from_source(
            "float func(float x, float a) { return a * x + 1.5f; }",
        );
        let out = affine.run(&m).arg(0.75f32).exec().unwrap();
        prop_assert_eq!(out.rows(), rows);
        prop_assert_eq!(out.cols(), cols);
        let got: Vec<u32> = out.to_vec().unwrap().iter().map(|x| x.to_bits()).collect();
        let expected: Vec<u32> = elems
            .iter()
            .map(|x| (0.75f32 * x + 1.5f32).to_bits())
            .collect();
        prop_assert_eq!(got, expected, "devices = {}", devices);
    }

    /// `Zip` over two equal-shaped matrices is bit-identical to the scalar
    /// host reference on 1 to 4 devices.
    #[test]
    fn zip_over_matrices_is_bit_identical_to_the_host_reference(
        rows in 1usize..=9,
        cols in 1usize..=7,
        devices in 1usize..=4,
        a in prop::collection::vec(-50.0f32..50.0, 63..64),
        b in prop::collection::vec(-50.0f32..50.0, 63..64),
    ) {
        let rt = skelcl::init_gpus(devices);
        let xs: Vec<f32> = (0..rows * cols).map(|i| a[i % a.len()]).collect();
        let ys: Vec<f32> = (0..rows * cols).map(|i| b[i % b.len()]).collect();
        let mx = Matrix::from_vec(&rt, rows, cols, xs.clone()).unwrap();
        let my = Matrix::from_vec(&rt, rows, cols, ys.clone()).unwrap();
        let saxpy = Zip::<f32, f32, f32>::from_source(
            "float func(float x, float y, float a) { return a * x + y; }",
        );
        let out = saxpy.run(&mx, &my).arg(2.0f32).exec().unwrap();
        let got: Vec<u32> = out.to_vec().unwrap().iter().map(|x| x.to_bits()).collect();
        let expected: Vec<u32> = xs
            .iter()
            .zip(&ys)
            .map(|(x, y)| (2.0f32 * x + y).to_bits())
            .collect();
        prop_assert_eq!(got, expected, "devices = {}", devices);
        prop_assert_eq!(out.rows(), rows);
    }

    /// `Reduce` over a matrix equals the reduce over the flattened vector —
    /// both run through the identical container launch path.
    #[test]
    fn reduce_over_matrix_matches_the_flat_vector_reduce(
        rows in 1usize..=9,
        cols in 1usize..=7,
        devices in 1usize..=4,
        data in prop::collection::vec(-10.0f32..10.0, 63..64),
    ) {
        let rt = skelcl::init_gpus(devices);
        let elems: Vec<f32> = (0..rows * cols).map(|i| data[i % data.len()]).collect();
        let m = Matrix::from_vec(&rt, rows, cols, elems.clone()).unwrap();
        let sum = Reduce::<f32>::from_source("float func(float a, float b) { return a + b; }");
        let from_matrix = sum.run(&m).scalar().unwrap();

        // Host reference folding in the engine's exact association: a
        // sequential f32 fold per row-block part, then a fold of the
        // partials in device order (the paper's three-step strategy).
        let mut idx = 0;
        let mut partials = Vec::new();
        for rows_on_device in m.row_counts() {
            let n = rows_on_device * cols;
            if n == 0 {
                continue;
            }
            let part = &elems[idx..idx + n];
            idx += n;
            let mut acc = part[0];
            for x in &part[1..] {
                acc += *x;
            }
            partials.push(acc);
        }
        let mut expected = partials[0];
        for p in &partials[1..] {
            expected += *p;
        }
        prop_assert_eq!(from_matrix.to_bits(), expected.to_bits());

        // On one device the matrix reduce and the flat vector reduce share
        // one association and must agree bit for bit.
        if devices == 1 {
            let v = Vector::from_vec(&rt, elems);
            let from_vector = sum.run(&v).scalar().unwrap();
            prop_assert_eq!(from_matrix.to_bits(), from_vector.to_bits());
        }
    }

    /// The `Storage` coherence state machine behaves identically behind a
    /// vector and a matrix: same transition sequence (host-dirty → devices →
    /// gather), same number of transfer events, same bytes moved.
    #[test]
    fn storage_coherence_transitions_match_between_vector_and_matrix(
        rows in 1usize..=8,
        cols in 1usize..=6,
        devices in 1usize..=4,
    ) {
        let len = rows * cols;
        let data: Vec<f32> = (0..len).map(|i| i as f32).collect();

        // Vector run: upload (lazy) then gather.
        let rt_v = skelcl::init_gpus(devices);
        let v = Vector::from_vec(&rt_v, data.clone());
        rt_v.drain_events();
        v.copy_data_to_devices().unwrap();
        v.mark_device_modified();
        let _ = v.to_vec().unwrap();
        let vector_events: Vec<(bool, usize)> = rt_v
            .drain_events()
            .iter()
            .flatten()
            .filter(|e| e.is_transfer())
            .map(|e| (e.is_read(), e.bytes))
            .collect();

        // Matrix run over the identical element space (RowBlock splits rows;
        // with cols dividing every part the element partitions coincide only
        // when rows split evenly, so compare totals and counts, not offsets).
        let rt_m = skelcl::init_gpus(devices);
        let m = Matrix::from_vec(&rt_m, rows, cols, data).unwrap();
        rt_m.drain_events();
        m.ensure_on_devices().unwrap();
        m.mark_device_modified();
        let _ = m.to_vec().unwrap();
        let matrix_events: Vec<(bool, usize)> = rt_m
            .drain_events()
            .iter()
            .flatten()
            .filter(|e| e.is_transfer())
            .map(|e| (e.is_read(), e.bytes))
            .collect();

        // One upload + one download per active device, identical total bytes.
        let total =
            |evs: &[(bool, usize)], read: bool| -> usize {
                evs.iter().filter(|(r, _)| *r == read).map(|(_, b)| b).sum()
            };
        prop_assert_eq!(total(&vector_events, false), len * 4, "vector uploads");
        prop_assert_eq!(total(&matrix_events, false), len * 4, "matrix uploads");
        prop_assert_eq!(total(&vector_events, true), len * 4, "vector downloads");
        prop_assert_eq!(total(&matrix_events, true), len * 4, "matrix downloads");

        // The active-device counts may differ (row-granular vs element-
        // granular splits), but each container must move each element exactly
        // once per direction — no duplicate or partial transfers.
        prop_assert!(vector_events.len() <= 2 * devices);
        prop_assert!(matrix_events.len() <= 2 * devices);
    }

    /// Chained element-wise skeletons over matrices stay on the devices: no
    /// host transfers between a map and a following zip/reduce (the lazy
    /// coherence contract the vector always had).
    #[test]
    fn chained_matrix_skeletons_move_no_data(
        rows in 1usize..=9,
        cols in 1usize..=7,
        devices in 1usize..=4,
    ) {
        let rt = skelcl::init_gpus(devices);
        let m = Matrix::from_fn(&rt, rows, cols, |r, c| (r * cols + c) as f32);
        let inc = Map::<f32, f32>::from_source("float func(float x) { return x + 1.0f; }");
        let add = Zip::<f32, f32, f32>::from_source(
            "float func(float a, float b) { return a + b; }",
        );
        let sum = Reduce::<f32>::from_source("float func(float a, float b) { return a + b; }");

        let a = m.map(&inc).unwrap();
        rt.drain_events();
        let b = a.map(&inc).unwrap();
        let c = a.zip(&b, &add).unwrap();
        let chained_transfers: usize = rt
            .drain_events()
            .iter()
            .flatten()
            .filter(|e| e.is_transfer())
            .count();
        prop_assert_eq!(
            chained_transfers,
            0,
            "chained matrix skeletons must not touch the host"
        );
        // Reduce legitimately gathers one partial per active device.
        // c[i] = (e + 1) + (e + 2) with e = i, so the sum is 2·Σe + 3n.
        let total = c.reduce(&sum).unwrap();
        let n = (rows * cols) as f32;
        let base: f32 = (0..rows * cols).map(|i| i as f32).sum();
        prop_assert!((total - (2.0 * base + 3.0 * n)).abs() < n * 1e-2);
    }
}

#[test]
fn matrix_map_works_on_every_acceptance_device_count() {
    // The acceptance matrix of the container refactor: Map and Zip over
    // Matrix<f32> on 1, 2 and 4 devices, bit-identical to the host.
    for devices in [1usize, 2, 4] {
        let rt = skelcl::init_gpus(devices);
        let rows = 33;
        let cols = 17;
        let m = Matrix::from_fn(&rt, rows, cols, |r, c| {
            ((r * 31 + c * 7) % 101) as f32 - 50.0
        });
        let host = m.to_vec().unwrap();

        let square = Map::<f32, f32>::from_source("float func(float x) { return x * x; }");
        let squared = m.map(&square).unwrap();
        let got: Vec<u32> = squared
            .to_vec()
            .unwrap()
            .iter()
            .map(|x| x.to_bits())
            .collect();
        let expected: Vec<u32> = host.iter().map(|x| (x * x).to_bits()).collect();
        assert_eq!(got, expected, "map, devices = {devices}");

        let sub =
            Zip::<f32, f32, f32>::from_source("float func(float a, float b) { return a - b; }");
        let diff = squared.zip(&m, &sub).unwrap();
        let got: Vec<u32> = diff.to_vec().unwrap().iter().map(|x| x.to_bits()).collect();
        let expected: Vec<u32> = host.iter().map(|x| (x * x - x).to_bits()).collect();
        assert_eq!(got, expected, "zip, devices = {devices}");
    }
}

#[test]
fn run_into_over_matrices_allocates_nothing_in_steady_state() {
    let rt = skelcl::init_gpus(2);
    let inc = Map::<f32, f32>::from_source("float func(float x) { return x + 1.0f; }");
    let m = Matrix::filled(&rt, 16, 8, 0.0f32);
    let out = Matrix::filled(&rt, 16, 8, 0.0f32);
    // Warm up both containers' device buffers.
    inc.run(&m).run_into(&out).unwrap();
    let live_before: usize = (0..2)
        .map(|d| rt.context().device(d).unwrap().live_buffers())
        .sum();
    for _ in 0..5 {
        inc.run(&m).run_into(&out).unwrap();
    }
    let live_after: usize = (0..2)
        .map(|d| rt.context().device(d).unwrap().live_buffers())
        .sum();
    assert_eq!(
        live_before, live_after,
        "steady-state run_into must reuse the target's buffers"
    );
    assert_eq!(out.to_vec().unwrap(), vec![1.0f32; 128]);
}

#[test]
fn exec_trace_telemetry_flows_through_the_container_path() {
    let rt = skelcl::init_gpus(2);
    let inc = Map::<f32, f32>::from_source("float func(float x) { return x + 1.0f; }");
    let v = Vector::from_vec(&rt, vec![1.0f32; 8]);
    let m = Matrix::filled(&rt, 4, 2, 1.0f32);
    let calls_before = rt.exec_trace().skeleton_calls;
    let _ = v.map(&inc).unwrap();
    let _ = m.map(&inc).unwrap();
    let trace = rt.exec_trace();
    assert_eq!(
        trace.skeleton_calls,
        calls_before + 2,
        "vector and matrix launches charge the same skeleton-call counter"
    );
    assert_eq!(trace.programs_built, 1, "both launches share one program");
}
