//! Differential and property tests of the lazy plan subsystem: every fused
//! pipeline must be **bit-identical** to the unfused (`FusionPolicy::Never`)
//! lowering, to the eager skeleton sequence, and to a host interpreter
//! oracle — over 1–4 devices and every vector distribution — and the fusion
//! telemetry (`ExecTrace`) must account exactly for what fusion elided.

use proptest::prelude::*;

use skelcl::prelude::*;
use skelcl::{args, FusionPolicy, SkelError};

fn square() -> Map<f32, f32> {
    Map::from_source("float func(float x) { return x * x; }")
}

fn affine() -> Map<f32, f32> {
    Map::from_source("float func(float x, float a, float b) { return a * x + b; }")
}

fn mul() -> Zip<f32, f32, f32> {
    Zip::from_source("float func(float x, float y) { return x * y; }")
}

fn sum() -> Reduce<f32> {
    Reduce::from_source("float func(float a, float b) { return a + b; }")
}

fn psum() -> Scan<f32> {
    Scan::from_source("float func(float a, float b) { return a + b; }")
}

fn bits(v: &[f32]) -> Vec<u32> {
    v.iter().map(|x| x.to_bits()).collect()
}

fn apply_distribution(v: &Vector<f32>, which: usize, devices: usize) {
    let dist = match which % 4 {
        0 => Distribution::Block,
        1 => Distribution::Copy,
        2 => Distribution::Single(which % devices),
        _ => {
            Distribution::block_weighted(&(0..devices).map(|d| 1.0 + d as f64).collect::<Vec<_>>())
        }
    };
    v.set_distribution(dist).unwrap();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// map∘map∘map fused is bit-identical to the unfused lowering, the eager
    /// chain and the host oracle, on 1–4 devices and every distribution.
    #[test]
    fn fused_map_chain_matches_unfused_eager_and_oracle(
        devices in 1usize..=4,
        dist in 0usize..4,
        data in prop::collection::vec(-1.0e2f32..1.0e2, 1..96),
    ) {
        let rt = skelcl::init_gpus(devices);
        let v = Vector::from_vec(&rt, data.clone());
        apply_distribution(&v, dist, devices);
        let sq = square();
        let af = affine();
        let plan = v.lazy()
            .map(&sq)
            .map_with(&af, args![0.5f32, 1.0f32])
            .map(&sq);
        let fused = plan.collect().unwrap();
        let unfused = plan.clone().policy(FusionPolicy::Never).collect().unwrap();
        let eager = v
            .map(&sq).unwrap()
            .map_with(&af, args![0.5f32, 1.0f32]).unwrap()
            .map(&sq).unwrap()
            .to_vec().unwrap();
        let oracle: Vec<f32> = data
            .iter()
            .map(|&x| { let a = x * x; let b = 0.5f32 * a + 1.0f32; b * b })
            .collect();
        prop_assert_eq!(bits(&fused), bits(&oracle), "fused vs oracle, devices={}", devices);
        prop_assert_eq!(bits(&unfused), bits(&oracle), "unfused vs oracle");
        prop_assert_eq!(bits(&eager), bits(&oracle), "eager vs oracle");
    }

    /// zip∘map fused is bit-identical to unfused, eager and oracle, with the
    /// second input under an independent distribution (forces unification).
    #[test]
    fn fused_zip_map_matches_unfused_eager_and_oracle(
        devices in 1usize..=4,
        dist_a in 0usize..4,
        dist_b in 0usize..4,
        data in prop::collection::vec(-50.0f32..50.0, 1..96),
    ) {
        let rt = skelcl::init_gpus(devices);
        let ys: Vec<f32> = data.iter().map(|x| x + 3.0).collect();
        let v = Vector::from_vec(&rt, data.clone());
        let w = Vector::from_vec(&rt, ys.clone());
        apply_distribution(&v, dist_a, devices);
        apply_distribution(&w, dist_b, devices);
        let sq = square();
        let m = mul();
        let plan = v.lazy().zip(&w, &m).map(&sq);
        let fused = plan.collect().unwrap();
        let unfused = plan.clone().policy(FusionPolicy::Never).collect().unwrap();
        let eager = v.zip(&w, &m).unwrap().map(&sq).unwrap().to_vec().unwrap();
        let oracle: Vec<f32> = data.iter().zip(&ys)
            .map(|(&x, &y)| { let p = x * y; p * p })
            .collect();
        prop_assert_eq!(bits(&fused), bits(&oracle));
        prop_assert_eq!(bits(&unfused), bits(&oracle));
        prop_assert_eq!(bits(&eager), bits(&oracle));
    }

    /// map∘reduce fused (the chain inlined into the fold's first phase) is
    /// bit-identical to unfused and eager; on one device the sequential host
    /// left fold is the oracle.
    #[test]
    fn fused_map_reduce_matches_unfused_eager_and_oracle(
        devices in 1usize..=4,
        dist in 0usize..4,
        data in prop::collection::vec(-10.0f32..10.0, 1..96),
    ) {
        let rt = skelcl::init_gpus(devices);
        let v = Vector::from_vec(&rt, data.clone());
        apply_distribution(&v, dist, devices);
        let sq = square();
        let s = sum();
        let plan = v.lazy().map(&sq).reduce(&s);
        let fused = plan.scalar().unwrap();
        let unfused = plan.clone().policy(FusionPolicy::Never).scalar().unwrap();
        let eager = v.map(&sq).unwrap().reduce(&s).unwrap();
        prop_assert_eq!(fused.to_bits(), eager.to_bits(), "fused vs eager, devices={}", devices);
        prop_assert_eq!(unfused.to_bits(), eager.to_bits(), "unfused vs eager");
        if devices == 1 {
            let mut acc: Option<f32> = None;
            for &x in &data {
                let y = x * x;
                acc = Some(match acc { None => y, Some(a) => a + y });
            }
            prop_assert_eq!(fused.to_bits(), acc.unwrap().to_bits(), "fused vs oracle");
        }
    }

    /// map∘scan fused is bit-identical to unfused and eager; on one device
    /// the sequential inclusive scan is the oracle.
    #[test]
    fn fused_map_scan_matches_unfused_eager_and_oracle(
        devices in 1usize..=4,
        dist in 0usize..4,
        data in prop::collection::vec(-10.0f32..10.0, 1..96),
    ) {
        let rt = skelcl::init_gpus(devices);
        let v = Vector::from_vec(&rt, data.clone());
        apply_distribution(&v, dist, devices);
        let sq = square();
        let p = psum();
        let plan = v.lazy().map(&sq).scan(&p);
        let fused = plan.collect().unwrap();
        let unfused = plan.clone().policy(FusionPolicy::Never).collect().unwrap();
        let eager = v.map(&sq).unwrap().scan(&p).unwrap().to_vec().unwrap();
        prop_assert_eq!(bits(&fused), bits(&eager), "fused vs eager, devices={}", devices);
        prop_assert_eq!(bits(&unfused), bits(&eager), "unfused vs eager");
        if devices == 1 {
            let mut acc: Option<f32> = None;
            let oracle: Vec<f32> = data.iter().map(|&x| {
                let y = x * x;
                let s = match acc { None => y, Some(a) => a + y };
                acc = Some(s);
                s
            }).collect();
            prop_assert_eq!(bits(&fused), bits(&oracle), "fused vs oracle");
        }
    }
}

/// The headline acceptance criterion: a 3-stage map∘map∘map pipeline at 1M
/// elements lowers to **exactly one kernel launch per device** with zero
/// intermediate containers, and the telemetry accounts for both.
#[test]
fn million_element_map_chain_is_one_launch_per_device() {
    for devices in [1usize, 2, 4] {
        let rt = skelcl::init_gpus(devices);
        let n = 1_000_000usize;
        let v = Vector::from_vec(&rt, (0..n).map(|i| (i % 97) as f32).collect());
        let sq = square();
        v.copy_data_to_devices().unwrap();
        rt.drain_events();
        let before = rt.exec_trace();
        let out = v.lazy().map(&sq).map(&sq).map(&sq).into_vector().unwrap();
        let events = rt.drain_events();
        let kernel_launches: Vec<usize> = events
            .iter()
            .map(|evs| evs.iter().filter(|e| e.is_kernel()).count())
            .collect();
        let active = v.sizes().iter().filter(|&&s| s > 0).count();
        assert_eq!(
            kernel_launches.iter().sum::<usize>(),
            active,
            "one fused launch per active device on {devices} device(s): {kernel_launches:?}"
        );
        let after = rt.exec_trace();
        assert_eq!(after.kernels_fused - before.kernels_fused, 2);
        assert_eq!(after.launches_elided - before.launches_elided, 2 * active);
        assert_eq!(
            after.intermediate_buffers_elided - before.intermediate_buffers_elided,
            2 * active
        );
        assert_eq!(
            after.intermediate_bytes_elided - before.intermediate_bytes_elided,
            2 * n * 4,
            "two elided f32 intermediates of {n} elements"
        );
        assert_eq!(out.len(), n);
    }
}

/// With `FusionPolicy::Never` the plan's accounting matches the eager path:
/// same skeleton-call count, one launch per stage per device, and no fusion
/// counters move.
#[test]
fn unfused_plan_accounting_matches_the_eager_path() {
    let rt = skelcl::init_gpus(2);
    let v = Vector::from_vec(&rt, (0..64).map(|i| i as f32).collect());
    let sq = square();
    v.copy_data_to_devices().unwrap();
    rt.drain_events();
    let before = rt.exec_trace();
    let plan = v.lazy().policy(FusionPolicy::Never).map(&sq).map(&sq);
    let out = plan.collect().unwrap();
    let after = rt.exec_trace();
    assert_eq!(after.skeleton_calls - before.skeleton_calls, 2);
    assert_eq!(after.kernels_fused, before.kernels_fused);
    assert_eq!(after.launches_elided, before.launches_elided);
    let events = rt.drain_events();
    let launches: usize = events
        .iter()
        .map(|evs| evs.iter().filter(|e| e.is_kernel()).count())
        .sum();
    assert_eq!(launches, 4, "two stages x two devices");
    assert_eq!(out.len(), 64);
}

/// Fused pipelines report one skeleton call per launch group.
#[test]
fn fused_plan_counts_one_skeleton_call_per_group() {
    let rt = skelcl::init_gpus(2);
    let v = Vector::from_vec(&rt, (0..64).map(|i| i as f32).collect());
    let sq = square();
    let s = sum();
    let before = rt.exec_trace();
    let _ = v
        .lazy()
        .policy(FusionPolicy::Always)
        .map(&sq)
        .map(&sq)
        .reduce(&s)
        .scalar()
        .unwrap();
    let after = rt.exec_trace();
    assert_eq!(
        after.skeleton_calls - before.skeleton_calls,
        1,
        "map, map and reduce fused into one group"
    );
    assert_eq!(after.kernels_fused - before.kernels_fused, 2);
}

/// Empty containers fail with `EmptyInput` from every terminal, exactly like
/// the eager skeletons.
#[test]
fn empty_containers_error_on_every_terminal() {
    for devices in 1usize..=4 {
        let rt = skelcl::init_gpus(devices);
        let v: Vector<f32> = Vector::from_vec(&rt, vec![]);
        let sq = square();
        let s = sum();
        let p = psum();
        assert!(matches!(
            v.lazy().map(&sq).into_vector(),
            Err(SkelError::EmptyInput)
        ));
        assert!(matches!(
            v.lazy().map(&sq).collect(),
            Err(SkelError::EmptyInput)
        ));
        assert!(matches!(
            v.lazy().map(&sq).reduce(&s).scalar(),
            Err(SkelError::EmptyInput)
        ));
        assert!(matches!(
            v.lazy().scan(&p).exec(),
            Err(SkelError::EmptyInput)
        ));
    }
}

/// Build-time validation: length mismatches, native closures, argument
/// arity and a terminal on a stage-less plan all surface clear errors.
#[test]
fn plan_builders_validate_stages() {
    let rt = skelcl::init_gpus(2);
    let v = Vector::from_vec(&rt, vec![1.0f32; 8]);
    let w = Vector::from_vec(&rt, vec![1.0f32; 7]);
    let m = mul();
    assert!(matches!(
        v.lazy().zip(&w, &m).into_vector(),
        Err(SkelError::LengthMismatch { left: 8, right: 7 })
    ));
    let native = Map::<f32, f32>::new(|x, _| *x + 1.0);
    assert!(matches!(
        v.lazy().map(&native).into_vector(),
        Err(SkelError::Plan(_))
    ));
    let af = affine();
    assert!(matches!(
        v.lazy().map(&af).into_vector(),
        Err(SkelError::UdfSignature(_))
    ));
    assert!(matches!(v.lazy().into_vector(), Err(SkelError::Plan(_))));
    // The first error poisons the plan: later stages do not mask it.
    let sq = square();
    assert!(matches!(
        v.lazy().map(&native).map(&sq).into_vector(),
        Err(SkelError::Plan(_))
    ));
}

/// Regression test for hygienic renaming: two stages defining the same
/// helper (with different bodies) fuse correctly, the results match the
/// unfused path bit-for-bit, and `explain` reports the renames.
#[test]
fn colliding_helper_names_are_hygienically_renamed() {
    let rt = skelcl::init_gpus(2);
    let v = Vector::from_vec(&rt, (0..32).map(|i| i as f32).collect());
    let a = Map::<f32, f32>::from_source(
        "float offset(float x) { return x + 1.0f; }\n\
         float func(float x) { return offset(x) * 2.0f; }",
    );
    let b = Map::<f32, f32>::from_source(
        "float offset(float x) { return x + 10.0f; }\n\
         float func(float x) { return offset(x) * 3.0f; }",
    );
    let plan = v.lazy().map(&a).map(&b);
    let fused = plan.collect().unwrap();
    let unfused = plan.clone().policy(FusionPolicy::Never).collect().unwrap();
    let oracle: Vec<f32> = (0..32)
        .map(|i| {
            let x = i as f32;
            let s0 = (x + 1.0) * 2.0;
            (s0 + 10.0) * 3.0
        })
        .collect();
    assert_eq!(
        bits(&fused),
        bits(&oracle),
        "each stage must use its own helper"
    );
    assert_eq!(bits(&unfused), bits(&oracle));
    let explain = plan.explain().unwrap();
    assert!(
        explain.contains("rename:") && explain.contains("`offset`"),
        "explain must surface the collision diagnostic:\n{explain}"
    );
    assert!(
        explain.contains("`func`"),
        "both colliding names get diagnostics:\n{explain}"
    );
}

/// `explain` renders the DAG and the per-boundary fusion verdicts without
/// executing anything.
#[test]
fn explain_renders_dag_and_fusion_decisions() {
    let rt = skelcl::init_gpus(2);
    let v = Vector::from_vec(&rt, vec![1.0f32; 1024]);
    let w = Vector::from_vec(&rt, vec![2.0f32; 1024]);
    let m = mul();
    let s = sum();
    let before = rt.exec_trace();
    let plan = v.lazy().zip(&w, &m).reduce(&s);
    let text = plan.explain().unwrap();
    assert!(text.contains("Plan:"), "{text}");
    assert!(text.contains("zip("), "{text}");
    assert!(text.contains("reduce("), "{text}");
    assert!(text.contains("After fusion: 1 launch group(s)"), "{text}");
    assert!(text.contains("SKELCL_FUSED_REDUCE"), "{text}");
    assert!(text.contains("fuse (cost model"), "{text}");
    let after = rt.exec_trace();
    assert_eq!(
        before.skeleton_calls, after.skeleton_calls,
        "explain must not execute"
    );
    // Never-policy rendering shows forced splits.
    let split = plan.clone().policy(FusionPolicy::Never).explain().unwrap();
    assert!(split.contains("split (policy"), "{split}");
    assert!(split.contains("After fusion: 2 launch group(s)"), "{split}");
}

/// A plan is re-executable: running the same terminal twice gives the same
/// result.
#[test]
fn plans_are_re_executable() {
    let rt = skelcl::init_gpus(2);
    let v = Vector::from_vec(&rt, (0..64).map(|i| i as f32).collect());
    let sq = square();
    let plan = v.lazy().map(&sq).map(&sq);
    let first = plan.collect().unwrap();
    let second = plan.collect().unwrap();
    assert_eq!(bits(&first), bits(&second));
}

/// Fused pipelines work for f64 and i32 element types too.
#[test]
fn fused_pipelines_support_other_scalar_types() {
    let rt = skelcl::init_gpus(2);
    let v = Vector::from_vec(&rt, (1..=32).map(f64::from).collect::<Vec<f64>>());
    let half = Map::<f64, f64>::from_source("double func(double x) { return x * 0.5; }");
    let sumd = Reduce::<f64>::from_source("double func(double a, double b) { return a + b; }");
    let total = v.lazy().map(&half).reduce(&sumd).scalar().unwrap();
    let eager = v.map(&half).unwrap().reduce(&sumd).unwrap();
    assert_eq!(total.to_bits(), eager.to_bits());

    let w = Vector::from_vec(&rt, (0..32).collect::<Vec<i32>>());
    let twice = Map::<i32, i32>::from_source("int func(int x) { return x * 2; }");
    let inc = Map::<i32, i32>::from_source("int func(int x) { return x + 1; }");
    let got = w.lazy().map(&twice).map(&inc).collect().unwrap();
    let oracle: Vec<i32> = (0..32).map(|x| x * 2 + 1).collect();
    assert_eq!(got, oracle);
}

/// A map stage may change the element type mid-pipeline; the fused kernel
/// carries the intermediate type through the chain.
#[test]
fn fused_chains_may_change_element_type() {
    let rt = skelcl::init_gpus(2);
    let v = Vector::from_vec(&rt, (0..16).map(|i| i as f32 + 0.75).collect::<Vec<f32>>());
    let floor = Map::<f32, i32>::from_source("int func(float x) { return (int)x; }");
    let twice = Map::<i32, i32>::from_source("int func(int x) { return x * 2; }");
    let plan = v.lazy().map(&floor).map(&twice);
    let fused = plan.collect().unwrap();
    let unfused = plan.clone().policy(FusionPolicy::Never).collect().unwrap();
    let oracle: Vec<i32> = (0..16).map(|i| (i as f32 + 0.75) as i32 * 2).collect();
    assert_eq!(fused, oracle);
    assert_eq!(unfused, oracle);
}

/// Scan works mid-pipeline: stages before it fuse into its first phase,
/// stages after it form a new group.
#[test]
fn scan_in_the_middle_of_a_pipeline() {
    let rt = skelcl::init_gpus(3);
    let v = Vector::from_vec(&rt, (1..=48).map(|i| i as f32).collect::<Vec<f32>>());
    let sq = square();
    let p = psum();
    let plan = v.lazy().map(&sq).scan(&p).map(&sq);
    let fused = plan.collect().unwrap();
    let unfused = plan.clone().policy(FusionPolicy::Never).collect().unwrap();
    let eager = v
        .map(&sq)
        .unwrap()
        .scan(&p)
        .unwrap()
        .map(&sq)
        .unwrap()
        .to_vec()
        .unwrap();
    assert_eq!(bits(&fused), bits(&eager));
    assert_eq!(bits(&unfused), bits(&eager));
}

/// Additional scalar arguments flow into the fused kernel, one extras block
/// per stage, in stage order.
#[test]
fn additional_arguments_reach_their_stages_after_fusion() {
    let rt = skelcl::init_gpus(2);
    let v = Vector::from_vec(&rt, (0..32).map(|i| i as f32).collect::<Vec<f32>>());
    let af = affine();
    let plan = v
        .lazy()
        .map_with(&af, args![2.0f32, 1.0f32])
        .map_with(&af, args![0.5f32, -3.0f32]);
    let fused = plan.collect().unwrap();
    let unfused = plan.clone().policy(FusionPolicy::Never).collect().unwrap();
    let oracle: Vec<f32> = (0..32)
        .map(|i| {
            let x = i as f32;
            let a = 2.0f32 * x + 1.0f32;
            0.5f32 * a + -3.0f32
        })
        .collect();
    assert_eq!(bits(&fused), bits(&oracle));
    assert_eq!(bits(&unfused), bits(&oracle));
}

/// The matrix plan fuses adjacent map stages into one composed kernel and
/// treats stencil stages as barriers; results are bit-identical to the
/// eager sequence.
#[test]
fn matrix_plan_fuses_maps_and_respects_stencil_barriers() {
    let rt = skelcl::init_gpus(2);
    let m = Matrix::from_fn(&rt, 8, 6, |r, c| (r * 6 + c) as f32);
    let sq = square();
    let inc = Map::<f32, f32>::from_source("float func(float x) { return x + 1.0f; }");
    let blur = MapOverlap::<f32, f32>::from_source(
        "float func(float c) { return (get(0, -1) + c + get(0, 1)) / 3.0f; }",
    )
    .with_halo(1);
    let plan = m.lazy().map(&sq).map(&inc).map_overlap(&blur).map(&inc);
    let fused = plan.exec().unwrap().to_vec().unwrap();
    let eager = {
        let a = m.map(&sq).unwrap();
        let b = a.map(&inc).unwrap();
        let c = blur.run(&b).exec().unwrap();
        c.map(&inc).unwrap().to_vec().unwrap()
    };
    assert_eq!(bits(&fused), bits(&eager));
    let text = plan.explain().unwrap();
    assert!(text.contains("map_overlap"), "{text}");
    assert!(text.contains("After fusion: 3 launch group(s)"), "{text}");
}

/// The matrix plan's fusion telemetry moves only when stages actually fuse.
#[test]
fn matrix_plan_accounts_fusion_telemetry() {
    let rt = skelcl::init_gpus(2);
    let m = Matrix::from_fn(&rt, 8, 8, |r, c| (r + c) as f32);
    let sq = square();
    let before = rt.exec_trace();
    let _ = m.lazy().map(&sq).map(&sq).exec().unwrap();
    let after = rt.exec_trace();
    assert_eq!(after.kernels_fused - before.kernels_fused, 1);
    assert!(after.intermediate_bytes_elided > before.intermediate_bytes_elided);
}

/// Non-commutative operators stay correct across device counts: the fused
/// reduce gathers partials in device order like the eager path.
#[test]
fn non_commutative_reduce_matches_eager_on_all_device_counts() {
    let weighted =
        Reduce::<f32>::from_source("float func(float a, float b) { return a * 0.5f + b; }");
    let sq = square();
    for devices in 1usize..=4 {
        let rt = skelcl::init_gpus(devices);
        let v = Vector::from_vec(&rt, (1..=37).map(|i| i as f32).collect::<Vec<f32>>());
        let plan = v.lazy().map(&sq).reduce(&weighted);
        let fused = plan.scalar().unwrap();
        let unfused = plan.clone().policy(FusionPolicy::Never).scalar().unwrap();
        let eager = v.map(&sq).unwrap().reduce(&weighted).unwrap();
        assert_eq!(fused.to_bits(), eager.to_bits(), "devices={devices}");
        assert_eq!(unfused.to_bits(), eager.to_bits(), "devices={devices}");
    }
}

/// Coalescing signatures: identical elementwise chains share a signature,
/// different kernels or scalar arguments do not, and folds have none.
#[test]
fn coalesce_signatures_identify_packable_plans() {
    let rt = skelcl::init_gpus(1);
    let sq = square();
    let af = affine();
    let v = Vector::from_vec(&rt, vec![1.0f32, 2.0]);
    let w = Vector::from_vec(&rt, vec![3.0f32, 4.0, 5.0]);

    let a = v.lazy().map(&sq).coalesce_signature().unwrap().unwrap();
    let b = w.lazy().map(&sq).coalesce_signature().unwrap().unwrap();
    assert_eq!(a, b, "same kernel, different lengths: same signature");

    let c = v
        .lazy()
        .map_with(&af, args![2.0f32, 1.0f32])
        .coalesce_signature()
        .unwrap()
        .unwrap();
    let d = v
        .lazy()
        .map_with(&af, args![3.0f32, 1.0f32])
        .coalesce_signature()
        .unwrap()
        .unwrap();
    assert_ne!(a, c, "different kernels differ");
    assert_ne!(c, d, "different scalar arguments differ");

    assert!(
        v.lazy().map(&sq).reduce(&sum()).scalar().is_ok(),
        "folds still run"
    );
    assert_eq!(
        v.lazy().scan(&psum()).coalesce_signature().unwrap(),
        None,
        "folds never coalesce"
    );
}

/// A packed launch of N jobs is bit-identical, job by job, to running each
/// plan on its own — and a single-job pack equals `collect()` exactly.
#[test]
fn packed_jobs_match_individual_execution_bitwise() {
    let rt = skelcl::init_gpus(2);
    let sq = square();
    let m = mul();
    let plans: Vec<_> = (1..=5u32)
        .map(|k| {
            let n = 3 * k as usize + 1;
            let v = Vector::from_vec(&rt, (0..n).map(|i| (i as f32) + k as f32 * 0.5).collect());
            let w = Vector::from_vec(&rt, vec![1.5f32; n]);
            v.lazy().map(&sq).zip(&w, &m)
        })
        .collect();

    let expected: Vec<Vec<f32>> = plans.iter().map(|p| p.collect().unwrap()).collect();

    let refs: Vec<&_> = plans.iter().collect();
    let packed = PlanVec::pack_jobs(&refs, 0).unwrap();
    assert_eq!(packed.jobs(), 5);
    let (outputs, event) = packed.wait().unwrap();
    assert!(event.end >= event.start);
    for (out, exp) in outputs.iter().zip(&expected) {
        assert_eq!(bits(out), bits(exp));
    }

    let single = PlanVec::pack_jobs(&refs[..1], 1).unwrap();
    let (one, _) = single.wait().unwrap();
    assert_eq!(bits(&one[0]), bits(&expected[0]));
}

/// Packing rejects mixed signatures and mixed runtimes.
#[test]
fn pack_jobs_rejects_incompatible_jobs() {
    let rt = skelcl::init_gpus(1);
    let v = Vector::from_vec(&rt, vec![1.0f32, 2.0]);
    let a = v.lazy().map(&square());
    let cube = Map::<f32, f32>::from_source("float func(float x) { return x * x * x; }");
    let b = v.lazy().map(&cube);
    assert!(matches!(
        PlanVec::pack_jobs(&[&a, &b], 0),
        Err(SkelError::Plan(_))
    ));

    let other = skelcl::init_gpus(1);
    let w = Vector::from_vec(&other, vec![1.0f32, 2.0]);
    let c = w.lazy().map(&square());
    assert!(matches!(
        PlanVec::pack_jobs(&[&a, &c], 0),
        Err(SkelError::RuntimeMismatch)
    ));

    assert!(PlanVec::<f32>::pack_jobs(&[], 0).is_err());
}
