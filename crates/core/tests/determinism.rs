//! Determinism suite for the threaded execution engine.
//!
//! Since PR 5 every `oclsim` command queue executes on a dedicated worker
//! thread, so commands of different devices genuinely overlap in real time.
//! The contract is that this is *observably invisible*: repeated runs of the
//! same program must produce bit-identical results AND bit-identical
//! telemetry — `SkelCl::exec_trace()` counters, per-device event logs with
//! their virtual timestamps, and the host's virtual clock — no matter how
//! the worker threads interleave.
//!
//! Each scenario below runs three times on fresh runtimes for every device
//! count from 1 to 4 and compares full observation snapshots. CI runs this
//! suite under both `--test-threads=1` and the default parallelism so the
//! interleavings differ across runs as much as the host allows.

use oclsim::EventSummary;
use skelcl::prelude::*;
use skelcl::runtime::ExecTrace;

/// Deterministic pseudo-random input (explicit LCG — keeps the suite
/// seed-stable without depending on a random crate).
fn seeded(len: usize, seed: u64) -> Vec<f32> {
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    (0..len)
        .map(|_| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 40) as f32) / 1e6 - 8.0
        })
        .collect()
}

/// Everything an execution observably produces: result bits, runtime
/// counters, per-device event summaries and timestamps, final virtual time.
#[derive(Debug, PartialEq)]
struct Observation {
    result_bits: Vec<u32>,
    scalar_bits: u32,
    trace: ExecTrace,
    per_device_events: Vec<Vec<(u64, u64, usize, usize)>>,
    summaries: Vec<EventSummary>,
    host_ns: u64,
}

/// Run one scenario and snapshot every observable output.
fn observe(
    devices: usize,
    scenario: impl Fn(&std::sync::Arc<skelcl::SkelCl>) -> (Vec<f32>, f32),
) -> Observation {
    let rt = skelcl::init_gpus(devices);
    rt.drain_events();
    let (result, scalar) = scenario(&rt);
    rt.finish_all();
    let events = rt.drain_events();
    Observation {
        result_bits: result.iter().map(|x| x.to_bits()).collect(),
        scalar_bits: scalar.to_bits(),
        trace: rt.exec_trace(),
        per_device_events: events
            .iter()
            .map(|evs| {
                evs.iter()
                    .map(|e| (e.start.as_nanos(), e.end.as_nanos(), e.bytes, e.work_items))
                    .collect()
            })
            .collect(),
        summaries: events.iter().map(EventSummary::from_events).collect(),
        host_ns: rt.now().as_nanos(),
    }
}

fn assert_deterministic(
    name: &str,
    scenario: impl Fn(&std::sync::Arc<skelcl::SkelCl>) -> (Vec<f32>, f32),
) {
    for devices in 1..=4 {
        let first = observe(devices, &scenario);
        for rep in 1..3 {
            let again = observe(devices, &scenario);
            assert_eq!(
                first, again,
                "{name} diverged on repetition {rep} with {devices} device(s)"
            );
        }
        assert!(
            first.host_ns > 0,
            "{name} must actually execute work ({devices} devices)"
        );
    }
}

#[test]
fn map_is_deterministic_under_threaded_queues() {
    assert_deterministic("map", |rt| {
        let inc =
            Map::<f32, f32>::from_source("float func(float x, float a) { return x * a + 0.5f; }");
        let v = Vector::from_vec(rt, seeded(4096, 11));
        let out = inc.run(&v).arg(1.5f32).exec().unwrap();
        (out.to_vec().unwrap(), 0.0)
    });
}

#[test]
fn zip_is_deterministic_under_threaded_queues() {
    assert_deterministic("zip", |rt| {
        let saxpy = Zip::<f32, f32, f32>::from_source(
            "float func(float x, float y, float a) { return a * x + y; }",
        );
        let x = Vector::from_vec(rt, seeded(3000, 7));
        let y = Vector::from_vec(rt, seeded(3000, 13));
        let out = saxpy.run(&x, &y).arg(2.5f32).exec().unwrap();
        (out.to_vec().unwrap(), 0.0)
    });
}

#[test]
fn reduce_is_deterministic_under_threaded_queues() {
    assert_deterministic("reduce", |rt| {
        let sum = Reduce::<f32>::from_source("float func(float a, float b) { return a + b; }");
        let v = Vector::from_vec(rt, seeded(5000, 29));
        let s = sum.run(&v).exec().unwrap();
        (Vec::new(), s)
    });
}

#[test]
fn scan_is_deterministic_under_threaded_queues() {
    assert_deterministic("scan", |rt| {
        let prefix = Scan::<f32>::from_source("float func(float a, float b) { return a + b; }");
        let v = Vector::from_vec(rt, seeded(2048, 3));
        let out = prefix.run(&v).exec().unwrap();
        (out.to_vec().unwrap(), 0.0)
    });
}

#[test]
fn iterative_stencil_is_deterministic_under_threaded_queues() {
    assert_deterministic("stencil", |rt| {
        let heat = MapOverlap::<f32, f32>::from_source(
            "float func(float x) { return x + 0.1f * (get(0, -1) + get(0, 1) + get(-1, 0) + get(1, 0) - 4.0f * x); }",
        )
        .with_halo(1)
        .with_boundary(Boundary::Clamp);
        let m = Matrix::from_vec(rt, 24, 16, seeded(24 * 16, 41)).unwrap();
        let out = heat.run(&m).run_iter(4).unwrap();
        (out.to_vec().unwrap(), 0.0)
    });
}

#[test]
fn chained_pipeline_is_deterministic_under_threaded_queues() {
    // A chain keeps intermediate results device-resident, so this exercises
    // buffer-pool revival (lazy zeroing), run_into reuse and the
    // multi-launch event stream together.
    assert_deterministic("pipeline", |rt| {
        let double = Map::<f32, f32>::from_source("float func(float x) { return x * 2.0f; }");
        let shift = Map::<f32, f32>::from_source("float func(float x) { return x - 1.0f; }");
        let sum = Reduce::<f32>::from_source("float func(float a, float b) { return a + b; }");
        let v = Vector::from_vec(rt, seeded(2500, 17));
        let a = double.run(&v).exec().unwrap();
        let b = shift.run(&a).exec().unwrap();
        let s = sum.run(&b).exec().unwrap();
        (b.to_vec().unwrap(), s)
    });
}
