//! Property-based tests of the SkelCL core data structures: the partition
//! arithmetic behind every distribution, the vector coherence machinery, and
//! the skeleton semantics on arbitrary inputs and device counts.

use proptest::prelude::*;

use skelcl::prelude::*;
use skelcl::Partition;

// ---------------------------------------------------------------------------
// Redistribution edge cases shared with the 2-D halo machinery
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// `Copy → Block` with a user combine function: every device copy is
    /// merged element-wise, for any device count and any per-device edits.
    #[test]
    fn copy_to_block_with_user_combine_merges_every_device_copy(
        data in prop::collection::vec(-100.0f32..100.0, 1..64),
        devices in 1usize..=4,
        deltas in prop::collection::vec(-8.0f32..8.0, 4..5),
    ) {
        let rt = skelcl::init_gpus(devices);
        let v = Vector::from_vec(&rt, data.clone());
        v.set_copy_distribution_with(Combine::add()).unwrap();
        v.copy_data_to_devices().unwrap();
        let buffers: Vec<_> = (0..devices).map(|d| v.buffer_of(d).unwrap()).collect();
        // Each device adds its own delta to its private copy (the OSEM
        // error-image pattern, via an additional-argument side channel).
        for (d, buf) in buffers.iter().enumerate() {
            let modified: Vec<f32> = data.iter().map(|x| x + deltas[d]).collect();
            rt.queue(d).enqueue_write_buffer(buf, &modified).unwrap();
        }
        v.mark_device_modified();
        v.set_distribution(Distribution::Block).unwrap();
        let expected: Vec<f32> = data
            .iter()
            .map(|x| {
                // combine(acc, other) folds copies in device order:
                // (x+δ0) + (x+δ1) + ... summed exactly like Combine::add.
                let mut acc = x + deltas[0];
                for delta in deltas.iter().take(devices).skip(1) {
                    acc += x + delta;
                }
                acc
            })
            .collect();
        prop_assert_eq!(v.to_vec().unwrap(), expected);
    }

    /// `BlockWeighted` with zero-weight devices: those devices hold no part
    /// and run no kernels, yet results and round trips stay exact.
    #[test]
    fn block_weighted_with_zero_weight_devices_skips_them(
        data in prop::collection::vec(-50.0f32..50.0, 1..96),
        weights in prop::collection::vec(0u8..3, 2..5),
    ) {
        let devices = weights.len();
        let rt = skelcl::init_gpus(devices);
        let v = Vector::from_vec(&rt, data.clone());
        let w: Vec<f64> = weights.iter().map(|x| *x as f64).collect();
        v.set_distribution(Distribution::block_weighted(&w)).unwrap();
        let sizes = v.sizes();
        prop_assert_eq!(sizes.iter().sum::<usize>(), data.len());
        // A zero-weight device gets nothing — unless every weight is zero,
        // which falls back to the even block split.
        if w.iter().any(|x| *x > 0.0) {
            for (d, weight) in w.iter().enumerate() {
                if *weight == 0.0 {
                    prop_assert_eq!(sizes[d], 0, "zero-weight device {} got {:?}", d, &sizes);
                }
            }
        }
        let inc = Map::<f32, f32>::from_source("float func(float x) { return x + 1.0f; }");
        rt.drain_events();
        let out = v.map(&inc).unwrap();
        let events = rt.drain_events();
        for (d, size) in sizes.iter().enumerate() {
            let kernels = events[d].iter().filter(|e| e.is_kernel()).count();
            prop_assert_eq!(kernels, usize::from(*size > 0), "device {}", d);
        }
        let expected: Vec<f32> = data.iter().map(|x| x + 1.0).collect();
        prop_assert_eq!(out.to_vec().unwrap(), expected);
        // Round trip back to block keeps the data exact.
        v.set_distribution(Distribution::Block).unwrap();
        prop_assert_eq!(v.to_vec().unwrap(), data);
    }

    /// Empty vectors survive every redistribution without touching a device,
    /// and skeleton launches on them fail cleanly.
    #[test]
    fn empty_vectors_redistribute_without_device_traffic(
        devices in 1usize..=4,
        target in 0usize..4,
    ) {
        let rt = skelcl::init_gpus(devices);
        let v = Vector::from_vec(&rt, Vec::<f32>::new());
        prop_assert!(v.is_empty());
        rt.drain_events();
        for dist in [
            Distribution::Block,
            Distribution::Copy,
            Distribution::Single(target.min(devices - 1)),
            Distribution::block_weighted(&vec![1.0; devices]),
            Distribution::Block,
        ] {
            v.set_distribution(dist).unwrap();
            prop_assert_eq!(v.to_vec().unwrap(), Vec::<f32>::new());
            prop_assert_eq!(v.sizes().iter().sum::<usize>(), 0);
        }
        let moved: usize = rt
            .drain_events()
            .iter()
            .flatten()
            .filter(|e| e.is_transfer())
            .count();
        prop_assert_eq!(moved, 0, "empty vectors must never move bytes");
        let inc = Map::<f32, f32>::from_source("float func(float x) { return x + 1.0f; }");
        prop_assert!(matches!(v.map(&inc), Err(SkelError::EmptyInput)));
    }
}

// ---------------------------------------------------------------------------
// Partition invariants (the arithmetic behind Figure 1)
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn block_partition_covers_every_element_exactly_once(
        len in 0usize..10_000,
        devices in 1usize..=8,
    ) {
        let p = Partition::compute(len, devices, &Distribution::Block);
        prop_assert_eq!(p.device_count(), devices);
        prop_assert_eq!(p.len(), len);
        // Ranges are contiguous, ordered, disjoint and cover 0..len.
        let mut cursor = 0usize;
        for d in 0..devices {
            let r = p.range(d);
            prop_assert_eq!(r.start, cursor, "parts must be contiguous");
            prop_assert!(r.end >= r.start);
            cursor = r.end;
        }
        prop_assert_eq!(cursor, len);
        prop_assert_eq!(p.sizes().iter().sum::<usize>(), len);
        // Block parts are balanced to within one element.
        if len > 0 {
            let max = *p.sizes().iter().max().unwrap();
            let min = *p.sizes().iter().min().unwrap();
            prop_assert!(max - min <= 1, "sizes {:?}", p.sizes());
        }
    }

    #[test]
    fn weighted_partition_covers_exactly_once_for_any_weights(
        len in 0usize..5_000,
        weights in prop::collection::vec(0.0f64..10.0, 1..8),
    ) {
        let devices = weights.len();
        let dist = Distribution::block_weighted(&weights);
        let p = Partition::compute(len, devices, &dist);
        let mut cursor = 0usize;
        for d in 0..devices {
            let r = p.range(d);
            prop_assert_eq!(r.start, cursor);
            cursor = r.end;
        }
        prop_assert_eq!(cursor, len);
    }

    #[test]
    fn weighted_partition_gives_larger_parts_to_larger_weights(
        len in 1000usize..5_000,
        heavy in 2.0f64..10.0,
    ) {
        let dist = Distribution::block_weighted(&[heavy, 1.0]);
        let p = Partition::compute(len, 2, &dist);
        prop_assert!(p.size(0) > p.size(1));
        prop_assert_eq!(p.size(0) + p.size(1), len);
    }

    #[test]
    fn single_partition_places_everything_on_the_chosen_device(
        len in 0usize..4_096,
        devices in 1usize..=6,
        chosen in 0usize..6,
    ) {
        let chosen = chosen % devices;
        let p = Partition::compute(len, devices, &Distribution::Single(chosen));
        for d in 0..devices {
            prop_assert_eq!(p.size(d), if d == chosen { len } else { 0 });
        }
        if len > 0 {
            prop_assert_eq!(p.active_devices(), vec![chosen]);
        }
    }

    #[test]
    fn copy_partition_replicates_the_full_range_on_every_device(
        len in 0usize..4_096,
        devices in 1usize..=6,
    ) {
        let p = Partition::compute(len, devices, &Distribution::Copy);
        for d in 0..devices {
            prop_assert_eq!(p.range(d), 0..len);
        }
    }
}

// ---------------------------------------------------------------------------
// Vector coherence and distribution changes
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn host_updates_are_visible_after_any_distribution_change(
        data in prop::collection::vec(-1.0e4f32..1.0e4, 1..200),
        devices in 1usize..=4,
        scale in -4.0f32..4.0,
    ) {
        let rt = skelcl::init_gpus(devices);
        let v = Vector::from_vec(&rt, data.clone());
        v.set_distribution(Distribution::Block).unwrap();
        v.copy_data_to_devices().unwrap();

        // Mutate on the host: the device copies must be refreshed lazily.
        v.update_host(|host| {
            for x in host.iter_mut() {
                *x *= scale;
            }
        }).unwrap();

        let doubled = Map::<f32, f32>::from_source("float func(float x) { return x + 0.0f; }");
        let out = doubled.run(&v).exec().unwrap().to_vec().unwrap();
        let expected: Vec<f32> = data.iter().map(|x| x * scale).collect();
        prop_assert_eq!(out, expected);
    }

    #[test]
    fn filled_vectors_report_consistent_lengths_and_values(
        len in 1usize..2_000,
        value in -100.0f32..100.0,
        devices in 1usize..=4,
    ) {
        let rt = skelcl::init_gpus(devices);
        let v = Vector::filled(&rt, len, value);
        prop_assert_eq!(v.len(), len);
        prop_assert!(!v.is_empty());
        prop_assert_eq!(v.to_vec().unwrap(), vec![value; len]);
        prop_assert_eq!(v.with_host(|h| h.len()).unwrap(), len);
    }

    #[test]
    fn index_map_agrees_with_an_explicit_index_vector(
        len in 1usize..1_000,
        devices in 1usize..=4,
        offset in -100i32..100,
    ) {
        let rt = skelcl::init_gpus(devices);
        let udf = "int func(int i, int offset) { return 3 * i + offset; }";
        let by_index = Map::<i32, i32>::from_source(udf);
        let explicit = Map::<i32, i32>::from_source(udf);
        let args = skelcl::args![offset];

        let a = by_index.run_index(&rt, len).args(args.clone()).exec().unwrap().to_vec().unwrap();
        let idx = Vector::from_vec(&rt, (0..len as i32).collect());
        let b = explicit.run(&idx).args(args.clone()).exec().unwrap().to_vec().unwrap();
        prop_assert_eq!(a, b);
    }

    #[test]
    fn reduce_and_scan_are_consistent_with_each_other(
        data in prop::collection::vec(-1_000i32..1_000, 1..300),
        devices in 1usize..=4,
    ) {
        // The last element of an inclusive scan equals the reduction.
        let rt = skelcl::init_gpus(devices);
        let add = "int func(int a, int b) { return a + b; }";
        let scan = Scan::<i32>::from_source(add);
        let reduce = Reduce::<i32>::from_source(add);
        let v = Vector::from_vec(&rt, data.clone());
        let prefix = scan.run(&v).exec().unwrap().to_vec().unwrap();
        let total = v.reduce(&reduce).unwrap();
        prop_assert_eq!(*prefix.last().unwrap(), total);
        prop_assert_eq!(total, data.iter().sum::<i32>());
    }

    #[test]
    fn map_then_zip_composition_matches_reference(
        data in prop::collection::vec((-100.0f32..100.0, -100.0f32..100.0), 1..150),
        devices in 1usize..=4,
    ) {
        let rt = skelcl::init_gpus(devices);
        let xs: Vec<f32> = data.iter().map(|(x, _)| *x).collect();
        let ys: Vec<f32> = data.iter().map(|(_, y)| *y).collect();

        let square = Map::<f32, f32>::from_source("float func(float x) { return x * x; }");
        let add = Zip::<f32, f32, f32>::from_source(
            "float func(float a, float b) { return a + b; }",
        );
        let xv = Vector::from_vec(&rt, xs.clone());
        let yv = Vector::from_vec(&rt, ys.clone());
        let out = xv
            .map(&square)
            .unwrap()
            .zip(&yv, &add)
            .unwrap()
            .to_vec()
            .unwrap();
        let expected: Vec<f32> = xs.iter().zip(&ys).map(|(x, y)| x * x + y).collect();
        prop_assert_eq!(out, expected);
    }
}

// ---------------------------------------------------------------------------
// Args builder invariants
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn args_builder_counts_scalars_and_vectors_correctly(
        floats in prop::collection::vec(-10.0f32..10.0, 0..6),
        ints in prop::collection::vec(-10i32..10, 0..6),
        vectors in 0usize..3,
    ) {
        let rt = skelcl::init_gpus(1);
        let mut args = Args::new();
        for f in &floats {
            args = args.arg(*f);
        }
        for i in &ints {
            args = args.arg(*i);
        }
        let held: Vec<Vector<f32>> = (0..vectors)
            .map(|_| Vector::from_vec(&rt, vec![0.0f32; 4]))
            .collect();
        for v in &held {
            args = args.arg(v);
        }
        prop_assert_eq!(args.len(), floats.len() + ints.len() + vectors);
        prop_assert_eq!(args.scalar_count(), floats.len() + ints.len());
        prop_assert_eq!(args.vector_count(), vectors);
        prop_assert_eq!(
            args.is_empty(),
            floats.is_empty() && ints.is_empty() && vectors == 0
        );
    }
}
