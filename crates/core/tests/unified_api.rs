//! Tests of the unified execution API introduced with the `Skeleton` trait:
//! the `IntoArg` trait and `args![]` macro (every scalar and vector element
//! type, wrong-runtime rejection), property tests that fluent pipelines
//! (`map → zip → reduce`) match sequential references across 1–4 devices,
//! and buffer-reuse tests asserting that `run_into` performs no fresh output
//! allocation in steady state.

use proptest::prelude::*;

use skelcl::prelude::*;
use skelcl::{args, ArgItem, Reduce, Scan, SkelError};

// ---------------------------------------------------------------------------
// IntoArg / args![] coverage
// ---------------------------------------------------------------------------

#[test]
fn args_macro_accepts_every_device_scalar_type() {
    let args = args![1.5f32, 2.5f64, -3i32, 4u32];
    assert_eq!(args.len(), 4);
    assert_eq!(args.scalar_count(), 4);
    assert_eq!(args.vector_count(), 0);
    use oclsim::Value;
    let values: Vec<Option<Value>> = args.items().iter().map(|i| i.scalar_value()).collect();
    assert_eq!(values[0], Some(Value::Float(1.5)));
    assert_eq!(values[1], Some(Value::Double(2.5)));
    assert_eq!(values[2], Some(Value::Int(-3)));
    assert_eq!(values[3], Some(Value::Uint(4)));
}

#[test]
fn args_macro_accepts_every_vector_element_type() {
    let rt = skelcl::init_gpus(1);
    let f32s = Vector::from_vec(&rt, vec![1.0f32]);
    let f64s = Vector::from_vec(&rt, vec![1.0f64]);
    let i32s = Vector::from_vec(&rt, vec![1i32]);
    let u32s = Vector::from_vec(&rt, vec![1u32]);
    let args = args![&f32s, &f64s, &i32s, &u32s];
    assert_eq!(args.vector_count(), 4);
    assert!(args.items().iter().all(|i| matches!(i, ArgItem::Vector(_))));
}

#[test]
fn f64_vector_additional_argument_reaches_a_native_udf() {
    // The former closed ArgItem enum had no VecF64 variant; the open IntoArg
    // trait must carry a double-precision lookup table end to end.
    let rt = skelcl::init_gpus(2);
    let table = Vector::from_vec(&rt, vec![0.5f64, 2.0]);
    table.set_distribution(Distribution::Copy).unwrap();
    let map = Map::<f32, f32>::new(|x, a| {
        let t = a.slice_f64(0);
        (*x as f64 * t[(*x as usize) % t.len()]) as f32
    });
    let v = Vector::from_vec(&rt, vec![1.0f32, 2.0, 3.0, 4.0]);
    let out = map.run(&v).arg(&table).exec().unwrap();
    assert_eq!(out.to_vec().unwrap(), vec![2.0, 1.0, 6.0, 2.0]);
}

#[test]
fn vector_argument_from_the_wrong_runtime_is_rejected() {
    let rt1 = skelcl::init_gpus(1);
    let rt2 = skelcl::init_gpus(1);
    let foreign = Vector::from_vec(&rt2, vec![1.0f32; 4]);
    let map = Map::<f32, f32>::new(|x, a| x * a.slice_f32(0)[0]);
    let v = Vector::from_vec(&rt1, vec![1.0f32; 4]);
    let err = map.run(&v).arg(&foreign).exec().unwrap_err();
    assert!(matches!(err, SkelError::RuntimeMismatch), "got {err:?}");
}

#[test]
fn source_udfs_still_reject_vector_additional_arguments() {
    let rt = skelcl::init_gpus(1);
    let table = Vector::from_vec(&rt, vec![1.0f32; 4]);
    let map = Map::<f32, f32>::from_source("float func(float x, float s) { return x * s; }");
    let v = Vector::from_vec(&rt, vec![1.0f32; 4]);
    assert!(matches!(
        map.run(&v).arg(&table).exec(),
        Err(SkelError::UnsupportedArg(_))
    ));
}

#[test]
fn arg_and_args_compose_on_the_launch_builder() {
    let rt = skelcl::init_gpus(2);
    let affine = Map::<f32, f32>::from_source(
        "float func(float x, float a, int b, float c) { return a * x + b + c; }",
    );
    let v = Vector::from_vec(&rt, vec![1.0f32, 2.0]);
    // .args(...) replaces, .arg(...) appends.
    let out = affine
        .run(&v)
        .args(args![2.0f32])
        .arg(10i32)
        .arg(0.5f32)
        .exec()
        .unwrap();
    assert_eq!(out.to_vec().unwrap(), vec![12.5, 14.5]);
}

// ---------------------------------------------------------------------------
// run_into buffer reuse
// ---------------------------------------------------------------------------

fn total_live_buffers(rt: &std::sync::Arc<SkelCl>) -> usize {
    (0..rt.device_count())
        .map(|d| rt.context().device(d).unwrap().live_buffers())
        .sum()
}

fn total_allocated_bytes(rt: &std::sync::Arc<SkelCl>) -> usize {
    (0..rt.device_count())
        .map(|d| rt.context().device(d).unwrap().allocated_bytes())
        .sum()
}

#[test]
fn run_into_performs_no_fresh_output_allocation() {
    let rt = skelcl::init_gpus(2);
    let inc = Map::<f32, f32>::from_source("float func(float x) { return x + 1.0f; }");
    let v = Vector::from_vec(&rt, vec![1.0f32; 1024]);
    let out = Vector::from_vec(&rt, vec![0.0f32; 1024]);
    // Materialise input and output on the devices, then measure.
    v.copy_data_to_devices().unwrap();
    out.copy_data_to_devices().unwrap();
    inc.run(&v).run_into(&out).unwrap(); // first call may rebuild nothing: sizes match
    let buffers_before = total_live_buffers(&rt);
    let bytes_before = total_allocated_bytes(&rt);

    for _ in 0..5 {
        inc.run(&v).run_into(&out).unwrap();
    }

    assert_eq!(
        total_live_buffers(&rt),
        buffers_before,
        "steady-state run_into must not allocate fresh buffers"
    );
    assert_eq!(
        total_allocated_bytes(&rt),
        bytes_before,
        "steady-state run_into must not grow device memory"
    );
    assert_eq!(out.to_vec().unwrap(), vec![2.0f32; 1024]);
}

#[test]
fn plain_exec_allocates_but_run_into_does_not() {
    let rt = skelcl::init_gpus(2);
    let inc = Map::<f32, f32>::from_source("float func(float x) { return x + 1.0f; }");
    let v = Vector::from_vec(&rt, vec![1.0f32; 512]);
    v.copy_data_to_devices().unwrap();
    let out = Vector::from_vec(&rt, vec![0.0f32; 512]);
    out.copy_data_to_devices().unwrap();
    inc.run(&v).run_into(&out).unwrap();

    let before = total_live_buffers(&rt);
    // A plain exec produces a brand-new device-resident vector → +1 buffer
    // per active device while it lives.
    let fresh = inc.run(&v).exec().unwrap();
    assert_eq!(total_live_buffers(&rt), before + 2);
    drop(fresh);
    assert_eq!(total_live_buffers(&rt), before);

    // run_into to the fitting target: no change at all.
    inc.run(&v).run_into(&out).unwrap();
    assert_eq!(total_live_buffers(&rt), before);
}

#[test]
fn run_into_supports_the_in_place_listing_1_pattern() {
    // Y <- a*X + Y written back into Y: the target aliases an input, so the
    // launch transparently falls back to fresh buffers instead of binding
    // one buffer to two kernel arguments.
    let rt = skelcl::init_gpus(2);
    let saxpy = Zip::<f32, f32, f32>::from_source(
        "float func(float x, float y, float a) { return a * x + y; }",
    );
    let x = Vector::from_vec(&rt, vec![1.0f32; 64]);
    let y = Vector::from_vec(&rt, vec![0.0f32; 64]);
    for _ in 0..3 {
        saxpy.run(&x, &y).arg(2.0f32).run_into(&y).unwrap();
    }
    assert_eq!(y.to_vec().unwrap(), vec![6.0f32; 64]);

    // Same for a unary map into its own input.
    let inc = Map::<f32, f32>::from_source("float func(float x) { return x + 1.0f; }");
    let v = Vector::from_vec(&rt, vec![0.0f32; 16]);
    inc.run(&v).run_into(&v).unwrap();
    assert_eq!(v.to_vec().unwrap(), vec![1.0f32; 16]);
}

#[test]
fn failed_run_into_leaves_the_target_vector_intact() {
    // An additional vector argument without a copy on device 1 makes the
    // launch fail after preparation; the run_into target must keep its
    // previous contents and stay readable.
    let rt = skelcl::init_gpus(2);
    let lut = Vector::from_vec(&rt, vec![2.0f32; 4]);
    lut.set_distribution(Distribution::Single(0)).unwrap(); // missing on device 1
    let map = Map::<f32, f32>::new(|x, a| x * a.slice_f32(0)[0]);
    let v = Vector::from_vec(&rt, vec![1.0f32; 8]);
    let out = Vector::from_vec(&rt, vec![7.0f32; 8]);
    out.copy_data_to_devices().unwrap();

    let err = map.run(&v).arg(&lut).run_into(&out).unwrap_err();
    assert!(matches!(err, SkelError::UnsupportedArg(_)), "got {err:?}");
    assert_eq!(out.len(), 8);
    // Argument errors surface before any kernel runs, so even the device
    // copy of the target is untouched.
    out.mark_device_modified();
    assert_eq!(out.to_vec().unwrap(), vec![7.0f32; 8]);
}

#[test]
fn scan_honours_an_attached_scheduler() {
    use oclsim::DeviceProfile;
    use skelcl::StaticScheduler;
    let rt = skelcl::init_profiles(vec![
        DeviceProfile::tesla_c1060(),
        DeviceProfile::xeon_e5520(),
    ]);
    let scheduler = StaticScheduler::analytical(&rt);
    let scan = Scan::<i32>::from_source("int func(int a, int b) { return a + b; }");
    let data: Vec<i32> = (1..=1000).collect();
    let v = Vector::from_vec(&rt, data.clone());
    let out = scan.run(&v).scheduler(&scheduler).exec().unwrap();
    let mut acc = 0;
    let expected: Vec<i32> = data
        .iter()
        .map(|x| {
            acc += x;
            acc
        })
        .collect();
    assert_eq!(out.to_vec().unwrap(), expected);
    // The scheduler must actually have re-partitioned the input: the Tesla
    // gets the larger part.
    let sizes = v.sizes();
    assert!(
        sizes[0] > sizes[1],
        "weighted partition expected: {sizes:?}"
    );
}

#[test]
fn run_into_reallocates_when_the_target_does_not_fit() {
    let rt = skelcl::init_gpus(2);
    let inc = Map::<f32, f32>::from_source("float func(float x) { return x + 1.0f; }");
    let v = Vector::from_vec(&rt, vec![1.0f32; 64]);
    let small = Vector::from_vec(&rt, vec![0.0f32; 8]);
    inc.run(&v).run_into(&small).unwrap();
    assert_eq!(small.len(), 64);
    assert_eq!(small.to_vec().unwrap(), vec![2.0f32; 64]);
}

#[test]
fn zip_pipeline_with_run_into_stays_allocation_free() {
    let rt = skelcl::init_gpus(2);
    let saxpy = Zip::<f32, f32, f32>::from_source(
        "float func(float x, float y, float a) { return a * x + y; }",
    );
    let x = Vector::from_vec(&rt, vec![1.0f32; 256]);
    let y = Vector::from_vec(&rt, vec![2.0f32; 256]);
    let out = Vector::from_vec(&rt, vec![0.0f32; 256]);
    x.copy_data_to_devices().unwrap();
    y.copy_data_to_devices().unwrap();
    out.copy_data_to_devices().unwrap();
    saxpy.run(&x, &y).arg(3.0f32).run_into(&out).unwrap();

    let buffers = total_live_buffers(&rt);
    for _ in 0..4 {
        saxpy.run(&x, &y).arg(3.0f32).run_into(&out).unwrap();
    }
    assert_eq!(total_live_buffers(&rt), buffers);
    assert_eq!(out.to_vec().unwrap(), vec![5.0f32; 256]);
}

// ---------------------------------------------------------------------------
// Fluent pipelines vs sequential references (property tests)
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn fluent_map_zip_reduce_matches_sequential(
        data in prop::collection::vec((-50.0f32..50.0, -50.0f32..50.0), 1..160),
        a in -4.0f32..4.0,
        devices in 1usize..=4,
    ) {
        let rt = skelcl::init_gpus(devices);
        let xs: Vec<f32> = data.iter().map(|(x, _)| *x).collect();
        let ys: Vec<f32> = data.iter().map(|(_, y)| *y).collect();

        let square = Map::<f32, f32>::from_source("float func(float x) { return x * x; }");
        let saxpy = Zip::<f32, f32, f32>::from_source(
            "float func(float x, float y, float a) { return a * x + y; }",
        );
        let sum = Reduce::<f64>::from_source("double func(double p, double q) { return p + q; }");

        let xv = Vector::from_vec(&rt, xs.clone());
        let yv = Vector::from_vec(&rt, ys.clone());

        // square(x) then a*square(x)+y, then a float64 total.
        let combined = xv
            .map(&square)
            .unwrap()
            .zip_with(&yv, &saxpy, args![a])
            .unwrap();
        let wide = Map::<f32, f64>::from_source("double func(float v) { return v; }");
        let total = combined.map(&wide).unwrap().reduce(&sum).unwrap();

        let reference: f64 = xs
            .iter()
            .zip(&ys)
            .map(|(x, y)| (a * (x * x) + y) as f64)
            .sum();
        // One double-precision fold per device, then a short host fold: the
        // grouping differs from the sequential sum, so allow a tiny epsilon.
        let scale = reference.abs().max(1.0);
        prop_assert!(
            (total - reference).abs() / scale < 1e-6,
            "devices = {}: {} vs {}", devices, total, reference
        );
    }

    #[test]
    fn fluent_map_scan_matches_sequential(
        data in prop::collection::vec(-100i32..100, 1..200),
        devices in 1usize..=4,
    ) {
        let rt = skelcl::init_gpus(devices);
        let double = Map::<i32, i32>::from_source("int func(int x) { return 2 * x; }");
        let prefix = Scan::<i32>::from_source("int func(int a, int b) { return a + b; }");
        let v = Vector::from_vec(&rt, data.clone());
        let out = v.map(&double).unwrap().scan(&prefix).unwrap().to_vec().unwrap();
        let mut acc = 0;
        let expected: Vec<i32> = data.iter().map(|x| { acc += 2 * x; acc }).collect();
        prop_assert_eq!(out, expected);
    }

    #[test]
    fn launch_builder_and_fluent_form_agree(
        data in prop::collection::vec(-1.0e3f32..1.0e3, 1..120),
        s in -3.0f32..3.0,
        devices in 1usize..=4,
    ) {
        let rt = skelcl::init_gpus(devices);
        let scale = Map::<f32, f32>::from_source("float func(float x, float s) { return s * x; }");
        let v1 = Vector::from_vec(&rt, data.clone());
        let v2 = Vector::from_vec(&rt, data);
        let via_builder = scale.run(&v1).arg(s).exec().unwrap().to_vec().unwrap();
        let via_fluent = v2.map_with(&scale, args![s]).unwrap().to_vec().unwrap();
        prop_assert_eq!(via_builder, via_fluent);
    }

    #[test]
    fn pipelines_agree_across_device_counts(
        data in prop::collection::vec(-1_000i32..1_000, 1..250),
    ) {
        // The same fluent pipeline must produce identical results on 1..4
        // devices (integer ops are exactly associative).
        let sums: Vec<i32> = (1..=4)
            .map(|devices| {
                let rt = skelcl::init_gpus(devices);
                let inc = Map::<i32, i32>::from_source("int func(int x) { return x + 1; }");
                let sum = Reduce::<i32>::from_source("int func(int a, int b) { return a + b; }");
                let v = Vector::from_vec(&rt, data.clone());
                v.map(&inc).unwrap().reduce(&sum).unwrap()
            })
            .collect();
        let expected: i32 = data.iter().map(|x| x + 1).sum();
        prop_assert!(sums.iter().all(|s| *s == expected), "{:?} vs {}", sums, expected);
    }
}
