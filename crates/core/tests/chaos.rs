//! Chaos suite: deterministic fault injection against every data-parallel
//! skeleton.
//!
//! The contract under test is *never silently wrong*: with an arbitrary
//! deterministic [`FaultPlan`] armed, a skeleton launch either recovers and
//! produces a result **bit-identical** to the fault-free oracle, or fails
//! with a typed injected-fault error — corrupted output is the one outcome
//! that must not exist. On top of that, the recovery layer must be free on
//! the fault-free path (bitwise and virtual-time identical with recovery on
//! or off) and every run must be reproducible (same plan ⇒ same outcome).

use proptest::prelude::*;
use skelcl::oclsim::{FaultKind, FaultPlan, FaultSpec, FaultTrigger};
use skelcl::prelude::*;

const DOUBLE: &str = "float func(float x) { return 2.0f * x; }";
const SAXPY: &str = "float func(float x, float y) { return 2.0f * x + y; }";
const ADD: &str = "float func(float a, float b) { return a + b; }";

/// Explicit 5-point heat step (halo 1), matching `host_heat` bit for bit.
const HEAT_STEP: &str = r#"
    float func(float u) {
        return u + 0.2f * (get(0, -1) + get(0, 1) + get(-1, 0) + get(1, 0) - 4.0f * u);
    }
"#;

/// Host reference for one `HEAT_STEP` sweep with a constant-0 boundary.
fn host_heat(input: &[f32], rows: usize, cols: usize) -> Vec<f32> {
    let (r_max, c_max) = (rows as i64, cols as i64);
    let mut out = vec![0.0f32; rows * cols];
    for r in 0..r_max {
        for c in 0..c_max {
            let probe = |dx: i64, dy: i64| -> f32 {
                let (rr, cc) = (r + dy, c + dx);
                if !(0..r_max).contains(&rr) || !(0..c_max).contains(&cc) {
                    return 0.0;
                }
                input[(rr * c_max + cc) as usize]
            };
            let u = input[(r * c_max + c) as usize];
            out[(r * c_max + c) as usize] =
                u + 0.2f32 * (probe(0, -1) + probe(0, 1) + probe(-1, 0) + probe(1, 0) - 4.0f32 * u);
        }
    }
    out
}

fn test_data(len: usize) -> Vec<f32> {
    // Small integers: every arithmetic result below stays exact in f32, so
    // "bit-identical" holds regardless of how recovery re-partitions.
    (0..len).map(|i| ((i * 7 + 3) % 16) as f32).collect()
}

// ---------------------------------------------------------------------------
// Pinned deterministic recovery cases
// ---------------------------------------------------------------------------

#[test]
fn map_recovers_bit_identically_from_a_device_loss() {
    let data = test_data(257);
    let expected: Vec<f32> = data.iter().map(|x| 2.0 * x).collect();
    let rt = skelcl::init_gpus(4);
    // Device 1 dies on its very first command (the input write).
    rt.inject_faults(&FaultPlan::new().device_lost_at_op(1, 1));
    let v = Vector::from_vec(&rt, data);
    let dbl = Map::<f32, f32>::from_source(DOUBLE);
    let out = v.map(&dbl).unwrap();
    assert_eq!(out.to_vec().unwrap(), expected);
    let trace = rt.exec_trace();
    assert_eq!(rt.lost_devices(), vec![1]);
    assert!(trace.faults_injected >= 1);
    assert_eq!(trace.recoveries, 1, "one recovered launch");
    assert!(trace.repartitions >= 1, "a loss forces a re-partition");
    assert!(trace.replayed_launches >= 1);
}

#[test]
fn transient_faults_replay_without_repartitioning() {
    let data = test_data(128);
    let expected: Vec<f32> = data.iter().map(|x| 2.0 * x).collect();
    let rt = skelcl::init_gpus(2);
    // Device 0's ops for a map: write (1), kernel (2), read (3). Fail the
    // kernel launch once; the device survives.
    rt.inject_faults(&FaultPlan::new().transient_launch_at_op(0, 2));
    let v = Vector::from_vec(&rt, data);
    let dbl = Map::<f32, f32>::from_source(DOUBLE);
    let out = v.map(&dbl).unwrap();
    assert_eq!(out.to_vec().unwrap(), expected);
    let trace = rt.exec_trace();
    assert!(rt.lost_devices().is_empty());
    assert_eq!(trace.recoveries, 1);
    assert_eq!(trace.repartitions, 0, "transients keep the partitioning");
    assert!(trace.replayed_launches >= 1);
}

#[test]
fn zip_recovers_bit_identically_from_a_device_loss() {
    let xs = test_data(190);
    let ys: Vec<f32> = xs.iter().rev().copied().collect();
    let expected: Vec<f32> = xs.iter().zip(&ys).map(|(x, y)| 2.0 * x + y).collect();
    let rt = skelcl::init_gpus(3);
    rt.inject_faults(&FaultPlan::new().device_lost_at_op(2, 2));
    let x = Vector::from_vec(&rt, xs);
    let y = Vector::from_vec(&rt, ys);
    let saxpy = Zip::<f32, f32, f32>::from_source(SAXPY);
    let out = x.zip(&y, &saxpy).unwrap();
    assert_eq!(out.to_vec().unwrap(), expected);
    assert_eq!(rt.exec_trace().recoveries, 1);
    assert_eq!(rt.lost_devices(), vec![2]);
}

#[test]
fn reduce_recovers_exactly_from_a_device_loss() {
    let data = test_data(301);
    let expected: f32 = data.iter().sum(); // exact: small integers
    let rt = skelcl::init_gpus(4);
    rt.inject_faults(&FaultPlan::new().device_lost_at_op(3, 1));
    let v = Vector::from_vec(&rt, data);
    let sum = Reduce::<f32>::from_source(ADD);
    assert_eq!(v.reduce(&sum).unwrap(), expected);
    let trace = rt.exec_trace();
    assert_eq!(trace.recoveries, 1);
    assert!(trace.repartitions >= 1);
}

#[test]
fn iterative_stencil_recovers_mid_run_via_checkpoints() {
    let (rows, cols, sweeps) = (24, 10, 8);
    let image = test_data(rows * cols);
    let mut expected = image.clone();
    for _ in 0..sweeps {
        expected = host_heat(&expected, rows, cols);
    }
    let rt = skelcl::init_gpus(2);
    // Let a few sweeps complete, then kill device 1 mid-run: op 20 lands
    // well inside the sweep loop (each sweep costs a handful of ops).
    rt.inject_faults(&FaultPlan::new().device_lost_at_op(1, 20));
    let heat = MapOverlap::<f32, f32>::from_source(HEAT_STEP)
        .with_halo(1)
        .with_boundary(Boundary::Constant(0.0));
    let m = Matrix::from_vec(&rt, rows, cols, image).unwrap();
    let out = heat.run(&m).checkpoint_every(2).run_iter(sweeps).unwrap();
    assert_eq!(
        out.to_vec().unwrap(),
        expected,
        "recovered run must be bit-identical to the fault-free oracle"
    );
    let trace = rt.exec_trace();
    assert_eq!(rt.lost_devices(), vec![1]);
    assert!(trace.recoveries >= 1);
    assert!(trace.checkpoint_bytes > 0, "checkpointing was armed");
}

#[test]
fn unrecoverable_state_degrades_to_a_typed_error_not_wrong_data() {
    // The lost device holds the *only* copy of its input part (the host
    // copy is stale), so recovery cannot re-partition: the launch must
    // surface a typed DeviceLost error instead of fabricating data.
    let rt = skelcl::init_gpus(2);
    let v = Vector::from_vec(&rt, test_data(64));
    v.copy_data_to_devices().unwrap();
    v.mark_device_modified(); // host copy is now stale
    rt.inject_faults(&FaultPlan::new().device_lost_at_op(1, 1));
    let dbl = Map::<f32, f32>::from_source(DOUBLE);
    let err = v.map(&dbl).unwrap_err();
    assert!(err.is_device_lost(), "{err:?}");
    assert_eq!(rt.exec_trace().recoveries, 0);
}

#[test]
fn losing_every_device_fails_gracefully() {
    let rt = skelcl::init_gpus(2);
    rt.inject_faults(
        &FaultPlan::new()
            .device_lost_at_op(0, 1)
            .device_lost_at_op(1, 1),
    );
    let v = Vector::from_vec(&rt, test_data(64));
    let dbl = Map::<f32, f32>::from_source(DOUBLE);
    let err = v.map(&dbl).unwrap_err();
    assert!(err.is_device_lost(), "{err:?}");
    assert_eq!(rt.lost_devices(), vec![0, 1]);
}

#[test]
fn fault_free_run_is_bitwise_and_virtual_time_identical_with_recovery_on_or_off() {
    let run = |recovery: bool| {
        let rt = skelcl::init_gpus(3);
        rt.set_recovery_enabled(recovery);
        // A dormant plan must also be free.
        rt.inject_faults(&FaultPlan::new().device_lost_at_op(0, 1_000_000));
        let v = Vector::from_vec(&rt, test_data(200));
        let dbl = Map::<f32, f32>::from_source(DOUBLE);
        let sum = Reduce::<f32>::from_source(ADD);
        let mapped = v.map(&dbl).unwrap();
        let total = mapped.reduce(&sum).unwrap();
        let heat = MapOverlap::<f32, f32>::from_source(HEAT_STEP)
            .with_halo(1)
            .with_boundary(Boundary::Constant(0.0));
        let m = Matrix::from_vec(&rt, 10, 20, test_data(200)).unwrap();
        let stencil = heat.run(&m).run_iter(3).unwrap().to_vec().unwrap();
        let trace = rt.exec_trace();
        assert_eq!(trace.recoveries, 0);
        assert_eq!(trace.replayed_launches, 0);
        assert_eq!(trace.repartitions, 0);
        (mapped.to_vec().unwrap(), total, stencil, rt.now())
    };
    assert_eq!(
        run(true),
        run(false),
        "recovery must cost nothing when no fault fires"
    );
}

// ---------------------------------------------------------------------------
// Property: random deterministic fault schedules never corrupt results
// ---------------------------------------------------------------------------

/// Outcome of one chaos run, comparable across repetitions.
#[derive(Debug, Clone, PartialEq)]
enum Outcome {
    Ok(Vec<f32>),
    InjectedFault(String),
}

fn run_chaos(
    skeleton: usize,
    devices: usize,
    data: &[f32],
    specs: &[(usize, usize, usize)],
) -> Outcome {
    let rt = skelcl::init_gpus(devices);
    let mut plan = FaultPlan::new();
    for &(device, op, kind) in specs {
        let kind = match kind {
            0 => FaultKind::DeviceLost,
            1 => FaultKind::TransientTransfer,
            _ => FaultKind::TransientLaunch,
        };
        plan = plan.with(FaultSpec {
            device: device % devices,
            trigger: FaultTrigger::AtOpCount(op),
            kind,
        });
    }
    rt.inject_faults(&plan);
    let result: Result<Vec<f32>> = match skeleton {
        0 => {
            let v = Vector::from_vec(&rt, data.to_vec());
            let dbl = Map::<f32, f32>::from_source(DOUBLE);
            v.map(&dbl).and_then(|out| out.to_vec())
        }
        1 => {
            let x = Vector::from_vec(&rt, data.to_vec());
            let ys: Vec<f32> = data.iter().rev().copied().collect();
            let y = Vector::from_vec(&rt, ys);
            let saxpy = Zip::<f32, f32, f32>::from_source(SAXPY);
            x.zip(&y, &saxpy).and_then(|out| out.to_vec())
        }
        2 => {
            let v = Vector::from_vec(&rt, data.to_vec());
            let sum = Reduce::<f32>::from_source(ADD);
            v.reduce(&sum).map(|total| vec![total])
        }
        _ => {
            let heat = MapOverlap::<f32, f32>::from_source(HEAT_STEP)
                .with_halo(1)
                .with_boundary(Boundary::Constant(0.0));
            let m = Matrix::from_vec(&rt, data.len(), 1, data.to_vec()).unwrap();
            heat.run(&m)
                .checkpoint_every(2)
                .run_iter(3)
                .and_then(|out| out.to_vec())
        }
    };
    match result {
        Ok(out) => Outcome::Ok(out),
        Err(e) => {
            assert!(
                e.is_injected_fault(),
                "a chaos run may only fail with a typed injected-fault error, got {e:?}"
            );
            Outcome::InjectedFault(e.to_string())
        }
    }
}

fn oracle(skeleton: usize, data: &[f32]) -> Vec<f32> {
    match skeleton {
        0 => data.iter().map(|x| 2.0 * x).collect(),
        1 => {
            let ys: Vec<f32> = data.iter().rev().copied().collect();
            data.iter().zip(&ys).map(|(x, y)| 2.0 * x + y).collect()
        }
        2 => vec![data.iter().sum()],
        _ => {
            let mut cur = data.to_vec();
            for _ in 0..3 {
                cur = host_heat(&cur, data.len(), 1);
            }
            cur
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(20))]

    /// For any skeleton, device count and random deterministic fault
    /// schedule: the run either recovers to the exact fault-free oracle or
    /// fails with a typed injected-fault error — and repeating it with the
    /// same schedule reproduces the same outcome bit for bit.
    #[test]
    fn random_fault_schedules_recover_exactly_or_fail_typed(
        raw in prop::collection::vec(0u8..16, 1..160),
        devices in 1usize..=4,
        specs in prop::collection::vec((0usize..4, 1usize..12, 0usize..3), 0..4),
        skeleton in 0usize..4,
    ) {
        let data: Vec<f32> = raw.iter().map(|&x| x as f32).collect();
        let first = run_chaos(skeleton, devices, &data, &specs);
        let second = run_chaos(skeleton, devices, &data, &specs);
        prop_assert_eq!(&first, &second, "chaos runs must be reproducible");
        if let Outcome::Ok(out) = first {
            prop_assert_eq!(out, oracle(skeleton, &data));
        }
    }
}
