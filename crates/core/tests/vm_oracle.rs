//! Differential tests over the *actual* generated skeleton kernels: every
//! kernel that `kernelgen` emits (map, index map, zip, reduce, chunked
//! reduce, scan + scan offset) runs through both the bytecode VM and the
//! AST-interpreter oracle, asserting identical results and identical
//! measured ExecStats.

use proptest::prelude::*;

use skelcl::kernelgen::{self, UdfInfo};
use skelcl_kernel::interp::{ArgBinding, BufferView};
use skelcl_kernel::value::Value;
use skelcl_kernel::Program;

/// Run `kernel_src` through both engines on identical f32 buffers and
/// assert bit-identical buffers and stats.
fn assert_generated_kernel_agrees(
    kernel_src: &str,
    kernel_name: &str,
    buffers: &[Vec<f32>],
    scalars: &[Value],
    global_size: usize,
) {
    let p = Program::build(kernel_src).expect("generated kernels always build");
    let k = p.kernel(kernel_name).expect("generated kernel exists");

    let run = |use_vm: bool| {
        let mut bufs: Vec<Vec<f32>> = buffers.to_vec();
        let mut args: Vec<ArgBinding<'_>> = Vec::new();
        for b in &mut bufs {
            args.push(ArgBinding::Buffer(BufferView::F32(b)));
        }
        for s in scalars {
            args.push(ArgBinding::Scalar(*s));
        }
        let stats = if use_vm {
            p.run_ndrange_measured(&k, global_size, &mut args)
        } else {
            p.run_ndrange_measured_interp(&k, global_size, &mut args)
        }
        .expect("generated kernels run");
        drop(args);
        (bufs, stats)
    };

    let (vm_bufs, vm_stats) = run(true);
    let (or_bufs, or_stats) = run(false);
    for (i, (v, o)) in vm_bufs.iter().zip(&or_bufs).enumerate() {
        let vbits: Vec<u32> = v.iter().map(|x| x.to_bits()).collect();
        let obits: Vec<u32> = o.iter().map(|x| x.to_bits()).collect();
        assert_eq!(vbits, obits, "buffer {i} diverged for:\n{kernel_src}");
    }
    assert_eq!(vm_stats, or_stats, "stats diverged for:\n{kernel_src}");
}

const UDF_UNARY: &str =
    "float helper(float x) { return x * 0.5f; }\nfloat func(float x) { return helper(x) * x + 1.0f; }";
const UDF_BINARY_OP: &str = "float func(float a, float b) { return a + b * 0.25f; }";
const UDF_ZIP: &str = "float func(float x, float y, float a) { return a * x + y; }";

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn generated_map_kernel(data in prop::collection::vec(-100.0f32..100.0, 1..64)) {
        let info = UdfInfo::analyze(UDF_UNARY, 1).unwrap();
        let src = kernelgen::map_kernel(&info).unwrap();
        let n = data.len();
        let out = vec![0.0f32; n];
        assert_generated_kernel_agrees(
            &src, kernelgen::MAP_KERNEL,
            &[data, out], &[Value::Int(n as i32)], n,
        );
    }

    #[test]
    fn generated_zip_kernel(
        data in prop::collection::vec((-50.0f32..50.0, -50.0f32..50.0), 1..64),
        a in -4.0f32..4.0,
    ) {
        let info = UdfInfo::analyze(UDF_ZIP, 2).unwrap();
        let src = kernelgen::zip_kernel(&info).unwrap();
        let n = data.len();
        let left: Vec<f32> = data.iter().map(|(x, _)| *x).collect();
        let right: Vec<f32> = data.iter().map(|(_, y)| *y).collect();
        let out = vec![0.0f32; n];
        assert_generated_kernel_agrees(
            &src, kernelgen::ZIP_KERNEL,
            &[left, right, out],
            &[Value::Int(n as i32), Value::Float(a)], n,
        );
    }

    #[test]
    fn generated_reduce_kernels(
        data in prop::collection::vec(-10.0f32..10.0, 1..96),
        chunk in 1i32..16,
    ) {
        let info = UdfInfo::analyze(UDF_BINARY_OP, 2).unwrap();
        let n = data.len();

        let src = kernelgen::reduce_kernel(&info).unwrap();
        assert_generated_kernel_agrees(
            &src, kernelgen::REDUCE_KERNEL,
            &[data.clone(), vec![0.0f32; 1]], &[Value::Int(n as i32)], 1,
        );

        let chunks = n.div_ceil(chunk as usize);
        let src = kernelgen::reduce_chunked_kernel(&info).unwrap();
        assert_generated_kernel_agrees(
            &src, kernelgen::REDUCE_CHUNKED_KERNEL,
            &[data, vec![0.0f32; chunks]],
            &[Value::Int(n as i32), Value::Int(chunk)], chunks,
        );
    }

    #[test]
    fn generated_scan_kernels(
        data in prop::collection::vec(-10.0f32..10.0, 1..96),
        offset in -5.0f32..5.0,
    ) {
        let info = UdfInfo::analyze(UDF_BINARY_OP, 2).unwrap();
        let src = kernelgen::scan_kernels(&info).unwrap();
        let n = data.len();
        assert_generated_kernel_agrees(
            &src, kernelgen::SCAN_KERNEL,
            &[data.clone(), vec![0.0f32; n]], &[Value::Int(n as i32)], 1,
        );
        assert_generated_kernel_agrees(
            &src, kernelgen::SCAN_OFFSET_KERNEL,
            &[data], &[Value::Int(n as i32), Value::Float(offset)], n,
        );
    }

    #[test]
    fn generated_map_overlap_kernel(
        rows in 1usize..10,
        cols in 1usize..10,
        halo in 0usize..3,
        policy in 0i32..3,
        oob in -4.0f32..4.0,
        seed in 0u32..500,
    ) {
        // Neighbour probes are clamped to the generated halo so the launch
        // succeeds; the error paths are covered by the kernel crate's
        // differential suite.
        let dy = halo.min(1);
        let udf = format!(
            "float func(float x, float a) {{ return a * (get(-1, {dy}) + get(1, -{dy}) + get(3, 0)) + x; }}"
        );
        let info = UdfInfo::analyze(&udf, 1).unwrap();
        let src = kernelgen::map_overlap_kernel(&info).unwrap();
        let n = rows * cols;
        let padded = (rows + 2 * halo) * cols;
        let input: Vec<f32> = (0..padded)
            .map(|i| ((i as u32 * 53 + seed) % 97) as f32 * 0.5 - 24.0)
            .collect();
        let out = vec![0.0f32; padded];
        assert_generated_kernel_agrees(
            &src, kernelgen::MAP_OVERLAP_KERNEL,
            &[input, out],
            &[
                Value::Int(n as i32),
                Value::Int(cols as i32),
                Value::Int(halo as i32),
                Value::Int(policy),
                Value::Float(oob),
                Value::Float(0.75),
            ],
            n,
        );
    }

    #[test]
    fn generated_gaussian_blur_kernel(
        rows in 1usize..8,
        cols in 1usize..8,
        seed in 0u32..500,
    ) {
        // The exact UDF the examples ship: 3x3 Gaussian blur, halo 1.
        let udf = r#"
            float func(float x) {
                float acc = 4.0f * x;
                acc += 2.0f * (get(-1, 0) + get(1, 0) + get(0, -1) + get(0, 1));
                acc += get(-1, -1) + get(1, -1) + get(-1, 1) + get(1, 1);
                return acc / 16.0f;
            }
        "#;
        let info = UdfInfo::analyze(udf, 1).unwrap();
        let src = kernelgen::map_overlap_kernel(&info).unwrap();
        let n = rows * cols;
        let padded = (rows + 2) * cols;
        let input: Vec<f32> = (0..padded)
            .map(|i| ((i as u32 * 29 + seed) % 113) as f32 * 0.25)
            .collect();
        let out = vec![0.0f32; padded];
        assert_generated_kernel_agrees(
            &src, kernelgen::MAP_OVERLAP_KERNEL,
            &[input, out],
            &[
                Value::Int(n as i32),
                Value::Int(cols as i32),
                Value::Int(1),
                Value::Int(0),
                Value::Float(0.0),
            ],
            n,
        );
    }

    #[test]
    fn generated_index_map_kernel(
        n in 1usize..64,
        scale in -3i32..4,
    ) {
        let udf = "int func(int i, int scale) { return i * scale + i % 3; }";
        let info = UdfInfo::analyze(udf, 1).unwrap();
        let src = kernelgen::map_index_kernel(&info).unwrap();
        let p = Program::build(&src).unwrap();
        let k = p.kernel(kernelgen::MAP_INDEX_KERNEL).unwrap();
        let run = |use_vm: bool| {
            let mut out = vec![0i32; n];
            let mut args = vec![
                ArgBinding::Buffer(BufferView::I32(&mut out)),
                ArgBinding::Scalar(Value::Int(n as i32)),
                ArgBinding::Scalar(Value::Int(7)),
                ArgBinding::Scalar(Value::Int(scale)),
            ];
            let stats = if use_vm {
                p.run_ndrange_measured(&k, n, &mut args)
            } else {
                p.run_ndrange_measured_interp(&k, n, &mut args)
            }
            .unwrap();
            drop(args);
            (out, stats)
        };
        let (vm_out, vm_stats) = run(true);
        let (or_out, or_stats) = run(false);
        prop_assert_eq!(vm_out, or_out);
        prop_assert_eq!(vm_stats, or_stats);
    }
}

/// The full skeleton pipeline (which now executes through the VM) still
/// matches a sequential Rust reference end to end.
#[test]
fn skeleton_pipeline_end_to_end_through_vm() {
    let rt = skelcl::init_gpus(3);
    let square =
        skelcl::skeletons::Map::<f32, f32>::from_source("float func(float x) { return x * x; }");
    let sum = skelcl::skeletons::Reduce::<f32>::from_source(
        "float func(float a, float b) { return a + b; }",
    );
    let data: Vec<f32> = (1..=100).map(|i| i as f32).collect();
    let v = skelcl::vector::Vector::from_vec(&rt, data.clone());
    let result = v.map(&square).unwrap().reduce(&sum).unwrap();
    let expected: f32 = data.iter().map(|x| x * x).sum();
    assert_eq!(result, expected);
}
