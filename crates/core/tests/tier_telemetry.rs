//! End-to-end checks of the kernel-tier plumbing: `SkelCl::set_kernel_tier`
//! reaches already-cached programs, per-device tier counters surface in
//! `ExecTrace`, results are identical across tiers, and `Plan::explain`
//! renders the tier decision.

use skelcl::skeletons::Map;
use skelcl::vector::Vector;
use skelcl::Tier;

const SQUARE: &str = "float func(float x) { return x * x; }";

fn run_map(rt: &std::sync::Arc<skelcl::SkelCl>, n: usize) -> Vec<f32> {
    let square = Map::<f32, f32>::from_source(SQUARE);
    let data: Vec<f32> = (0..n).map(|i| (i % 31) as f32 * 0.5).collect();
    let v = Vector::from_vec(rt, data);
    v.map(&square).unwrap().to_vec().unwrap()
}

#[test]
fn forced_native_tier_is_counted_and_bit_identical() {
    let rt = skelcl::init_gpus(1);

    // First launch under the default (auto) tier: 100 items is below every
    // graduation threshold, so it stays on the batched VM.
    let baseline = run_map(&rt, 100);
    let t = rt.exec_trace();
    assert_eq!(t.batched_launches(), 1, "small cold launch uses the VM");
    assert_eq!(t.native_launches(), 0);
    assert_eq!(t.native_compiles(), 0);

    // Pin the native tier. The program is already cached in the context, so
    // this must reach it through the shared tier state.
    rt.set_kernel_tier(Tier::Native);
    let native = run_map(&rt, 100);
    assert_eq!(
        baseline.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
        native.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
        "native tier must be bit-identical to the batched VM"
    );
    let t = rt.exec_trace();
    assert_eq!(t.native_launches(), 1, "pinned launch runs natively");
    assert_eq!(t.native_compiles(), 1, "first native launch compiles");
    assert!(t.native_compile_ns() > 0);

    // A second native launch reuses the compiled artifact.
    run_map(&rt, 100);
    let t = rt.exec_trace();
    assert_eq!(t.native_launches(), 2);
    assert_eq!(
        t.native_compiles(),
        1,
        "compilation happens once per kernel"
    );
}

#[test]
fn auto_tier_graduates_large_launches() {
    let rt = skelcl::init_gpus(1);
    // 10_000 items on one device is past AUTO_SIZE_IMMEDIATE (8192): the
    // very first launch graduates to the native tier.
    run_map(&rt, 10_000);
    let t = rt.exec_trace();
    assert_eq!(t.native_launches(), 1, "large launch graduates immediately");
    assert_eq!(t.batched_launches(), 0);
    assert_eq!(t.native_compiles(), 1);
}

#[test]
fn interp_tier_pin_and_per_device_counters() {
    let rt = skelcl::init_gpus(2);
    rt.set_kernel_tier(Tier::Interp);
    run_map(&rt, 64);
    let t = rt.exec_trace();
    assert_eq!(t.interp_launches(), 2, "one launch per device");
    assert_eq!(t.native_launches() + t.batched_launches(), 0);
    assert_eq!(t.devices.len(), 2);
    for d in &t.devices {
        assert_eq!(d.interp_launches, 1);
        assert_eq!(d.native_compiles, 0);
    }
}

#[test]
fn explain_renders_tier_decision() {
    let rt = skelcl::init_gpus(1);
    let square = Map::<f32, f32>::from_source(SQUARE);
    let v = Vector::from_vec(&rt, vec![1.0f32; 32]);
    let plan = v.lazy().map(&square);
    let text = plan.explain().unwrap();
    assert!(
        text.contains("Kernel tier: auto"),
        "default explain shows the auto heuristic:\n{text}"
    );
    assert!(text.contains("8192"), "thresholds are spelled out:\n{text}");

    rt.set_kernel_tier(Tier::Native);
    let text = plan.explain().unwrap();
    assert!(
        text.contains("Kernel tier: native (pinned via set_kernel_tier)"),
        "pinned explain names the tier and its origin:\n{text}"
    );
}
