//! Acceptance tests of the 2-D stencil subsystem: Gaussian blur and heat
//! diffusion produce **bit-identical** results to a scalar host reference on
//! 1, 2 and 4 devices, and the iterative driver exchanges **halo rows only**
//! between sweeps (asserted via oclsim transfer stats and the runtime's
//! `ExecTrace` halo counters).

use skelcl::prelude::*;
use skelcl::MatrixDistribution;

/// The 3×3 Gaussian blur kernel (halo 1): 1/16 · [1 2 1; 2 4 2; 1 2 1].
const GAUSSIAN_BLUR: &str = r#"
    float func(float x) {
        float acc = 4.0f * x;
        acc += 2.0f * (get(-1, 0) + get(1, 0) + get(0, -1) + get(0, 1));
        acc += get(-1, -1) + get(1, -1) + get(-1, 1) + get(1, 1);
        return acc / 16.0f;
    }
"#;

/// Explicit 5-point heat diffusion step (halo 1): u + α·∇²u.
const HEAT_STEP: &str = r#"
    float func(float u, float alpha) {
        return u + alpha * (get(0, -1) + get(0, 1) + get(-1, 0) + get(1, 0) - 4.0f * u);
    }
"#;

/// A vertical 5-row average exercising halo width 2.
const WIDE_VERTICAL: &str = r#"
    float func(float x) {
        return 0.2f * (x + get(0, -2) + get(0, -1) + get(0, 1) + get(0, 2));
    }
"#;

/// Scalar host reference executor. `f` receives a neighbour probe and the
/// centre value; the probe applies `boundary` exactly like the runtime. All
/// arithmetic inside `f` must mirror the UDF's operation order — every f32
/// add/mul/div is a single correctly-rounded operation in both worlds, so
/// results match bit for bit.
fn host_stencil(
    input: &[f32],
    rows: usize,
    cols: usize,
    boundary: Boundary<f32>,
    f: impl Fn(&dyn Fn(i64, i64) -> f32, f32) -> f32,
) -> Vec<f32> {
    let (r_max, c_max) = (rows as i64, cols as i64);
    let mut out = vec![0.0f32; rows * cols];
    for r in 0..r_max {
        for c in 0..c_max {
            let probe = |dx: i64, dy: i64| -> f32 {
                let mut rr = r + dy;
                let mut cc = c + dx;
                match boundary {
                    Boundary::Clamp => {
                        rr = rr.clamp(0, r_max - 1);
                        cc = cc.clamp(0, c_max - 1);
                    }
                    Boundary::Wrap => {
                        rr = rr.rem_euclid(r_max);
                        cc = cc.rem_euclid(c_max);
                    }
                    Boundary::Constant(v) => {
                        if !(0..r_max).contains(&rr) || !(0..c_max).contains(&cc) {
                            return v;
                        }
                    }
                }
                input[(rr * c_max + cc) as usize]
            };
            out[(r * c_max + c) as usize] = f(&probe, input[(r * c_max + c) as usize]);
        }
    }
    out
}

fn blur_ref(get: &dyn Fn(i64, i64) -> f32, x: f32) -> f32 {
    let mut acc = 4.0f32 * x;
    acc += 2.0f32 * (get(-1, 0) + get(1, 0) + get(0, -1) + get(0, 1));
    acc += get(-1, -1) + get(1, -1) + get(-1, 1) + get(1, 1);
    acc / 16.0f32
}

fn heat_ref(alpha: f32) -> impl Fn(&dyn Fn(i64, i64) -> f32, f32) -> f32 {
    move |get, u| u + alpha * (get(0, -1) + get(0, 1) + get(-1, 0) + get(1, 0) - 4.0f32 * u)
}

fn wide_ref(get: &dyn Fn(i64, i64) -> f32, x: f32) -> f32 {
    0.2f32 * (x + get(0, -2) + get(0, -1) + get(0, 1) + get(0, 2))
}

fn test_image(rows: usize, cols: usize) -> Vec<f32> {
    (0..rows * cols)
        .map(|i| ((i * 37 + 11) % 251) as f32 * 0.25 - 20.0)
        .collect()
}

fn assert_bits_eq(got: &[f32], expected: &[f32], what: &str) {
    let g: Vec<u32> = got.iter().map(|x| x.to_bits()).collect();
    let e: Vec<u32> = expected.iter().map(|x| x.to_bits()).collect();
    assert_eq!(g, e, "{what} must match the host reference bit for bit");
}

#[test]
fn gaussian_blur_is_bit_identical_on_1_2_and_4_devices() {
    let (rows, cols) = (23, 17);
    let image = test_image(rows, cols);
    let expected = host_stencil(&image, rows, cols, Boundary::Clamp, blur_ref);
    for devices in [1, 2, 4] {
        let rt = skelcl::init_gpus(devices);
        let blur = MapOverlap::<f32, f32>::from_source(GAUSSIAN_BLUR)
            .with_halo(1)
            .with_boundary(Boundary::Clamp);
        let m = Matrix::from_vec(&rt, rows, cols, image.clone()).unwrap();
        let out = blur.run(&m).exec().unwrap();
        assert_bits_eq(
            &out.to_vec().unwrap(),
            &expected,
            &format!("gaussian blur on {devices} device(s)"),
        );
    }
}

#[test]
fn heat_diffusion_is_bit_identical_on_1_2_and_4_devices_over_many_sweeps() {
    let (rows, cols, sweeps) = (20, 12, 25);
    let alpha = 0.15f32;
    let mut expected = test_image(rows, cols);
    for _ in 0..sweeps {
        expected = host_stencil(
            &expected,
            rows,
            cols,
            Boundary::Constant(0.0),
            heat_ref(alpha),
        );
    }
    for devices in [1, 2, 4] {
        let rt = skelcl::init_gpus(devices);
        let heat = MapOverlap::<f32, f32>::from_source(HEAT_STEP)
            .with_halo(1)
            .with_boundary(Boundary::Constant(0.0));
        let m = Matrix::from_vec(&rt, rows, cols, test_image(rows, cols)).unwrap();
        let out = heat.run(&m).arg(alpha).run_iter(sweeps).unwrap();
        assert_bits_eq(
            &out.to_vec().unwrap(),
            &expected,
            &format!("{sweeps} heat sweeps on {devices} device(s)"),
        );
    }
}

#[test]
fn halo_width_two_stencils_match_on_multiple_devices() {
    let (rows, cols) = (18, 9);
    let image = test_image(rows, cols);
    let expected = host_stencil(&image, rows, cols, Boundary::Wrap, wide_ref);
    for devices in [1, 3] {
        let rt = skelcl::init_gpus(devices);
        let st = MapOverlap::<f32, f32>::from_source(WIDE_VERTICAL)
            .with_halo(2)
            .with_boundary(Boundary::Wrap);
        let m = Matrix::from_vec(&rt, rows, cols, image.clone()).unwrap();
        let out = st.run(&m).exec().unwrap();
        assert_bits_eq(
            &out.to_vec().unwrap(),
            &expected,
            &format!("halo-2 wrap stencil on {devices} device(s)"),
        );
        assert_eq!(
            out.distribution(),
            MatrixDistribution::OverlapBlock { halo_rows: 2 }
        );
    }
}

#[test]
fn iterative_sweeps_exchange_halo_rows_not_whole_parts() {
    let (rows, cols, sweeps) = (64, 32, 6);
    let rt = skelcl::init_gpus(4);
    let heat = MapOverlap::<f32, f32>::from_source(HEAT_STEP)
        .with_halo(1)
        .with_boundary(Boundary::Constant(0.0));
    let m = Matrix::from_vec(&rt, rows, cols, test_image(rows, cols)).unwrap();

    rt.drain_events();
    let out = heat.run(&m).arg(0.1f32).run_iter(sweeps).unwrap();

    let events = rt.drain_events();
    let row_bytes = cols * 4;
    let core_rows = rows / 4;
    let padded_upload = (core_rows + 2) * row_bytes;
    let mut halo_bytes_seen = 0usize;
    let mut uploads = 0usize;
    for e in events.iter().flatten().filter(|e| e.is_transfer()) {
        if e.bytes == padded_upload {
            uploads += 1;
        } else {
            assert!(
                e.bytes <= row_bytes,
                "between-sweep transfer of {} bytes exceeds one halo row ({} bytes); \
                 whole parts are {} bytes",
                e.bytes,
                row_bytes,
                core_rows * row_bytes
            );
            halo_bytes_seen += e.bytes;
        }
    }
    assert_eq!(uploads, 4, "exactly one padded upload per device");
    assert!(halo_bytes_seen > 0, "sweeps must exchange halo data");

    // The runtime telemetry exposes the same story without event plumbing.
    let trace = rt.exec_trace();
    assert!(trace.halo_transfers() > 0);
    assert_eq!(
        trace.halo_bytes() % row_bytes,
        0,
        "halo traffic is whole rows"
    );
    assert!(trace.skeleton_calls >= sweeps);
    // And the result is still exact.
    let mut expected = m.to_vec().unwrap();
    for _ in 0..sweeps {
        expected = host_stencil(
            &expected,
            rows,
            cols,
            Boundary::Constant(0.0),
            heat_ref(0.1),
        );
    }
    assert_bits_eq(
        &out.to_vec().unwrap(),
        &expected,
        "iterative heat on 4 devices",
    );
}

#[test]
fn chained_stencils_stay_on_the_devices() {
    // blur ∘ blur: the second launch's input is the first's device-resident
    // output — only halo refreshes may move data, no full re-upload.
    let (rows, cols) = (40, 20);
    let rt = skelcl::init_gpus(2);
    let blur = MapOverlap::<f32, f32>::from_source(GAUSSIAN_BLUR);
    let m = Matrix::from_vec(&rt, rows, cols, test_image(rows, cols)).unwrap();
    let once = blur.run(&m).exec().unwrap();
    rt.drain_events();
    let twice = blur.run(&once).exec().unwrap();
    let events = rt.drain_events();
    let row_bytes = cols * 4;
    for e in events.iter().flatten().filter(|e| e.is_transfer()) {
        assert!(
            e.bytes <= row_bytes,
            "chained stencil moved {} bytes — more than a halo row",
            e.bytes
        );
    }
    let expected = {
        let one = host_stencil(&m.to_vec().unwrap(), rows, cols, Boundary::Clamp, blur_ref);
        host_stencil(&one, rows, cols, Boundary::Clamp, blur_ref)
    };
    assert_bits_eq(&twice.to_vec().unwrap(), &expected, "chained blur");
}

#[test]
fn more_devices_than_rows_still_computes_correctly() {
    let (rows, cols) = (3, 5);
    let rt = skelcl::init_gpus(4);
    let blur = MapOverlap::<f32, f32>::from_source(GAUSSIAN_BLUR);
    let image = test_image(rows, cols);
    let expected = host_stencil(&image, rows, cols, Boundary::Clamp, blur_ref);
    let m = Matrix::from_vec(&rt, rows, cols, image).unwrap();
    let out = blur.run(&m).run_iter(3).unwrap();
    let mut exp = expected;
    for _ in 0..2 {
        exp = host_stencil(&exp, rows, cols, Boundary::Clamp, blur_ref);
    }
    assert_bits_eq(&out.to_vec().unwrap(), &exp, "3 sweeps with idle devices");
}

#[test]
fn empty_matrix_launches_are_rejected() {
    let rt = skelcl::init_gpus(2);
    let blur = MapOverlap::<f32, f32>::from_source(GAUSSIAN_BLUR);
    let m = Matrix::from_vec(&rt, 0, 5, Vec::new()).unwrap();
    assert!(matches!(blur.run(&m).exec(), Err(SkelError::EmptyInput)));
}

#[test]
fn exec_trace_reports_pool_and_halo_telemetry() {
    let rt = skelcl::init_gpus(2);
    let heat = MapOverlap::<f32, f32>::from_source(HEAT_STEP);
    let m = Matrix::filled(&rt, 24, 12, 1.0f32);
    let _ = heat.run(&m).arg(0.2f32).run_iter(4).unwrap();
    // Run again: the first run's intermediates were released to the pool.
    let _ = heat.run(&m).arg(0.2f32).run_iter(4).unwrap();
    let trace = rt.exec_trace();
    assert!(trace.buffer_pool_hits > 0, "{trace:?}");
    assert!(trace.halo_transfers() > 0, "{trace:?}");
    assert_eq!(trace.devices.len(), 2);
    assert!(trace.programs_built >= 1);
    let total: usize = trace.devices.iter().map(|d| d.halo_bytes).sum();
    assert_eq!(total, trace.halo_bytes());
}
