//! Static scheduling with performance prediction for heterogeneous devices
//! (paper, Section V).
//!
//! "To use the heterogeneous devices efficiently, in particular to employ all
//! devices during the complete execution of a skeleton, SkelCL should not
//! assign evenly-sized workload to the devices. [...] Currently, SkelCL
//! employs a static scheduling approach based on an enhanced performance
//! prediction approach: [...] performance prediction based on statistical
//! code analysis and benchmarks is only used for the user-defined functions
//! rather than the whole program code. The results of this performance
//! prediction are completed by analytical performance models for the
//! skeletons."
//!
//! [`PerfModel`] combines the analytical device model (peak throughput,
//! memory bandwidth, launch overhead) with an optional measured calibration;
//! [`StaticScheduler`] turns predictions into weighted block distributions
//! and decides whether the final step of a reduction should run on a CPU
//! device rather than a GPU.

use std::sync::Arc;

use oclsim::{CostHint, DeviceType, KernelArg, NativeKernelDef, Program, SimDuration};

use crate::distribution::Distribution;
use crate::error::{Result, SkelError};
use crate::runtime::SkelCl;

/// Per-device performance figures used for prediction.
#[derive(Debug, Clone, PartialEq)]
pub struct DevicePerf {
    /// Device index in the runtime.
    pub device: usize,
    /// Device kind (GPU or CPU).
    pub device_type: DeviceType,
    /// Sustainable floating-point throughput in FLOP/s.
    pub flops: f64,
    /// Sustainable memory bandwidth in bytes/s.
    pub bytes_per_sec: f64,
    /// Fixed kernel launch overhead.
    pub launch_overhead: SimDuration,
    /// Host ↔ device transfer bandwidth in bytes/s.
    pub transfer_bytes_per_sec: f64,
    /// Host ↔ device transfer latency.
    pub transfer_latency: SimDuration,
}

/// The performance model: analytical device figures, optionally refined by a
/// measured calibration factor per device.
#[derive(Debug, Clone)]
pub struct PerfModel {
    devices: Vec<DevicePerf>,
}

impl PerfModel {
    /// Build the analytical model from the runtime's device profiles.
    pub fn analytical(runtime: &Arc<SkelCl>) -> PerfModel {
        let api = runtime.context().api().clone();
        let devices = runtime
            .context()
            .devices()
            .iter()
            .map(|d| {
                let p = &d.profile;
                DevicePerf {
                    device: d.id,
                    device_type: p.device_type,
                    flops: p.peak_gflops * 1e9 * api.compute_efficiency,
                    bytes_per_sec: p.mem_bandwidth_gbs * 1e9,
                    launch_overhead: api.launch_overhead(p),
                    transfer_bytes_per_sec: p.transfer_bandwidth_gbs * 1e9,
                    transfer_latency: p.transfer_latency,
                }
            })
            .collect();
        PerfModel { devices }
    }

    /// Refine the analytical model by running a small calibration kernel with
    /// the given per-element cost on every device and measuring its (virtual)
    /// execution time — the "benchmarks" part of the paper's prediction
    /// approach. `sample_size` elements are processed per device.
    pub fn calibrated(
        runtime: &Arc<SkelCl>,
        cost: CostHint,
        sample_size: usize,
    ) -> Result<PerfModel> {
        let mut model = Self::analytical(runtime);
        let def = NativeKernelDef::new("skelcl_calibration", cost, |_ctx| Ok(()));
        let program = Program::from_native([def]);
        let kernel = program
            .kernel("skelcl_calibration")
            .map_err(crate::error::SkelError::from)?;
        for perf in &mut model.devices {
            let buffer = runtime
                .context()
                .create_buffer::<f32>(perf.device, sample_size.max(1))?;
            let event = runtime.queue(perf.device).enqueue_kernel(
                &kernel,
                sample_size.max(1),
                &[KernelArg::Buffer(buffer.clone())],
            )?;
            let event = event.wait().map_err(crate::error::SkelError::from)?;
            runtime.context().release_buffer(&buffer)?;
            let measured = event.duration();
            let predicted = self_predict(perf, sample_size.max(1), cost);
            // Scale the throughput figures so prediction matches measurement.
            if predicted.as_nanos() > 0 && measured.as_nanos() > 0 {
                let factor = predicted.as_secs_f64() / measured.as_secs_f64();
                perf.flops *= factor;
                perf.bytes_per_sec *= factor;
            }
        }
        Ok(model)
    }

    /// Per-device figures.
    pub fn devices(&self) -> &[DevicePerf] {
        &self.devices
    }

    /// Predicted kernel execution time for `work_items` elements of the
    /// given per-element cost on device `device`.
    pub fn predict(&self, device: usize, work_items: usize, cost: CostHint) -> Result<SimDuration> {
        let perf = self
            .devices
            .iter()
            .find(|d| d.device == device)
            .ok_or_else(|| {
                SkelError::Scheduler(format!("no performance data for device {device}"))
            })?;
        Ok(self_predict(perf, work_items, cost))
    }

    /// Predicted time to move `bytes` bytes between the host and `device`.
    pub fn predict_transfer(&self, device: usize, bytes: usize) -> Result<SimDuration> {
        let perf = self
            .devices
            .iter()
            .find(|d| d.device == device)
            .ok_or_else(|| {
                SkelError::Scheduler(format!("no performance data for device {device}"))
            })?;
        Ok(perf.transfer_latency
            + SimDuration::from_secs_f64(bytes as f64 / perf.transfer_bytes_per_sec))
    }

    /// Relative weights (higher = more work) for distributing `1.0` total
    /// work of the given per-element cost across the devices: inversely
    /// proportional to the predicted per-element time.
    pub fn weights(&self, cost: CostHint) -> Vec<f64> {
        const PROBE_ITEMS: usize = 1 << 20;
        let times: Vec<f64> = self
            .devices
            .iter()
            .map(|d| self_predict(d, PROBE_ITEMS, cost).as_secs_f64().max(1e-12))
            .collect();
        let inv: Vec<f64> = times.iter().map(|t| 1.0 / t).collect();
        let total: f64 = inv.iter().sum();
        inv.into_iter().map(|w| w / total).collect()
    }
}

fn self_predict(perf: &DevicePerf, work_items: usize, cost: CostHint) -> SimDuration {
    let items = work_items as f64;
    let compute = items * cost.flops_per_item.max(1.0) / perf.flops;
    let memory = items * cost.bytes_per_item.max(4.0) / perf.bytes_per_sec;
    perf.launch_overhead + SimDuration::from_secs_f64(compute.max(memory))
}

/// The static scheduler of Section V.
#[derive(Debug, Clone)]
pub struct StaticScheduler {
    model: PerfModel,
}

impl StaticScheduler {
    /// Create a scheduler from a performance model.
    pub fn new(model: PerfModel) -> StaticScheduler {
        StaticScheduler { model }
    }

    /// Create a scheduler with the purely analytical model of a runtime.
    pub fn analytical(runtime: &Arc<SkelCl>) -> StaticScheduler {
        StaticScheduler::new(PerfModel::analytical(runtime))
    }

    /// The underlying performance model.
    pub fn model(&self) -> &PerfModel {
        &self.model
    }

    /// A block distribution whose part sizes are proportional to each
    /// device's predicted throughput for a kernel of the given per-element
    /// cost — the non-even workload assignment the paper calls for.
    pub fn weighted_block(&self, cost: CostHint) -> Distribution {
        Distribution::block_weighted(&self.model.weights(cost))
    }

    /// Decide whether the *final* reduction of `intermediate` partial results
    /// (each `elem_bytes` bytes) should run on a CPU device rather than a
    /// GPU: the paper observes that GPUs "provide poor performance when
    /// reducing only few elements", while a CPU avoids both the launch
    /// overhead and the extra transfer. Returns the index of the chosen
    /// device and `true` if it is a CPU.
    pub fn final_reduce_placement(
        &self,
        intermediate: usize,
        elem_bytes: usize,
        cost: CostHint,
    ) -> Result<(usize, bool)> {
        let mut best: Option<(usize, bool, SimDuration)> = None;
        for perf in &self.model.devices {
            let exec = self_predict(perf, intermediate.max(1), cost);
            // Results must reach the device and come back; a CPU device's
            // "transfer" is a cheap host-memory copy in the profile.
            let transfer = perf.transfer_latency
                + SimDuration::from_secs_f64(
                    (intermediate * elem_bytes) as f64 / perf.transfer_bytes_per_sec,
                );
            let total = exec + transfer;
            let is_cpu = perf.device_type == DeviceType::Cpu;
            match &best {
                Some((_, _, t)) if *t <= total => {}
                _ => best = Some((perf.device, is_cpu, total)),
            }
        }
        best.map(|(d, cpu, _)| (d, cpu))
            .ok_or_else(|| SkelError::Scheduler("the runtime has no devices".into()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::{init_gpus, init_profiles};
    use oclsim::DeviceProfile;

    fn heterogeneous_runtime() -> Arc<SkelCl> {
        init_profiles(vec![
            DeviceProfile::tesla_c1060(),
            DeviceProfile::generic_small_gpu(),
            DeviceProfile::xeon_e5520(),
        ])
    }

    #[test]
    fn analytical_model_reflects_profiles() {
        let rt = heterogeneous_runtime();
        let model = PerfModel::analytical(&rt);
        assert_eq!(model.devices().len(), 3);
        assert!(model.devices()[0].flops > model.devices()[2].flops);
        assert_eq!(model.devices()[2].device_type, DeviceType::Cpu);
    }

    #[test]
    fn prediction_scales_with_work() {
        let rt = init_gpus(1);
        let model = PerfModel::analytical(&rt);
        let small = model.predict(0, 1_000, CostHint::new(10.0, 8.0)).unwrap();
        let large = model
            .predict(0, 1_000_000, CostHint::new(10.0, 8.0))
            .unwrap();
        assert!(large > small);
        assert!(model.predict(7, 10, CostHint::DEFAULT).is_err());
    }

    #[test]
    fn weights_favour_faster_devices_and_sum_to_one() {
        let rt = heterogeneous_runtime();
        let model = PerfModel::analytical(&rt);
        let weights = model.weights(CostHint::new(100.0, 8.0));
        assert_eq!(weights.len(), 3);
        let sum: f64 = weights.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9);
        assert!(
            weights[0] > weights[1] && weights[1] > weights[2],
            "Tesla > small GPU > CPU expected, got {weights:?}"
        );
    }

    #[test]
    fn weighted_block_distribution_is_uneven_for_heterogeneous_devices() {
        let rt = heterogeneous_runtime();
        let scheduler = StaticScheduler::analytical(&rt);
        let dist = scheduler.weighted_block(CostHint::new(50.0, 8.0));
        match dist {
            Distribution::BlockWeighted(w) => {
                assert_eq!(w.len(), 3);
                assert!(w[0] > w[2], "the Tesla must receive more work than the CPU");
            }
            other => panic!("expected a weighted block distribution, got {other:?}"),
        }
    }

    #[test]
    fn final_reduce_prefers_cpu_for_few_elements() {
        let rt = heterogeneous_runtime();
        let scheduler = StaticScheduler::analytical(&rt);
        // Reducing a handful of partial results: the CPU avoids the GPU's
        // launch overhead and PCIe latency.
        let (_, is_cpu) = scheduler
            .final_reduce_placement(4, 4, CostHint::new(1.0, 8.0))
            .unwrap();
        assert!(is_cpu, "few elements should be reduced on the CPU");
    }

    #[test]
    fn large_final_reduce_may_go_to_the_gpu() {
        let rt = heterogeneous_runtime();
        let scheduler = StaticScheduler::analytical(&rt);
        let (device, is_cpu) = scheduler
            .final_reduce_placement(50_000_000, 4, CostHint::new(200.0, 4.0))
            .unwrap();
        assert!(
            !is_cpu,
            "a huge compute-heavy reduction should pick a GPU, picked device {device}"
        );
    }

    #[test]
    fn calibration_adjusts_throughput_without_breaking_weights() {
        let rt = heterogeneous_runtime();
        let model = PerfModel::calibrated(&rt, CostHint::new(20.0, 8.0), 4096).unwrap();
        let weights = model.weights(CostHint::new(20.0, 8.0));
        let sum: f64 = weights.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9);
        assert!(weights[0] > weights[2]);
    }
}
