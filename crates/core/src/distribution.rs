//! Data distributions of SkelCL vectors across multiple devices
//! (paper, Section III-A and Figure 1).
//!
//! A distribution describes which part of a vector each device holds:
//!
//! * [`Distribution::Single`] — the whole vector lives on one device,
//! * [`Distribution::Block`] — each device holds a contiguous, disjoint part,
//! * [`Distribution::BlockWeighted`] — like block, but part sizes follow
//!   explicit weights (used by the Section V scheduler for heterogeneous
//!   devices),
//! * [`Distribution::Copy`] — every device holds a full copy.
//!
//! Changing the distribution implies data exchanges between devices and the
//! host, performed implicitly (and lazily) by [`crate::vector::Vector`].
//! When changing *away from* `Copy`, the per-device copies may differ and are
//! combined with a user-specified [`Combine`] function; without one, the
//! first device's copy wins (paper, Section III-A).

use std::ops::Range;
use std::sync::Arc;

use crate::container::{EdgePolicy, HaloSegment, PartLayout, PartSegment, Partitioning};
use crate::error::{Result, SkelError};

/// How a vector's data is distributed across the devices of the runtime.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Distribution {
    /// Whole vector on a single device (the given device index).
    Single(usize),
    /// Contiguous, disjoint, evenly-sized parts on every device.
    Block,
    /// Contiguous, disjoint parts sized proportionally to the given weights
    /// (one weight per device, in fixed-point thousandths to keep the type
    /// `Eq`-comparable).
    BlockWeighted(Vec<u32>),
    /// A full copy of the vector on every device.
    Copy,
}

impl Distribution {
    /// The default distribution of newly created vectors and of skeleton main
    /// inputs with no explicit distribution (the paper uses block).
    pub fn default_for_inputs() -> Distribution {
        Distribution::Block
    }

    /// Build a weighted block distribution from floating-point weights.
    pub fn block_weighted(weights: &[f64]) -> Distribution {
        Distribution::BlockWeighted(scale_weights(weights))
    }

    /// Whether every device participates in a skeleton over a vector with
    /// this distribution.
    pub fn uses_all_devices(&self) -> bool {
        !matches!(self, Distribution::Single(_))
    }
}

impl Partitioning for Distribution {
    type Shape = usize;
    type Layout = Partition;

    fn layout(&self, shape: usize, devices: usize) -> Partition {
        Partition::compute(shape, devices, self)
    }

    fn validate(&self, devices: usize) -> Result<()> {
        if let Distribution::Single(d) = self {
            if *d >= devices {
                return Err(SkelError::Distribution(format!(
                    "single distribution names device {d} but the runtime has {devices} devices"
                )));
            }
        }
        Ok(())
    }

    fn is_replicated(&self) -> bool {
        matches!(self, Distribution::Copy)
    }
}

/// Scale floating-point weights to the fixed-point thousandths stored in
/// weighted distributions (kept integral so distributions stay `Eq`).
fn scale_weights(weights: &[f64]) -> Vec<u32> {
    weights
        .iter()
        .map(|w| (w.max(0.0) * 1000.0).round() as u32)
        .collect()
}

/// Resolve fixed-point per-device weights to block ranges, falling back to an
/// even split when the weights sum to zero.
fn weighted_ranges(len: usize, devices: usize, weights: &[u32]) -> Vec<Range<usize>> {
    let w: Vec<f64> = (0..devices)
        .map(|d| weights.get(d).copied().unwrap_or(0) as f64)
        .collect();
    let total: f64 = w.iter().sum();
    if total <= 0.0 {
        Partition::block_ranges(len, &vec![1.0; devices])
    } else {
        Partition::block_ranges(len, &w)
    }
}

/// How per-device copies are merged when switching away from
/// [`Distribution::Copy`].
#[derive(Clone)]
pub enum Combine<T> {
    /// Keep the copy of the first device, discard the others (the default).
    KeepFirst,
    /// Merge with a user function: `f(accumulator, other_copy)` is called for
    /// each additional device copy, mutating the accumulator in place.
    Func(Arc<dyn Fn(&mut [T], &[T]) + Send + Sync>),
}

impl<T> std::fmt::Debug for Combine<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Combine::KeepFirst => f.write_str("Combine::KeepFirst"),
            Combine::Func(_) => f.write_str("Combine::Func(..)"),
        }
    }
}

impl<T: Copy + std::ops::AddAssign + Send + Sync + 'static> Combine<T> {
    /// Element-wise addition — the combine function used for the OSEM error
    /// image (`Distribution::copy(add)` in Listing 3 of the paper).
    pub fn add() -> Combine<T> {
        Combine::Func(Arc::new(|acc: &mut [T], other: &[T]| {
            for (a, b) in acc.iter_mut().zip(other) {
                *a += *b;
            }
        }))
    }
}

/// The concrete partitioning of `len` elements over `devices` devices under a
/// distribution: for each device, the element range it holds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Partition {
    ranges: Vec<Range<usize>>,
    len: usize,
}

impl Partition {
    /// Compute the partition of a vector of `len` elements for `devices`
    /// devices under `distribution`.
    pub fn compute(len: usize, devices: usize, distribution: &Distribution) -> Partition {
        assert!(devices > 0, "a runtime always has at least one device");
        let ranges = match distribution {
            Distribution::Single(dev) => (0..devices)
                .map(|d| if d == *dev { 0..len } else { 0..0 })
                .collect(),
            Distribution::Copy => (0..devices).map(|_| 0..len).collect(),
            Distribution::Block => Self::block_ranges(len, &vec![1.0; devices]),
            Distribution::BlockWeighted(weights) => weighted_ranges(len, devices, weights),
        };
        Partition { ranges, len }
    }

    /// Contiguous disjoint ranges proportional to `weights`, covering
    /// `0..len` exactly.
    fn block_ranges(len: usize, weights: &[f64]) -> Vec<Range<usize>> {
        let devices = weights.len();
        let total: f64 = weights.iter().sum();
        let mut ranges = Vec::with_capacity(devices);
        let mut start = 0usize;
        let mut acc = 0.0f64;
        for (d, w) in weights.iter().enumerate() {
            acc += *w;
            let end = if d + 1 == devices {
                len
            } else {
                ((acc / total) * len as f64).round() as usize
            };
            let end = end.clamp(start, len);
            ranges.push(start..end);
            start = end;
        }
        ranges
    }

    /// The element range device `d` holds.
    pub fn range(&self, device: usize) -> Range<usize> {
        self.ranges.get(device).cloned().unwrap_or(0..0)
    }

    /// Number of elements device `d` holds.
    pub fn size(&self, device: usize) -> usize {
        self.range(device).len()
    }

    /// Per-device part sizes (the paper's `events.sizes()` in Listing 3).
    pub fn sizes(&self) -> Vec<usize> {
        self.ranges.iter().map(|r| r.len()).collect()
    }

    /// Devices that hold at least one element.
    pub fn active_devices(&self) -> Vec<usize> {
        self.ranges
            .iter()
            .enumerate()
            .filter(|(_, r)| !r.is_empty())
            .map(|(d, _)| d)
            .collect()
    }

    /// Total vector length.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the partition covers zero elements.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of devices (including inactive ones).
    pub fn device_count(&self) -> usize {
        self.ranges.len()
    }

    /// Build a partition from explicit per-device element ranges (used to
    /// flatten 2-D row layouts into the 1-D element space element-wise
    /// kernels iterate over).
    pub(crate) fn from_ranges(ranges: Vec<Range<usize>>, len: usize) -> Partition {
        Partition { ranges, len }
    }
}

impl PartLayout for Partition {
    fn len(&self) -> usize {
        self.len
    }

    fn device_count(&self) -> usize {
        Partition::device_count(self)
    }

    fn active_devices(&self) -> Vec<usize> {
        Partition::active_devices(self)
    }

    fn stored_len(&self, device: usize) -> usize {
        self.size(device)
    }

    fn upload_segments(&self, device: usize, _edge: EdgePolicy) -> Vec<PartSegment> {
        let range = self.range(device);
        if range.is_empty() {
            Vec::new()
        } else {
            vec![PartSegment::Host(range)]
        }
    }

    fn gather_segment(&self, device: usize) -> Option<(usize, Range<usize>)> {
        let range = self.range(device);
        (!range.is_empty()).then_some((0, range))
    }

    fn has_halo(&self) -> bool {
        false
    }

    fn halo_segments(&self, _device: usize, _edge: EdgePolicy) -> Vec<HaloSegment> {
        Vec::new()
    }

    fn flat_partition(&self) -> Partition {
        self.clone()
    }
}

// ---------------------------------------------------------------------------
// 2-D (matrix) distributions
// ---------------------------------------------------------------------------

/// How a [`crate::matrix::Matrix`] is distributed across the devices of the
/// runtime. Matrices are row-major and are always split at row granularity,
/// so every device part is a contiguous range of whole rows.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MatrixDistribution {
    /// The whole matrix on a single device.
    Single(usize),
    /// Contiguous, disjoint, evenly-sized row blocks on every device.
    RowBlock,
    /// A full copy of the matrix on every device.
    Copy,
    /// Row blocks where each device's part additionally carries `halo_rows`
    /// read-only rows from its neighbours above and below (filled by a
    /// [`Boundary`] policy at the matrix edges). This is the distribution of
    /// stencil ([`crate::skeletons::MapOverlap`]) inputs: redistribution
    /// between sweeps exchanges only the halo rows, never whole parts.
    OverlapBlock {
        /// Number of neighbour rows replicated on each side of a part.
        halo_rows: usize,
    },
    /// Row blocks sized proportionally to the given weights (one weight per
    /// device, fixed-point thousandths like
    /// [`Distribution::BlockWeighted`]). The fault-recovery layer uses this
    /// to re-partition a matrix onto the surviving devices after a device
    /// loss: lost devices get weight zero and hold no rows.
    RowBlockWeighted(Vec<u32>),
    /// [`MatrixDistribution::OverlapBlock`] with weighted row blocks — the
    /// stencil counterpart of [`MatrixDistribution::RowBlockWeighted`].
    OverlapBlockWeighted {
        /// Number of neighbour rows replicated on each side of a part.
        halo_rows: usize,
        /// Per-device weights in fixed-point thousandths.
        weights: Vec<u32>,
    },
}

impl MatrixDistribution {
    /// The default distribution of newly created matrices.
    pub fn default_for_inputs() -> MatrixDistribution {
        MatrixDistribution::RowBlock
    }

    /// Build a weighted row-block distribution from floating-point weights.
    pub fn row_block_weighted(weights: &[f64]) -> MatrixDistribution {
        MatrixDistribution::RowBlockWeighted(scale_weights(weights))
    }

    /// Build a weighted overlap-block distribution from floating-point
    /// weights.
    pub fn overlap_block_weighted(halo_rows: usize, weights: &[f64]) -> MatrixDistribution {
        MatrixDistribution::OverlapBlockWeighted {
            halo_rows,
            weights: scale_weights(weights),
        }
    }

    /// The halo width of the distribution (zero for non-overlapping ones).
    pub fn halo_rows(&self) -> usize {
        match self {
            MatrixDistribution::OverlapBlock { halo_rows }
            | MatrixDistribution::OverlapBlockWeighted { halo_rows, .. } => *halo_rows,
            _ => 0,
        }
    }

    /// Whether the distribution replicates halo rows around each part
    /// (either overlap variant).
    pub fn is_overlap(&self) -> bool {
        matches!(
            self,
            MatrixDistribution::OverlapBlock { .. }
                | MatrixDistribution::OverlapBlockWeighted { .. }
        )
    }
}

impl Partitioning for MatrixDistribution {
    /// `(rows, cols)` of the matrix.
    type Shape = (usize, usize);
    type Layout = RowPartition;

    fn layout(&self, (rows, cols): (usize, usize), devices: usize) -> RowPartition {
        RowPartition::compute(rows, cols, devices, self)
    }

    fn validate(&self, devices: usize) -> Result<()> {
        if let MatrixDistribution::Single(d) = self {
            if *d >= devices {
                return Err(SkelError::Distribution(format!(
                    "single distribution names device {d} but the runtime has {devices} devices"
                )));
            }
        }
        Ok(())
    }

    fn is_replicated(&self) -> bool {
        matches!(self, MatrixDistribution::Copy)
    }
}

/// Out-of-bound policy of stencil neighbour accesses — how `get(dx, dy)`
/// resolves reads past the edges of the matrix, and how halo rows beyond the
/// first/last row are filled.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Boundary<T> {
    /// Out-of-range accesses clamp to the nearest valid element.
    Clamp,
    /// Out-of-range accesses wrap around (torus topology); halo exchanges
    /// are cyclic — the first device's top halo comes from the last device.
    Wrap,
    /// Out-of-range accesses yield the given constant.
    Constant(T),
}

impl<T> Boundary<T> {
    /// The kernel-side policy code ([`skelcl_kernel::builtins::stencil`]).
    pub(crate) fn policy_code(&self) -> i32 {
        use skelcl_kernel::builtins::stencil;
        match self {
            Boundary::Clamp => stencil::POLICY_CLAMP,
            Boundary::Wrap => stencil::POLICY_WRAP,
            Boundary::Constant(_) => stencil::POLICY_CONSTANT,
        }
    }
}

/// The concrete row partitioning of a `rows × cols` matrix over `devices`
/// devices: for each device the *core* row range it owns, plus the halo
/// width replicated around each part under
/// [`MatrixDistribution::OverlapBlock`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RowPartition {
    ranges: Vec<Range<usize>>,
    rows: usize,
    cols: usize,
    halo: usize,
}

impl RowPartition {
    /// Compute the row partition of a `rows × cols` matrix for `devices`
    /// devices under `distribution`.
    pub fn compute(
        rows: usize,
        cols: usize,
        devices: usize,
        distribution: &MatrixDistribution,
    ) -> RowPartition {
        assert!(devices > 0, "a runtime always has at least one device");
        let (ranges, halo) = match distribution {
            MatrixDistribution::Single(dev) => (
                (0..devices)
                    .map(|d| if d == *dev { 0..rows } else { 0..0 })
                    .collect(),
                0,
            ),
            MatrixDistribution::Copy => ((0..devices).map(|_| 0..rows).collect(), 0),
            MatrixDistribution::RowBlock => (Partition::block_ranges(rows, &vec![1.0; devices]), 0),
            MatrixDistribution::OverlapBlock { halo_rows } => (
                Partition::block_ranges(rows, &vec![1.0; devices]),
                *halo_rows,
            ),
            MatrixDistribution::RowBlockWeighted(weights) => {
                (weighted_ranges(rows, devices, weights), 0)
            }
            MatrixDistribution::OverlapBlockWeighted { halo_rows, weights } => {
                (weighted_ranges(rows, devices, weights), *halo_rows)
            }
        };
        RowPartition {
            ranges,
            rows,
            cols,
            halo,
        }
    }

    /// The core row range device `d` owns (exclusive of halo rows).
    pub fn core_rows(&self, device: usize) -> Range<usize> {
        self.ranges.get(device).cloned().unwrap_or(0..0)
    }

    /// Number of core rows device `d` owns.
    pub fn core_row_count(&self, device: usize) -> usize {
        self.core_rows(device).len()
    }

    /// Number of rows device `d` stores, including the halo padding (the
    /// halo is carried even by parts at the matrix edges, filled by the
    /// boundary policy, so every part is uniformly `core + 2 * halo` rows).
    pub fn stored_row_count(&self, device: usize) -> usize {
        let core = self.core_row_count(device);
        if core == 0 {
            0
        } else {
            core + 2 * self.halo
        }
    }

    /// Number of elements device `d` stores (halo included).
    pub fn stored_len(&self, device: usize) -> usize {
        self.stored_row_count(device) * self.cols
    }

    /// Number of elements device `d` computes (its core rows).
    pub fn core_len(&self, device: usize) -> usize {
        self.core_row_count(device) * self.cols
    }

    /// The halo width of the partition.
    pub fn halo(&self) -> usize {
        self.halo
    }

    /// Matrix height in rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Matrix width in columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of devices (including inactive ones).
    pub fn device_count(&self) -> usize {
        self.ranges.len()
    }

    /// Devices that own at least one core row.
    pub fn active_devices(&self) -> Vec<usize> {
        self.ranges
            .iter()
            .enumerate()
            .filter(|(_, r)| !r.is_empty())
            .map(|(d, _)| d)
            .collect()
    }

    /// The device whose core rows contain global row `row` (`None` for
    /// copy/single layouts should be resolved by the caller; every row of a
    /// block layout has exactly one owner).
    pub fn row_owner(&self, row: usize) -> Option<usize> {
        self.ranges
            .iter()
            .position(|r| !r.is_empty() && r.contains(&row))
    }

    /// Per-device core row counts.
    pub fn core_row_counts(&self) -> Vec<usize> {
        self.ranges.iter().map(|r| r.len()).collect()
    }

    /// Resolve padded row index `p` (may be negative or `>= rows`) to its
    /// source under the edge policy: a real matrix row, or `None` for a
    /// policy-filled row ([`EdgePolicy::Fill`] beyond the edges).
    fn row_source(&self, p: i64, edge: EdgePolicy) -> Option<usize> {
        let rows = self.rows as i64;
        if (0..rows).contains(&p) {
            return Some(p as usize);
        }
        match edge {
            EdgePolicy::Clamp => Some(p.clamp(0, rows - 1) as usize),
            EdgePolicy::Wrap => Some(p.rem_euclid(rows) as usize),
            EdgePolicy::Fill => None,
        }
    }

    /// The padded row indices of device `d`'s part that are halo slots:
    /// `(slot, padded_row)` pairs, top halo first, then bottom halo. `slot`
    /// is the row index within the stored part.
    fn halo_slots(&self, device: usize) -> Vec<(usize, i64)> {
        let core = self.core_rows(device);
        let halo = self.halo;
        (0..halo)
            .map(|k| (k, core.start as i64 - halo as i64 + k as i64))
            .chain((0..halo).map(|k| (halo + core.len() + k, core.end as i64 + k as i64)))
            .collect()
    }
}

impl PartLayout for RowPartition {
    fn len(&self) -> usize {
        self.rows * self.cols
    }

    fn device_count(&self) -> usize {
        RowPartition::device_count(self)
    }

    fn active_devices(&self) -> Vec<usize> {
        RowPartition::active_devices(self)
    }

    fn stored_len(&self, device: usize) -> usize {
        RowPartition::stored_len(self, device)
    }

    fn upload_segments(&self, device: usize, edge: EdgePolicy) -> Vec<PartSegment> {
        if RowPartition::stored_len(self, device) == 0 {
            return Vec::new();
        }
        let core = self.core_rows(device);
        let halo = self.halo as i64;
        let cols = self.cols;
        let row_segment = |p: i64| match self.row_source(p, edge) {
            Some(r) => PartSegment::Host(r * cols..(r + 1) * cols),
            None => PartSegment::Fill { len: cols },
        };
        let mut segments = Vec::with_capacity(2 * self.halo + 1);
        for p in core.start as i64 - halo..core.start as i64 {
            segments.push(row_segment(p));
        }
        segments.push(PartSegment::Host(core.start * cols..core.end * cols));
        for p in core.end as i64..core.end as i64 + halo {
            segments.push(row_segment(p));
        }
        segments
    }

    fn gather_segment(&self, device: usize) -> Option<(usize, Range<usize>)> {
        let core = self.core_rows(device);
        if core.is_empty() {
            return None;
        }
        let cols = self.cols;
        Some((self.halo * cols, core.start * cols..core.end * cols))
    }

    fn has_halo(&self) -> bool {
        self.halo > 0
    }

    /// The halo regions of device `d`'s part. Consecutive halo slots whose
    /// sources are consecutive rows of the same owning device are grouped
    /// into one [`HaloSegment::Remote`], so the exchange between two
    /// neighbouring parts is a single `halo_rows × cols` read plus one
    /// write; policy-filled edge rows become per-row [`HaloSegment::Fill`]s.
    fn halo_segments(&self, device: usize, edge: EdgePolicy) -> Vec<HaloSegment> {
        let cols = self.cols;
        if self.halo == 0 || cols == 0 {
            return Vec::new();
        }
        let halo = self.halo;
        let mut segments = Vec::new();
        // (slot0, src_row0, owner, rows-in-run)
        let mut run: Option<(usize, usize, usize, usize)> = None;
        let flush = |run: &mut Option<(usize, usize, usize, usize)>,
                     segments: &mut Vec<HaloSegment>| {
            if let Some((slot0, src_row0, owner, rows)) = run.take() {
                let owner_core = self.core_rows(owner);
                segments.push(HaloSegment::Remote {
                    dst_offset: slot0 * cols,
                    owner,
                    src_offset: (src_row0 - owner_core.start + halo) * cols,
                    len: rows * cols,
                });
            }
        };
        for (slot, p) in self.halo_slots(device) {
            match self.row_source(p, edge) {
                None => {
                    flush(&mut run, &mut segments);
                    segments.push(HaloSegment::Fill {
                        dst_offset: slot * cols,
                        len: cols,
                    });
                }
                Some(g) => {
                    // Block layouts cover every row exactly once, so each
                    // halo row has an owner; if a corrupted layout ever
                    // violates that, degrade the slot to a policy fill
                    // instead of panicking on a runtime path.
                    let Some(owner) = self.row_owner(g) else {
                        flush(&mut run, &mut segments);
                        segments.push(HaloSegment::Fill {
                            dst_offset: slot * cols,
                            len: cols,
                        });
                        continue;
                    };
                    match &mut run {
                        Some((slot0, src_row0, own, rows))
                            if *own == owner
                                && g == *src_row0 + *rows
                                && slot == *slot0 + *rows =>
                        {
                            *rows += 1;
                        }
                        _ => {
                            flush(&mut run, &mut segments);
                            run = Some((slot, g, owner, 1));
                        }
                    }
                }
            }
        }
        flush(&mut run, &mut segments);
        segments
    }

    /// The flat element partition of the core rows: what an element-wise
    /// kernel iterates when a matrix is launched through the
    /// [`crate::container::Container`] interface.
    fn flat_partition(&self) -> Partition {
        let cols = self.cols;
        let ranges = self
            .ranges
            .iter()
            .map(|r| r.start * cols..r.end * cols)
            .collect();
        Partition::from_ranges(ranges, self.rows * cols)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_partition_covers_exactly_once() {
        for len in [0usize, 1, 5, 16, 17, 1000] {
            for devices in 1..=6 {
                let p = Partition::compute(len, devices, &Distribution::Block);
                let mut covered = 0;
                let mut next = 0;
                for d in 0..devices {
                    let r = p.range(d);
                    assert_eq!(r.start, next, "parts must be contiguous");
                    next = r.end;
                    covered += r.len();
                }
                assert_eq!(covered, len);
                assert_eq!(next, len);
                // Even distribution: sizes differ by at most 1.
                let sizes = p.sizes();
                let min = sizes.iter().min().unwrap();
                let max = sizes.iter().max().unwrap();
                assert!(max - min <= 1, "sizes {sizes:?} not even for len {len}");
            }
        }
    }

    #[test]
    fn single_partition_puts_everything_on_one_device() {
        let p = Partition::compute(10, 4, &Distribution::Single(2));
        assert_eq!(p.sizes(), vec![0, 0, 10, 0]);
        assert_eq!(p.active_devices(), vec![2]);
    }

    #[test]
    fn copy_partition_replicates() {
        let p = Partition::compute(8, 3, &Distribution::Copy);
        assert_eq!(p.sizes(), vec![8, 8, 8]);
        assert_eq!(p.active_devices(), vec![0, 1, 2]);
    }

    #[test]
    fn weighted_partition_follows_weights() {
        let d = Distribution::block_weighted(&[3.0, 1.0]);
        let p = Partition::compute(100, 2, &d);
        assert_eq!(p.sizes(), vec![75, 25]);
        // Still covers exactly once.
        assert_eq!(p.range(0).end, p.range(1).start);
        assert_eq!(p.range(1).end, 100);
    }

    #[test]
    fn weighted_partition_with_zero_total_falls_back_to_even() {
        let d = Distribution::BlockWeighted(vec![0, 0]);
        let p = Partition::compute(10, 2, &d);
        assert_eq!(p.sizes(), vec![5, 5]);
    }

    #[test]
    fn figure1_example_two_devices() {
        // Figure 1 of the paper shows a vector over two devices.
        let len = 16;
        let single = Partition::compute(len, 2, &Distribution::Single(0));
        assert_eq!(single.sizes(), vec![16, 0]);
        let block = Partition::compute(len, 2, &Distribution::Block);
        assert_eq!(block.sizes(), vec![8, 8]);
        let copy = Partition::compute(len, 2, &Distribution::Copy);
        assert_eq!(copy.sizes(), vec![16, 16]);
    }

    #[test]
    fn combine_add_merges_copies() {
        let combine: Combine<f32> = Combine::add();
        if let Combine::Func(f) = combine {
            let mut acc = vec![1.0f32, 2.0, 3.0];
            f(&mut acc, &[10.0, 20.0, 30.0]);
            assert_eq!(acc, vec![11.0, 22.0, 33.0]);
        } else {
            panic!("expected a combine function");
        }
    }

    #[test]
    fn default_input_distribution_is_block() {
        assert_eq!(Distribution::default_for_inputs(), Distribution::Block);
        assert!(Distribution::Block.uses_all_devices());
        assert!(!Distribution::Single(0).uses_all_devices());
    }

    #[test]
    fn row_partition_splits_rows_contiguously() {
        for rows in [0usize, 1, 5, 16, 17] {
            for devices in 1..=5 {
                let p = RowPartition::compute(rows, 7, devices, &MatrixDistribution::RowBlock);
                let mut next = 0;
                for d in 0..devices {
                    let r = p.core_rows(d);
                    assert_eq!(r.start, next, "row blocks must be contiguous");
                    next = r.end;
                    assert_eq!(p.core_len(d), r.len() * 7);
                    assert_eq!(p.stored_len(d), p.core_len(d), "no halo under RowBlock");
                }
                assert_eq!(next, rows);
            }
        }
    }

    #[test]
    fn overlap_partition_pads_every_active_part_by_the_halo() {
        let d = MatrixDistribution::OverlapBlock { halo_rows: 2 };
        let p = RowPartition::compute(10, 4, 3, &d);
        assert_eq!(p.halo(), 2);
        assert_eq!(p.core_row_counts(), vec![3, 4, 3]);
        for dev in 0..3 {
            assert_eq!(p.stored_row_count(dev), p.core_row_count(dev) + 4);
            assert_eq!(p.stored_len(dev), p.stored_row_count(dev) * 4);
        }
        assert_eq!(d.halo_rows(), 2);
        assert_eq!(MatrixDistribution::RowBlock.halo_rows(), 0);
    }

    #[test]
    fn row_partition_owner_lookup_and_empty_devices() {
        let d = MatrixDistribution::OverlapBlock { halo_rows: 1 };
        // More devices than rows: some devices own nothing and store nothing.
        let p = RowPartition::compute(2, 3, 4, &d);
        let active = p.active_devices();
        assert_eq!(active.len(), 2);
        for dev in 0..4 {
            if active.contains(&dev) {
                assert!(p.stored_row_count(dev) > 0);
            } else {
                assert_eq!(p.stored_row_count(dev), 0);
                assert_eq!(p.stored_len(dev), 0);
            }
        }
        assert_eq!(p.row_owner(0), Some(active[0]));
        assert_eq!(p.row_owner(1), Some(active[1]));
        assert_eq!(p.row_owner(2), None);
    }

    #[test]
    fn single_and_copy_matrix_distributions() {
        let single = RowPartition::compute(6, 2, 3, &MatrixDistribution::Single(1));
        assert_eq!(single.core_row_counts(), vec![0, 6, 0]);
        assert_eq!(single.active_devices(), vec![1]);
        let copy = RowPartition::compute(6, 2, 3, &MatrixDistribution::Copy);
        assert_eq!(copy.core_row_counts(), vec![6, 6, 6]);
    }

    #[test]
    fn boundary_policy_codes_match_the_kernel_language() {
        assert_eq!(Boundary::<f32>::Clamp.policy_code(), 0);
        assert_eq!(Boundary::<f32>::Wrap.policy_code(), 1);
        assert_eq!(Boundary::Constant(1.5f32).policy_code(), 2);
    }
}
