//! # SkelCL-rs — high-level multi-GPU skeleton programming
//!
//! A Rust reproduction of **SkelCL** as described in *"Towards High-Level
//! Programming of Multi-GPU Systems Using the SkelCL Library"* (Steuwer,
//! Kegel, Gorlatch — IPDPSW 2012). The library provides
//!
//! * five **algorithmic skeletons** — [`Map`], [`Zip`], [`Reduce`],
//!   [`Scan`] and the 2-D stencil [`MapOverlap`] — customised with
//!   user-defined functions passed either as plain source strings (compiled
//!   at runtime, as in the paper) or as native Rust closures,
//! * one **uniform execution API**: every skeleton implements the
//!   [`Skeleton`] trait and is invoked through the fluent [`Launch`] builder
//!   (`sk.run(&input).args(...).devices(...).scheduler(...).exec()`),
//! * one **unified container layer** ([`container`]): a single shared
//!   coherence/distribution core behind every container, with the
//!   [`Container`] trait as the uniform launch interface — `Map`, `Zip` and
//!   `Reduce` execute over a [`Vector`] or element-wise over a [`Matrix`]
//!   through the same code path and the same generated kernels,
//! * an abstract [`Vector`] data type with implicit, lazy host ↔ device
//!   transfers and a **fluent pipeline API**
//!   (`v.map(&f)?.zip(&w, &g)?.reduce(&h)?`),
//! * [`Distribution`]s (`single`, `block`, `copy`) describing how a vector is
//!   partitioned across multiple GPUs, with implicit redistribution,
//! * a 2-D [`Matrix`] container with row-block [`MatrixDistribution`]s,
//!   including the halo-padded `OverlapBlock` layout whose between-sweep
//!   redistribution exchanges only halo rows (see [`MapOverlap`]),
//! * the **additional arguments** mechanism — the open [`IntoArg`] trait and
//!   the [`args!`] macro forward extra scalars and vectors of *any* element
//!   type to the user-defined function,
//! * a static **scheduler** with performance prediction for heterogeneous
//!   devices (Section V of the paper), attachable to any launch.
//!
//! The GPUs themselves are simulated by the [`oclsim`] crate: kernels execute
//! for real on the host (results are exact), while timing is accounted in
//! virtual time against profiles of the paper's evaluation hardware (NVIDIA
//! Tesla S1070, Intel Xeon E5520).
//!
//! ## Quickstart: SAXPY (Listing 1 of the paper)
//!
//! ```
//! use skelcl::prelude::*;
//!
//! // Initialise SkelCL on two (simulated) GPUs.
//! let rt = skelcl::init_gpus(2);
//!
//! // Y <- a*X + Y as a zip skeleton; `a` is an additional argument.
//! let saxpy = Zip::<f32, f32, f32>::from_source(
//!     "float func(float x, float y, float a) { return a * x + y; }",
//! );
//!
//! let x = Vector::from_vec(&rt, (0..1024).map(|i| i as f32).collect());
//! let y = Vector::from_vec(&rt, vec![1.0f32; 1024]);
//! let y = saxpy.run(&x, &y).arg(2.5f32).exec().unwrap();
//!
//! assert_eq!(y.to_vec().unwrap()[4], 2.5 * 4.0 + 1.0);
//! ```
//!
//! ## Fluent pipelines
//!
//! Chained skeletons keep their data on the devices (lazy copying, Section
//! II-B of the paper); the fluent vector API makes the chaining explicit:
//!
//! ```
//! use skelcl::prelude::*;
//!
//! let rt = skelcl::init_gpus(4);
//! let square = Map::<f32, f32>::from_source("float func(float x) { return x * x; }");
//! let mul = Zip::<f32, f32, f32>::from_source("float func(float a, float b) { return a * b; }");
//! let sum = Reduce::<f32>::from_source("float func(float a, float b) { return a + b; }");
//!
//! let v = Vector::from_vec(&rt, (1..=10).map(|i| i as f32).collect());
//! let w = Vector::from_vec(&rt, vec![2.0f32; 10]);
//!
//! // sum(square(v) * w), entirely on the devices.
//! let total = v.map(&square).unwrap().zip(&w, &mul).unwrap().reduce(&sum).unwrap();
//! assert_eq!(total, 770.0);
//! ```
//!
//! Skeleton-specific terminal forms replace the former ad-hoc call variants:
//! `reduce.run(&v).scalar()` / `.into_vector()` /
//! `.scheduler(&s).chunks(8).scalar_with_plan()`, `scan.run(&v).trace()`,
//! and `map.run(&v).run_into(&out)` for output-buffer reuse in steady-state
//! pipelines.

pub mod args;
pub mod container;
pub mod distribution;
pub mod error;
pub mod fusion;
pub mod kernelgen;
pub mod matrix;
pub mod plan;
pub(crate) mod recovery;
pub mod runtime;
pub mod scheduler;
pub mod skeletons;
pub mod vector;

pub use args::{ArgAccess, ArgItem, Args, IntoArg, VectorArg};
pub use container::{
    Container, EdgePolicy, HaloSegment, PartLayout, PartSegment, Partitioning, Residence,
};
pub use distribution::{
    Boundary, Combine, Distribution, MatrixDistribution, Partition, RowPartition,
};
pub use error::{Result, SkelError};
pub use fusion::FusionPolicy;
pub use matrix::Matrix;
pub use oclsim::Tier;
pub use plan::{MatPlan, PackedLaunch, PlanScalar, PlanVec};
pub use runtime::{init_gpus, init_profiles, DeviceSelection, DeviceTrace, ExecTrace, SkelCl};
pub use scheduler::{DevicePerf, PerfModel, StaticScheduler};
pub use skeletons::{
    DeviceScalar, IndexLaunch, Launch, LaunchConfig, Map, MapOverlap, Reduce, ReducePlan, Scan,
    ScanTrace, Skeleton, Zip,
};
pub use vector::Vector;

/// Re-export of the simulated OpenCL runtime for applications that mix
/// skeleton code with low-level code (the paper stresses that SkelCL still
/// exposes all features of the underlying OpenCL standard).
pub use oclsim;

/// The most commonly used items in one import.
pub mod prelude {
    pub use crate::args;
    pub use crate::args::{ArgAccess, Args, IntoArg};
    pub use crate::container::Container;
    pub use crate::distribution::{Boundary, Combine, Distribution, MatrixDistribution};
    pub use crate::error::{Result, SkelError};
    pub use crate::fusion::FusionPolicy;
    pub use crate::matrix::Matrix;
    pub use crate::plan::{MatPlan, PackedLaunch, PlanScalar, PlanVec};
    pub use crate::runtime::{DeviceSelection, SkelCl};
    pub use crate::skeletons::{Launch, Map, MapOverlap, Reduce, Scan, Skeleton, Zip};
    pub use crate::vector::Vector;
    pub use oclsim::CostHint;
    pub use oclsim::Tier;
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn crate_level_quickstart_pipeline() {
        let rt = crate::init_gpus(2);
        let square = Map::<f32, f32>::from_source("float func(float x) { return x * x; }");
        let sum = Reduce::<f32>::from_source("float func(float a, float b) { return a + b; }");
        let v = Vector::from_vec(&rt, (1..=10).map(|i| i as f32).collect());
        let total = v.map(&square).unwrap().reduce(&sum).unwrap();
        assert_eq!(total, 385.0);
        assert!(rt.skeleton_calls() >= 2);
    }

    #[test]
    fn launch_builder_round_trip_for_all_skeletons() {
        let rt = crate::init_gpus(3);
        let v = Vector::from_vec(&rt, (1..=9).map(|i| i as f32).collect());

        let map = Map::<f32, f32>::from_source("float func(float x) { return 2.0f * x; }");
        let doubled = map.run(&v).into_vector().unwrap();

        let zip =
            Zip::<f32, f32, f32>::from_source("float func(float a, float b) { return a - b; }");
        let diff = zip.run(&doubled, &v).exec().unwrap();
        assert_eq!(diff.to_vec().unwrap(), v.to_vec().unwrap());

        let sum = Reduce::<f32>::from_source("float func(float a, float b) { return a + b; }");
        assert_eq!(sum.run(&diff).scalar().unwrap(), 45.0);

        let scan = Scan::<f32>::from_source("float func(float a, float b) { return a + b; }");
        let (prefix, trace) = scan.run(&diff).trace().unwrap();
        assert_eq!(prefix.to_vec().unwrap().last().copied(), Some(45.0));
        assert_eq!(trace.local_scans.len(), 3);
    }
}
