//! # SkelCL-rs — high-level multi-GPU skeleton programming
//!
//! A Rust reproduction of **SkelCL** as described in *"Towards High-Level
//! Programming of Multi-GPU Systems Using the SkelCL Library"* (Steuwer,
//! Kegel, Gorlatch — IPDPSW 2012). The library provides
//!
//! * four **algorithmic skeletons** — [`Map`], [`Zip`], [`Reduce`] and
//!   [`Scan`] — customised with user-defined functions passed either as
//!   plain source strings (compiled at runtime, as in the paper) or as native
//!   Rust closures,
//! * an abstract [`Vector`] data type with implicit, lazy host ↔ device
//!   transfers,
//! * [`Distribution`]s (`single`, `block`, `copy`) describing how a vector is
//!   partitioned across multiple GPUs, with implicit redistribution,
//! * the **additional arguments** mechanism that forwards extra scalars and
//!   vectors of a skeleton call to the user-defined function,
//! * a static **scheduler** with performance prediction for heterogeneous
//!   devices (Section V of the paper).
//!
//! The GPUs themselves are simulated by the [`oclsim`] crate: kernels execute
//! for real on the host (results are exact), while timing is accounted in
//! virtual time against profiles of the paper's evaluation hardware (NVIDIA
//! Tesla S1070, Intel Xeon E5520).
//!
//! ## Quickstart: SAXPY (Listing 1 of the paper)
//!
//! ```
//! use skelcl::prelude::*;
//!
//! // Initialise SkelCL on two (simulated) GPUs.
//! let rt = skelcl::init_gpus(2);
//!
//! // Y <- a*X + Y as a zip skeleton; `a` is an additional argument.
//! let saxpy = Zip::<f32, f32, f32>::from_source(
//!     "float func(float x, float y, float a) { return a * x + y; }",
//! );
//!
//! let x = Vector::from_vec(&rt, (0..1024).map(|i| i as f32).collect());
//! let y = Vector::from_vec(&rt, vec![1.0f32; 1024]);
//! let y = saxpy.call(&x, &y, &Args::new().with_f32(2.5)).unwrap();
//!
//! assert_eq!(y.to_vec().unwrap()[4], 2.5 * 4.0 + 1.0);
//! ```

pub mod args;
pub mod distribution;
pub mod error;
pub mod kernelgen;
pub mod runtime;
pub mod scheduler;
pub mod skeletons;
pub mod vector;

pub use args::{ArgAccess, ArgItem, Args};
pub use distribution::{Combine, Distribution, Partition};
pub use error::{Result, SkelError};
pub use runtime::{init_gpus, init_profiles, DeviceSelection, SkelCl};
pub use scheduler::{DevicePerf, PerfModel, StaticScheduler};
pub use skeletons::{DeviceScalar, Map, Reduce, ReducePlan, Scan, ScanTrace, Zip};
pub use vector::{Residence, Vector};

/// Re-export of the simulated OpenCL runtime for applications that mix
/// skeleton code with low-level code (the paper stresses that SkelCL still
/// exposes all features of the underlying OpenCL standard).
pub use oclsim;

/// The most commonly used items in one import.
pub mod prelude {
    pub use crate::args::{ArgAccess, Args};
    pub use crate::distribution::{Combine, Distribution};
    pub use crate::error::{Result, SkelError};
    pub use crate::runtime::{DeviceSelection, SkelCl};
    pub use crate::skeletons::{Map, Reduce, Scan, Zip};
    pub use crate::vector::Vector;
    pub use oclsim::CostHint;
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn crate_level_quickstart_pipeline() {
        let rt = crate::init_gpus(2);
        let square = Map::<f32, f32>::from_source("float func(float x) { return x * x; }");
        let sum = Reduce::<f32>::from_source("float func(float a, float b) { return a + b; }");
        let v = Vector::from_vec(&rt, (1..=10).map(|i| i as f32).collect());
        let squared = square.call(&v, &Args::none()).unwrap();
        let total = sum.reduce_value(&squared).unwrap();
        assert_eq!(total, 385.0);
        assert!(rt.skeleton_calls() >= 2);
    }
}
