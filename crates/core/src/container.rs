//! The unified container core: **one** host ↔ device coherence and
//! distribution implementation shared by every SkelCL container.
//!
//! Historically [`crate::vector::Vector`] (1-D) and [`crate::matrix::Matrix`]
//! (2-D) each carried their own copy of the lazy-transfer machinery — validity
//! flags, per-device buffer bookkeeping, upload/download/halo-exchange loops.
//! This module collapses that duplication into three layers:
//!
//! 1. ****`Storage<T, D>`**** — the coherence core. It owns the host copy, the
//!    per-device buffers and the validity state (`host_valid` /
//!    `devices_valid` / `halos_valid`), and implements the *only* transfer
//!    paths in the crate: lazy upload (`Storage::ensure_on_devices`), lazy
//!    gather (`Storage::download_to_host`) and the halo-only exchange
//!    (`Storage::refresh_halos`). `Storage` is shape-agnostic: everything
//!    geometric is delegated to the partitioning layer below.
//!
//! 2. **[`Partitioning`] / [`PartLayout`]** — the dimension-generic
//!    distribution interface. [`crate::distribution::Distribution`] (1-D) and
//!    [`crate::distribution::MatrixDistribution`] (2-D, including the
//!    `OverlapBlock` halo bookkeeping) both implement [`Partitioning`]; their
//!    computed geometries ([`crate::distribution::Partition`] and
//!    [`crate::distribution::RowPartition`]) implement [`PartLayout`], which
//!    describes every device part as plain data — *segments* — that `Storage`
//!    turns into transfers:
//!    * [`PartSegment`]s say how to assemble a part for upload (host ranges
//!      plus policy-filled padding),
//!    * a *gather segment* says which region of a part is authoritative on
//!      download,
//!    * [`HaloSegment`]s say which padding regions are refreshed from which
//!      neighbour between stencil sweeps.
//!
//! 3. **[`Container`]** — the uniform launch interface of the data-parallel
//!    skeletons. `Map`, `Zip` and `Reduce` are written against this trait
//!    (element count, parts, ensure-on-device, mark-dirty, gather, output
//!    adoption), so they execute over a `Vector` or a row-block `Matrix`
//!    through the *same* code path — same kernels, same telemetry
//!    ([`crate::runtime::SkelCl::exec_trace`]), no per-container forks.
//!
//! `Vector` and `Matrix` themselves are thin shape-aware views over a
//! `Storage`: they translate user-facing concepts (element ranges, rows ×
//! columns, boundary policies) into the shape-agnostic vocabulary above and
//! contain no transfer logic of their own.

use std::ops::Range;
use std::sync::Arc;

use oclsim::{Buffer, CostHint, Pod};

use crate::distribution::{Combine, Distribution, Partition};
use crate::error::{Result, SkelError};
use crate::runtime::{DeviceSelection, SkelCl};
use crate::scheduler::StaticScheduler;

// ---------------------------------------------------------------------------
// Segment vocabulary: how layouts describe parts to the coherence core
// ---------------------------------------------------------------------------

/// Element-type-erased edge policy of a layout's padding regions — the
/// shape-agnostic face of [`crate::distribution::Boundary`]. The constant of
/// `Boundary::Constant` stays in the `Storage` (which knows the element
/// type); the layout only distinguishes "resolve to a real element"
/// (`Clamp` / `Wrap`) from "fill with the stored constant" (`Fill`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EdgePolicy {
    /// Out-of-range coordinates clamp to the nearest valid element.
    Clamp,
    /// Out-of-range coordinates wrap around (torus topology).
    Wrap,
    /// Out-of-range regions are filled with the storage's fill constant.
    Fill,
}

/// One piece of a device part as assembled for upload, in storage order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PartSegment {
    /// A contiguous element range of the host copy.
    Host(Range<usize>),
    /// `len` elements of the storage's fill constant (policy-filled padding
    /// beyond the container edges).
    Fill {
        /// Number of fill elements.
        len: usize,
    },
}

/// One padding region of a stored part and where its fresh contents come
/// from during a halo-only exchange.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HaloSegment {
    /// Fill `len` elements at `dst_offset` (within the stored part) with the
    /// storage's fill constant.
    Fill {
        /// Element offset within the destination part.
        dst_offset: usize,
        /// Number of fill elements.
        len: usize,
    },
    /// Copy `len` elements from element `src_offset` of `owner`'s stored
    /// part into the destination part at `dst_offset`.
    Remote {
        /// Element offset within the destination part.
        dst_offset: usize,
        /// Device whose part holds the authoritative copy.
        owner: usize,
        /// Element offset within the owner's stored part.
        src_offset: usize,
        /// Number of elements moved.
        len: usize,
    },
}

/// A dimension-generic distribution: something that can partition a container
/// of its [`Shape`](Partitioning::Shape) over `devices` devices into a
/// concrete [`PartLayout`]. Implemented by
/// [`crate::distribution::Distribution`] (1-D vectors, `Shape = usize`
/// length) and [`crate::distribution::MatrixDistribution`] (2-D matrices,
/// `Shape = (rows, cols)`, including `OverlapBlock` halo bookkeeping).
pub trait Partitioning: Clone + PartialEq + std::fmt::Debug + Send + Sync + 'static {
    /// The shape of the containers this distribution partitions.
    type Shape: Copy + Send + Sync + 'static;
    /// The concrete per-device geometry computed from shape + device count.
    type Layout: PartLayout;

    /// Compute the concrete layout for a container of `shape` over `devices`
    /// devices.
    fn layout(&self, shape: Self::Shape, devices: usize) -> Self::Layout;

    /// Validate the distribution against the runtime's device count (e.g.
    /// `Single(d)` must name an existing device).
    fn validate(&self, devices: usize) -> Result<()>;

    /// Whether every active device holds a full replica of the data (the
    /// `Copy` distributions): downloads then gather from one device (merging
    /// per-device copies through the storage's [`Combine`]) instead of
    /// concatenating disjoint parts.
    fn is_replicated(&self) -> bool;
}

/// The concrete per-device geometry of one distribution applied to one
/// container shape, described entirely as plain data so that `Storage` can
/// execute transfers without knowing the container's dimensionality.
pub trait PartLayout: Clone + Send + Sync + 'static {
    /// Total number of elements in the container.
    fn len(&self) -> usize;

    /// Whether the container holds no elements.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of devices (including inactive ones).
    fn device_count(&self) -> usize;

    /// Devices that store at least one element.
    fn active_devices(&self) -> Vec<usize>;

    /// Number of elements device `d` stores, including any halo padding.
    fn stored_len(&self, device: usize) -> usize;

    /// The segments (host ranges and policy fills) that assemble device
    /// `d`'s stored part for upload, in storage order. Their lengths sum to
    /// [`PartLayout::stored_len`].
    fn upload_segments(&self, device: usize, edge: EdgePolicy) -> Vec<PartSegment>;

    /// Where device `d`'s authoritative data lands on download: the element
    /// offset within its stored part and the destination host range. `None`
    /// for devices that own nothing (replicated layouts are gathered from a
    /// single device instead; see [`Partitioning::is_replicated`]).
    fn gather_segment(&self, device: usize) -> Option<(usize, Range<usize>)>;

    /// Whether parts carry halo padding that can go stale independently of
    /// the core data.
    fn has_halo(&self) -> bool;

    /// The padding regions of device `d`'s part and their sources, in
    /// refresh order. Empty for layouts without halos.
    fn halo_segments(&self, device: usize, edge: EdgePolicy) -> Vec<HaloSegment>;

    /// The flat element partition of the *owned* (core) elements — what an
    /// element-wise kernel launch iterates over. Only meaningful for layouts
    /// whose stored parts equal their owned parts (no halo padding);
    /// element-wise launches coerce overlapped layouts away first.
    fn flat_partition(&self) -> Partition;
}

// ---------------------------------------------------------------------------
// Storage: the one coherence implementation
// ---------------------------------------------------------------------------

/// Where the authoritative copy of a container's data currently lives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Residence {
    /// Only the host copy is valid.
    HostOnly,
    /// Only the device copies are valid.
    DevicesOnly,
    /// Host and devices agree.
    Shared,
}

/// The shared host + multi-device storage behind every SkelCL container:
/// host data, per-device parts, validity flags and the lazy coherence
/// machinery. Shape-agnostic — all geometry comes from the [`Partitioning`]
/// type parameter.
pub(crate) struct Storage<T: Pod, D: Partitioning> {
    pub(crate) runtime: Arc<SkelCl>,
    pub(crate) host: Vec<T>,
    pub(crate) shape: D::Shape,
    pub(crate) host_valid: bool,
    pub(crate) devices_valid: bool,
    /// Whether the halo padding of the device parts matches the neighbours'
    /// current core data (trivially true for layouts without halos).
    pub(crate) halos_valid: bool,
    pub(crate) distribution: D,
    pub(crate) layout: D::Layout,
    pub(crate) buffers: Vec<Option<Buffer>>,
    /// How padding beyond the container edges is resolved.
    pub(crate) edge: EdgePolicy,
    /// The constant used by [`EdgePolicy::Fill`] padding.
    pub(crate) fill: Option<T>,
    /// How per-device replicas are merged when leaving a replicated
    /// distribution.
    pub(crate) combine: Combine<T>,
}

impl<T: Pod, D: Partitioning> Storage<T, D> {
    /// Host-resident storage (no device transfer until first device use).
    pub(crate) fn new_host(
        runtime: Arc<SkelCl>,
        host: Vec<T>,
        shape: D::Shape,
        distribution: D,
    ) -> Storage<T, D> {
        let devices = runtime.device_count();
        let layout = distribution.layout(shape, devices);
        Storage {
            runtime,
            host,
            shape,
            host_valid: true,
            devices_valid: false,
            halos_valid: false,
            distribution,
            layout,
            buffers: vec![None; devices],
            edge: EdgePolicy::Clamp,
            fill: None,
            combine: Combine::KeepFirst,
        }
    }

    /// Device-resident storage (skeleton outputs): the data already lives in
    /// per-device buffers; the host copy — and any halo padding — is stale.
    pub(crate) fn new_device_resident(
        runtime: Arc<SkelCl>,
        shape: D::Shape,
        distribution: D,
        buffers: Vec<Option<Buffer>>,
        edge: EdgePolicy,
        fill: Option<T>,
    ) -> Storage<T, D> {
        let devices = runtime.device_count();
        let layout = distribution.layout(shape, devices);
        Storage {
            runtime,
            host: Vec::new(),
            shape,
            host_valid: false,
            devices_valid: true,
            halos_valid: false,
            distribution,
            layout,
            buffers,
            edge,
            fill,
            combine: Combine::KeepFirst,
        }
    }

    /// Where the authoritative data currently lives.
    pub(crate) fn residence(&self) -> Residence {
        match (self.host_valid, self.devices_valid) {
            (true, true) => Residence::Shared,
            (true, false) => Residence::HostOnly,
            (false, true) => Residence::DevicesOnly,
            // By construction one side is always valid; if a corrupted state
            // ever violates that, report the host side rather than panicking
            // on a runtime path.
            (false, false) => {
                debug_assert!(false, "container lost both copies");
                Residence::HostOnly
            }
        }
    }

    /// Release every device buffer back to the context. Each owning
    /// device's queue is quiesced first (a real-time join, no virtual-time
    /// effect) so no in-flight command of the asynchronous engine still
    /// references the storage being released.
    pub(crate) fn release_buffers(&mut self) {
        for buf in self.buffers.iter_mut() {
            if let Some(b) = buf.take() {
                self.runtime.queue(b.device()).quiesce();
                // A failure here would mean the buffer was already released,
                // which cannot happen while the storage owns it; ignore.
                let _ = self.runtime.context().release_buffer(&b);
            }
        }
    }

    /// The fill constant, for layouts whose padding is policy-filled.
    /// Fill-edged storages always carry their constant; degrade to the
    /// all-zero bit pattern rather than panicking on a runtime path.
    fn fill_value(&self) -> T {
        debug_assert!(self.fill.is_some() || !matches!(self.edge, EdgePolicy::Fill));
        self.fill.unwrap_or_else(|| vec_uninit_len::<T>(1)[0])
    }

    /// Lazy upload: make the data present on the devices under the current
    /// layout. Parts are assembled from the layout's upload segments; a part
    /// that is one whole host range is written straight from the host copy
    /// without staging.
    pub(crate) fn ensure_on_devices(&mut self) -> Result<()> {
        if self.devices_valid {
            return Ok(());
        }
        debug_assert!(self.host_valid, "either host or devices must be valid");
        for device in 0..self.layout.device_count() {
            let stored = self.layout.stored_len(device);
            if stored == 0 {
                continue;
            }
            let buffer = match &self.buffers[device] {
                Some(b) if b.len() == stored => b.clone(),
                _ => {
                    if let Some(old) = self.buffers[device].take() {
                        self.runtime.queue(device).quiesce();
                        let _ = self.runtime.context().release_buffer(&old);
                    }
                    let b = self.runtime.context().create_buffer::<T>(device, stored)?;
                    self.buffers[device] = Some(b.clone());
                    b
                }
            };
            let segments = self.layout.upload_segments(device, self.edge);
            match segments.as_slice() {
                [PartSegment::Host(range)] => {
                    debug_assert_eq!(range.len(), stored);
                    self.runtime
                        .queue(device)
                        .enqueue_write_buffer(&buffer, &self.host[range.clone()])?;
                }
                _ => {
                    let mut part = Vec::with_capacity(stored);
                    for segment in &segments {
                        match segment {
                            PartSegment::Host(range) => {
                                part.extend_from_slice(&self.host[range.clone()])
                            }
                            PartSegment::Fill { len } => {
                                part.resize(part.len() + len, self.fill_value())
                            }
                        }
                    }
                    debug_assert_eq!(part.len(), stored);
                    self.runtime
                        .queue(device)
                        .enqueue_write_buffer(&buffer, &part)?;
                }
            }
        }
        self.devices_valid = true;
        self.halos_valid = true;
        Ok(())
    }

    /// Lazy gather: bring the authoritative data back to the host. Disjoint
    /// layouts concatenate the owned region of every part; replicated
    /// layouts read one device's copy and merge the others through the
    /// [`Combine`] function (after which the individual replicas are stale).
    pub(crate) fn download_to_host(&mut self) -> Result<()> {
        if self.host_valid {
            return Ok(());
        }
        debug_assert!(self.devices_valid, "either host or devices must be valid");
        let len = self.layout.len();
        if len == 0 {
            self.host = Vec::new();
            self.host_valid = true;
            return Ok(());
        }
        if self.distribution.is_replicated() {
            let actives = self.layout.active_devices();
            let first = *actives.first().ok_or(SkelError::EmptyInput)?;
            // Enqueue the read of every replica before waiting on any, so
            // the per-device workers execute them concurrently; the merge
            // then consumes the payloads in device order (the combine
            // function may be non-commutative). Trade-off: each in-flight
            // read buffers one replica-sized payload, so the transient peak
            // is ~(replicas + 2) × len during a combining gather — accepted
            // for the wall-clock overlap; cap the enqueue window here if a
            // workload ever replicates containers near device-memory scale.
            let merge_all = matches!(self.combine, Combine::Func(_));
            let mut pending = Vec::new();
            for &device in &actives {
                if device != first && !merge_all {
                    continue;
                }
                let buffer = self.buffers[device].as_ref().ok_or_else(|| {
                    SkelError::Distribution("replicated container has no device buffer".into())
                })?;
                let event = self
                    .runtime
                    .queue(device)
                    .enqueue_read_buffer_region_nb::<T>(buffer, 0, len)?;
                pending.push((device, event));
            }
            let mut host = vec_uninit_len::<T>(len);
            // The merge staging buffer is only needed when replicas are
            // actually combined (Combine::KeepFirst reads one device only).
            let mut other = if merge_all {
                vec_uninit_len::<T>(len)
            } else {
                Vec::new()
            };
            for (device, event) in pending {
                let dst = if device == first {
                    &mut host
                } else {
                    &mut other
                };
                self.claim_read(device, &event, dst)?;
                if device != first {
                    if let Combine::Func(f) = &self.combine {
                        f(&mut host, &other);
                    }
                }
            }
            if merge_all {
                // After combining, the individual device copies are stale.
                self.devices_valid = false;
            }
            self.host = host;
        } else {
            // Enqueue every part's read before waiting on any: downloads
            // from different devices overlap in real time (and in virtual
            // time — no host-clock sync serialises them any more).
            let mut pending = Vec::new();
            for device in 0..self.layout.device_count() {
                let Some((src_offset, dst)) = self.layout.gather_segment(device) else {
                    continue;
                };
                if dst.is_empty() {
                    continue;
                }
                let buffer = self.buffers[device].as_ref().ok_or_else(|| {
                    SkelError::Distribution(format!(
                        "device {device} should hold elements {dst:?} but has no buffer"
                    ))
                })?;
                let event = self
                    .runtime
                    .queue(device)
                    .enqueue_read_buffer_region_nb::<T>(buffer, src_offset, dst.len())?;
                pending.push((device, dst, event));
            }
            let mut host = vec_uninit_len::<T>(len);
            for (device, dst, event) in pending {
                self.claim_read(device, &event, &mut host[dst])?;
            }
            self.host = host;
        }
        self.host_valid = true;
        Ok(())
    }

    /// Wait for a non-blocking gather read, copy its payload into `out`, and
    /// synchronise the host's virtual clock with the transfer's end — the
    /// same virtual blocking-read semantics as `enqueue_read_buffer_region`,
    /// including surfacing an earlier command's deferred error as the root
    /// cause.
    fn claim_read(&self, device: usize, event: &oclsim::EventHandle, out: &mut [T]) -> Result<()> {
        let queue = self.runtime.queue(device);
        let result = event.wait_into(out);
        if let Some(earlier) = queue.take_error() {
            return Err(earlier.into());
        }
        let record = result?;
        self.runtime.context().sync_host_to(record.end);
        Ok(())
    }

    /// Halo-only re-coherence: re-fill the padding regions of every stored
    /// part from the owners' current core data (and the edge policy at the
    /// container edges) without touching any core data. Each
    /// [`HaloSegment::Remote`] is one read from the owner plus one write to
    /// the destination, charged to the runtime's halo counters on both ends.
    pub(crate) fn refresh_halos(&mut self) -> Result<()> {
        debug_assert!(self.devices_valid);
        if self.halos_valid || !self.layout.has_halo() {
            self.halos_valid = true;
            return Ok(());
        }
        let elem = std::mem::size_of::<T>();
        for device in self.layout.active_devices() {
            let segments = self.layout.halo_segments(device, self.edge);
            if segments.is_empty() {
                continue;
            }
            let dst = self.buffers[device].as_ref().cloned().ok_or_else(|| {
                SkelError::Internal(format!(
                    "halo refresh: device {device} part carries halo regions but has no buffer"
                ))
            })?;
            for segment in segments {
                match segment {
                    HaloSegment::Fill { dst_offset, len } => {
                        if len == 0 {
                            continue;
                        }
                        self.runtime.queue(device).enqueue_fill_buffer_region(
                            &dst,
                            dst_offset,
                            self.fill_value(),
                            len,
                        )?;
                        self.runtime.charge_halo_transfer(device, len * elem);
                    }
                    HaloSegment::Remote {
                        dst_offset,
                        owner,
                        src_offset,
                        len,
                    } => {
                        if len == 0 {
                            continue;
                        }
                        let src = self.buffers[owner].as_ref().ok_or_else(|| {
                            SkelError::Internal(format!(
                                "halo refresh: owner device {owner} holds no buffer"
                            ))
                        })?;
                        let mut staging = vec_uninit_len::<T>(len);
                        self.runtime.queue(owner).enqueue_read_buffer_region(
                            src,
                            src_offset,
                            &mut staging,
                        )?;
                        self.runtime
                            .queue(device)
                            .enqueue_write_buffer_region(&dst, dst_offset, &staging)?;
                        self.runtime.charge_halo_transfer(owner, len * elem);
                        self.runtime.charge_halo_transfer(device, len * elem);
                    }
                }
            }
        }
        self.halos_valid = true;
        Ok(())
    }

    /// Prepare the container for device use: upload if the host holds the
    /// newer copy, otherwise refresh any stale halo padding (the
    /// between-sweeps path of iterative stencils).
    pub(crate) fn prepare_on_devices(&mut self) -> Result<()> {
        if self.devices_valid {
            self.refresh_halos()
        } else {
            self.ensure_on_devices()
        }
    }

    /// Change the distribution (and optionally the edge policy): the
    /// authoritative state is brought to the host (merging replicas), the
    /// old device buffers are released, and the next device use re-uploads
    /// under the new layout.
    pub(crate) fn redistribute(
        &mut self,
        distribution: D,
        edge: EdgePolicy,
        fill: Option<T>,
    ) -> Result<()> {
        distribution.validate(self.runtime.device_count())?;
        self.download_to_host()?;
        self.release_buffers();
        self.devices_valid = false;
        self.halos_valid = false;
        self.layout = distribution.layout(self.shape, self.runtime.device_count());
        self.distribution = distribution;
        self.edge = edge;
        self.fill = fill;
        Ok(())
    }

    /// Re-establish a trustworthy device image before a fault-recovery
    /// replay. A transiently failed transfer never executes, but the
    /// coherence flags were set when it was *enqueued* — so the storage may
    /// believe an upload happened that never did. Gather the authoritative
    /// copy to the host (a no-op when the host is already valid; failed
    /// commands have no side effects, so device data is intact otherwise)
    /// and drop device validity, forcing the replay to re-upload.
    pub(crate) fn refresh_for_replay(&mut self) -> Result<()> {
        self.download_to_host()?;
        self.devices_valid = false;
        self.halos_valid = false;
        Ok(())
    }

    /// Declare that a kernel modified the device data through a channel the
    /// runtime cannot see: the host copy and the halo padding are stale.
    pub(crate) fn mark_device_modified(&mut self) {
        if self.devices_valid {
            self.host_valid = false;
            self.halos_valid = false;
        }
    }

    /// Declare the devices the authoritative side after a launch wrote this
    /// storage's buffers in place (the iterative stencil ping-pong): the
    /// host copy and the halo padding are stale.
    pub(crate) fn mark_devices_authoritative(&mut self) {
        debug_assert!(
            self.buffers.iter().any(Option::is_some),
            "a reused launch target owns device buffers"
        );
        self.devices_valid = true;
        self.host_valid = false;
        self.halos_valid = false;
    }

    /// Invalidate the device copies after a host-side mutation; the next
    /// device use re-uploads lazily.
    pub(crate) fn invalidate_devices(&mut self) {
        self.release_buffers();
        self.devices_valid = false;
        self.halos_valid = false;
        self.host_valid = true;
    }

    /// Recompute the layout after a shape change (host-side resize).
    pub(crate) fn reshape(&mut self, shape: D::Shape) {
        self.shape = shape;
        self.layout = self.distribution.layout(shape, self.runtime.device_count());
    }

    /// Obtain per-device buffers for using this storage as a skeleton
    /// *output*: existing buffers are reused when their sizes match the
    /// target partition — the hot path of chained pipelines — and fresh ones
    /// are created where they do not fit.
    ///
    /// Does **not** mutate the storage: replaced buffers stay owned by it
    /// until `Storage::commit_as_output` adopts the new set after a
    /// successful launch, so a failed launch leaves the container intact.
    pub(crate) fn obtain_output_buffers(
        &self,
        partition: &Partition,
    ) -> Result<Vec<Option<Buffer>>> {
        let elem = std::mem::size_of::<T>();
        let mut buffers = vec![None; partition.device_count()];
        for device in 0..partition.device_count() {
            let want = partition.size(device);
            if want == 0 {
                continue;
            }
            let reusable = self
                .buffers
                .get(device)
                .and_then(|slot| slot.as_ref())
                .filter(|b| b.len() == want && b.len_bytes() == want * elem);
            buffers[device] = match reusable {
                Some(b) => Some(b.clone()),
                None => Some(self.runtime.context().create_buffer::<T>(device, want)?),
            };
        }
        Ok(buffers)
    }

    /// Commit this storage as the output of a skeleton launch that wrote the
    /// given buffers: adopt shape, distribution and buffers; the devices now
    /// hold the authoritative copy and the host copy is stale.
    pub(crate) fn commit_as_output(
        &mut self,
        shape: D::Shape,
        distribution: D,
        buffers: Vec<Option<Buffer>>,
    ) -> Result<()> {
        // Release any old buffer that was replaced rather than reused.
        let new_ids: Vec<_> = buffers.iter().flatten().map(|b| b.id()).collect();
        let stale: Vec<Buffer> = self
            .buffers
            .iter_mut()
            .filter_map(|old| old.take())
            .filter(|b| !new_ids.contains(&b.id()))
            .collect();
        for b in stale {
            self.runtime.queue(b.device()).quiesce();
            let _ = self.runtime.context().release_buffer(&b);
        }
        self.shape = shape;
        self.layout = distribution.layout(shape, self.runtime.device_count());
        self.distribution = distribution;
        self.buffers = buffers;
        self.host_valid = false;
        self.devices_valid = true;
        self.halos_valid = false;
        Ok(())
    }
}

impl<T: Pod, D: Partitioning> Drop for Storage<T, D> {
    fn drop(&mut self) {
        self.release_buffers();
    }
}

/// Create a `Vec<T>` of the given length whose contents will be overwritten
/// immediately by a device read. `T: Pod` has no invalid bit patterns that we
/// could expose because the vector is fully overwritten before use; zeroed
/// memory keeps this fully safe.
pub(crate) fn vec_uninit_len<T: Pod>(len: usize) -> Vec<T> {
    let mut v = Vec::with_capacity(len);
    // SAFETY: not actually unsafe — we build from zeroed bytes via Pod copy.
    let bytes = vec![0u8; len * std::mem::size_of::<T>()];
    v.extend_from_slice(&oclsim::pod::from_bytes_vec::<T>(&bytes));
    v
}

// ---------------------------------------------------------------------------
// Container: the uniform skeleton-launch interface
// ---------------------------------------------------------------------------

/// A distributed SkelCL container — the uniform interface the element-wise
/// skeletons ([`crate::skeletons::Map`], [`crate::skeletons::Zip`],
/// [`crate::skeletons::Reduce`]) launch against, implemented by
/// [`crate::vector::Vector`] and [`crate::matrix::Matrix`].
///
/// The trait covers the container essentials (element count, per-device
/// parts, ensure-on-device, mark-dirty, gather) plus the launch plumbing the
/// shared execution pipeline in `skeletons::exec` needs: device-selection and
/// scheduler overrides, distribution unification for zip, and shape-aware
/// output adoption. The [`Container::Rebound`] associated type names the
/// same-shaped container with a different element type, which is how
/// `map(f): C<I> -> C<O>` stays shape-preserving generically.
pub trait Container<T: Pod>: Clone {
    /// The same-shaped container holding `O` elements (map/zip outputs).
    type Rebound<O: Pod>: Container<O>;

    /// The runtime this container belongs to.
    fn runtime(&self) -> Arc<SkelCl>;

    /// Stable identity (used to detect aliasing between launch inputs and
    /// `run_into` targets).
    fn id(&self) -> u64;

    /// Total number of elements.
    fn elem_count(&self) -> usize;

    /// Whether the container has no elements.
    fn is_empty(&self) -> bool {
        self.elem_count() == 0
    }

    /// Per-device element counts of the owned parts under the current
    /// distribution.
    fn part_sizes(&self) -> Vec<usize>;

    /// Check that this container belongs to `runtime`.
    fn check_runtime(&self, runtime: &Arc<SkelCl>) -> Result<()>;

    /// Force the lazy upload now (the C++ library's `copyDataToDevices()`).
    fn ensure_on_devices(&self) -> Result<()>;

    /// Declare that a kernel modified the device data through a side channel
    /// (the host copy is stale).
    fn mark_device_modified(&self);

    /// Gather the container's contents into a host `Vec` in canonical
    /// (row-major, for matrices) order, downloading if the devices hold the
    /// newer copy.
    fn gather(&self) -> Result<Vec<T>>;

    /// Apply a launch-time device selection by overriding the distribution.
    fn apply_selection(&self, selection: &DeviceSelection) -> Result<()>;

    /// Apply a scheduler-weighted distribution for the given per-element
    /// cost (Section V of the paper). Containers without a weighted layout
    /// reject the scheduler with a clear error.
    fn apply_scheduler(&self, scheduler: &StaticScheduler, cost: CostHint) -> Result<()>;

    /// Coerce `self` and `other` (same shape, possibly different element
    /// type) to one common element-wise layout — the paper's distribution
    /// unification for zip. Errors if the shapes are incompatible.
    fn unify_with<B: Pod>(&self, other: &Self::Rebound<B>) -> Result<()>;

    /// Coerce a replicated (copy) distribution to the disjoint block
    /// layout. Skeletons that must visit every element exactly once
    /// (reduce, scan) call this first: the per-device replicas are merged
    /// through the container's combine function, and each element ends up
    /// owned by exactly one device.
    fn ensure_disjoint(&self) -> Result<()>;

    /// Re-partition the container's data across the devices by weight (a
    /// zero weight excludes that device entirely) — the fault-recovery
    /// layer's path for moving work off lost devices onto the survivors.
    /// The implied exchange goes through the host like any redistribution,
    /// so it requires a host-valid (or gatherable) authoritative copy.
    fn repartition_for_recovery(&self, weights: &[f64]) -> Result<()>;

    /// Make the device image trustworthy again before a fault-recovery
    /// replay: a transiently failed transfer was recorded by the coherence
    /// flags when enqueued but never executed. Gathers the authoritative
    /// copy to the host if needed and invalidates the device copies so the
    /// replay re-uploads.
    fn refresh_for_replay(&self) -> Result<()>;

    /// Upload lazily (coercing away layouts an element-wise kernel cannot
    /// iterate, such as halo-padded stencil layouts) and return the flat
    /// element partition plus the per-device buffers.
    fn prepare_elementwise(&self) -> Result<(Partition, Vec<Option<Buffer>>)>;

    /// Obtain output buffers for a launch writing into this container
    /// (`run_into`), reusing its existing buffers where the sizes fit.
    fn obtain_output_buffers(&self, partition: &Partition) -> Result<Vec<Option<Buffer>>>;

    /// Wrap freshly written per-device buffers as a device-resident output
    /// container of this container's shape and distribution.
    fn wrap_output<O: Pod>(&self, buffers: Vec<Option<Buffer>>) -> Self::Rebound<O>;

    /// Commit `out` as the output of a launch over `self` that wrote the
    /// given buffers: `out` adopts `self`'s shape and distribution.
    fn commit_output<O: Pod>(
        &self,
        out: &Self::Rebound<O>,
        buffers: Vec<Option<Buffer>>,
    ) -> Result<()>;

    /// The current 1-D distribution of the container's flat element space,
    /// if it has one (used by vector-specific skeletons); matrices return
    /// `None`.
    fn flat_distribution(&self) -> Option<Distribution> {
        None
    }
}
