//! The unified skeleton execution pipeline: one [`Skeleton`] trait, one
//! [`Launch`] builder, and the shared prepare-args → partition → launch →
//! combine stages that used to be duplicated across the skeleton
//! implementations.
//!
//! Every skeleton call flows through the same stages:
//!
//! 1. **configure** — a [`Launch`] builder collects additional [`Args`], an
//!    optional [`DeviceSelection`] and an optional scheduler,
//! 2. **prepare** — inputs are validated, coerced to a common distribution
//!    and uploaded lazily; additional arguments are resolved
//!    ([`PreparedArgs`]),
//! 3. **launch** — one kernel enqueue per active device
//!    ([`launch_elementwise`] for the data-parallel skeletons),
//! 4. **combine** — multi-device results are gathered/merged (reduce and
//!    scan) or wrapped as a device-resident output container.
//!
//! The data-parallel stages are written against the
//! [`Container`](crate::container::Container) trait, not a concrete
//! container type: the same prepare/launch/combine code (and the same
//! generated kernels) executes a [`Map`](crate::skeletons::Map) over a
//! [`Vector`](crate::vector::Vector) or over a row-block
//! [`Matrix`](crate::matrix::Matrix), and `Skeleton` is generic over its
//! input shape (`Skeleton<Vector<f32>>`, `Skeleton<Matrix<f32>>`, a pair of
//! containers for zip).
//!
//! ```
//! use skelcl::prelude::*;
//!
//! let rt = skelcl::init_gpus(2);
//! let saxpy = Zip::<f32, f32, f32>::from_source(
//!     "float func(float x, float y, float a) { return a * x + y; }",
//! );
//! let x = Vector::from_vec(&rt, vec![1.0f32, 2.0, 3.0]);
//! let y = Vector::from_vec(&rt, vec![10.0f32; 3]);
//! let out = saxpy.run(&x, &y).arg(2.0f32).exec().unwrap();
//! assert_eq!(out.to_vec().unwrap(), vec![12.0, 14.0, 16.0]);
//! ```

use std::sync::Arc;

use oclsim::{Buffer, CostHint, KernelArg, Pod, Value};

use crate::args::{Args, IntoArg};
use crate::container::Container;
use crate::distribution::{Distribution, Partition};
use crate::error::{Result, SkelError};
use crate::runtime::{DeviceSelection, SkelCl};
use crate::scheduler::StaticScheduler;
use crate::skeletons::PreparedArgs;

/// Execution configuration of one skeleton call, collected by [`Launch`].
pub struct LaunchConfig<'a> {
    /// Additional arguments forwarded to the user-defined function.
    pub args: Args,
    /// Optional restriction of the participating devices.
    pub devices: Option<DeviceSelection>,
    /// Optional static scheduler (Section V): data-parallel skeletons use
    /// its weighted block distribution; reduce uses it to place the final
    /// combination step.
    pub scheduler: Option<&'a StaticScheduler>,
    /// Intermediate results per device for scheduler-aware reductions.
    pub chunks_per_device: usize,
    /// Checkpoint period of the iterative stencil driver
    /// (`Launch::run_iter`): every `checkpoint_every` completed sweeps the
    /// current state is gathered to the host so a device loss that cannot be
    /// recovered in place replays from the last checkpoint instead of from
    /// sweep zero. `0` (the default) disables checkpointing.
    pub checkpoint_every: usize,
}

impl Default for LaunchConfig<'_> {
    fn default() -> Self {
        LaunchConfig {
            args: Args::new(),
            devices: None,
            scheduler: None,
            chunks_per_device: 1,
            checkpoint_every: 0,
        }
    }
}

/// The single execution interface every skeleton implements, generic over
/// the input shape `In` — a container handle ([`crate::vector::Vector`],
/// [`crate::matrix::Matrix`]), or a pair of them for zip. One skeleton type
/// may implement `Skeleton` for several input shapes: `Map<f32, f32>` is
/// both a `Skeleton<Vector<f32>>` and a `Skeleton<Matrix<f32>>` through one
/// generic impl over the [`Container`] trait.
pub trait Skeleton<In: Clone> {
    /// The result of one call.
    type Output;

    /// The skeleton's name, for diagnostics.
    fn name(&self) -> &'static str;

    /// Execute one call under the given configuration. This is the uniform
    /// entry point behind every [`Launch`] terminal form.
    fn execute(&self, input: &In, cfg: &LaunchConfig<'_>) -> Result<Self::Output>;
}

/// Fluent builder for one skeleton call; created by each skeleton's `run`
/// method. Configure with [`args`](Launch::args) / [`arg`](Launch::arg) /
/// [`devices`](Launch::devices) / [`scheduler`](Launch::scheduler) /
/// [`chunks`](Launch::chunks), then finish with a terminal form:
/// [`exec`](Launch::exec) (every skeleton), `into_vector` / `into_matrix`
/// (map/zip/scan as identity, reduce wrapping the scalar), `scalar` /
/// `scalar_with_plan` (reduce), `trace` (scan) or `run_into` (map/zip/scan,
/// reusing an existing output container's buffers).
#[must_use = "a Launch does nothing until a terminal form such as `exec()` is called"]
pub struct Launch<'a, S, In: Clone> {
    pub(crate) skeleton: &'a S,
    pub(crate) input: In,
    pub(crate) cfg: LaunchConfig<'a>,
}

impl<'a, S, In: Clone> Launch<'a, S, In> {
    pub(crate) fn new(skeleton: &'a S, input: In) -> Launch<'a, S, In> {
        Launch {
            skeleton,
            input,
            cfg: LaunchConfig::default(),
        }
    }

    /// Replace the additional arguments of the call.
    pub fn args(mut self, args: Args) -> Self {
        self.cfg.args = args;
        self
    }

    /// Append one additional argument (any [`IntoArg`] value).
    pub fn arg(mut self, value: impl IntoArg) -> Self {
        self.cfg.args = self.cfg.args.arg(value);
        self
    }

    /// Restrict the call to a subset of the runtime's devices.
    /// [`DeviceSelection::All`] (and `AllGpus`) keeps the input's current
    /// distribution; `Gpus(n)` re-distributes over the first `n` devices.
    pub fn devices(mut self, selection: DeviceSelection) -> Self {
        self.cfg.devices = Some(selection);
        self
    }

    /// Attach a static scheduler (Section V of the paper). Data-parallel
    /// skeletons partition the input by the scheduler's predicted per-device
    /// throughput; reduce additionally uses it to decide where the final
    /// combination of intermediate results runs.
    pub fn scheduler(mut self, scheduler: &'a StaticScheduler) -> Self {
        self.cfg.scheduler = Some(scheduler);
        self
    }

    /// Number of intermediate results each device produces in a
    /// scheduler-aware reduction (default 1).
    pub fn chunks(mut self, chunks_per_device: usize) -> Self {
        self.cfg.chunks_per_device = chunks_per_device.max(1);
        self
    }

    /// Checkpoint the iterative stencil driver every `sweeps` completed
    /// sweeps (see [`LaunchConfig::checkpoint_every`]); `0` disables
    /// checkpointing. Only `run_iter` consults this — single-sweep launches
    /// recover in place and never need a checkpoint.
    pub fn checkpoint_every(mut self, sweeps: usize) -> Self {
        self.cfg.checkpoint_every = sweeps;
        self
    }

    /// Execute the call and return the skeleton's natural output.
    pub fn exec(self) -> Result<S::Output>
    where
        S: Skeleton<In>,
    {
        self.skeleton.execute(&self.input, &self.cfg)
    }
}

/// Translate a launch-time device selection into a distribution override.
/// `Ok(None)` means "keep the current distribution" (`All`/`AllGpus`, or
/// `Gpus(n)` covering every device); `Profiles` is an init-time-only
/// selection and is rejected. Shared by vector launches and index-map
/// launches so the policy cannot diverge.
pub(crate) fn selection_distribution(
    selection: &DeviceSelection,
    devices: usize,
) -> Result<Option<Distribution>> {
    match selection {
        DeviceSelection::All | DeviceSelection::AllGpus => Ok(None),
        DeviceSelection::Gpus(n) => {
            let n = (*n).min(devices);
            if n == 0 {
                return Err(SkelError::Distribution(
                    "device selection Gpus(0) leaves no device to run on".into(),
                ));
            }
            if n == devices {
                Ok(None)
            } else if n == 1 {
                Ok(Some(Distribution::Single(0)))
            } else {
                let mut weights = vec![0.0f64; devices];
                for w in weights.iter_mut().take(n) {
                    *w = 1.0;
                }
                Ok(Some(Distribution::block_weighted(&weights)))
            }
        }
        DeviceSelection::Profiles(_) => Err(SkelError::Distribution(
            "DeviceSelection::Profiles selects devices at runtime initialisation; \
             pass All or Gpus(n) to a launch"
                .into(),
        )),
    }
}

/// The shared **prepare** stage of a data-parallel call: validates the
/// input(s), applies the device selection and scheduler distribution,
/// performs the lazy uploads and resolves the additional arguments. All of
/// it goes through the [`Container`] trait, so vectors and matrices prepare
/// through the same code.
pub(crate) struct PreparedCall {
    pub runtime: Arc<SkelCl>,
    /// The flat element partition the kernels iterate (a matrix's row blocks
    /// flattened to element ranges).
    pub partition: Partition,
    pub prepared_args: PreparedArgs,
    /// Per-input per-device buffers, in skeleton argument order.
    pub input_buffers: Vec<Vec<Option<Buffer>>>,
    /// Identities of the input containers, used to detect `run_into` targets
    /// that alias an input.
    pub input_ids: Vec<u64>,
    pub len: usize,
}

impl PreparedCall {
    /// Prepare a single-input call (map, reduce, scan).
    pub fn single<T: Pod, C: Container<T>>(
        input: &C,
        cfg: &LaunchConfig<'_>,
        scheduler_cost: Option<CostHint>,
    ) -> Result<PreparedCall> {
        let runtime = input.runtime();
        runtime.charge_skeleton_call();
        if input.is_empty() {
            return Err(SkelError::EmptyInput);
        }
        if let Some(selection) = &cfg.devices {
            input.apply_selection(selection)?;
        }
        if let (Some(scheduler), Some(cost)) = (cfg.scheduler, scheduler_cost) {
            input.apply_scheduler(scheduler, cost)?;
        }
        let (partition, buffers) = input.prepare_elementwise()?;
        let prepared_args = PreparedArgs::prepare(&runtime, &cfg.args)?;
        Ok(PreparedCall {
            runtime,
            partition,
            prepared_args,
            input_buffers: vec![buffers],
            input_ids: vec![input.id()],
            len: input.elem_count(),
        })
    }

    /// Prepare a two-input call (zip): shape check plus the paper's
    /// distribution unification (differing distributions are coerced to
    /// block on both sides), then the same device-selection / scheduler /
    /// upload path as the single-input case — on both containers.
    pub fn pair<A: Pod, B: Pod, CA: Container<A>>(
        left: &CA,
        right: &CA::Rebound<B>,
        cfg: &LaunchConfig<'_>,
        scheduler_cost: Option<CostHint>,
    ) -> Result<PreparedCall> {
        let runtime = left.runtime();
        right.check_runtime(&runtime)?;
        runtime.charge_skeleton_call();
        if left.is_empty() || right.is_empty() {
            return Err(SkelError::EmptyInput);
        }
        // Shape check + distribution unification (coerce both to block when
        // they differ).
        left.unify_with(right)?;
        if let Some(selection) = &cfg.devices {
            left.apply_selection(selection)?;
            right.apply_selection(selection)?;
        }
        if let (Some(scheduler), Some(cost)) = (cfg.scheduler, scheduler_cost) {
            left.apply_scheduler(scheduler, cost)?;
            right.apply_scheduler(scheduler, cost)?;
        }
        let (partition, left_buffers) = left.prepare_elementwise()?;
        let (_, right_buffers) = right.prepare_elementwise()?;
        let prepared_args = PreparedArgs::prepare(&runtime, &cfg.args)?;
        Ok(PreparedCall {
            runtime,
            partition,
            prepared_args,
            input_buffers: vec![left_buffers, right_buffers],
            input_ids: vec![left.id(), right.id()],
            len: left.elem_count(),
        })
    }

    /// Allocate output buffers for the partition, or reuse the buffers of an
    /// existing output container (`run_into`) when they fit. A `run_into`
    /// target that aliases one of the inputs (the paper's in-place
    /// `y = saxpy(x, y)` pattern) gets fresh buffers instead — the device
    /// model forbids binding one buffer to two kernel arguments — and the
    /// old ones are released when the result is committed.
    pub fn output_buffers<O: Pod, CO: Container<O>>(
        &self,
        reuse: Option<&CO>,
    ) -> Result<Vec<Option<Buffer>>> {
        match reuse {
            Some(out) if !self.input_ids.contains(&out.id()) => {
                out.check_runtime(&self.runtime)?;
                out.obtain_output_buffers(&self.partition)
            }
            _ => crate::skeletons::alloc_output::<O>(&self.runtime, &self.partition),
        }
    }

    /// The shared **launch** stage of the element-wise skeletons (map, zip):
    /// for every active device enqueue the kernel with the argument layout
    /// `[inputs..., output, n, extra args...]` over `n` work items.
    pub fn launch_elementwise(
        &self,
        kernel: &oclsim::Kernel,
        out_buffers: &[Option<Buffer>],
    ) -> Result<()> {
        // Resolve the argument lists of every device before enqueueing the
        // first kernel: argument errors (a missing input part, an
        // additional-argument vector with no copy on one device) then
        // surface before anything ran, so a `run_into` target is never left
        // partially overwritten by them.
        let mut launches = Vec::new();
        for device in self.partition.active_devices() {
            let n = self.partition.size(device);
            let mut kargs = Vec::with_capacity(self.input_buffers.len() + 2);
            for (position, buffers) in self.input_buffers.iter().enumerate() {
                let buffer = buffers[device].clone().ok_or_else(|| {
                    SkelError::Distribution(format!(
                        "input {position} has no buffer on device {device}"
                    ))
                })?;
                kargs.push(KernelArg::Buffer(buffer));
            }
            let out_buffer = out_buffers.get(device).cloned().flatten().ok_or_else(|| {
                SkelError::Internal(format!("no output buffer allocated for device {device}"))
            })?;
            kargs.push(KernelArg::Buffer(out_buffer));
            kargs.push(KernelArg::Scalar(Value::Int(n as i32)));
            kargs.extend(self.prepared_args.kernel_args_for(device)?);
            launches.push((device, n, kargs));
        }
        // Enqueue on every device before waiting on any: the non-blocking
        // enqueues hand the launches to the per-device worker threads, so
        // N-device calls execute concurrently in real time; the wait then
        // surfaces any kernel runtime error at the call site (and keeps the
        // launch's buffers alive until the kernels are done).
        let mut events = Vec::with_capacity(launches.len());
        for (device, n, kargs) in launches {
            events.push((
                device,
                self.runtime
                    .queue(device)
                    .enqueue_kernel(kernel, n, &kargs)?,
            ));
        }
        wait_kernel_events(&self.runtime, events)
    }

    /// The **combine** stage of element-wise skeletons: wrap the per-device
    /// output buffers as a device-resident container of the input's shape,
    /// or commit the reused output container's new state (`run_into`).
    pub fn finish_output<T: Pod, O: Pod, C: Container<T>>(
        &self,
        input: &C,
        out_buffers: Vec<Option<Buffer>>,
        reuse: Option<&C::Rebound<O>>,
    ) -> Result<C::Rebound<O>> {
        match reuse {
            Some(out) => {
                input.commit_output(out, out_buffers)?;
                Ok(out.clone())
            }
            None => Ok(input.wrap_output(out_buffers)),
        }
    }

    /// The input buffer of `device` for single-input skeletons.
    pub fn input_buffer(&self, device: usize) -> Result<Buffer> {
        self.input_buffers[0][device].clone().ok_or_else(|| {
            SkelError::Distribution(format!("input container has no buffer on device {device}"))
        })
    }
}

/// Join a set of per-device kernel launches (real time only — the virtual
/// clocks are untouched) and surface the first error. The duplicate latched
/// on the failing queue is discarded so later launches start clean.
pub(crate) fn wait_kernel_events(
    runtime: &Arc<SkelCl>,
    events: Vec<(usize, oclsim::EventHandle)>,
) -> Result<()> {
    let mut first_error = None;
    for (device, event) in events {
        if let Err(e) = event.wait() {
            let _ = runtime.queue(device).take_error();
            if first_error.is_none() {
                first_error = Some(e);
            }
        }
    }
    match first_error {
        Some(e) => Err(e.into()),
        None => Ok(()),
    }
}

/// Check a source-UDF call: vector extras need native UDFs, and the argument
/// count must match the user function's extra parameters.
pub(crate) fn check_source_call(prepared: &PreparedArgs, extra_scalars: usize) -> Result<()> {
    if prepared.has_vectors() {
        return Err(SkelError::UnsupportedArg(
            "vector additional arguments require a native (closure) user function".into(),
        ));
    }
    if prepared.len() != extra_scalars {
        return Err(SkelError::UdfSignature(format!(
            "the user function expects {extra_scalars} additional argument(s), the call provides {}",
            prepared.len()
        )));
    }
    Ok(())
}

/// Scale a per-element cost hint to `n` elements (sequential reduce/scan
/// kernels run as one work item covering the whole part).
pub(crate) fn sequential_cost(per_element: CostHint, n: usize, min_bytes: f64) -> CostHint {
    CostHint::new(
        per_element.flops_per_item * n as f64,
        per_element.bytes_per_item.max(min_bytes) * n as f64,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::Matrix;
    use crate::runtime::init_gpus;
    use crate::skeletons::{Map, Reduce, Scan, Zip};
    use crate::vector::Vector;

    #[test]
    fn skeleton_trait_is_generic_enough_for_uniform_dispatch() {
        // All skeletons execute through the one trait method.
        let rt = init_gpus(2);
        let v = Vector::from_vec(&rt, vec![1.0f32, 2.0, 3.0, 4.0]);
        let cfg = LaunchConfig::default();

        let map = Map::<f32, f32>::from_source("float func(float x) { return x + 1.0f; }");
        assert_eq!(
            Skeleton::execute(&map, &v, &cfg).unwrap().to_vec().unwrap(),
            vec![2.0, 3.0, 4.0, 5.0]
        );

        let zip = Zip::<f32, f32, f32>::new(|a, b, _| a + b);
        let w = Vector::from_vec(&rt, vec![1.0f32, 2.0, 3.0, 4.0]);
        let pair = (v.clone(), w);
        assert_eq!(
            Skeleton::execute(&zip, &pair, &cfg)
                .unwrap()
                .to_vec()
                .unwrap(),
            vec![2.0, 4.0, 6.0, 8.0]
        );

        let sum = Reduce::<f32>::new(|a, b| a + b);
        assert_eq!(Skeleton::execute(&sum, &v, &cfg).unwrap(), 10.0);

        let scan = Scan::<f32>::new(|a, b| a + b);
        assert_eq!(
            Skeleton::execute(&scan, &v, &cfg)
                .unwrap()
                .to_vec()
                .unwrap(),
            vec![1.0, 3.0, 6.0, 10.0]
        );
        assert_eq!(Skeleton::<Vector<f32>>::name(&map), "map");
        assert_eq!(Skeleton::<(Vector<f32>, Vector<f32>)>::name(&zip), "zip");
        assert_eq!(Skeleton::<Vector<f32>>::name(&sum), "reduce");
        assert_eq!(Skeleton::<Vector<f32>>::name(&scan), "scan");
    }

    #[test]
    fn the_same_skeleton_instance_dispatches_over_vectors_and_matrices() {
        let rt = init_gpus(2);
        let cfg = LaunchConfig::default();
        let inc = Map::<f32, f32>::from_source("float func(float x) { return x + 1.0f; }");
        let v = Vector::from_vec(&rt, vec![1.0f32; 4]);
        let m = Matrix::filled(&rt, 2, 2, 1.0f32);
        let vo: Vector<f32> = Skeleton::execute(&inc, &v, &cfg).unwrap();
        let mo: Matrix<f32> = Skeleton::execute(&inc, &m, &cfg).unwrap();
        assert_eq!(vo.to_vec().unwrap(), vec![2.0f32; 4]);
        assert_eq!(mo.to_vec().unwrap(), vec![2.0f32; 4]);
        assert_eq!(mo.rows(), 2);
    }

    #[test]
    fn launch_builder_collects_args_incrementally() {
        let rt = init_gpus(2);
        let affine = Map::<f32, f32>::from_source(
            "float func(float x, float a, int b) { return a * x + b; }",
        );
        let v = Vector::from_vec(&rt, vec![1.0f32, 2.0]);
        let out = affine.run(&v).arg(3.0f32).arg(10i32).exec().unwrap();
        assert_eq!(out.to_vec().unwrap(), vec![13.0, 16.0]);
    }

    #[test]
    fn device_selection_all_keeps_the_distribution() {
        let rt = init_gpus(3);
        let inc = Map::<f32, f32>::from_source("float func(float x) { return x + 1.0f; }");
        let v = Vector::from_vec(&rt, vec![1.0f32; 6]);
        v.set_distribution(Distribution::Single(2)).unwrap();
        let out = inc.run(&v).devices(DeviceSelection::All).exec().unwrap();
        assert_eq!(out.distribution(), Distribution::Single(2));
        assert_eq!(out.to_vec().unwrap(), vec![2.0f32; 6]);
    }

    #[test]
    fn device_selection_gpus_restricts_the_active_devices() {
        let rt = init_gpus(4);
        let inc = Map::<f32, f32>::from_source("float func(float x) { return x + 1.0f; }");
        let v = Vector::from_vec(&rt, vec![1.0f32; 8]);
        rt.drain_events();
        let out = inc
            .run(&v)
            .devices(DeviceSelection::Gpus(2))
            .exec()
            .unwrap();
        assert_eq!(out.to_vec().unwrap(), vec![2.0f32; 8]);
        let events = rt.drain_events();
        let kernels_per_device: Vec<usize> = events
            .iter()
            .map(|evs| evs.iter().filter(|e| e.is_kernel()).count())
            .collect();
        assert_eq!(kernels_per_device[2], 0, "device 2 must stay idle");
        assert_eq!(kernels_per_device[3], 0, "device 3 must stay idle");
        assert!(kernels_per_device[0] > 0 && kernels_per_device[1] > 0);

        // Gpus(1) degenerates to single distribution.
        let one = inc
            .run(&v)
            .devices(DeviceSelection::Gpus(1))
            .exec()
            .unwrap();
        assert_eq!(one.to_vec().unwrap(), vec![2.0f32; 8]);
        assert_eq!(v.distribution(), Distribution::Single(0));
    }

    #[test]
    fn device_selection_rejects_invalid_launch_selections() {
        let rt = init_gpus(2);
        let inc = Map::<f32, f32>::new(|x, _| x + 1.0);
        let v = Vector::from_vec(&rt, vec![1.0f32; 4]);
        assert!(matches!(
            inc.run(&v).devices(DeviceSelection::Gpus(0)).exec(),
            Err(SkelError::Distribution(_))
        ));
        assert!(matches!(
            inc.run(&v)
                .devices(DeviceSelection::Profiles(vec![]))
                .exec(),
            Err(SkelError::Distribution(_))
        ));
    }

    #[test]
    fn matrix_launches_reject_partial_selections_and_schedulers() {
        let rt = init_gpus(2);
        let inc = Map::<f32, f32>::new(|x, _| x + 1.0);
        let m = Matrix::filled(&rt, 4, 4, 1.0f32);
        assert!(inc.run(&m).devices(DeviceSelection::All).exec().is_ok());
        assert!(matches!(
            inc.run(&m).devices(DeviceSelection::Gpus(1)).exec(),
            Err(SkelError::Distribution(_))
        ));
        let scheduler = StaticScheduler::analytical(&rt);
        assert!(matches!(
            inc.run(&m).scheduler(&scheduler).exec(),
            Err(SkelError::Distribution(_))
        ));
    }

    #[test]
    fn scheduler_on_a_map_launch_weights_the_partition() {
        use oclsim::DeviceProfile;
        let rt = crate::runtime::init_profiles(vec![
            DeviceProfile::tesla_c1060(),
            DeviceProfile::xeon_e5520(),
        ]);
        let scheduler = StaticScheduler::analytical(&rt);
        let heavy = Map::<f32, f32>::from_source(
            "float func(float x) { float a = x; for (int i = 0; i < 64; i++) { a = a * 1.0001f + 0.5f; } return a; }",
        );
        let v = Vector::from_vec(&rt, vec![1.0f32; 10_000]);
        let out = heavy.run(&v).scheduler(&scheduler).exec().unwrap();
        assert_eq!(out.len(), 10_000);
        // The GPU must receive the (much) larger part.
        let sizes = v.sizes();
        assert!(
            sizes[0] > sizes[1],
            "scheduler should give the Tesla more work than the Xeon: {sizes:?}"
        );
    }
}
