//! The unified skeleton execution pipeline: one [`Skeleton`] trait, one
//! [`Launch`] builder, and the shared prepare-args → partition → launch →
//! combine stages that used to be duplicated across the four skeleton
//! implementations.
//!
//! Every skeleton call flows through the same stages:
//!
//! 1. **configure** — a [`Launch`] builder collects additional [`Args`], an
//!    optional [`DeviceSelection`] and an optional scheduler,
//! 2. **prepare** — inputs are validated, coerced to a common distribution
//!    and uploaded lazily; additional arguments are resolved
//!    ([`PreparedArgs`]),
//! 3. **launch** — one kernel enqueue per active device
//!    ([`launch_elementwise`] for the data-parallel skeletons),
//! 4. **combine** — multi-device results are gathered/merged (reduce and
//!    scan) or wrapped as a device-resident output vector.
//!
//! ```
//! use skelcl::prelude::*;
//!
//! let rt = skelcl::init_gpus(2);
//! let saxpy = Zip::<f32, f32, f32>::from_source(
//!     "float func(float x, float y, float a) { return a * x + y; }",
//! );
//! let x = Vector::from_vec(&rt, vec![1.0f32, 2.0, 3.0]);
//! let y = Vector::from_vec(&rt, vec![10.0f32; 3]);
//! let out = saxpy.run(&x, &y).arg(2.0f32).exec().unwrap();
//! assert_eq!(out.to_vec().unwrap(), vec![12.0, 14.0, 16.0]);
//! ```

use std::sync::Arc;

use oclsim::{Buffer, CostHint, KernelArg, Pod, Value};

use crate::args::{Args, IntoArg};
use crate::distribution::{Distribution, Partition};
use crate::error::{Result, SkelError};
use crate::runtime::{DeviceSelection, SkelCl};
use crate::scheduler::StaticScheduler;
use crate::skeletons::PreparedArgs;
use crate::vector::Vector;

/// Execution configuration of one skeleton call, collected by [`Launch`].
pub struct LaunchConfig<'a> {
    /// Additional arguments forwarded to the user-defined function.
    pub args: Args,
    /// Optional restriction of the participating devices.
    pub devices: Option<DeviceSelection>,
    /// Optional static scheduler (Section V): data-parallel skeletons use
    /// its weighted block distribution; reduce uses it to place the final
    /// combination step.
    pub scheduler: Option<&'a StaticScheduler>,
    /// Intermediate results per device for scheduler-aware reductions.
    pub chunks_per_device: usize,
}

impl Default for LaunchConfig<'_> {
    fn default() -> Self {
        LaunchConfig {
            args: Args::new(),
            devices: None,
            scheduler: None,
            chunks_per_device: 1,
        }
    }
}

/// The single execution interface every skeleton implements. `Input` is the
/// skeleton's natural input shape (a [`Vector`] handle, or a pair of them for
/// zip), `Output` its natural result (an output vector, or the reduced scalar
/// for [`Reduce`](crate::skeletons::Reduce)).
pub trait Skeleton {
    /// The input shape of one call (vector handles are cheap clones).
    type Input: Clone;
    /// The result of one call.
    type Output;

    /// The skeleton's name, for diagnostics.
    fn name(&self) -> &'static str;

    /// Execute one call under the given configuration. This is the uniform
    /// entry point behind every [`Launch`] terminal form.
    fn execute(&self, input: &Self::Input, cfg: &LaunchConfig<'_>) -> Result<Self::Output>;
}

/// Fluent builder for one skeleton call; created by each skeleton's `run`
/// method. Configure with [`args`](Launch::args) / [`arg`](Launch::arg) /
/// [`devices`](Launch::devices) / [`scheduler`](Launch::scheduler) /
/// [`chunks`](Launch::chunks), then finish with a terminal form:
/// [`exec`](Launch::exec) (every skeleton), `into_vector` (map/zip/scan as
/// identity, reduce wrapping the scalar), `scalar` / `scalar_with_plan`
/// (reduce), `trace` (scan) or `run_into` (map/zip/scan, reusing an existing
/// output vector's buffers).
#[must_use = "a Launch does nothing until a terminal form such as `exec()` is called"]
pub struct Launch<'a, S: Skeleton> {
    pub(crate) skeleton: &'a S,
    pub(crate) input: S::Input,
    pub(crate) cfg: LaunchConfig<'a>,
}

impl<'a, S: Skeleton> Launch<'a, S> {
    pub(crate) fn new(skeleton: &'a S, input: S::Input) -> Launch<'a, S> {
        Launch {
            skeleton,
            input,
            cfg: LaunchConfig::default(),
        }
    }

    /// Replace the additional arguments of the call.
    pub fn args(mut self, args: Args) -> Self {
        self.cfg.args = args;
        self
    }

    /// Append one additional argument (any [`IntoArg`] value).
    pub fn arg(mut self, value: impl IntoArg) -> Self {
        self.cfg.args = self.cfg.args.arg(value);
        self
    }

    /// Restrict the call to a subset of the runtime's devices.
    /// [`DeviceSelection::All`] (and `AllGpus`) keeps the input's current
    /// distribution; `Gpus(n)` re-distributes over the first `n` devices.
    pub fn devices(mut self, selection: DeviceSelection) -> Self {
        self.cfg.devices = Some(selection);
        self
    }

    /// Attach a static scheduler (Section V of the paper). Data-parallel
    /// skeletons partition the input by the scheduler's predicted per-device
    /// throughput; reduce additionally uses it to decide where the final
    /// combination of intermediate results runs.
    pub fn scheduler(mut self, scheduler: &'a StaticScheduler) -> Self {
        self.cfg.scheduler = Some(scheduler);
        self
    }

    /// Number of intermediate results each device produces in a
    /// scheduler-aware reduction (default 1).
    pub fn chunks(mut self, chunks_per_device: usize) -> Self {
        self.cfg.chunks_per_device = chunks_per_device.max(1);
        self
    }

    /// Execute the call and return the skeleton's natural output.
    pub fn exec(self) -> Result<S::Output> {
        self.skeleton.execute(&self.input, &self.cfg)
    }
}

/// Translate a launch-time device selection into a distribution override.
/// `Ok(None)` means "keep the current distribution" (`All`/`AllGpus`, or
/// `Gpus(n)` covering every device); `Profiles` is an init-time-only
/// selection and is rejected. Shared by vector launches and index-map
/// launches so the policy cannot diverge.
pub(crate) fn selection_distribution(
    selection: &DeviceSelection,
    devices: usize,
) -> Result<Option<Distribution>> {
    match selection {
        DeviceSelection::All | DeviceSelection::AllGpus => Ok(None),
        DeviceSelection::Gpus(n) => {
            let n = (*n).min(devices);
            if n == 0 {
                return Err(SkelError::Distribution(
                    "device selection Gpus(0) leaves no device to run on".into(),
                ));
            }
            if n == devices {
                Ok(None)
            } else if n == 1 {
                Ok(Some(Distribution::Single(0)))
            } else {
                let mut weights = vec![0.0f64; devices];
                for w in weights.iter_mut().take(n) {
                    *w = 1.0;
                }
                Ok(Some(Distribution::block_weighted(&weights)))
            }
        }
        DeviceSelection::Profiles(_) => Err(SkelError::Distribution(
            "DeviceSelection::Profiles selects devices at runtime initialisation; \
             pass All or Gpus(n) to a launch"
                .into(),
        )),
    }
}

/// Apply the launch-time device selection to an input vector by overriding
/// its distribution (see [`selection_distribution`]).
pub(crate) fn apply_device_selection<T: Pod>(
    input: &Vector<T>,
    selection: &DeviceSelection,
    runtime: &Arc<SkelCl>,
) -> Result<()> {
    match selection_distribution(selection, runtime.device_count())? {
        Some(distribution) => input.set_distribution(distribution),
        None => Ok(()),
    }
}

/// The shared **prepare** stage of a data-parallel call: validates the
/// input(s), applies the device selection and scheduler distribution,
/// performs the lazy uploads and resolves the additional arguments.
pub(crate) struct PreparedCall {
    pub runtime: Arc<SkelCl>,
    pub partition: Partition,
    pub distribution: Distribution,
    pub prepared_args: PreparedArgs,
    /// Per-input per-device buffers, in skeleton argument order.
    pub input_buffers: Vec<Vec<Option<Buffer>>>,
    /// Identities of the input vectors, used to detect `run_into` targets
    /// that alias an input.
    pub input_ids: Vec<u64>,
    pub len: usize,
}

impl PreparedCall {
    /// Prepare a single-input call (map, reduce, scan).
    pub fn single<T: Pod>(
        input: &Vector<T>,
        cfg: &LaunchConfig<'_>,
        scheduler_cost: Option<CostHint>,
    ) -> Result<PreparedCall> {
        let runtime = input.runtime();
        runtime.charge_skeleton_call();
        if input.is_empty() {
            return Err(SkelError::EmptyInput);
        }
        if let Some(selection) = &cfg.devices {
            apply_device_selection(input, selection, &runtime)?;
        }
        if let (Some(scheduler), Some(cost)) = (cfg.scheduler, scheduler_cost) {
            input.set_distribution(scheduler.weighted_block(cost))?;
        }
        let (partition, buffers) = input.prepare_on_devices()?;
        let prepared_args = PreparedArgs::prepare(&runtime, &cfg.args)?;
        Ok(PreparedCall {
            runtime,
            partition,
            distribution: input.distribution(),
            prepared_args,
            input_buffers: vec![buffers],
            input_ids: vec![input.id()],
            len: input.len(),
        })
    }

    /// Prepare a two-input call (zip): length check plus the paper's
    /// distribution unification (differing distributions are coerced to
    /// block on both sides).
    pub fn pair<A: Pod, B: Pod>(
        left: &Vector<A>,
        right: &Vector<B>,
        cfg: &LaunchConfig<'_>,
        scheduler_cost: Option<CostHint>,
    ) -> Result<PreparedCall> {
        let runtime = left.runtime();
        right.check_runtime(&runtime)?;
        runtime.charge_skeleton_call();
        if left.is_empty() || right.is_empty() {
            return Err(SkelError::EmptyInput);
        }
        if left.len() != right.len() {
            return Err(SkelError::LengthMismatch {
                left: left.len(),
                right: right.len(),
            });
        }
        if let Some(selection) = &cfg.devices {
            apply_device_selection(left, selection, &runtime)?;
            apply_device_selection(right, selection, &runtime)?;
        }
        if let (Some(scheduler), Some(cost)) = (cfg.scheduler, scheduler_cost) {
            let dist = scheduler.weighted_block(cost);
            left.set_distribution(dist.clone())?;
            right.set_distribution(dist)?;
        }
        // Unify: if the distributions differ (or both are single but on
        // different devices, which compares unequal), coerce both to block.
        let distribution = if left.distribution() == right.distribution() {
            left.distribution()
        } else {
            left.set_distribution(Distribution::Block)?;
            right.set_distribution(Distribution::Block)?;
            Distribution::Block
        };
        let (partition, left_buffers) = left.prepare_on_devices()?;
        let (_, right_buffers) = right.prepare_on_devices()?;
        let prepared_args = PreparedArgs::prepare(&runtime, &cfg.args)?;
        Ok(PreparedCall {
            runtime,
            partition,
            distribution,
            prepared_args,
            input_buffers: vec![left_buffers, right_buffers],
            input_ids: vec![left.id(), right.id()],
            len: left.len(),
        })
    }

    /// Allocate output buffers for the partition, or reuse the buffers of an
    /// existing output vector (`run_into`) when they fit. A `run_into`
    /// target that aliases one of the inputs (the paper's in-place
    /// `y = saxpy(x, y)` pattern) gets fresh buffers instead — the device
    /// model forbids binding one buffer to two kernel arguments — and the
    /// old ones are released when the result is committed.
    pub fn output_buffers<O: Pod>(&self, reuse: Option<&Vector<O>>) -> Result<Vec<Option<Buffer>>> {
        match reuse {
            Some(out) if !self.input_ids.contains(&out.id()) => {
                out.check_runtime(&self.runtime)?;
                out.obtain_output_buffers(&self.partition)
            }
            _ => crate::skeletons::alloc_output::<O>(&self.runtime, &self.partition),
        }
    }

    /// The shared **launch** stage of the element-wise skeletons (map, zip):
    /// for every active device enqueue the kernel with the argument layout
    /// `[inputs..., output, n, extra args...]` over `n` work items.
    pub fn launch_elementwise(
        &self,
        kernel: &oclsim::Kernel,
        out_buffers: &[Option<Buffer>],
    ) -> Result<()> {
        // Resolve the argument lists of every device before enqueueing the
        // first kernel: argument errors (a missing input part, an
        // additional-argument vector with no copy on one device) then
        // surface before anything ran, so a `run_into` target is never left
        // partially overwritten by them.
        let mut launches = Vec::new();
        for device in self.partition.active_devices() {
            let n = self.partition.size(device);
            let mut kargs = Vec::with_capacity(self.input_buffers.len() + 2);
            for (position, buffers) in self.input_buffers.iter().enumerate() {
                let buffer = buffers[device].clone().ok_or_else(|| {
                    SkelError::Distribution(format!(
                        "input {position} has no buffer on device {device}"
                    ))
                })?;
                kargs.push(KernelArg::Buffer(buffer));
            }
            kargs.push(KernelArg::Buffer(
                out_buffers[device].clone().expect("output allocated above"),
            ));
            kargs.push(KernelArg::Scalar(Value::Int(n as i32)));
            kargs.extend(self.prepared_args.kernel_args_for(device)?);
            launches.push((device, n, kargs));
        }
        for (device, n, kargs) in launches {
            self.runtime
                .queue(device)
                .enqueue_kernel(kernel, n, &kargs)?;
        }
        Ok(())
    }

    /// The **combine** stage of element-wise skeletons: wrap the per-device
    /// output buffers as a device-resident vector, or commit the reused
    /// output vector's new state (`run_into`).
    pub fn finish_vector<O: Pod>(
        &self,
        out_buffers: Vec<Option<Buffer>>,
        reuse: Option<&Vector<O>>,
    ) -> Result<Vector<O>> {
        match reuse {
            Some(out) => {
                out.commit_as_output(self.len, self.distribution.clone(), out_buffers)?;
                Ok(out.clone())
            }
            None => Ok(Vector::device_resident(
                &self.runtime,
                self.len,
                self.distribution.clone(),
                out_buffers,
            )),
        }
    }

    /// The input buffer of `device` for single-input skeletons.
    pub fn input_buffer(&self, device: usize) -> Result<Buffer> {
        self.input_buffers[0][device].clone().ok_or_else(|| {
            SkelError::Distribution(format!("input vector has no buffer on device {device}"))
        })
    }
}

/// Check a source-UDF call: vector extras need native UDFs, and the argument
/// count must match the user function's extra parameters.
pub(crate) fn check_source_call(prepared: &PreparedArgs, extra_scalars: usize) -> Result<()> {
    if prepared.has_vectors() {
        return Err(SkelError::UnsupportedArg(
            "vector additional arguments require a native (closure) user function".into(),
        ));
    }
    if prepared.len() != extra_scalars {
        return Err(SkelError::UdfSignature(format!(
            "the user function expects {extra_scalars} additional argument(s), the call provides {}",
            prepared.len()
        )));
    }
    Ok(())
}

/// Scale a per-element cost hint to `n` elements (sequential reduce/scan
/// kernels run as one work item covering the whole part).
pub(crate) fn sequential_cost(per_element: CostHint, n: usize, min_bytes: f64) -> CostHint {
    CostHint::new(
        per_element.flops_per_item * n as f64,
        per_element.bytes_per_item.max(min_bytes) * n as f64,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::init_gpus;
    use crate::skeletons::{Map, Reduce, Scan, Zip};

    #[test]
    fn skeleton_trait_is_object_safe_enough_for_uniform_dispatch() {
        // All four skeletons execute through the one trait method.
        let rt = init_gpus(2);
        let v = Vector::from_vec(&rt, vec![1.0f32, 2.0, 3.0, 4.0]);
        let cfg = LaunchConfig::default();

        let map = Map::<f32, f32>::from_source("float func(float x) { return x + 1.0f; }");
        assert_eq!(
            Skeleton::execute(&map, &v, &cfg).unwrap().to_vec().unwrap(),
            vec![2.0, 3.0, 4.0, 5.0]
        );

        let zip = Zip::<f32, f32, f32>::new(|a, b, _| a + b);
        let w = Vector::from_vec(&rt, vec![1.0f32, 2.0, 3.0, 4.0]);
        let pair = (v.clone(), w);
        assert_eq!(
            Skeleton::execute(&zip, &pair, &cfg)
                .unwrap()
                .to_vec()
                .unwrap(),
            vec![2.0, 4.0, 6.0, 8.0]
        );

        let sum = Reduce::<f32>::new(|a, b| a + b);
        assert_eq!(Skeleton::execute(&sum, &v, &cfg).unwrap(), 10.0);

        let scan = Scan::<f32>::new(|a, b| a + b);
        assert_eq!(
            Skeleton::execute(&scan, &v, &cfg)
                .unwrap()
                .to_vec()
                .unwrap(),
            vec![1.0, 3.0, 6.0, 10.0]
        );
        assert_eq!(map.name(), "map");
        assert_eq!(zip.name(), "zip");
        assert_eq!(sum.name(), "reduce");
        assert_eq!(scan.name(), "scan");
    }

    #[test]
    fn launch_builder_collects_args_incrementally() {
        let rt = init_gpus(2);
        let affine = Map::<f32, f32>::from_source(
            "float func(float x, float a, int b) { return a * x + b; }",
        );
        let v = Vector::from_vec(&rt, vec![1.0f32, 2.0]);
        let out = affine.run(&v).arg(3.0f32).arg(10i32).exec().unwrap();
        assert_eq!(out.to_vec().unwrap(), vec![13.0, 16.0]);
    }

    #[test]
    fn device_selection_all_keeps_the_distribution() {
        let rt = init_gpus(3);
        let inc = Map::<f32, f32>::from_source("float func(float x) { return x + 1.0f; }");
        let v = Vector::from_vec(&rt, vec![1.0f32; 6]);
        v.set_distribution(Distribution::Single(2)).unwrap();
        let out = inc.run(&v).devices(DeviceSelection::All).exec().unwrap();
        assert_eq!(out.distribution(), Distribution::Single(2));
        assert_eq!(out.to_vec().unwrap(), vec![2.0f32; 6]);
    }

    #[test]
    fn device_selection_gpus_restricts_the_active_devices() {
        let rt = init_gpus(4);
        let inc = Map::<f32, f32>::from_source("float func(float x) { return x + 1.0f; }");
        let v = Vector::from_vec(&rt, vec![1.0f32; 8]);
        rt.drain_events();
        let out = inc
            .run(&v)
            .devices(DeviceSelection::Gpus(2))
            .exec()
            .unwrap();
        assert_eq!(out.to_vec().unwrap(), vec![2.0f32; 8]);
        let events = rt.drain_events();
        let kernels_per_device: Vec<usize> = events
            .iter()
            .map(|evs| evs.iter().filter(|e| e.is_kernel()).count())
            .collect();
        assert_eq!(kernels_per_device[2], 0, "device 2 must stay idle");
        assert_eq!(kernels_per_device[3], 0, "device 3 must stay idle");
        assert!(kernels_per_device[0] > 0 && kernels_per_device[1] > 0);

        // Gpus(1) degenerates to single distribution.
        let one = inc
            .run(&v)
            .devices(DeviceSelection::Gpus(1))
            .exec()
            .unwrap();
        assert_eq!(one.to_vec().unwrap(), vec![2.0f32; 8]);
        assert_eq!(v.distribution(), Distribution::Single(0));
    }

    #[test]
    fn device_selection_rejects_invalid_launch_selections() {
        let rt = init_gpus(2);
        let inc = Map::<f32, f32>::new(|x, _| x + 1.0);
        let v = Vector::from_vec(&rt, vec![1.0f32; 4]);
        assert!(matches!(
            inc.run(&v).devices(DeviceSelection::Gpus(0)).exec(),
            Err(SkelError::Distribution(_))
        ));
        assert!(matches!(
            inc.run(&v)
                .devices(DeviceSelection::Profiles(vec![]))
                .exec(),
            Err(SkelError::Distribution(_))
        ));
    }

    #[test]
    fn scheduler_on_a_map_launch_weights_the_partition() {
        use oclsim::DeviceProfile;
        let rt = crate::runtime::init_profiles(vec![
            DeviceProfile::tesla_c1060(),
            DeviceProfile::xeon_e5520(),
        ]);
        let scheduler = StaticScheduler::analytical(&rt);
        let heavy = Map::<f32, f32>::from_source(
            "float func(float x) { float a = x; for (int i = 0; i < 64; i++) { a = a * 1.0001f + 0.5f; } return a; }",
        );
        let v = Vector::from_vec(&rt, vec![1.0f32; 10_000]);
        let out = heavy.run(&v).scheduler(&scheduler).exec().unwrap();
        assert_eq!(out.len(), 10_000);
        // The GPU must receive the (much) larger part.
        let sizes = v.sizes();
        assert!(
            sizes[0] > sizes[1],
            "scheduler should give the Tesla more work than the Xeon: {sizes:?}"
        );
    }
}
