//! The map-overlap (stencil) skeleton: `out[r, c] = f(in[r, c])` where the
//! user-defined function may read neighbouring elements through the
//! `get(dx, dy)` builtin — the workload class of image filters, PDE solvers
//! and convolutions.
//!
//! Multi-device execution builds on
//! [`crate::distribution::MatrixDistribution::OverlapBlock`]:
//! each device owns a block of rows and additionally stores `halo` read-only
//! rows from its neighbours, filled by the configured [`Boundary`] policy at
//! the matrix edges. A single launch uploads the halo-padded parts and runs
//! one kernel per device over its core elements; the **iterative driver**
//! ([`MapOverlap::run_iter`] / `Launch::run_iter`) ping-pongs between two
//! padded buffers and re-establishes coherence between sweeps by exchanging
//! *only the halo rows* — never whole parts — which is visible in the oclsim
//! transfer stats and the runtime's halo counters.

use std::sync::Arc;

use parking_lot::Mutex;

use oclsim::{Pod, Value};

use crate::container::Container;
use crate::distribution::{Boundary, RowPartition};
use crate::error::{Result, SkelError};
use crate::kernelgen;
use crate::matrix::Matrix;
use crate::runtime::SkelCl;
use crate::skeletons::{check_source_call, Launch, LaunchConfig, PreparedArgs, Skeleton, UdfCache};

struct BuiltSource {
    kernel: oclsim::Kernel,
    extra_scalars: usize,
}

/// The map-overlap (stencil) skeleton over [`Matrix`] inputs.
///
/// The user-defined function receives the centre element and reads
/// neighbours with `get(dx, dy)` (column offset `dx`, row offset `dy`, with
/// `|dy| <= halo`); out-of-bound accesses follow the configured
/// [`Boundary`] policy.
///
/// ```
/// use skelcl::prelude::*;
///
/// let rt = skelcl::init_gpus(2);
/// let avg = MapOverlap::<f32, f32>::from_source(
///     "float func(float x) { return 0.2f * (x + get(-1, 0) + get(1, 0) + get(0, -1) + get(0, 1)); }",
/// )
/// .with_halo(1)
/// .with_boundary(Boundary::Clamp);
/// let m = Matrix::from_fn(&rt, 6, 6, |r, c| (r * 6 + c) as f32);
/// let out = avg.run(&m).exec().unwrap();
/// assert_eq!(out.rows(), 6);
/// # assert_eq!(out.cols(), 6);
/// ```
pub struct MapOverlap<I: Pod, O: Pod> {
    source: String,
    halo: usize,
    boundary: Boundary<I>,
    cache: UdfCache,
    built: Mutex<Option<Arc<BuiltSource>>>,
    _out: std::marker::PhantomData<fn() -> O>,
}

impl<O: Pod> MapOverlap<f32, O> {
    /// Customise the skeleton with a user-defined function given as source
    /// code in the kernel language. The UDF's first parameter receives the
    /// centre element (a `float`); further scalar parameters receive the
    /// additional arguments of the call; neighbours are read with
    /// `get(dx, dy)`. Defaults: halo width 1, clamping boundary.
    pub fn from_source(source: &str) -> MapOverlap<f32, O> {
        MapOverlap {
            source: source.to_string(),
            halo: 1,
            boundary: Boundary::Clamp,
            cache: UdfCache::new(),
            built: Mutex::new(None),
            _out: std::marker::PhantomData,
        }
    }

    /// Set the halo width: the largest `|dy|` the user function reads. Wider
    /// halos replicate more neighbour rows per device (and move more data
    /// per exchange) but are required for larger stencils.
    pub fn with_halo(mut self, halo_rows: usize) -> Self {
        self.halo = halo_rows;
        self
    }

    /// Set the out-of-bound policy applied at the matrix edges (both the
    /// halo fill of edge parts and column accesses inside the kernel).
    pub fn with_boundary(mut self, boundary: Boundary<f32>) -> Self {
        self.boundary = boundary;
        self
    }

    /// The configured halo width.
    pub fn halo(&self) -> usize {
        self.halo
    }

    /// The configured boundary policy.
    pub fn boundary(&self) -> Boundary<f32> {
        self.boundary
    }

    /// Begin a launch of this skeleton over `input`:
    /// `stencil.run(&m).arg(0.25f32).exec()?`.
    pub fn run<'a>(&'a self, input: &Matrix<f32>) -> Launch<'a, Self, Matrix<f32>> {
        Launch::new(self, input.clone())
    }

    fn ensure_built(&self, runtime: &Arc<SkelCl>) -> Result<Arc<BuiltSource>> {
        let mut built = self.built.lock();
        if let Some(b) = built.as_ref() {
            return Ok(b.clone());
        }
        let info = self.cache.info(&self.source, 1)?;
        let kernel_src = kernelgen::map_overlap_kernel(&info)?;
        let program = runtime.context().build_program(&kernel_src)?;
        let kernel = program.kernel(kernelgen::MAP_OVERLAP_KERNEL)?;
        let b = Arc::new(BuiltSource {
            kernel,
            extra_scalars: info.extra_params.len(),
        });
        *built = Some(b.clone());
        Ok(b)
    }

    /// The boundary carried over to output matrices: structurally the same
    /// policy; the constant (an input-element value) does not transfer to
    /// the output element type, so constant boundaries fall back to clamp.
    /// Only used for no-op detection on a later `set_overlap` — the stencil
    /// always re-imposes its own boundary on its input before refreshing
    /// halos, so this never affects results.
    fn output_boundary(&self) -> Boundary<O> {
        match self.boundary {
            Boundary::Wrap => Boundary::Wrap,
            _ => Boundary::Clamp,
        }
    }

    /// The shared execution path of one stencil sweep. `reuse` is the
    /// ping-pong target of the iterative driver: its halo-padded device
    /// buffers are written in place instead of allocating fresh ones. Runs
    /// under replay-based fault recovery (see the `recovery` module); losses
    /// that cannot be recovered from host-valid state escape to the caller
    /// (`run_iter` then replays from its last checkpoint).
    fn execute_overlap(
        &self,
        input: &Matrix<f32>,
        cfg: &LaunchConfig<'_>,
        reuse: Option<&Matrix<O>>,
    ) -> Result<Matrix<O>> {
        let runtime = input.runtime();
        crate::recovery::run_recoverable(
            &runtime,
            &|| input.refresh_for_replay(),
            &|weights| input.repartition_for_recovery(weights),
            &mut || self.execute_overlap_attempt(input, cfg, reuse),
        )
    }

    fn execute_overlap_attempt(
        &self,
        input: &Matrix<f32>,
        cfg: &LaunchConfig<'_>,
        reuse: Option<&Matrix<O>>,
    ) -> Result<Matrix<O>> {
        let runtime = input.runtime();
        runtime.charge_skeleton_call();
        if input.is_empty() {
            return Err(SkelError::EmptyInput);
        }
        if cfg.scheduler.is_some() {
            return Err(SkelError::Distribution(
                "schedulers are not supported on MapOverlap launches yet; \
                 matrices always use the overlap row-block distribution"
                    .into(),
            ));
        }
        if let Some(selection) = &cfg.devices {
            if !matches!(
                selection,
                crate::runtime::DeviceSelection::All | crate::runtime::DeviceSelection::AllGpus
            ) {
                return Err(SkelError::Distribution(
                    "MapOverlap launches run on all devices of the runtime; \
                     initialise the runtime with the devices you want"
                        .into(),
                ));
            }
        }

        input.set_overlap(self.halo, self.boundary)?;
        let (partition, in_buffers) = input.prepare_on_devices()?;
        let prepared = PreparedArgs::prepare(&runtime, &cfg.args)?;
        let built = self.ensure_built(&runtime)?;
        check_source_call(&prepared, built.extra_scalars)?;

        let out_buffers = self.output_buffers(&runtime, &partition, input, reuse)?;

        // Resolve every device's argument list before the first enqueue, so
        // argument errors surface before anything ran.
        let mut launches = Vec::new();
        for device in partition.active_devices() {
            let n = partition.core_len(device);
            let in_buffer = in_buffers[device].clone().ok_or_else(|| {
                SkelError::Distribution(format!("input matrix has no buffer on device {device}"))
            })?;
            let out_buffer = out_buffers.get(device).cloned().flatten().ok_or_else(|| {
                SkelError::Internal(format!("no output buffer allocated for device {device}"))
            })?;
            let oob = match self.boundary {
                Boundary::Constant(c) => c,
                _ => 0.0,
            };
            let mut kargs = vec![
                oclsim::KernelArg::Buffer(in_buffer),
                oclsim::KernelArg::Buffer(out_buffer),
                oclsim::KernelArg::Scalar(Value::Int(n as i32)),
                oclsim::KernelArg::Scalar(Value::Int(partition.cols() as i32)),
                oclsim::KernelArg::Scalar(Value::Int(partition.halo() as i32)),
                oclsim::KernelArg::Scalar(Value::Int(self.boundary.policy_code())),
                oclsim::KernelArg::Scalar(Value::Float(oob)),
            ];
            kargs.extend(prepared.kernel_args_for(device)?);
            launches.push((device, n, kargs));
        }
        // Enqueue the sweep on every device, then wait: the per-device
        // workers execute the parts concurrently in real time, and kernel
        // runtime errors (e.g. a `get` beyond the declared halo) surface
        // here rather than at a later gather.
        let mut events = Vec::new();
        for (device, n, kargs) in launches {
            events.push((
                device,
                runtime
                    .queue(device)
                    .enqueue_kernel(&built.kernel, n, &kargs)?,
            ));
        }
        crate::skeletons::exec::wait_kernel_events(&runtime, events)?;

        match reuse {
            Some(out) => {
                out.mark_stencil_output();
                Ok(out.clone())
            }
            // The output mirrors the input's actual overlap layout — the
            // even `OverlapBlock` normally, the weighted variant after a
            // recovery re-partition — so its declared distribution always
            // matches the partition the buffers were sized for.
            None => Ok(Matrix::device_resident(
                &runtime,
                input.rows(),
                input.cols(),
                input.distribution(),
                self.output_boundary(),
                out_buffers,
            )),
        }
    }

    /// Output buffers of one sweep: the reuse target's padded buffers when
    /// they fit (and do not alias the input), fresh allocations otherwise.
    fn output_buffers(
        &self,
        runtime: &Arc<SkelCl>,
        partition: &RowPartition,
        input: &Matrix<f32>,
        reuse: Option<&Matrix<O>>,
    ) -> Result<Vec<Option<oclsim::Buffer>>> {
        if let Some(m) = reuse {
            m.check_runtime(runtime)?;
        }
        let mut out = vec![None; partition.device_count()];
        for device in partition.active_devices() {
            let want = partition.stored_len(device);
            let reused = reuse
                .filter(|m| m.id() != input.id())
                .and_then(|m| m.buffer_of(device))
                .filter(|b| b.len() == want);
            out[device] = Some(match reused {
                Some(b) => b,
                None => runtime.context().create_buffer::<O>(device, want)?,
            });
        }
        Ok(out)
    }
}

impl<O: Pod> Skeleton<Matrix<f32>> for MapOverlap<f32, O> {
    type Output = Matrix<O>;

    fn name(&self) -> &'static str {
        "map_overlap"
    }

    fn execute(&self, input: &Matrix<f32>, cfg: &LaunchConfig<'_>) -> Result<Matrix<O>> {
        self.execute_overlap(input, cfg, None)
    }
}

impl<O: Pod> Launch<'_, MapOverlap<f32, O>, Matrix<f32>> {
    /// Execute one sweep and return the output matrix (identity terminal
    /// form, symmetric with the other skeletons).
    pub fn into_matrix(self) -> Result<Matrix<O>> {
        self.exec()
    }
}

impl Launch<'_, MapOverlap<f32, f32>, Matrix<f32>> {
    /// The iterative-stencil driver: run `sweeps` sweeps, feeding each
    /// sweep's output into the next. Between sweeps only the halo rows are
    /// re-exchanged — the core parts stay on their devices — and device
    /// memory ping-pongs between two padded buffers, so the steady state
    /// allocates nothing.
    ///
    /// `run_iter(0)` is an error (an empty launch); `run_iter(1)` is
    /// equivalent to [`Launch::exec`].
    ///
    /// # Fault tolerance
    ///
    /// Each sweep recovers transient faults and device losses in place when
    /// the state needed for a replay is host-valid. A loss that strikes while
    /// the only up-to-date state is device-resident (the common case between
    /// sweeps) cannot be replayed from the current sweep; with
    /// [`Launch::checkpoint_every`] set, the driver then rolls back to the
    /// most recent host-side checkpoint and re-runs the sweeps from there —
    /// without checkpoints it restarts from the original input. Either way
    /// the result is bitwise identical to a fault-free run.
    pub fn run_iter(self, sweeps: usize) -> Result<Matrix<f32>> {
        if sweeps == 0 {
            return Err(SkelError::EmptyInput);
        }
        let runtime = self.input.runtime();
        let every = self.cfg.checkpoint_every;
        // Last host-side checkpoint: sweeps completed and the gathered state.
        let mut checkpoint: Option<(usize, Vec<f32>)> = None;
        let mut restores = 0usize;
        let max_restores = runtime.device_count() + 4;
        let mut cur = self.input.clone();
        let mut spare: Option<Matrix<f32>> = None;
        let mut sweep = 0;
        while sweep < sweeps {
            // One recoverable step: the sweep itself *and* the checkpoint
            // gather. A device death striking during the gather's blocking
            // reads must roll back like a failed sweep, not escape.
            let step = (|| -> Result<()> {
                let out = self
                    .skeleton
                    .execute_overlap(&cur, &self.cfg, spare.as_ref())?;
                // The user's input matrix is never recycled as a target;
                // every internal intermediate is.
                spare = (sweep > 0).then(|| cur.clone());
                cur = out;
                sweep += 1;
                if every > 0 && sweep % every == 0 && sweep < sweeps {
                    let data = cur.to_vec()?;
                    runtime.note_checkpoint_bytes(data.len() * std::mem::size_of::<f32>());
                    checkpoint = Some((sweep, data));
                }
                Ok(())
            })();
            match step {
                Ok(()) => {}
                Err(e) => {
                    if !runtime.recovery_enabled()
                        || !e.is_injected_fault()
                        || restores >= max_restores
                    {
                        return Err(e);
                    }
                    restores += 1;
                    // Drop errors the failed sweep latched on other queues so
                    // the replay's blocking reads start clean.
                    let _ = runtime.take_deferred_errors();
                    // Roll back to the last host-side state: the most recent
                    // checkpoint, or the original input. The spare ping-pong
                    // target may hold buffers of a lost device — discard it.
                    let done = match &checkpoint {
                        Some((done, data)) => {
                            cur = Matrix::from_vec(
                                &runtime,
                                self.input.rows(),
                                self.input.cols(),
                                data.clone(),
                            )?;
                            *done
                        }
                        None => {
                            cur = self.input.clone();
                            0
                        }
                    };
                    runtime.note_replayed_launches(sweep - done);
                    spare = None;
                    sweep = done;
                }
            }
        }
        if restores > 0 {
            runtime.note_recovery();
        }
        Ok(cur)
    }
}

impl Matrix<f32> {
    /// Apply a [`MapOverlap`] skeleton to this matrix:
    /// `m.map_overlap(&blur)?` is shorthand for `blur.run(&m).exec()?`.
    pub fn map_overlap<O: Pod>(&self, skeleton: &MapOverlap<f32, O>) -> Result<Matrix<O>> {
        skeleton.run(self).exec()
    }

    /// Run `sweeps` iterative stencil sweeps over this matrix:
    /// `m.map_overlap_iter(&heat, 100)?`.
    pub fn map_overlap_iter(
        &self,
        skeleton: &MapOverlap<f32, f32>,
        sweeps: usize,
    ) -> Result<Matrix<f32>> {
        skeleton.run(self).run_iter(sweeps)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distribution::MatrixDistribution;
    use crate::runtime::init_gpus;

    const FIVE_POINT_AVG: &str =
        "float func(float x) { return 0.2f * (x + get(-1, 0) + get(1, 0) + get(0, -1) + get(0, 1)); }";

    /// Scalar host reference for a stencil, mirroring the engines' float
    /// semantics (every op is a single correctly-rounded f32 operation).
    fn host_stencil(
        input: &[f32],
        rows: usize,
        cols: usize,
        halo: i64,
        boundary: Boundary<f32>,
        f: impl Fn(&dyn Fn(i64, i64) -> f32, f32) -> f32,
    ) -> Vec<f32> {
        let mut out = vec![0.0f32; rows * cols];
        for r in 0..rows as i64 {
            for c in 0..cols as i64 {
                let get = |dx: i64, dy: i64| -> f32 {
                    assert!(dy.abs() <= halo, "reference probe within halo");
                    let rr = match boundary {
                        Boundary::Clamp => (r + dy).clamp(0, rows as i64 - 1),
                        Boundary::Wrap => (r + dy).rem_euclid(rows as i64),
                        Boundary::Constant(v) => {
                            if !(0..rows as i64).contains(&(r + dy)) {
                                return v;
                            }
                            r + dy
                        }
                    };
                    let cc = match boundary {
                        Boundary::Clamp => (c + dx).clamp(0, cols as i64 - 1),
                        Boundary::Wrap => (c + dx).rem_euclid(cols as i64),
                        Boundary::Constant(v) => {
                            if !(0..cols as i64).contains(&(c + dx)) {
                                return v;
                            }
                            c + dx
                        }
                    };
                    input[(rr * cols as i64 + cc) as usize]
                };
                out[(r * cols as i64 + c) as usize] =
                    f(&get, input[(r * cols as i64 + c) as usize]);
            }
        }
        out
    }

    fn five_point_ref(get: &dyn Fn(i64, i64) -> f32, x: f32) -> f32 {
        0.2f32 * (x + get(-1, 0) + get(1, 0) + get(0, -1) + get(0, 1))
    }

    #[test]
    fn five_point_average_matches_host_reference_on_1_to_4_devices() {
        let rows = 9;
        let cols = 7;
        let input: Vec<f32> = (0..rows * cols)
            .map(|i| ((i * 31) % 17) as f32 - 8.0)
            .collect();
        let expected = host_stencil(&input, rows, cols, 1, Boundary::Clamp, five_point_ref);
        for devices in 1..=4 {
            let rt = init_gpus(devices);
            let st = MapOverlap::<f32, f32>::from_source(FIVE_POINT_AVG);
            let m = Matrix::from_vec(&rt, rows, cols, input.clone()).unwrap();
            let out = st.run(&m).exec().unwrap();
            let got = out.to_vec().unwrap();
            let g: Vec<u32> = got.iter().map(|x| x.to_bits()).collect();
            let e: Vec<u32> = expected.iter().map(|x| x.to_bits()).collect();
            assert_eq!(g, e, "devices = {devices}");
            assert_eq!(
                out.distribution(),
                MatrixDistribution::OverlapBlock { halo_rows: 1 }
            );
        }
    }

    #[test]
    fn wrap_and_constant_boundaries_match_the_reference() {
        let rows = 6;
        let cols = 5;
        let input: Vec<f32> = (0..rows * cols).map(|i| (i % 11) as f32 * 0.5).collect();
        for boundary in [Boundary::Wrap, Boundary::Constant(-3.5)] {
            let expected = host_stencil(&input, rows, cols, 1, boundary, five_point_ref);
            let rt = init_gpus(3);
            let st = MapOverlap::<f32, f32>::from_source(FIVE_POINT_AVG).with_boundary(boundary);
            let m = Matrix::from_vec(&rt, rows, cols, input.clone()).unwrap();
            let got = st.run(&m).exec().unwrap().to_vec().unwrap();
            assert_eq!(got, expected, "boundary {boundary:?}");
        }
    }

    #[test]
    fn additional_scalar_arguments_reach_the_udf() {
        let rt = init_gpus(2);
        let st = MapOverlap::<f32, f32>::from_source(
            "float func(float x, float a) { return x + a * get(1, 0); }",
        );
        let m = Matrix::from_fn(&rt, 4, 4, |r, c| (r * 4 + c) as f32);
        let out = st.run(&m).arg(10.0f32).exec().unwrap();
        // Interior: x + 10 * right-neighbour.
        assert_eq!(out.get(1, 1).unwrap(), 5.0 + 10.0 * 6.0);
        // Missing arg errors out.
        assert!(matches!(st.run(&m).exec(), Err(SkelError::UdfSignature(_))));
    }

    #[test]
    fn dy_beyond_the_declared_halo_is_a_launch_error() {
        let rt = init_gpus(1);
        let st = MapOverlap::<f32, f32>::from_source("float func(float x) { return get(0, 2); }")
            .with_halo(1);
        let m = Matrix::filled(&rt, 4, 4, 1.0f32);
        let err = st.run(&m).exec().unwrap_err();
        let msg = format!("{err:?}");
        assert!(msg.contains("exceeds the declared halo"), "{msg}");
    }

    #[test]
    fn run_iter_exchanges_halos_not_whole_parts() {
        let rt = init_gpus(2);
        let rows = 32;
        let cols = 16;
        let st = MapOverlap::<f32, f32>::from_source(FIVE_POINT_AVG).with_halo(1);
        let m = Matrix::from_fn(&rt, rows, cols, |r, c| ((r * c) % 13) as f32);

        // Reference: five sequential host sweeps.
        let mut expected = m.to_vec().unwrap();
        for _ in 0..5 {
            expected = host_stencil(&expected, rows, cols, 1, Boundary::Clamp, five_point_ref);
        }

        rt.drain_events();
        let out = st.run(&m).run_iter(5).unwrap();

        let events = rt.drain_events();
        // Count upload bytes after the initial padded upload: between-sweep
        // traffic must be halo-sized (1 row × cols × 4 bytes per transfer),
        // never a whole part (16 rows × cols × 4).
        let part_bytes = (rows / 2) * cols * 4;
        let halo_row_bytes = cols * 4;
        let transfers: Vec<usize> = events
            .iter()
            .flatten()
            .filter(|e| e.is_transfer())
            .map(|e| e.bytes)
            .collect();
        let initial_upload = (rows / 2 + 2) * cols * 4;
        for b in &transfers {
            assert!(
                *b <= halo_row_bytes || *b == initial_upload,
                "transfer of {b} bytes is neither a halo row nor the initial padded upload \
                 (part = {part_bytes} bytes)"
            );
        }
        let trace = rt.exec_trace();
        assert!(trace.halo_transfers() > 0, "sweeps must exchange halos");

        let got = out.to_vec().unwrap();
        let g: Vec<u32> = got.iter().map(|x| x.to_bits()).collect();
        let e: Vec<u32> = expected.iter().map(|x| x.to_bits()).collect();
        assert_eq!(
            g, e,
            "5 iterative sweeps must match 5 host sweeps bit for bit"
        );
    }

    #[test]
    fn run_iter_steady_state_allocates_no_new_buffers() {
        let rt = init_gpus(2);
        let st = MapOverlap::<f32, f32>::from_source(FIVE_POINT_AVG);
        let m = Matrix::filled(&rt, 16, 8, 1.0f32);
        // Warm up: after three sweeps the ping-pong pair exists.
        let _ = st.run(&m).run_iter(3).unwrap();
        let live_before: usize = (0..2)
            .map(|d| rt.context().device(d).unwrap().live_buffers())
            .sum();
        let _ = st.run(&m).run_iter(3).unwrap();
        let live_after: usize = (0..2)
            .map(|d| rt.context().device(d).unwrap().live_buffers())
            .sum();
        // The second run's intermediates were dropped (pooled), so the live
        // count cannot grow without bound.
        assert!(live_after <= live_before + 2);
        assert!(
            rt.exec_trace().buffer_pool_hits > 0,
            "ping-pong reuses pooled buffers"
        );
    }

    #[test]
    fn run_iter_rejects_zero_sweeps_and_matches_single_exec() {
        let rt = init_gpus(2);
        let st = MapOverlap::<f32, f32>::from_source(FIVE_POINT_AVG);
        let m = Matrix::from_fn(&rt, 5, 5, |r, c| (r + c) as f32);
        assert!(st.run(&m).run_iter(0).is_err());
        let once = st.run(&m).run_iter(1).unwrap().to_vec().unwrap();
        let exec = st.run(&m).exec().unwrap().to_vec().unwrap();
        assert_eq!(once, exec);
    }

    #[test]
    fn schedulers_and_device_subsets_are_rejected() {
        let rt = init_gpus(2);
        let st = MapOverlap::<f32, f32>::from_source(FIVE_POINT_AVG);
        let m = Matrix::filled(&rt, 4, 4, 0.0f32);
        assert!(st
            .run(&m)
            .devices(crate::runtime::DeviceSelection::Gpus(1))
            .exec()
            .is_err());
        let scheduler = crate::scheduler::StaticScheduler::analytical(&rt);
        assert!(st.run(&m).scheduler(&scheduler).exec().is_err());
    }

    #[test]
    fn skeleton_trait_uniform_dispatch() {
        let rt = init_gpus(2);
        let st = MapOverlap::<f32, f32>::from_source(FIVE_POINT_AVG);
        assert_eq!(st.name(), "map_overlap");
        let m = Matrix::filled(&rt, 3, 3, 1.0f32);
        let out = Skeleton::execute(&st, &m, &LaunchConfig::default()).unwrap();
        assert_eq!(out.to_vec().unwrap(), vec![1.0f32; 9]);
    }

    #[test]
    fn fluent_matrix_pipeline() {
        let rt = init_gpus(2);
        let st = MapOverlap::<f32, f32>::from_source(FIVE_POINT_AVG);
        let m = Matrix::filled(&rt, 4, 4, 2.0f32);
        assert_eq!(
            m.map_overlap(&st).unwrap().to_vec().unwrap(),
            vec![2.0f32; 16]
        );
        assert_eq!(
            m.map_overlap_iter(&st, 3).unwrap().to_vec().unwrap(),
            vec![2.0f32; 16]
        );
    }
}
