//! The algorithmic skeletons of SkelCL: [`Map`], [`Zip`], [`Reduce`] and
//! [`Scan`] (paper, Section II-A), including their multi-GPU execution
//! strategies (Section III-C).
//!
//! Each skeleton is customised with a user-defined function, given either as
//! a source string in the kernel language (merged into a generated kernel and
//! compiled at runtime, exactly as in the paper) or as a native Rust closure
//! (used for application kernels too large for the kernel-language subset,
//! such as the OSEM path tracer).
//!
//! Execution is uniform across every skeleton: each implements the
//! input-generic [`Skeleton`] trait and is invoked through the fluent
//! [`Launch`] builder returned by its `run` method — see the `exec` module
//! for the shared prepare → partition → launch → combine pipeline. The
//! data-parallel skeletons ([`Map`], [`Zip`], [`Reduce`]) are additionally
//! generic over the [`crate::container::Container`] trait, so one skeleton
//! instance launches over a [`crate::vector::Vector`] or element-wise over
//! a [`crate::matrix::Matrix`] with no container-specific code.

pub(crate) mod exec;
mod map;
mod map_overlap;
mod reduce;
mod scan;
mod zip;

pub use exec::{Launch, LaunchConfig, Skeleton};
pub use map::{IndexLaunch, Map};
pub use map_overlap::MapOverlap;
pub use reduce::{Reduce, ReducePlan};
pub use scan::{Scan, ScanTrace};
pub use zip::Zip;

pub(crate) use exec::{check_source_call, sequential_cost, wait_kernel_events, PreparedCall};
pub(crate) use scan::host_eval_operator;

use std::sync::Arc;

use oclsim::{Buffer, CostHint, KernelArg, Pod, Value};

use crate::args::{ArgItem, Args};
use crate::distribution::Partition;
use crate::error::{Result, SkelError};
use crate::runtime::SkelCl;

/// Scalar element types that can cross the host/device boundary as kernel
/// scalar arguments (needed by the reduce and scan skeletons, which move
/// per-device partial results through the host).
pub trait DeviceScalar: Pod {
    /// Convert to a kernel scalar value.
    fn to_value(self) -> Value;
    /// Convert from a kernel scalar value.
    fn from_value(v: Value) -> Self;
    /// The kernel-language name of the type (used in generated source).
    fn type_name() -> &'static str;
}

impl DeviceScalar for f32 {
    fn to_value(self) -> Value {
        Value::Float(self)
    }
    fn from_value(v: Value) -> Self {
        v.as_f64() as f32
    }
    fn type_name() -> &'static str {
        "float"
    }
}

impl DeviceScalar for f64 {
    fn to_value(self) -> Value {
        Value::Double(self)
    }
    fn from_value(v: Value) -> Self {
        v.as_f64()
    }
    fn type_name() -> &'static str {
        "double"
    }
}

impl DeviceScalar for i32 {
    fn to_value(self) -> Value {
        Value::Int(self)
    }
    fn from_value(v: Value) -> Self {
        v.as_i64() as i32
    }
    fn type_name() -> &'static str {
        "int"
    }
}

impl DeviceScalar for u32 {
    fn to_value(self) -> Value {
        Value::Uint(self)
    }
    fn from_value(v: Value) -> Self {
        v.as_i64() as u32
    }
    fn type_name() -> &'static str {
        "uint"
    }
}

/// Additional arguments resolved for one skeleton call: scalars converted to
/// kernel values, vector arguments uploaded (lazily) according to their own
/// distributions with their per-device buffers captured. The element types of
/// vector arguments are already erased by [`crate::args::VectorArg`], so one
/// code path covers every `Pod` element type, `f64` included.
pub(crate) struct PreparedArgs {
    items: Vec<PreparedItem>,
}

enum PreparedItem {
    Scalar(Value),
    Vector { buffers: Vec<Option<Buffer>> },
}

impl PreparedArgs {
    /// Prepare the additional arguments of a call.
    pub(crate) fn prepare(runtime: &Arc<SkelCl>, args: &Args) -> Result<PreparedArgs> {
        let mut items = Vec::with_capacity(args.len());
        for item in args.items() {
            match item {
                ArgItem::Scalar(v) => items.push(PreparedItem::Scalar(*v)),
                ArgItem::Vector(v) => {
                    v.check_runtime(runtime)?;
                    items.push(PreparedItem::Vector {
                        buffers: v.prepare_buffers()?,
                    });
                }
            }
        }
        Ok(PreparedArgs { items })
    }

    /// Number of additional arguments.
    pub(crate) fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether any additional argument is a vector.
    pub(crate) fn has_vectors(&self) -> bool {
        self.items
            .iter()
            .any(|i| matches!(i, PreparedItem::Vector { .. }))
    }

    /// The kernel arguments contributed by the additional arguments for a
    /// launch on `device`.
    pub(crate) fn kernel_args_for(&self, device: usize) -> Result<Vec<KernelArg>> {
        let mut out = Vec::with_capacity(self.items.len());
        for (i, item) in self.items.iter().enumerate() {
            match item {
                PreparedItem::Scalar(v) => out.push(KernelArg::Scalar(*v)),
                PreparedItem::Vector { buffers } => {
                    let buffer = buffers.get(device).cloned().flatten().ok_or_else(|| {
                        SkelError::UnsupportedArg(format!(
                            "additional vector argument {i} has no data on device {device}; \
                             set its distribution to copy (or block) before the skeleton call"
                        ))
                    })?;
                    out.push(KernelArg::Buffer(buffer));
                }
            }
        }
        Ok(out)
    }
}

/// Allocate one output buffer per active device of a partition.
pub(crate) fn alloc_output<T: Pod>(
    runtime: &Arc<SkelCl>,
    partition: &Partition,
) -> Result<Vec<Option<Buffer>>> {
    let mut buffers = vec![None; partition.device_count()];
    for device in partition.active_devices() {
        let len = partition.size(device);
        buffers[device] = Some(runtime.context().create_buffer::<T>(device, len)?);
    }
    Ok(buffers)
}

/// Per-skeleton-instance cache of the artefacts derived from a source UDF:
/// the analysed signature ([`UdfInfo`], shared by every generated kernel
/// variant of the skeleton) and the scheduler cost estimate. Both used to be
/// recomputed — re-lexing and re-parsing the UDF source — on every
/// scheduler-weighted launch and once per kernel variant; now each is
/// computed at most once per skeleton instance.
pub(crate) struct UdfCache {
    info: parking_lot::Mutex<Option<Arc<crate::kernelgen::UdfInfo>>>,
    cost: parking_lot::Mutex<Option<CostHint>>,
}

impl UdfCache {
    pub(crate) fn new() -> UdfCache {
        UdfCache {
            info: parking_lot::Mutex::new(None),
            cost: parking_lot::Mutex::new(None),
        }
    }

    /// The analysed UDF signature; `source` and `main_inputs` are fixed per
    /// skeleton instance, so the first result is cached for good.
    pub(crate) fn info(
        &self,
        source: &str,
        main_inputs: usize,
    ) -> Result<Arc<crate::kernelgen::UdfInfo>> {
        let mut slot = self.info.lock();
        if let Some(info) = slot.as_ref() {
            return Ok(info.clone());
        }
        let info = Arc::new(crate::kernelgen::UdfInfo::analyze(source, main_inputs)?);
        *slot = Some(info.clone());
        Ok(info)
    }

    /// The per-element cost estimate used for scheduler-weighted
    /// partitioning, computed once instead of once per launch.
    pub(crate) fn cost(&self, source: &str) -> Result<CostHint> {
        let mut slot = self.cost.lock();
        if let Some(cost) = *slot {
            return Ok(cost);
        }
        let cost = udf_cost_estimate(source)?;
        *slot = Some(cost);
        Ok(cost)
    }
}

/// The per-element cost estimate of a source user-defined function, used to
/// override launch cost hints for the sequential reduce/scan kernels. The
/// UDF is resolved by the same rule kernel generation uses
/// ([`crate::kernelgen::resolve_udf`]) — the function that is compiled is
/// the function that is costed — and ambiguous sources are rejected with a
/// clear error rather than silently costing the wrong function.
pub(crate) fn udf_cost_estimate(source: &str) -> Result<CostHint> {
    let tokens = skelcl_kernel::lexer::lex(source)?;
    let unit = skelcl_kernel::parser::parse(&tokens, source)?;
    let func = crate::kernelgen::resolve_udf(&unit, "user function source")?;
    let est = skelcl_kernel::cost::estimate_function(&unit, func);
    Ok(CostHint::new(est.flops.max(1.0), est.global_bytes.max(8.0)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::init_gpus;
    use crate::vector::Vector;

    #[test]
    fn device_scalar_round_trips() {
        assert_eq!(f32::from_value(2.5f32.to_value()), 2.5);
        assert_eq!(i32::from_value((-7i32).to_value()), -7);
        assert_eq!(u32::from_value(9u32.to_value()), 9);
        assert_eq!(f64::from_value(1.25f64.to_value()), 1.25);
        assert_eq!(f32::type_name(), "float");
        assert_eq!(u32::type_name(), "uint");
    }

    #[test]
    fn prepared_args_scalars_and_vectors() {
        let rt = init_gpus(2);
        let img = Vector::from_vec(&rt, vec![1.0f32; 8]);
        img.set_distribution(crate::distribution::Distribution::Copy)
            .unwrap();
        let args = Args::new().arg(3.0f32).arg(&img).arg(5i32);
        let prepared = PreparedArgs::prepare(&rt, &args).unwrap();
        assert_eq!(prepared.len(), 3);
        assert!(prepared.has_vectors());
        let kargs = prepared.kernel_args_for(1).unwrap();
        assert_eq!(kargs.len(), 3);
        assert!(matches!(kargs[0], KernelArg::Scalar(Value::Float(v)) if v == 3.0));
        assert!(matches!(kargs[1], KernelArg::Buffer(_)));
        assert!(matches!(kargs[2], KernelArg::Scalar(Value::Int(5))));
    }

    #[test]
    fn prepared_args_accept_f64_vectors() {
        let rt = init_gpus(2);
        let table = Vector::from_vec(&rt, vec![1.0f64; 4]);
        table
            .set_distribution(crate::distribution::Distribution::Copy)
            .unwrap();
        let prepared = PreparedArgs::prepare(&rt, &crate::args![&table]).unwrap();
        assert!(prepared.has_vectors());
        assert!(matches!(
            prepared.kernel_args_for(0).unwrap()[0],
            KernelArg::Buffer(_)
        ));
    }

    #[test]
    fn prepared_args_reject_missing_device_copy() {
        let rt = init_gpus(2);
        let img = Vector::from_vec(&rt, vec![1.0f32; 8]);
        img.set_distribution(crate::distribution::Distribution::Single(0))
            .unwrap();
        let args = Args::new().arg(&img);
        let prepared = PreparedArgs::prepare(&rt, &args).unwrap();
        assert!(prepared.kernel_args_for(0).is_ok());
        assert!(prepared.kernel_args_for(1).is_err());
    }

    #[test]
    fn udf_cache_computes_each_artefact_once() {
        let cache = UdfCache::new();
        let src = "float func(float a, float b) { return a + b; }";
        let first = cache.info(src, 2).unwrap();
        let second = cache.info(src, 2).unwrap();
        assert!(
            Arc::ptr_eq(&first, &second),
            "repeated analysis must return the cached Arc"
        );
        let c1 = cache.cost(src).unwrap();
        let c2 = cache.cost(src).unwrap();
        assert_eq!(c1, c2);
        assert!(c1.flops_per_item >= 1.0);
    }

    #[test]
    fn udf_cost_estimation() {
        let c = udf_cost_estimate("float f(float a, float b) { return a + b; }").unwrap();
        assert!(c.flops_per_item >= 1.0);
        assert!(udf_cost_estimate("").is_err());
    }

    #[test]
    fn udf_cost_resolves_the_function_named_func_among_helpers() {
        // The helper is heavy, the UDF trivial: the estimate must cost the
        // function named `func`, not whichever happens to come last.
        let helper_last = r#"
            float func(float a, float b) { return a + b; }
            float heavy_helper(float x) {
                float acc = x;
                for (int i = 0; i < 100; i++) { acc = acc * 1.5f + 2.0f; }
                return acc;
            }
        "#;
        let c = udf_cost_estimate(helper_last).unwrap();
        assert!(
            c.flops_per_item < 50.0,
            "cost {0} must reflect `func`, not the trailing helper",
            c.flops_per_item
        );
    }

    #[test]
    fn udf_cost_rejects_ambiguous_sources_with_a_clear_error() {
        let no_func_name = r#"
            float alpha(float a, float b) { return a + b; }
            float beta(float a, float b) { return a * b; }
        "#;
        match udf_cost_estimate(no_func_name) {
            Err(SkelError::UdfSignature(msg)) => {
                assert!(msg.contains("alpha") && msg.contains("beta"), "{msg}");
                assert!(msg.contains("func"), "{msg}");
            }
            other => panic!("expected a UdfSignature error, got {other:?}"),
        }
    }

    #[test]
    fn alloc_output_allocates_only_active_devices() {
        let rt = init_gpus(3);
        let p = Partition::compute(9, 3, &crate::distribution::Distribution::Single(1));
        let buffers = alloc_output::<f32>(&rt, &p).unwrap();
        assert!(buffers[0].is_none());
        assert!(buffers[1].is_some());
        assert!(buffers[2].is_none());
        assert_eq!(buffers[1].as_ref().unwrap().len(), 9);
    }
}
