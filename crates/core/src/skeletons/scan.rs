//! The scan skeleton: inclusive prefix combination,
//! `scan(⊕)([x1..xn]) = [x1, x1⊕x2, ..., x1⊕...⊕xn]`.
//!
//! Multi-GPU execution (paper, Section III-C and Figure 2):
//! 1. every GPU runs a local scan of its part,
//! 2. the per-part totals are downloaded to the host,
//! 3. for every GPU except the first, a map skeleton is created implicitly
//!    that combines the totals of its predecessors with every element of its
//!    part,
//! 4. these map kernels compute the final result on the devices.
//!
//! The output vector is block-distributed.

use std::sync::Arc;

use parking_lot::Mutex;

use oclsim::{CostHint, KernelArg, NativeKernelDef, Program, Value};

use crate::container::Container;
use crate::error::{Result, SkelError};
use crate::kernelgen::{self, UdfInfo};
use crate::skeletons::{
    sequential_cost, DeviceScalar, Launch, LaunchConfig, PreparedCall, Skeleton, UdfCache,
};
use crate::vector::Vector;

enum ScanUdf<T> {
    Source(String),
    Native(Arc<dyn Fn(T, T) -> T + Send + Sync>),
}

struct BuiltSource {
    scan_kernel: oclsim::Kernel,
    offset_kernel: oclsim::Kernel,
    per_element_cost: CostHint,
}

/// Intermediate state of one multi-device scan: exposed so that tests and the
/// Figure 2 example can show the per-stage values exactly as the paper does.
/// Produced by the `trace` terminal form:
/// `scan.run(&v).trace()?`.
#[derive(Debug, Clone, PartialEq)]
pub struct ScanTrace<T> {
    /// The local (per-device) scan results before offsets are applied —
    /// the second row of Figure 2.
    pub local_scans: Vec<Vec<T>>,
    /// The offset combined into each device's part (`None` for the first
    /// device) — the values marked in Figure 2.
    pub offsets: Vec<Option<T>>,
}

/// The scan (prefix) skeleton.
///
/// ```
/// use skelcl::prelude::*;
///
/// let rt = skelcl::init_gpus(4);
/// let prefix_sum = Scan::<f32>::from_source("float func(float a, float b) { return a + b; }");
/// let v = Vector::from_vec(&rt, (1..=16).map(|i| i as f32).collect());
/// let out = v.scan(&prefix_sum).unwrap();
/// assert_eq!(out.to_vec().unwrap().last().copied(), Some(136.0));
/// ```
pub struct Scan<T: DeviceScalar> {
    udf: ScanUdf<T>,
    cost: CostHint,
    cache: UdfCache,
    built: Mutex<Option<Arc<BuiltSource>>>,
}

impl<T: DeviceScalar> Scan<T> {
    /// Customise the skeleton with a binary operator given as source code.
    pub fn from_source(source: &str) -> Scan<T> {
        Scan {
            udf: ScanUdf::Source(source.to_string()),
            cost: CostHint::DEFAULT,
            cache: UdfCache::new(),
            built: Mutex::new(None),
        }
    }

    /// Customise the skeleton with a native binary operator.
    pub fn new<F>(f: F) -> Scan<T>
    where
        F: Fn(T, T) -> T + Send + Sync + 'static,
    {
        Scan {
            udf: ScanUdf::Native(Arc::new(f)),
            cost: CostHint::DEFAULT,
            cache: UdfCache::new(),
            built: Mutex::new(None),
        }
    }

    /// Override the per-element cost hint (native operators).
    pub fn with_cost(mut self, cost: CostHint) -> Self {
        self.cost = cost;
        self
    }

    /// Begin a launch of this skeleton over `input`:
    /// `scan.run(&v).exec()?` or `scan.run(&v).trace()?`.
    pub fn run<'a>(&'a self, input: &Vector<T>) -> Launch<'a, Self, Vector<T>> {
        Launch::new(self, input.clone())
    }

    /// The per-element cost used for scheduler-weighted partitioning.
    fn scheduler_cost(&self) -> CostHint {
        match &self.udf {
            ScanUdf::Source(src) => self.cache.cost(src).unwrap_or(self.cost),
            ScanUdf::Native(_) => self.cost,
        }
    }

    /// The analysed binary-operator UDF for use in a lazy plan. Native
    /// closures have no source to fuse, so they cannot participate in plans.
    pub(crate) fn plan_udf(&self) -> Result<Arc<UdfInfo>> {
        match &self.udf {
            ScanUdf::Source(src) => {
                let info = self.cache.info(src, 2)?;
                kernelgen::check_binary_op(&info, "scan")?;
                Ok(info)
            }
            ScanUdf::Native(_) => Err(SkelError::Plan(
                "scan stage uses a native Rust closure; lazy plans require source UDFs".into(),
            )),
        }
    }

    fn ensure_built(&self, runtime: &Arc<crate::runtime::SkelCl>) -> Result<Arc<BuiltSource>> {
        let mut built = self.built.lock();
        if let Some(b) = built.as_ref() {
            return Ok(b.clone());
        }
        let ScanUdf::Source(src) = &self.udf else {
            unreachable!("ensure_built is only called for source UDFs")
        };
        let info = self.cache.info(src, 2)?;
        let kernel_src = kernelgen::scan_kernels(&info)?;
        let program = runtime.context().build_program(&kernel_src)?;
        let b = Arc::new(BuiltSource {
            scan_kernel: program.kernel(kernelgen::SCAN_KERNEL)?,
            offset_kernel: program.kernel(kernelgen::SCAN_OFFSET_KERNEL)?,
            per_element_cost: self.cache.cost(src)?,
        });
        *built = Some(b.clone());
        Ok(b)
    }

    fn native_scan_kernel(&self) -> Option<oclsim::Kernel> {
        let ScanUdf::Native(f) = &self.udf else {
            return None;
        };
        let f = f.clone();
        let def = NativeKernelDef::new("skelcl_scan_native", self.cost, move |ctx| {
            let mut views = ctx.arg_views();
            let (in_view, rest) = views
                .split_first_mut()
                .ok_or_else(|| "scan kernel is missing its input".to_string())?;
            let (out_view, _) = rest
                .split_first_mut()
                .ok_or_else(|| "scan kernel is missing its output".to_string())?;
            let input = in_view
                .as_slice::<T>()
                .ok_or_else(|| "scan input must be a buffer".to_string())?;
            let output = out_view
                .as_slice_mut::<T>()
                .ok_or_else(|| "scan output must be a buffer".to_string())?;
            let mut acc = input[0];
            output[0] = acc;
            for i in 1..input.len() {
                acc = f(acc, input[i]);
                output[i] = acc;
            }
            Ok(())
        });
        Program::from_native([def])
            .kernel("skelcl_scan_native")
            .ok()
    }

    fn native_offset_kernel(&self, offset: T) -> Option<oclsim::Kernel> {
        let ScanUdf::Native(f) = &self.udf else {
            return None;
        };
        let f = f.clone();
        let def = NativeKernelDef::new("skelcl_scan_offset_native", self.cost, move |ctx| {
            let mut views = ctx.arg_views();
            let data = views
                .first_mut()
                .and_then(|v| v.as_slice_mut::<T>())
                .ok_or_else(|| "scan offset kernel needs a buffer".to_string())?;
            for x in data.iter_mut() {
                *x = f(offset, *x);
            }
            Ok(())
        });
        Program::from_native([def])
            .kernel("skelcl_scan_offset_native")
            .ok()
    }

    fn host_combine(&self, built: Option<&BuiltSource>, a: T, b: T) -> T {
        match &self.udf {
            ScanUdf::Native(f) => f(a, b),
            ScanUdf::Source(_) => {
                // The offsets are combined on the host by evaluating the
                // user operator through the same generated kernel used on the
                // devices, over a two-element array.
                let _ = built;
                let src = match &self.udf {
                    ScanUdf::Source(s) => s.clone(),
                    ScanUdf::Native(_) => unreachable!(),
                };
                host_eval_operator::<T>(&src, a, b)
            }
        }
    }

    /// The shared implementation behind every terminal form. When no trace
    /// is requested, only the *last* element of each device's local scan —
    /// its total — is downloaded between the two steps, exactly the marked
    /// values of Figure 2; the full parts stay on their devices.
    fn execute_scan(
        &self,
        input: &Vector<T>,
        cfg: &LaunchConfig<'_>,
        want_trace: bool,
        reuse: Option<&Vector<T>>,
    ) -> Result<(Vector<T>, Option<ScanTrace<T>>)> {
        // Copy distribution makes no sense for a prefix computation; the
        // paper's scan assumes block distribution by default.
        input.ensure_disjoint()?;
        let scheduler_cost = cfg.scheduler.map(|_| self.scheduler_cost());
        let call = PreparedCall::single::<T, Vector<T>>(input, cfg, scheduler_cost)?;
        if call.prepared_args.len() != 0 {
            return Err(SkelError::UnsupportedArg(
                "the scan skeleton's binary operator takes no additional arguments".into(),
            ));
        }
        let runtime = &call.runtime;
        let out_buffers = call.output_buffers::<T, Vector<T>>(reuse)?;

        let (scan_kernel, built, per_element_cost) = match &self.udf {
            ScanUdf::Source(_) => {
                let built = self.ensure_built(runtime)?;
                (
                    built.scan_kernel.clone(),
                    Some(built.clone()),
                    built.per_element_cost,
                )
            }
            ScanUdf::Native(_) => (
                self.native_scan_kernel()
                    .expect("native kernel construction cannot fail"),
                None,
                self.cost,
            ),
        };

        // Step 1: local scans.
        let active = call.partition.active_devices();
        for &device in &active {
            let n = call.partition.size(device);
            let in_buffer = call.input_buffer(device)?;
            let out_buffer = out_buffers[device].clone().expect("allocated above");
            runtime.queue(device).enqueue_kernel_with_cost(
                &scan_kernel,
                1,
                &[
                    KernelArg::Buffer(in_buffer),
                    KernelArg::Buffer(out_buffer),
                    KernelArg::Scalar(Value::Int(n as i32)),
                ],
                sequential_cost(per_element_cost, n, 8.0),
            )?;
        }

        // Step 2: download the per-part totals (last element of each local
        // scan) to the host. Only when a trace is requested does the whole
        // local scan come back — the totals are all the algorithm needs.
        let mut totals = Vec::with_capacity(active.len());
        let mut local_scans = Vec::with_capacity(active.len());
        for &device in &active {
            let n = call.partition.size(device);
            let out_buffer = out_buffers[device].as_ref().expect("allocated above");
            if want_trace {
                let mut part = vec![T::from_value(Value::Int(0)); n];
                runtime
                    .queue(device)
                    .enqueue_read_buffer(out_buffer, &mut part)?;
                totals.push(part[n - 1]);
                local_scans.push(part);
            } else {
                let mut last = [T::from_value(Value::Int(0)); 1];
                runtime
                    .queue(device)
                    .enqueue_read_buffer_region(out_buffer, n - 1, &mut last)?;
                totals.push(last[0]);
            }
        }

        // Step 3 + 4: combine predecessor totals into each later part via the
        // implicitly created map (offset) kernels. All offset kernels are
        // enqueued before any is waited on, so the per-device workers apply
        // them concurrently in real time.
        let mut offset_events = Vec::new();
        let mut offsets: Vec<Option<T>> = vec![None; active.len()];
        let mut running: Option<T> = None;
        for (i, &device) in active.iter().enumerate() {
            if i > 0 {
                offsets[i] = running;
            }
            running = Some(match running {
                None => totals[i],
                Some(acc) => self.host_combine(built.as_deref(), acc, totals[i]),
            });
            if i == 0 {
                continue;
            }
            let offset = offsets[i].expect("set above for i > 0");
            let n = call.partition.size(device);
            let out_buffer = out_buffers[device].clone().expect("allocated above");
            let offset_cost = CostHint::new(per_element_cost.flops_per_item, 8.0);
            match &self.udf {
                ScanUdf::Source(_) => {
                    let built = built.as_ref().expect("source scan builds its program");
                    offset_events.push((
                        device,
                        runtime.queue(device).enqueue_kernel_with_cost(
                            &built.offset_kernel,
                            n,
                            &[
                                KernelArg::Buffer(out_buffer),
                                KernelArg::Scalar(Value::Int(n as i32)),
                                KernelArg::Scalar(offset.to_value()),
                            ],
                            offset_cost,
                        )?,
                    ));
                }
                ScanUdf::Native(_) => {
                    let kernel = self
                        .native_offset_kernel(offset)
                        .expect("native kernel construction cannot fail");
                    offset_events.push((
                        device,
                        runtime.queue(device).enqueue_kernel_with_cost(
                            &kernel,
                            n,
                            &[KernelArg::Buffer(out_buffer)],
                            offset_cost,
                        )?,
                    ));
                }
            }
        }
        crate::skeletons::exec::wait_kernel_events(runtime, offset_events)?;

        // The output adopts the input's (non-copy) distribution: the buffers
        // were allocated for exactly that partition, so block, weighted
        // block and single inputs all stay consistent (Section III-C's
        // "block-distributed output" is the default-input case).
        let distribution = input.distribution();
        let output = match reuse {
            Some(out) => {
                out.commit_as_output(call.len, distribution, out_buffers)?;
                out.clone()
            }
            None => Vector::device_resident(runtime, call.len, distribution, out_buffers),
        };
        Ok((
            output,
            want_trace.then_some(ScanTrace {
                local_scans,
                offsets,
            }),
        ))
    }
}

impl<T: DeviceScalar> Skeleton<Vector<T>> for Scan<T> {
    type Output = Vector<T>;

    fn name(&self) -> &'static str {
        "scan"
    }

    fn execute(&self, input: &Vector<T>, cfg: &LaunchConfig<'_>) -> Result<Vector<T>> {
        self.execute_scan(input, cfg, false, None).map(|(v, _)| v)
    }
}

impl<T: DeviceScalar> Launch<'_, Scan<T>, Vector<T>> {
    /// Execute and return the output vector (identity terminal form).
    pub fn into_vector(self) -> Result<Vector<T>> {
        self.exec()
    }

    /// Execute and additionally return the [`ScanTrace`] of Figure 2 (the
    /// per-device local scans and the offsets combined by the implicit map
    /// skeletons).
    pub fn trace(self) -> Result<(Vector<T>, ScanTrace<T>)> {
        let (output, trace) = self
            .skeleton
            .execute_scan(&self.input, &self.cfg, true, None)?;
        Ok((output, trace.expect("trace requested")))
    }

    /// Execute, writing the result into `out` and reusing `out`'s device
    /// buffers instead of allocating fresh ones.
    pub fn run_into(self, out: &Vector<T>) -> Result<()> {
        self.skeleton
            .execute_scan(&self.input, &self.cfg, false, Some(out))?;
        Ok(())
    }
}

/// Evaluate a binary source operator on the host over two values by running
/// the generated scan kernel on a two-element array.
pub(crate) fn host_eval_operator<T: DeviceScalar>(source: &str, a: T, b: T) -> T {
    let info = UdfInfo::analyze(source, 2).expect("operator was validated at build time");
    let kernel_src = kernelgen::scan_kernels(&info).expect("operator was validated at build time");
    let program = skelcl_kernel::Program::build(&kernel_src).expect("generated source is valid");
    let kernel = program
        .kernel(kernelgen::SCAN_KERNEL)
        .expect("generated program contains the scan kernel");
    match T::type_name() {
        "float" => {
            let mut input = vec![a.to_value().as_f64() as f32, b.to_value().as_f64() as f32];
            let mut output = vec![0.0f32; 2];
            let mut args = vec![
                skelcl_kernel::interp::ArgBinding::buffer_f32(&mut input),
                skelcl_kernel::interp::ArgBinding::buffer_f32(&mut output),
                skelcl_kernel::interp::ArgBinding::Scalar(Value::Int(2)),
            ];
            program
                .run_ndrange(&kernel, 1, &mut args)
                .expect("host evaluation of the operator");
            T::from_value(Value::Float(output[1]))
        }
        "int" => {
            let mut input = vec![a.to_value().as_i64() as i32, b.to_value().as_i64() as i32];
            let mut output = vec![0i32; 2];
            let mut args = vec![
                skelcl_kernel::interp::ArgBinding::buffer_i32(&mut input),
                skelcl_kernel::interp::ArgBinding::buffer_i32(&mut output),
                skelcl_kernel::interp::ArgBinding::Scalar(Value::Int(2)),
            ];
            program
                .run_ndrange(&kernel, 1, &mut args)
                .expect("host evaluation of the operator");
            T::from_value(Value::Int(output[1]))
        }
        "uint" => {
            let mut input = vec![a.to_value().as_i64() as u32, b.to_value().as_i64() as u32];
            let mut output = vec![0u32; 2];
            let mut args = vec![
                skelcl_kernel::interp::ArgBinding::buffer_u32(&mut input),
                skelcl_kernel::interp::ArgBinding::buffer_u32(&mut output),
                skelcl_kernel::interp::ArgBinding::Scalar(Value::Int(2)),
            ];
            program
                .run_ndrange(&kernel, 1, &mut args)
                .expect("host evaluation of the operator");
            T::from_value(Value::Uint(output[1]))
        }
        _ => {
            let mut input = vec![a.to_value().as_f64(), b.to_value().as_f64()];
            let mut output = vec![0.0f64; 2];
            let mut args = vec![
                skelcl_kernel::interp::ArgBinding::buffer_f64(&mut input),
                skelcl_kernel::interp::ArgBinding::buffer_f64(&mut output),
                skelcl_kernel::interp::ArgBinding::Scalar(Value::Int(2)),
            ];
            program
                .run_ndrange(&kernel, 1, &mut args)
                .expect("host evaluation of the operator");
            T::from_value(Value::Double(output[1]))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distribution::Distribution;
    use crate::runtime::init_gpus;

    const ADD: &str = "float func(float a, float b) { return a + b; }";

    fn sequential_prefix_sums(data: &[f32]) -> Vec<f32> {
        let mut out = Vec::with_capacity(data.len());
        let mut acc = 0.0;
        for x in data {
            acc += x;
            out.push(acc);
        }
        out
    }

    #[test]
    fn prefix_sums_match_sequential_for_any_device_count() {
        let data: Vec<f32> = (1..=100).map(|i| (i % 13) as f32).collect();
        let expected = sequential_prefix_sums(&data);
        for devices in 1..=4 {
            let rt = init_gpus(devices);
            let scan = Scan::<f32>::from_source(ADD);
            let v = Vector::from_vec(&rt, data.clone());
            let out = v.scan(&scan).unwrap();
            assert_eq!(out.to_vec().unwrap(), expected, "devices = {devices}");
        }
    }

    #[test]
    fn figure_2_example_on_four_gpus() {
        // The exact example of Figure 2: scanning [1..16] with + on 4 GPUs.
        let rt = init_gpus(4);
        let scan = Scan::<f32>::from_source(ADD);
        let v = Vector::from_vec(&rt, (1..=16).map(|i| i as f32).collect());
        let (out, trace) = scan.run(&v).trace().unwrap();

        // Middle row of Figure 2: the local scans per device.
        assert_eq!(trace.local_scans[0], vec![1.0, 3.0, 6.0, 10.0]);
        assert_eq!(trace.local_scans[1], vec![5.0, 11.0, 18.0, 26.0]);
        assert_eq!(trace.local_scans[2], vec![9.0, 19.0, 30.0, 42.0]);
        assert_eq!(trace.local_scans[3], vec![13.0, 27.0, 42.0, 58.0]);

        // The offsets marked in Figure 2: 10, 36 (= 10 ⊕ 26), 78 (= 36 ⊕ 42).
        assert_eq!(trace.offsets[0], None);
        assert_eq!(trace.offsets[1], Some(10.0));
        assert_eq!(trace.offsets[2], Some(36.0));
        assert_eq!(trace.offsets[3], Some(78.0));

        // Bottom row: the complete prefix sums.
        let expected: Vec<f32> = (1..=16)
            .scan(0.0f32, |acc, i| {
                *acc += i as f32;
                Some(*acc)
            })
            .collect();
        assert_eq!(out.to_vec().unwrap(), expected);
        assert_eq!(out.distribution(), Distribution::Block);
    }

    #[test]
    fn native_scan_matches_source_scan() {
        let data: Vec<f32> = (1..=37).map(|i| i as f32).collect();
        let rt = init_gpus(3);
        let source = Scan::<f32>::from_source(ADD);
        let native = Scan::<f32>::new(|a, b| a + b);
        let v1 = Vector::from_vec(&rt, data.clone());
        let v2 = Vector::from_vec(&rt, data);
        assert_eq!(
            v1.scan(&source).unwrap().to_vec().unwrap(),
            v2.scan(&native).unwrap().to_vec().unwrap()
        );
    }

    #[test]
    fn scan_with_non_commutative_operator() {
        // Matrix-like composition encoded as digits: f(a, b) = a * 10 + b.
        let rt = init_gpus(4);
        let scan =
            Scan::<f32>::from_source("float func(float a, float b) { return a * 10.0f + b; }");
        let v = Vector::from_vec(&rt, vec![1.0f32, 2.0, 3.0, 4.0]);
        let out = v.scan(&scan).unwrap();
        assert_eq!(out.to_vec().unwrap(), vec![1.0, 12.0, 123.0, 1234.0]);
    }

    #[test]
    fn scan_of_int_vector() {
        let rt = init_gpus(2);
        let scan = Scan::<i32>::from_source("int func(int a, int b) { return a + b; }");
        let v = Vector::from_vec(&rt, vec![1i32, 2, 3, 4, 5]);
        assert_eq!(
            v.scan(&scan).unwrap().to_vec().unwrap(),
            vec![1, 3, 6, 10, 15]
        );
    }

    #[test]
    fn scan_on_single_distribution_keeps_it() {
        let rt = init_gpus(3);
        let scan = Scan::<f32>::from_source(ADD);
        let v = Vector::from_vec(&rt, vec![1.0f32; 6]);
        v.set_distribution(Distribution::Single(2)).unwrap();
        let out = v.scan(&scan).unwrap();
        assert_eq!(out.distribution(), Distribution::Single(2));
        assert_eq!(out.to_vec().unwrap(), vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
    }

    #[test]
    fn scan_rejects_empty_input_and_extra_args() {
        let rt = init_gpus(1);
        let scan = Scan::<f32>::from_source(ADD);
        let v = Vector::from_vec(&rt, Vec::<f32>::new());
        assert!(matches!(v.scan(&scan), Err(SkelError::EmptyInput)));

        let v = Vector::from_vec(&rt, vec![1.0f32; 4]);
        assert!(matches!(
            scan.run(&v).arg(1.0f32).exec(),
            Err(SkelError::UnsupportedArg(_))
        ));
    }

    #[test]
    fn scan_run_into_reuses_buffers() {
        let rt = init_gpus(2);
        let scan = Scan::<i32>::new(|a, b| a + b);
        let v = Vector::from_vec(&rt, vec![1i32; 6]);
        let out = Vector::from_vec(&rt, vec![0i32; 6]);
        out.copy_data_to_devices().unwrap();
        scan.run(&v).run_into(&out).unwrap();
        assert_eq!(out.to_vec().unwrap(), vec![1, 2, 3, 4, 5, 6]);
    }
}
