//! The map skeleton: `map(f)([x1..xn]) = [f(x1)..f(xn)]`.
//!
//! Multi-GPU execution (paper, Section III-C): "each GPU executes the map's
//! unary function on its part of the input vector"; the output container
//! adopts the shape and distribution of the input.
//!
//! The skeleton is **container-generic**: one `Map<I, O>` instance launches
//! over a [`Vector<I>`] (yielding a `Vector<O>`) or element-wise over a
//! row-block [`crate::matrix::Matrix<I>`] (yielding a same-shaped
//! `Matrix<O>`) through the same [`Container`] code path and the same
//! generated kernel — no matrix-specific kernel or launch code exists.

use std::sync::Arc;

use parking_lot::Mutex;

use oclsim::{CostHint, NativeKernelDef, Pod, Program, Value};

use crate::args::{ArgAccess, Args};
use crate::container::Container;
use crate::distribution::Distribution;
use crate::error::{Result, SkelError};
use crate::kernelgen;
use crate::matrix::Matrix;
use crate::runtime::{DeviceSelection, SkelCl};
use crate::skeletons::{
    alloc_output, check_source_call, Launch, LaunchConfig, PreparedArgs, PreparedCall, Skeleton,
    UdfCache,
};
use crate::vector::Vector;

enum MapUdf<I, O> {
    Source(String),
    Native(Arc<dyn Fn(&I, &mut ArgAccess<'_, '_>) -> O + Send + Sync>),
}

struct BuiltSource {
    kernel: oclsim::Kernel,
    extra_scalars: usize,
}

/// The map skeleton.
///
/// ```
/// use skelcl::prelude::*;
///
/// let rt = skelcl::init_gpus(2);
/// let negate = Map::<f32, f32>::from_source("float func(float x) { return -x; }");
/// let v = Vector::from_vec(&rt, vec![1.0f32, -2.0, 3.0]);
/// let out = negate.run(&v).exec().unwrap();
/// assert_eq!(out.to_vec().unwrap(), vec![-1.0, 2.0, -3.0]);
///
/// // The same skeleton instance maps element-wise over a matrix:
/// let m = Matrix::from_fn(&rt, 2, 2, |r, c| (r * 2 + c) as f32);
/// assert_eq!(m.map(&negate).unwrap().to_vec().unwrap(), vec![0.0, -1.0, -2.0, -3.0]);
/// ```
pub struct Map<I: Pod, O: Pod> {
    udf: MapUdf<I, O>,
    cost: CostHint,
    cache: UdfCache,
    built: Mutex<Option<Arc<BuiltSource>>>,
    built_index: Mutex<Option<Arc<BuiltSource>>>,
}

impl<I: Pod, O: Pod> Map<I, O> {
    /// Customise the skeleton with a user-defined function given as source
    /// code in the kernel language. The UDF is the function named `func` (or
    /// the only function); its first parameter receives the input element,
    /// any further (scalar) parameters receive the additional arguments of
    /// the call.
    pub fn from_source(source: &str) -> Map<I, O> {
        Map {
            udf: MapUdf::Source(source.to_string()),
            cost: CostHint::DEFAULT,
            cache: UdfCache::new(),
            built: Mutex::new(None),
            built_index: Mutex::new(None),
        }
    }

    /// Customise the skeleton with a native Rust closure. Use this for user
    /// functions that are too complex for the kernel-language subset or that
    /// need vector additional arguments (e.g. the OSEM path tracer).
    pub fn new<F>(f: F) -> Map<I, O>
    where
        F: Fn(&I, &mut ArgAccess<'_, '_>) -> O + Send + Sync + 'static,
    {
        Map {
            udf: MapUdf::Native(Arc::new(f)),
            cost: CostHint::DEFAULT,
            cache: UdfCache::new(),
            built: Mutex::new(None),
            built_index: Mutex::new(None),
        }
    }

    /// Override the per-element cost hint used by the virtual-time model
    /// (native UDFs only; source UDFs are estimated statically).
    pub fn with_cost(mut self, cost: CostHint) -> Self {
        self.cost = cost;
        self
    }

    /// Begin a launch of this skeleton over `input` — a [`Vector`] or a
    /// [`Matrix`]: `map.run(&v).arg(2.5f32).exec()?`.
    pub fn run<'a, C: Container<I>>(&'a self, input: &C) -> Launch<'a, Self, C> {
        Launch::new(self, input.clone())
    }

    /// The per-element cost used for scheduler-weighted partitioning.
    fn scheduler_cost(&self) -> CostHint {
        match &self.udf {
            MapUdf::Source(src) => self.cache.cost(src).unwrap_or(self.cost),
            MapUdf::Native(_) => self.cost,
        }
    }

    /// The analysed source UDF for use in a lazy plan. Native closures have
    /// no source to fuse, so they cannot participate in plans.
    pub(crate) fn plan_udf(&self) -> Result<Arc<kernelgen::UdfInfo>> {
        match &self.udf {
            MapUdf::Source(src) => self.cache.info(src, 1),
            MapUdf::Native(_) => Err(SkelError::Plan(
                "map stage uses a native Rust closure; lazy plans require source UDFs".into(),
            )),
        }
    }

    fn ensure_built(&self, runtime: &Arc<SkelCl>) -> Result<Arc<BuiltSource>> {
        let mut built = self.built.lock();
        if let Some(b) = built.as_ref() {
            return Ok(b.clone());
        }
        let MapUdf::Source(src) = &self.udf else {
            unreachable!("ensure_built is only called for source UDFs")
        };
        let info = self.cache.info(src, 1)?;
        let kernel_src = kernelgen::map_kernel(&info)?;
        let program = runtime.context().build_program(&kernel_src)?;
        let kernel = program.kernel(kernelgen::MAP_KERNEL)?;
        let b = Arc::new(BuiltSource {
            kernel,
            extra_scalars: info.extra_params.len(),
        });
        *built = Some(b.clone());
        Ok(b)
    }

    fn ensure_built_index(&self, runtime: &Arc<SkelCl>) -> Result<Arc<BuiltSource>> {
        let mut built = self.built_index.lock();
        if let Some(b) = built.as_ref() {
            return Ok(b.clone());
        }
        let MapUdf::Source(src) = &self.udf else {
            unreachable!("ensure_built_index is only called for source UDFs")
        };
        let info = self.cache.info(src, 1)?;
        let kernel_src = kernelgen::map_index_kernel(&info)?;
        let program = runtime.context().build_program(&kernel_src)?;
        let kernel = program.kernel(kernelgen::MAP_INDEX_KERNEL)?;
        let b = Arc::new(BuiltSource {
            kernel,
            extra_scalars: info.extra_params.len(),
        });
        *built = Some(b.clone());
        Ok(b)
    }

    fn native_kernel(&self) -> Option<oclsim::Kernel> {
        let MapUdf::Native(f) = &self.udf else {
            return None;
        };
        let f = f.clone();
        let def = NativeKernelDef::new("skelcl_map_native", self.cost, move |ctx| {
            let n = ctx.global_size();
            let mut views = ctx.arg_views();
            let (in_view, rest) = views
                .split_first_mut()
                .ok_or_else(|| "map kernel is missing its input argument".to_string())?;
            let (out_view, rest) = rest
                .split_first_mut()
                .ok_or_else(|| "map kernel is missing its output argument".to_string())?;
            let (_n_view, extra) = rest
                .split_first_mut()
                .ok_or_else(|| "map kernel is missing its length argument".to_string())?;
            let input = in_view
                .as_slice::<I>()
                .ok_or_else(|| "map input must be a buffer".to_string())?;
            let output = out_view
                .as_slice_mut::<O>()
                .ok_or_else(|| "map output must be a buffer".to_string())?;
            let mut access = ArgAccess::new(extra);
            for i in 0..n {
                output[i] = f(&input[i], &mut access);
            }
            Ok(())
        });
        let program = Program::from_native([def]);
        program.kernel("skelcl_map_native").ok()
    }

    /// Resolve the kernel to launch and validate the additional arguments
    /// against the UDF kind.
    fn resolve_kernel(
        &self,
        runtime: &Arc<SkelCl>,
        prepared: &PreparedArgs,
    ) -> Result<oclsim::Kernel> {
        match &self.udf {
            MapUdf::Source(_) => {
                let built = self.ensure_built(runtime)?;
                check_source_call(prepared, built.extra_scalars)?;
                Ok(built.kernel.clone())
            }
            MapUdf::Native(_) => Ok(self
                .native_kernel()
                .expect("native kernel construction cannot fail")),
        }
    }

    /// The shared execution path behind [`Skeleton::execute`] and the
    /// `run_into` terminal form, generic over the input container. Runs
    /// under replay-based fault recovery (see the `recovery` module).
    fn execute_map<C: Container<I>>(
        &self,
        input: &C,
        cfg: &LaunchConfig<'_>,
        reuse: Option<&C::Rebound<O>>,
    ) -> Result<C::Rebound<O>> {
        let runtime = input.runtime();
        crate::recovery::run_recoverable(
            &runtime,
            &|| input.refresh_for_replay(),
            &|weights| input.repartition_for_recovery(weights),
            &mut || {
                let scheduler_cost = cfg.scheduler.map(|_| self.scheduler_cost());
                let call = PreparedCall::single(input, cfg, scheduler_cost)?;
                let kernel = self.resolve_kernel(&call.runtime, &call.prepared_args)?;
                let out_buffers = call.output_buffers::<O, C::Rebound<O>>(reuse)?;
                call.launch_elementwise(&kernel, &out_buffers)?;
                call.finish_output(input, out_buffers, reuse)
            },
        )
    }
}

impl<I: Pod, O: Pod, C: Container<I>> Skeleton<C> for Map<I, O> {
    type Output = C::Rebound<O>;

    fn name(&self) -> &'static str {
        "map"
    }

    fn execute(&self, input: &C, cfg: &LaunchConfig<'_>) -> Result<C::Rebound<O>> {
        self.execute_map(input, cfg, None)
    }
}

impl<I: Pod, O: Pod, C: Container<I>> Launch<'_, Map<I, O>, C> {
    /// Execute, writing the result into `out` and reusing `out`'s device
    /// buffers instead of allocating fresh ones. `out` adopts the launch's
    /// shape and distribution; its previous contents are overwritten.
    pub fn run_into(self, out: &C::Rebound<O>) -> Result<()> {
        self.skeleton
            .execute_map(&self.input, &self.cfg, Some(out))?;
        Ok(())
    }
}

impl<I: Pod, O: Pod> Launch<'_, Map<I, O>, Vector<I>> {
    /// Execute and return the output vector (identity terminal form,
    /// symmetric with reduce's `into_vector`).
    pub fn into_vector(self) -> Result<Vector<O>> {
        self.exec()
    }
}

impl<I: Pod, O: Pod> Launch<'_, Map<I, O>, Matrix<I>> {
    /// Execute and return the output matrix (identity terminal form).
    pub fn into_matrix(self) -> Result<Matrix<O>> {
        self.exec()
    }
}

/// A launch of a map skeleton over the *implicit index range* `[0, len)`;
/// created by [`Map::run_index`]. Supports the same configuration methods as
/// [`Launch`].
#[must_use = "an IndexLaunch does nothing until `exec()` is called"]
pub struct IndexLaunch<'a, O: Pod> {
    map: &'a Map<i32, O>,
    runtime: Arc<SkelCl>,
    len: usize,
    cfg: LaunchConfig<'a>,
}

impl<'a, O: Pod> IndexLaunch<'a, O> {
    /// Replace the additional arguments of the call.
    pub fn args(mut self, args: Args) -> Self {
        self.cfg.args = args;
        self
    }

    /// Append one additional argument.
    pub fn arg(mut self, value: impl crate::args::IntoArg) -> Self {
        self.cfg.args = self.cfg.args.arg(value);
        self
    }

    /// Restrict the launch to a subset of the runtime's devices.
    pub fn devices(mut self, selection: DeviceSelection) -> Self {
        self.cfg.devices = Some(selection);
        self
    }

    /// Partition the index range by a static scheduler's predictions.
    pub fn scheduler(mut self, scheduler: &'a crate::scheduler::StaticScheduler) -> Self {
        self.cfg.scheduler = Some(scheduler);
        self
    }

    /// The distribution of the generated output under the configured device
    /// selection / scheduler.
    fn output_distribution(&self) -> Result<Distribution> {
        if let Some(scheduler) = self.cfg.scheduler {
            return Ok(scheduler.weighted_block(self.map.scheduler_cost()));
        }
        let override_dist = match &self.cfg.devices {
            Some(selection) => crate::skeletons::exec::selection_distribution(
                selection,
                self.runtime.device_count(),
            )?,
            None => None,
        };
        Ok(override_dist.unwrap_or(Distribution::Block))
    }

    /// Execute the index map: `out[i] = f(i, extra...)` for `i` in
    /// `[0, len)`. No input buffer exists, so nothing is uploaded — each
    /// device computes its block of indices from its global ids plus a
    /// per-device offset. This mirrors SkelCL's index-vector facility and is
    /// the natural way to express generator-style workloads such as the
    /// Mandelbrot benchmark.
    pub fn exec(self) -> Result<Vector<O>> {
        let runtime = &self.runtime;
        runtime.charge_skeleton_call();
        if self.len == 0 {
            return Err(SkelError::EmptyInput);
        }
        let distribution = self.output_distribution()?;
        let partition = crate::distribution::Partition::compute(
            self.len,
            runtime.device_count(),
            &distribution,
        );
        let prepared = PreparedArgs::prepare(runtime, &self.cfg.args)?;
        let out_buffers = alloc_output::<O>(runtime, &partition)?;

        let kernel = match &self.map.udf {
            MapUdf::Source(_) => {
                let built = self.map.ensure_built_index(runtime)?;
                check_source_call(&prepared, built.extra_scalars)?;
                built.kernel.clone()
            }
            MapUdf::Native(f) => {
                let f = f.clone();
                let def =
                    NativeKernelDef::new("skelcl_map_index_native", self.map.cost, move |ctx| {
                        let n = ctx.global_size();
                        // Arguments: [out, n, offset, extra...] — the
                        // per-device offset is the third argument.
                        let offset = ctx.scalar_usize(2)?;
                        let mut views = ctx.arg_views();
                        let (out_view, rest) = views
                            .split_first_mut()
                            .ok_or_else(|| "index map kernel is missing its output".to_string())?;
                        let (_n_view, rest) = rest
                            .split_first_mut()
                            .ok_or_else(|| "index map kernel is missing its length".to_string())?;
                        let (_offset_view, extra) = rest
                            .split_first_mut()
                            .ok_or_else(|| "index map kernel is missing its offset".to_string())?;
                        let output = out_view
                            .as_slice_mut::<O>()
                            .ok_or_else(|| "index map output must be a buffer".to_string())?;
                        let mut access = ArgAccess::new(extra);
                        for i in 0..n {
                            output[i] = f(&((offset + i) as i32), &mut access);
                        }
                        Ok(())
                    });
                let program = Program::from_native([def]);
                program
                    .kernel("skelcl_map_index_native")
                    .expect("native kernel construction cannot fail")
            }
        };

        // Enqueue on all devices, then wait: index-map launches overlap in
        // real time across the per-device workers like every other skeleton.
        let mut events = Vec::new();
        for device in partition.active_devices() {
            let range = partition.range(device);
            let n = range.len();
            let output_buffer = out_buffers.get(device).cloned().flatten().ok_or_else(|| {
                SkelError::Internal(format!("no output buffer allocated for device {device}"))
            })?;
            let mut kargs = vec![
                oclsim::KernelArg::Buffer(output_buffer),
                oclsim::KernelArg::Scalar(Value::Int(n as i32)),
                oclsim::KernelArg::Scalar(Value::Int(range.start as i32)),
            ];
            kargs.extend(prepared.kernel_args_for(device)?);
            events.push((
                device,
                runtime.queue(device).enqueue_kernel(&kernel, n, &kargs)?,
            ));
        }
        crate::skeletons::exec::wait_kernel_events(runtime, events)?;

        Ok(Vector::device_resident(
            runtime,
            self.len,
            distribution,
            out_buffers,
        ))
    }
}

impl<O: Pod> Map<i32, O> {
    /// Begin an index-map launch over the implicit range `[0, len)`:
    /// `map.run_index(&rt, n).arg(scale).exec()?`.
    pub fn run_index<'a>(&'a self, runtime: &Arc<SkelCl>, len: usize) -> IndexLaunch<'a, O> {
        IndexLaunch {
            map: self,
            runtime: runtime.clone(),
            len,
            cfg: LaunchConfig::default(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distribution::Distribution;
    use crate::runtime::init_gpus;

    #[test]
    fn source_map_on_multiple_devices() {
        for devices in 1..=4 {
            let rt = init_gpus(devices);
            let square = Map::<f32, f32>::from_source("float func(float x) { return x * x; }");
            let data: Vec<f32> = (1..=10).map(|i| i as f32).collect();
            let v = Vector::from_vec(&rt, data.clone());
            let out = square.run(&v).exec().unwrap();
            let expected: Vec<f32> = data.iter().map(|x| x * x).collect();
            assert_eq!(out.to_vec().unwrap(), expected, "devices = {devices}");
            assert_eq!(out.distribution(), Distribution::Block);
        }
    }

    #[test]
    fn source_map_with_scalar_additional_argument() {
        let rt = init_gpus(2);
        let scale = Map::<f32, f32>::from_source("float func(float x, float s) { return x * s; }");
        let v = Vector::from_vec(&rt, vec![1.0f32, 2.0, 3.0, 4.0]);
        let out = scale.run(&v).arg(2.5f32).exec().unwrap();
        assert_eq!(out.to_vec().unwrap(), vec![2.5, 5.0, 7.5, 10.0]);
    }

    #[test]
    fn source_map_checks_additional_argument_count() {
        let rt = init_gpus(1);
        let scale = Map::<f32, f32>::from_source("float func(float x, float s) { return x * s; }");
        let v = Vector::from_vec(&rt, vec![1.0f32]);
        assert!(matches!(
            scale.run(&v).exec(),
            Err(SkelError::UdfSignature(_))
        ));
    }

    #[test]
    fn native_map_with_vector_additional_argument() {
        let rt = init_gpus(2);
        // out[i] = x[i] * table[i % table.len()] — the table is a
        // copy-distributed additional vector argument.
        let table = Vector::from_vec(&rt, vec![10.0f32, 100.0]);
        table.set_distribution(Distribution::Copy).unwrap();
        let map = Map::<f32, f32>::new(|x, args| {
            let t = args.slice_f32(0);
            x * t[(*x as usize) % t.len()]
        });
        let v = Vector::from_vec(&rt, vec![1.0f32, 2.0, 3.0, 4.0]);
        let out = map.run(&v).arg(&table).exec().unwrap();
        assert_eq!(out.to_vec().unwrap(), vec![100.0, 20.0, 300.0, 40.0]);
    }

    #[test]
    fn map_output_type_can_differ_from_input() {
        let rt = init_gpus(2);
        let round = Map::<f32, i32>::from_source("int func(float x) { return (int) (x + 0.5f); }");
        let v = Vector::from_vec(&rt, vec![0.2f32, 1.7, 2.4]);
        let out = v.map(&round).unwrap();
        assert_eq!(out.to_vec().unwrap(), vec![0, 2, 2]);
    }

    #[test]
    fn map_on_single_distribution_runs_on_one_device_only() {
        let rt = init_gpus(3);
        let inc = Map::<f32, f32>::from_source("float func(float x) { return x + 1.0f; }");
        let v = Vector::from_vec(&rt, vec![1.0f32; 6]);
        v.set_distribution(Distribution::Single(1)).unwrap();
        let out = v.map(&inc).unwrap();
        assert_eq!(out.to_vec().unwrap(), vec![2.0f32; 6]);
        assert_eq!(out.distribution(), Distribution::Single(1));
        // Only device 1 must have executed a kernel.
        let events = rt.drain_events();
        assert_eq!(events[0].iter().filter(|e| e.is_kernel()).count(), 0);
        assert_eq!(events[1].iter().filter(|e| e.is_kernel()).count(), 1);
        assert_eq!(events[2].iter().filter(|e| e.is_kernel()).count(), 0);
    }

    #[test]
    fn map_on_copy_distribution_executes_on_every_device() {
        let rt = init_gpus(2);
        let inc = Map::<f32, f32>::from_source("float func(float x) { return x + 1.0f; }");
        let v = Vector::from_vec(&rt, vec![1.0f32; 4]);
        v.set_distribution(Distribution::Copy).unwrap();
        let out = v.map(&inc).unwrap();
        assert_eq!(out.to_vec().unwrap(), vec![2.0f32; 4]);
        assert_eq!(out.distribution(), Distribution::Copy);
        let events = rt.drain_events();
        assert_eq!(events[0].iter().filter(|e| e.is_kernel()).count(), 1);
        assert_eq!(events[1].iter().filter(|e| e.is_kernel()).count(), 1);
    }

    #[test]
    fn index_map_from_source_needs_no_input_vector_or_transfer() {
        for devices in 1..=4 {
            let rt = init_gpus(devices);
            let square = Map::<i32, i32>::from_source("int func(int i) { return i * i; }");
            let out = square.run_index(&rt, 10).exec().unwrap();
            let expected: Vec<i32> = (0..10).map(|i| i * i).collect();
            // No host→device transfer may have happened: the indices are
            // generated on the devices.
            let uploads: usize = rt
                .drain_events()
                .iter()
                .flatten()
                .filter(|e| e.is_transfer() && !e.is_read())
                .count();
            assert_eq!(uploads, 0, "devices = {devices}");
            assert_eq!(out.to_vec().unwrap(), expected, "devices = {devices}");
            assert_eq!(out.distribution(), Distribution::Block);
        }
    }

    #[test]
    fn index_map_with_additional_arguments_and_native_udf() {
        let rt = init_gpus(3);
        // Source UDF with an extra scalar: out[i] = i * scale.
        let scaled =
            Map::<i32, f32>::from_source("float func(int i, float scale) { return i * scale; }");
        let out = scaled.run_index(&rt, 7).arg(0.5f32).exec().unwrap();
        assert_eq!(
            out.to_vec().unwrap(),
            (0..7).map(|i| i as f32 * 0.5).collect::<Vec<_>>()
        );
        // Native UDF over the same range.
        let native = Map::<i32, i32>::new(|i, _| i + 100);
        let out = native.run_index(&rt, 5).exec().unwrap();
        assert_eq!(out.to_vec().unwrap(), vec![100, 101, 102, 103, 104]);
    }

    #[test]
    fn index_map_honours_device_selection() {
        let rt = init_gpus(4);
        let m = Map::<i32, i32>::from_source("int func(int i) { return i; }");
        rt.drain_events();
        let out = m
            .run_index(&rt, 12)
            .devices(DeviceSelection::Gpus(2))
            .exec()
            .unwrap();
        assert_eq!(out.to_vec().unwrap(), (0..12).collect::<Vec<_>>());
        let events = rt.drain_events();
        assert_eq!(events[2].iter().filter(|e| e.is_kernel()).count(), 0);
        assert_eq!(events[3].iter().filter(|e| e.is_kernel()).count(), 0);
    }

    #[test]
    fn index_map_rejects_empty_ranges_and_float_indices() {
        let rt = init_gpus(1);
        let m = Map::<i32, i32>::from_source("int func(int i) { return i; }");
        assert!(matches!(
            m.run_index(&rt, 0).exec(),
            Err(SkelError::EmptyInput)
        ));
        let bad = Map::<i32, f32>::from_source("float func(float x) { return x; }");
        assert!(matches!(
            bad.run_index(&rt, 4).exec(),
            Err(SkelError::UdfSignature(_))
        ));
    }

    #[test]
    fn empty_input_is_rejected() {
        let rt = init_gpus(1);
        let inc = Map::<f32, f32>::from_source("float func(float x) { return x + 1.0f; }");
        let v = Vector::from_vec(&rt, Vec::<f32>::new());
        assert!(matches!(v.map(&inc), Err(SkelError::EmptyInput)));
    }

    #[test]
    fn consecutive_maps_chain_on_devices_without_host_transfers() {
        let rt = init_gpus(2);
        let inc = Map::<f32, f32>::from_source("float func(float x) { return x + 1.0f; }");
        let v = Vector::from_vec(&rt, vec![0.0f32; 8]);
        let a = v.map(&inc).unwrap();
        rt.drain_events();
        let b = a.map(&inc).unwrap();
        // The second call must not transfer anything: its input already
        // resides on the devices (lazy transfers, paper Section II-B).
        let events = rt.drain_events();
        let transfers: usize = events.iter().flatten().filter(|e| e.is_transfer()).count();
        assert_eq!(transfers, 0, "chained skeletons must not move data");
        assert_eq!(b.to_vec().unwrap(), vec![2.0f32; 8]);
    }

    #[test]
    fn run_into_reuses_the_output_vector() {
        let rt = init_gpus(2);
        let inc = Map::<f32, f32>::from_source("float func(float x) { return x + 1.0f; }");
        let v = Vector::from_vec(&rt, vec![1.0f32; 8]);
        let out = Vector::from_vec(&rt, vec![0.0f32; 8]);
        out.copy_data_to_devices().unwrap();
        inc.run(&v).run_into(&out).unwrap();
        assert_eq!(out.to_vec().unwrap(), vec![2.0f32; 8]);
        // Repeat into the same target: steady state, buffers reused.
        inc.run(&v).run_into(&out).unwrap();
        assert_eq!(out.to_vec().unwrap(), vec![2.0f32; 8]);
    }

    #[test]
    fn map_over_matrix_matches_vector_map_and_keeps_shape() {
        for devices in 1..=4 {
            let rt = init_gpus(devices);
            let square = Map::<f32, f32>::from_source("float func(float x) { return x * x; }");
            let data: Vec<f32> = (0..12).map(|i| i as f32 - 5.5).collect();
            let m = Matrix::from_vec(&rt, 4, 3, data.clone()).unwrap();
            let v = Vector::from_vec(&rt, data.clone());
            let mo = m.map(&square).unwrap();
            let vo = v.map(&square).unwrap();
            assert_eq!(
                mo.to_vec().unwrap(),
                vo.to_vec().unwrap(),
                "devices = {devices}"
            );
            assert_eq!(mo.rows(), 4);
            assert_eq!(mo.cols(), 3);
            assert_eq!(mo.distribution(), crate::MatrixDistribution::RowBlock);
        }
    }

    #[test]
    fn map_into_reuses_a_matrix_target() {
        let rt = init_gpus(2);
        let inc = Map::<f32, f32>::from_source("float func(float x) { return x + 1.0f; }");
        let m = Matrix::filled(&rt, 4, 4, 1.0f32);
        let out = Matrix::filled(&rt, 4, 4, 0.0f32);
        out.map(&inc).unwrap(); // warm the target's buffers
        m.map_into(&inc, &out).unwrap();
        assert_eq!(out.to_vec().unwrap(), vec![2.0f32; 16]);
    }
}
