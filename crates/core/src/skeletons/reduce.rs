//! The reduce skeleton: `reduce(⊕)([x1..xn]) = x1 ⊕ x2 ⊕ ... ⊕ xn`.
//!
//! The operator must be associative but may be non-commutative.
//!
//! Multi-GPU execution (paper, Section III-C) proceeds in three steps:
//! 1. every GPU executes a local reduction of its part of the data,
//! 2. the per-GPU results are gathered by the CPU,
//! 3. the CPU reduces the intermediate results into the final value.
//!
//! With a scheduler attached to the launch
//! (`sum.run(&v).scheduler(&s).chunks(8).scalar_with_plan()`), the
//! Section V strategy is used instead: each device produces an intermediate
//! result vector, and the scheduler decides whether the final combination
//! runs on the host CPU or on the fastest device.

use std::sync::Arc;

use parking_lot::Mutex;

use oclsim::{CostHint, KernelArg, NativeKernelDef, Program, Value};

use crate::container::Container;
use crate::distribution::Distribution;
use crate::error::{Result, SkelError};
use crate::kernelgen;
use crate::skeletons::{
    sequential_cost, DeviceScalar, Launch, LaunchConfig, PreparedCall, Skeleton, UdfCache,
};
use crate::vector::Vector;

enum ReduceUdf<T> {
    Source(String),
    Native(Arc<dyn Fn(T, T) -> T + Send + Sync>),
}

struct BuiltSource {
    kernel: oclsim::Kernel,
    /// A host-side copy of the generated program, used for step 3 (the final
    /// reduction of the per-device partial results on the CPU).
    host_program: skelcl_kernel::Program,
    per_element_cost: CostHint,
}

/// How a scheduler-aware reduction (Section V) was executed: how many
/// intermediate results the devices produced and where the final reduction
/// ran. Returned by the `scalar_with_plan` terminal form so applications and
/// tests can inspect the decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReducePlan {
    /// Number of intermediate partial results gathered from the devices.
    pub intermediate_results: usize,
    /// Device index chosen for the final reduction (meaningful only when
    /// `final_on_cpu` is false).
    pub final_device: usize,
    /// Whether the final reduction ran on the host CPU rather than a device.
    pub final_on_cpu: bool,
}

/// The reduce skeleton.
///
/// ```
/// use skelcl::prelude::*;
///
/// let rt = skelcl::init_gpus(4);
/// let sum = Reduce::<f32>::from_source("float func(float a, float b) { return a + b; }");
/// let v = Vector::from_vec(&rt, (1..=16).map(|i| i as f32).collect());
/// assert_eq!(sum.run(&v).scalar().unwrap(), 136.0);
/// // Or through the fluent vector pipeline:
/// assert_eq!(v.reduce(&sum).unwrap(), 136.0);
/// ```
pub struct Reduce<T: DeviceScalar> {
    udf: ReduceUdf<T>,
    cost: CostHint,
    cache: UdfCache,
    built: Mutex<Option<Arc<BuiltSource>>>,
    built_chunked: Mutex<Option<oclsim::Kernel>>,
}

impl<T: DeviceScalar> Reduce<T> {
    /// Customise the skeleton with a binary operator given as source code.
    pub fn from_source(source: &str) -> Reduce<T> {
        Reduce {
            udf: ReduceUdf::Source(source.to_string()),
            cost: CostHint::DEFAULT,
            cache: UdfCache::new(),
            built: Mutex::new(None),
            built_chunked: Mutex::new(None),
        }
    }

    /// Customise the skeleton with a native binary operator.
    pub fn new<F>(f: F) -> Reduce<T>
    where
        F: Fn(T, T) -> T + Send + Sync + 'static,
    {
        Reduce {
            udf: ReduceUdf::Native(Arc::new(f)),
            cost: CostHint::DEFAULT,
            cache: UdfCache::new(),
            built: Mutex::new(None),
            built_chunked: Mutex::new(None),
        }
    }

    /// Override the per-element cost hint (native operators).
    pub fn with_cost(mut self, cost: CostHint) -> Self {
        self.cost = cost;
        self
    }

    /// Begin a launch of this skeleton over `input` — a [`Vector`] or a
    /// [`crate::matrix::Matrix`] (reduced over all its elements):
    /// `sum.run(&v).scalar()?`, `sum.run(&v).into_vector()?`, or the
    /// scheduler-aware `sum.run(&v).scheduler(&s).chunks(8).scalar_with_plan()?`.
    pub fn run<'a, C: Container<T>>(&'a self, input: &C) -> Launch<'a, Self, C> {
        Launch::new(self, input.clone())
    }

    /// The analysed binary-operator UDF for use in a lazy plan. Native
    /// closures have no source to fuse, so they cannot participate in plans.
    pub(crate) fn plan_udf(&self) -> Result<Arc<kernelgen::UdfInfo>> {
        match &self.udf {
            ReduceUdf::Source(src) => {
                let info = self.cache.info(src, 2)?;
                kernelgen::check_binary_op(&info, "reduce")?;
                Ok(info)
            }
            ReduceUdf::Native(_) => Err(SkelError::Plan(
                "reduce stage uses a native Rust closure; lazy plans require source UDFs".into(),
            )),
        }
    }

    fn ensure_built(&self, runtime: &Arc<crate::runtime::SkelCl>) -> Result<Arc<BuiltSource>> {
        let mut built = self.built.lock();
        if let Some(b) = built.as_ref() {
            return Ok(b.clone());
        }
        let ReduceUdf::Source(src) = &self.udf else {
            unreachable!("ensure_built is only called for source UDFs")
        };
        let info = self.cache.info(src, 2)?;
        let kernel_src = kernelgen::reduce_kernel(&info)?;
        let program = runtime.context().build_program(&kernel_src)?;
        let kernel = program.kernel(kernelgen::REDUCE_KERNEL)?;
        let host_program = skelcl_kernel::Program::build(&kernel_src)?;
        let b = Arc::new(BuiltSource {
            kernel,
            host_program,
            per_element_cost: self.cache.cost(src)?,
        });
        *built = Some(b.clone());
        Ok(b)
    }

    fn ensure_built_chunked(
        &self,
        runtime: &Arc<crate::runtime::SkelCl>,
    ) -> Result<oclsim::Kernel> {
        let mut built = self.built_chunked.lock();
        if let Some(k) = built.as_ref() {
            return Ok(k.clone());
        }
        let ReduceUdf::Source(src) = &self.udf else {
            unreachable!("ensure_built_chunked is only called for source UDFs")
        };
        let info = self.cache.info(src, 2)?;
        let kernel_src = kernelgen::reduce_chunked_kernel(&info)?;
        let program = runtime.context().build_program(&kernel_src)?;
        let kernel = program.kernel(kernelgen::REDUCE_CHUNKED_KERNEL)?;
        *built = Some(kernel.clone());
        Ok(kernel)
    }

    fn native_chunked_kernel(&self) -> Option<oclsim::Kernel> {
        let ReduceUdf::Native(f) = &self.udf else {
            return None;
        };
        let f = f.clone();
        let def = NativeKernelDef::new("skelcl_reduce_chunked_native", self.cost, move |ctx| {
            let chunks = ctx.global_size();
            let n = ctx.scalar_usize(2)?;
            let chunk = ctx.scalar_usize(3)?.max(1);
            let mut views = ctx.arg_views();
            let (in_view, rest) = views
                .split_first_mut()
                .ok_or_else(|| "chunked reduce kernel is missing its input".to_string())?;
            let (out_view, _) = rest
                .split_first_mut()
                .ok_or_else(|| "chunked reduce kernel is missing its output".to_string())?;
            let input = in_view
                .as_slice::<T>()
                .ok_or_else(|| "reduce input must be a buffer".to_string())?;
            let output = out_view
                .as_slice_mut::<T>()
                .ok_or_else(|| "reduce output must be a buffer".to_string())?;
            for g in 0..chunks {
                let start = g * chunk;
                if start >= n {
                    continue;
                }
                let end = (start + chunk).min(n);
                let mut acc = input[start];
                for x in &input[start + 1..end] {
                    acc = f(acc, *x);
                }
                output[g] = acc;
            }
            Ok(())
        });
        let program = Program::from_native([def]);
        program.kernel("skelcl_reduce_chunked_native").ok()
    }

    fn native_kernel(&self) -> Option<oclsim::Kernel> {
        let ReduceUdf::Native(f) = &self.udf else {
            return None;
        };
        let f = f.clone();
        let def = NativeKernelDef::new("skelcl_reduce_native", self.cost, move |ctx| {
            let mut views = ctx.arg_views();
            let (in_view, rest) = views
                .split_first_mut()
                .ok_or_else(|| "reduce kernel is missing its input".to_string())?;
            let (out_view, _) = rest
                .split_first_mut()
                .ok_or_else(|| "reduce kernel is missing its output".to_string())?;
            let input = in_view
                .as_slice::<T>()
                .ok_or_else(|| "reduce input must be a buffer".to_string())?;
            let output = out_view
                .as_slice_mut::<T>()
                .ok_or_else(|| "reduce output must be a buffer".to_string())?;
            let mut acc = input[0];
            for x in &input[1..] {
                acc = f(acc, *x);
            }
            output[0] = acc;
            Ok(())
        });
        let program = Program::from_native([def]);
        program.kernel("skelcl_reduce_native").ok()
    }

    /// Apply the binary operator on the host (step 3 of the multi-GPU
    /// strategy): for source operators, the generated reduce kernel is run by
    /// the host-side interpreter over the gathered partial results.
    fn host_fold(&self, built: Option<&BuiltSource>, values: &[T]) -> Result<T> {
        debug_assert!(!values.is_empty());
        match &self.udf {
            ReduceUdf::Native(f) => {
                let mut acc = values[0];
                for v in &values[1..] {
                    acc = f(acc, *v);
                }
                Ok(acc)
            }
            ReduceUdf::Source(_) => {
                let built = built.expect("source reduce always builds its program");
                let kernel = built.host_program.kernel(kernelgen::REDUCE_KERNEL)?;
                // Bind the gathered values and a one-element output through
                // the host interpreter. Values are converted through f64,
                // which is exact for every supported scalar type.
                let mut input: Vec<f64> = values.iter().map(|v| v.to_value().as_f64()).collect();
                let mut output = vec![0.0f64; 1];
                // The generated kernel's buffers are typed with T's kernel
                // type; run a specialised binding per type.
                match T::type_name() {
                    "float" => {
                        let mut in_f: Vec<f32> = input.iter().map(|v| *v as f32).collect();
                        let mut out_f = vec![0.0f32; 1];
                        let mut args = vec![
                            skelcl_kernel::interp::ArgBinding::buffer_f32(&mut in_f),
                            skelcl_kernel::interp::ArgBinding::buffer_f32(&mut out_f),
                            skelcl_kernel::interp::ArgBinding::Scalar(Value::Int(
                                values.len() as i32
                            )),
                        ];
                        built.host_program.run_ndrange(&kernel, 1, &mut args)?;
                        return Ok(T::from_value(Value::Float(out_f[0])));
                    }
                    "int" => {
                        let mut in_i: Vec<i32> = input.iter().map(|v| *v as i32).collect();
                        let mut out_i = vec![0i32; 1];
                        let mut args = vec![
                            skelcl_kernel::interp::ArgBinding::buffer_i32(&mut in_i),
                            skelcl_kernel::interp::ArgBinding::buffer_i32(&mut out_i),
                            skelcl_kernel::interp::ArgBinding::Scalar(Value::Int(
                                values.len() as i32
                            )),
                        ];
                        built.host_program.run_ndrange(&kernel, 1, &mut args)?;
                        return Ok(T::from_value(Value::Int(out_i[0])));
                    }
                    "uint" => {
                        let mut in_u: Vec<u32> = input.iter().map(|v| *v as u32).collect();
                        let mut out_u = vec![0u32; 1];
                        let mut args = vec![
                            skelcl_kernel::interp::ArgBinding::buffer_u32(&mut in_u),
                            skelcl_kernel::interp::ArgBinding::buffer_u32(&mut out_u),
                            skelcl_kernel::interp::ArgBinding::Scalar(Value::Int(
                                values.len() as i32
                            )),
                        ];
                        built.host_program.run_ndrange(&kernel, 1, &mut args)?;
                        return Ok(T::from_value(Value::Uint(out_u[0])));
                    }
                    _ => {
                        let mut args = vec![
                            skelcl_kernel::interp::ArgBinding::buffer_f64(&mut input),
                            skelcl_kernel::interp::ArgBinding::buffer_f64(&mut output),
                            skelcl_kernel::interp::ArgBinding::Scalar(Value::Int(
                                values.len() as i32
                            )),
                        ];
                        built.host_program.run_ndrange(&kernel, 1, &mut args)?;
                    }
                }
                Ok(T::from_value(Value::Double(output[0])))
            }
        }
    }

    /// The plain three-step reduction (Section III-C). Runs under
    /// replay-based fault recovery (see the `recovery` module).
    fn execute_plain<C: Container<T>>(&self, input: &C, cfg: &LaunchConfig<'_>) -> Result<T> {
        let runtime = input.runtime();
        crate::recovery::run_recoverable(
            &runtime,
            &|| input.refresh_for_replay(),
            &|weights| input.repartition_for_recovery(weights),
            &mut || self.execute_plain_attempt(input, cfg),
        )
    }

    fn execute_plain_attempt<C: Container<T>>(
        &self,
        input: &C,
        cfg: &LaunchConfig<'_>,
    ) -> Result<T> {
        // A replicated input would be folded once per device; reduce visits
        // every element exactly once, so coerce to a disjoint layout first
        // (merging replicas through the container's combine function).
        input.ensure_disjoint()?;
        let call = PreparedCall::single(input, cfg, None)?;
        if call.prepared_args.len() != 0 {
            return Err(SkelError::UnsupportedArg(
                "the reduce skeleton's binary operator takes no additional arguments".into(),
            ));
        }

        let (kernel, built, per_element_cost) = match &self.udf {
            ReduceUdf::Source(_) => {
                let built = self.ensure_built(&call.runtime)?;
                (
                    built.kernel.clone(),
                    Some(built.clone()),
                    built.per_element_cost,
                )
            }
            ReduceUdf::Native(_) => (
                self.native_kernel()
                    .expect("native kernel construction cannot fail"),
                None,
                self.cost,
            ),
        };

        // Step 1: local reductions on every device that holds a part.
        let runtime = &call.runtime;
        let mut partial_buffers = Vec::new();
        for device in call.partition.active_devices() {
            let n = call.partition.size(device);
            let in_buffer = call.input_buffer(device)?;
            let out_buffer = runtime.context().create_buffer::<T>(device, 1)?;
            runtime.queue(device).enqueue_kernel_with_cost(
                &kernel,
                1,
                &[
                    KernelArg::Buffer(in_buffer),
                    KernelArg::Buffer(out_buffer.clone()),
                    KernelArg::Scalar(Value::Int(n as i32)),
                ],
                sequential_cost(per_element_cost, n, 4.0),
            )?;
            partial_buffers.push((device, out_buffer));
        }

        // Step 2: gather the intermediate results on the CPU, in device
        // order so that non-commutative operators stay correct.
        let mut partials = Vec::with_capacity(partial_buffers.len());
        for (device, buffer) in &partial_buffers {
            let mut one = [T::from_value(Value::Int(0)); 1];
            runtime
                .queue(*device)
                .enqueue_read_buffer(buffer, &mut one)?;
            partials.push(one[0]);
            runtime.context().release_buffer(buffer)?;
        }

        // Step 3: final reduction on the CPU.
        self.host_fold(built.as_deref(), &partials)
    }

    /// The scheduler-aware multi-stage reduction of Section V of the paper.
    ///
    /// Instead of folding each device's part down to a single value, every
    /// device produces an *intermediate result vector* of up to
    /// `cfg.chunks_per_device` partial results (one per chunk of its part).
    /// The gathered intermediates are then reduced either on the host CPU or
    /// on the device the scheduler predicts to be fastest — the paper notes
    /// that "CPUs will be faster to perform the final reduction of these
    /// vectors than GPUs which provide poor performance when reducing only
    /// few elements".
    fn execute_scheduled<C: Container<T>>(
        &self,
        input: &C,
        cfg: &LaunchConfig<'_>,
    ) -> Result<(T, ReducePlan)> {
        let runtime = input.runtime();
        crate::recovery::run_recoverable(
            &runtime,
            &|| input.refresh_for_replay(),
            &|weights| input.repartition_for_recovery(weights),
            &mut || self.execute_scheduled_attempt(input, cfg),
        )
    }

    fn execute_scheduled_attempt<C: Container<T>>(
        &self,
        input: &C,
        cfg: &LaunchConfig<'_>,
    ) -> Result<(T, ReducePlan)> {
        let scheduler = cfg.scheduler.ok_or_else(|| {
            SkelError::Internal("scheduled reduce launched without a scheduler".into())
        })?;
        let chunks_per_device = cfg.chunks_per_device.max(1);
        input.ensure_disjoint()?;
        let call = PreparedCall::single(input, cfg, None)?;
        if call.prepared_args.len() != 0 {
            return Err(SkelError::UnsupportedArg(
                "the reduce skeleton's binary operator takes no additional arguments".into(),
            ));
        }
        let runtime = &call.runtime;

        let (chunked_kernel, built, per_element_cost) = match &self.udf {
            ReduceUdf::Source(_) => {
                let built = self.ensure_built(runtime)?;
                let chunked = self.ensure_built_chunked(runtime)?;
                (chunked, Some(built.clone()), built.per_element_cost)
            }
            ReduceUdf::Native(_) => (
                self.native_chunked_kernel()
                    .expect("native kernel construction cannot fail"),
                None,
                self.cost,
            ),
        };

        // Step 1: chunked local reductions — each device leaves an
        // intermediate result vector on its own memory.
        let mut partial_buffers = Vec::new();
        for device in call.partition.active_devices() {
            let n = call.partition.size(device);
            let chunks = chunks_per_device.min(n);
            let chunk_size = n.div_ceil(chunks);
            let in_buffer = call.input_buffer(device)?;
            let out_buffer = runtime.context().create_buffer::<T>(device, chunks)?;
            runtime.queue(device).enqueue_kernel_with_cost(
                &chunked_kernel,
                chunks,
                &[
                    KernelArg::Buffer(in_buffer),
                    KernelArg::Buffer(out_buffer.clone()),
                    KernelArg::Scalar(Value::Int(n as i32)),
                    KernelArg::Scalar(Value::Int(chunk_size as i32)),
                ],
                sequential_cost(per_element_cost, chunk_size, 4.0),
            )?;
            partial_buffers.push((device, out_buffer, chunks));
        }

        // Step 2: gather the intermediate result vectors in device order (the
        // operator may be non-commutative).
        let mut partials = Vec::new();
        for (device, buffer, chunks) in &partial_buffers {
            let mut part = vec![T::from_value(Value::Int(0)); *chunks];
            runtime
                .queue(*device)
                .enqueue_read_buffer(buffer, &mut part)?;
            partials.extend_from_slice(&part);
            runtime.context().release_buffer(buffer)?;
        }

        // Step 3: let the scheduler place the final reduction.
        let (final_device, final_on_cpu) = scheduler.final_reduce_placement(
            partials.len(),
            std::mem::size_of::<T>(),
            per_element_cost,
        )?;
        let plan = ReducePlan {
            intermediate_results: partials.len(),
            final_device,
            final_on_cpu,
        };
        if final_on_cpu || partials.len() == 1 {
            return Ok((self.host_fold(built.as_deref(), &partials)?, plan));
        }

        // Final reduction on the chosen device: upload the gathered
        // intermediates and run the plain (single-work-item) reduce kernel.
        let final_kernel = match &self.udf {
            ReduceUdf::Source(_) => built
                .as_ref()
                .expect("source reduce always builds its program")
                .kernel
                .clone(),
            ReduceUdf::Native(_) => self
                .native_kernel()
                .expect("native kernel construction cannot fail"),
        };
        let queue = runtime.queue(final_device);
        let in_buffer = runtime
            .context()
            .create_buffer::<T>(final_device, partials.len())?;
        queue.enqueue_write_buffer(&in_buffer, &partials)?;
        let out_buffer = runtime.context().create_buffer::<T>(final_device, 1)?;
        queue.enqueue_kernel_with_cost(
            &final_kernel,
            1,
            &[
                KernelArg::Buffer(in_buffer.clone()),
                KernelArg::Buffer(out_buffer.clone()),
                KernelArg::Scalar(Value::Int(partials.len() as i32)),
            ],
            sequential_cost(per_element_cost, partials.len(), 4.0),
        )?;
        let mut one = [T::from_value(Value::Int(0)); 1];
        queue.enqueue_read_buffer(&out_buffer, &mut one)?;
        runtime.context().release_buffer(&in_buffer)?;
        runtime.context().release_buffer(&out_buffer)?;
        Ok((one[0], plan))
    }
}

impl<T: DeviceScalar, C: Container<T>> Skeleton<C> for Reduce<T> {
    type Output = T;

    fn name(&self) -> &'static str {
        "reduce"
    }

    fn execute(&self, input: &C, cfg: &LaunchConfig<'_>) -> Result<T> {
        if cfg.scheduler.is_some() {
            Ok(self.execute_scheduled(input, cfg)?.0)
        } else {
            self.execute_plain(input, cfg)
        }
    }
}

impl<T: DeviceScalar, C: Container<T>> Launch<'_, Reduce<T>, C> {
    /// Execute and return the reduced value (alias of [`Launch::exec`]).
    pub fn scalar(self) -> Result<T> {
        self.exec()
    }

    /// Execute and return the reduced value together with the
    /// [`ReducePlan`] describing how the reduction was scheduled. Without an
    /// attached scheduler the plan reflects the plain three-step strategy
    /// (final combination on the CPU).
    pub fn scalar_with_plan(self) -> Result<(T, ReducePlan)> {
        if self.cfg.scheduler.is_some() {
            return self.skeleton.execute_scheduled(&self.input, &self.cfg);
        }
        // The plain strategy gathers one partial per active device and
        // always finishes on the CPU.
        let value = self.skeleton.execute_plain(&self.input, &self.cfg)?;
        let actives = self.input.part_sizes().iter().filter(|&&s| s > 0).count();
        Ok((
            value,
            ReducePlan {
                intermediate_results: actives,
                final_device: 0,
                final_on_cpu: true,
            },
        ))
    }

    /// Execute and wrap the reduced value in a single-element,
    /// single-distributed vector (the paper's output shape).
    pub fn into_vector(self) -> Result<Vector<T>> {
        let input = self.input.clone();
        let value = self.exec()?;
        let runtime = input.runtime();
        let out = Vector::from_vec(&runtime, vec![value]);
        out.set_distribution(Distribution::Single(0))?;
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::init_gpus;
    use crate::skeletons::Map;

    const ADD: &str = "float func(float a, float b) { return a + b; }";

    #[test]
    fn sum_reduction_matches_sequential_for_any_device_count() {
        let data: Vec<f32> = (1..=1000).map(|i| i as f32).collect();
        let expected: f32 = data.iter().sum();
        for devices in 1..=4 {
            let rt = init_gpus(devices);
            let sum = Reduce::<f32>::from_source(ADD);
            let v = Vector::from_vec(&rt, data.clone());
            assert_eq!(v.reduce(&sum).unwrap(), expected, "devices = {devices}");
        }
    }

    #[test]
    fn scheduler_aware_reduce_matches_the_plain_result() {
        use crate::scheduler::StaticScheduler;
        let data: Vec<f32> = (1..=4096).map(|i| (i % 31) as f32).collect();
        let expected: f32 = data.iter().sum();
        for devices in [1usize, 3] {
            let rt = init_gpus(devices);
            let scheduler = StaticScheduler::analytical(&rt);
            let sum = Reduce::<f32>::from_source(ADD);
            let v = Vector::from_vec(&rt, data.clone());
            let (value, plan) = sum
                .run(&v)
                .scheduler(&scheduler)
                .chunks(8)
                .scalar_with_plan()
                .unwrap();
            assert_eq!(value, expected, "devices = {devices}");
            assert!(plan.intermediate_results >= devices);
            assert!(plan.intermediate_results <= 8 * devices);
        }
    }

    #[test]
    fn scheduler_aware_reduce_places_small_finals_on_the_cpu_device_when_present() {
        use crate::scheduler::StaticScheduler;
        use oclsim::DeviceProfile;
        let rt = crate::runtime::init_profiles(vec![
            DeviceProfile::tesla_c1060(),
            DeviceProfile::tesla_c1060(),
            DeviceProfile::xeon_e5520(),
        ]);
        let scheduler = StaticScheduler::analytical(&rt);
        let max = Reduce::<i32>::new(|a, b| a.max(b));
        let v = Vector::from_vec(&rt, (0..3000).map(|i| (i * 37) % 1009).collect());
        let (value, plan) = max
            .run(&v)
            .scheduler(&scheduler)
            .chunks(4)
            .scalar_with_plan()
            .unwrap();
        assert_eq!(value, (0..3000).map(|i| (i * 37) % 1009).max().unwrap());
        assert!(
            plan.final_on_cpu,
            "a handful of intermediate results should be finished on the CPU: {plan:?}"
        );
    }

    #[test]
    fn scheduler_aware_reduce_with_native_operator_and_single_chunk() {
        use crate::scheduler::StaticScheduler;
        let rt = init_gpus(2);
        let scheduler = StaticScheduler::analytical(&rt);
        let sum = Reduce::<i32>::new(|a, b| a + b);
        let v = Vector::from_vec(&rt, (1..=100).collect());
        // chunks_per_device = 1 degenerates to the plain three-step strategy.
        let (value, plan) = sum
            .run(&v)
            .scheduler(&scheduler)
            .chunks(1)
            .scalar_with_plan()
            .unwrap();
        assert_eq!(value, 5050);
        assert_eq!(plan.intermediate_results, 2);
    }

    #[test]
    fn plan_without_scheduler_reports_the_plain_strategy() {
        let rt = init_gpus(3);
        let sum = Reduce::<i32>::new(|a, b| a + b);
        let v = Vector::from_vec(&rt, (1..=30).collect());
        let (value, plan) = sum.run(&v).scalar_with_plan().unwrap();
        assert_eq!(value, 465);
        assert!(plan.final_on_cpu);
        assert_eq!(plan.intermediate_results, 3);
    }

    #[test]
    fn native_reduce_max() {
        let rt = init_gpus(3);
        let max = Reduce::<i32>::new(|a, b| a.max(b));
        let v = Vector::from_vec(&rt, vec![3, -1, 42, 17, 0, 41]);
        assert_eq!(v.reduce(&max).unwrap(), 42);
    }

    #[test]
    fn non_commutative_operator_preserves_order() {
        // f(a, b) = a * 2 + b is associativity-breaking in general, but the
        // point here is ordering: left-to-right folding over device
        // boundaries must equal the sequential left-to-right fold.
        let data: Vec<f32> = (1..=64).map(|i| (i % 7) as f32).collect();
        let sequential = data[1..].iter().fold(data[0], |acc, x| acc - x);
        for devices in 1..=1 {
            // Subtraction is non-associative, so only the single-device case
            // must match the sequential fold exactly.
            let rt = init_gpus(devices);
            let sub = Reduce::<f32>::new(|a, b| a - b);
            let v = Vector::from_vec(&rt, data.clone());
            assert_eq!(v.reduce(&sub).unwrap(), sequential);
        }
        // Right projection f(a, b) = b is associative and non-commutative:
        // under the required left-to-right combination order the result is
        // always the last element, independent of the device count.
        let values: Vec<f32> = (1..=23).map(|i| i as f32).collect();
        for devices in 1..=4 {
            let rt = init_gpus(devices);
            let last = Reduce::<f32>::from_source("float func(float a, float b) { return b; }");
            let v = Vector::from_vec(&rt, values.clone());
            assert_eq!(v.reduce(&last).unwrap(), 23.0, "devices = {devices}");
        }
        // First projection must symmetrically give the first element.
        for devices in 1..=4 {
            let rt = init_gpus(devices);
            let first = Reduce::<f32>::new(|a, _b| a);
            let v = Vector::from_vec(&rt, values.clone());
            assert_eq!(v.reduce(&first).unwrap(), 1.0, "devices = {devices}");
        }
    }

    #[test]
    fn reduce_output_vector_is_single_distributed() {
        let rt = init_gpus(2);
        let sum = Reduce::<f32>::from_source(ADD);
        let v = Vector::from_vec(&rt, vec![1.0f32; 10]);
        let out = sum.run(&v).into_vector().unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out.distribution(), Distribution::Single(0));
        assert_eq!(out.to_vec().unwrap(), vec![10.0]);
    }

    #[test]
    fn reduce_of_single_element_vector() {
        let rt = init_gpus(4);
        let sum = Reduce::<f32>::from_source(ADD);
        let v = Vector::from_vec(&rt, vec![7.0f32]);
        assert_eq!(v.reduce(&sum).unwrap(), 7.0);
    }

    #[test]
    fn reduce_rejects_empty_input_bad_udf_and_extra_args() {
        let rt = init_gpus(1);
        let sum = Reduce::<f32>::from_source(ADD);
        let empty = Vector::from_vec(&rt, Vec::<f32>::new());
        assert!(matches!(empty.reduce(&sum), Err(SkelError::EmptyInput)));

        let bad = Reduce::<f32>::from_source("float func(float a) { return a; }");
        let v = Vector::from_vec(&rt, vec![1.0f32, 2.0]);
        assert!(matches!(v.reduce(&bad), Err(SkelError::UdfSignature(_))));

        // The binary operator takes no additional arguments.
        assert!(matches!(
            sum.run(&v).arg(1.0f32).scalar(),
            Err(SkelError::UnsupportedArg(_))
        ));
    }

    #[test]
    fn copy_distributed_inputs_reduce_each_element_exactly_once() {
        // A replica per device must not be folded per device: the reduce
        // coerces replicated layouts to disjoint blocks first.
        for devices in 1..=4 {
            let rt = init_gpus(devices);
            let sum = Reduce::<f32>::from_source(ADD);

            let v = Vector::from_vec(&rt, vec![1.0f32; 4]);
            v.set_distribution(Distribution::Copy).unwrap();
            v.copy_data_to_devices().unwrap();
            assert_eq!(v.reduce(&sum).unwrap(), 4.0, "devices = {devices}");
            assert_eq!(v.distribution(), Distribution::Block);

            let m = crate::matrix::Matrix::filled(&rt, 2, 2, 1.0f32);
            m.set_distribution(crate::MatrixDistribution::Copy).unwrap();
            assert_eq!(m.reduce(&sum).unwrap(), 4.0, "devices = {devices}");
            assert_eq!(m.distribution(), crate::MatrixDistribution::RowBlock);

            // The scheduler-aware path applies the same coercion.
            let scheduler = crate::scheduler::StaticScheduler::analytical(&rt);
            let w = Vector::from_vec(&rt, (1..=8).map(|i| i as f32).collect());
            w.set_distribution(Distribution::Copy).unwrap();
            let (value, _) = sum
                .run(&w)
                .scheduler(&scheduler)
                .chunks(2)
                .scalar_with_plan()
                .unwrap();
            assert_eq!(value, 36.0, "devices = {devices}");
        }
    }

    #[test]
    fn reduce_over_a_matrix_folds_every_element() {
        for devices in 1..=4 {
            let rt = init_gpus(devices);
            let sum = Reduce::<f32>::from_source(ADD);
            let m = crate::matrix::Matrix::from_fn(&rt, 6, 5, |r, c| (r * 5 + c) as f32);
            assert_eq!(m.reduce(&sum).unwrap(), (0..30).sum::<i32>() as f32);
            let (value, plan) = sum.run(&m).scalar_with_plan().unwrap();
            assert_eq!(value, 435.0);
            assert!(plan.final_on_cpu);
        }
    }

    #[test]
    fn map_output_feeds_reduce_without_host_transfers() {
        // "when a map skeleton's output vector is passed as an input vector
        // to a reduce skeleton, the vector's data resides on the GPU and no
        // data transfer is performed" (paper, Section II-B).
        let rt = init_gpus(2);
        let square = Map::<f32, f32>::from_source("float func(float x) { return x * x; }");
        let sum = Reduce::<f32>::from_source(ADD);
        let v = Vector::from_vec(&rt, (1..=8).map(|i| i as f32).collect());
        let squared = v.map(&square).unwrap();
        rt.drain_events();
        let result = squared.reduce(&sum).unwrap();
        assert_eq!(result, 204.0);
        let events = rt.drain_events();
        let uploads: usize = events
            .iter()
            .flatten()
            .filter(|e| matches!(e.kind, oclsim::CommandKind::WriteBuffer))
            .count();
        assert_eq!(
            uploads, 0,
            "reduce must reuse the map's device-resident output"
        );
    }
}
