//! The zip skeleton: `zip(⊕)([x1..xn],[y1..yn]) = [x1⊕y1 .. xn⊕yn]`.
//!
//! Multi-GPU execution (paper, Section III-C): both input containers must
//! have the same distribution (and, for single distribution, live on the
//! same device); if not, SkelCL automatically changes both to block
//! distribution. The output adopts the inputs' shape and distribution.
//!
//! Like [`Map`](crate::skeletons::Map), the skeleton is container-generic:
//! one `Zip<A, B, O>` instance pairs two [`Vector`]s or two equal-shaped
//! row-block [`crate::matrix::Matrix`]es through the same [`Container`]
//! launch path and the same generated kernel.

use std::sync::Arc;

use parking_lot::Mutex;

use oclsim::{CostHint, NativeKernelDef, Pod, Program};

use crate::args::ArgAccess;
use crate::container::Container;
use crate::error::{Result, SkelError};
use crate::kernelgen;
use crate::matrix::Matrix;
use crate::runtime::SkelCl;
use crate::skeletons::{
    check_source_call, Launch, LaunchConfig, PreparedArgs, PreparedCall, Skeleton, UdfCache,
};
use crate::vector::Vector;

enum ZipUdf<A, B, O> {
    Source(String),
    Native(Arc<dyn Fn(&A, &B, &mut ArgAccess<'_, '_>) -> O + Send + Sync>),
}

struct BuiltSource {
    kernel: oclsim::Kernel,
    extra_scalars: usize,
}

/// The zip skeleton.
///
/// ```
/// use skelcl::prelude::*;
///
/// let rt = skelcl::init_gpus(2);
/// // The SAXPY computation of Listing 1 in the paper: Y <- a*X + Y, with the
/// // scalar `a` passed as an additional argument.
/// let saxpy = Zip::<f32, f32, f32>::from_source(
///     "float func(float x, float y, float a) { return a * x + y; }",
/// );
/// let x = Vector::from_vec(&rt, vec![1.0f32, 2.0, 3.0]);
/// let y = Vector::from_vec(&rt, vec![10.0f32, 10.0, 10.0]);
/// let y = saxpy.run(&x, &y).arg(2.0f32).exec().unwrap();
/// assert_eq!(y.to_vec().unwrap(), vec![12.0, 14.0, 16.0]);
/// ```
pub struct Zip<A: Pod, B: Pod, O: Pod> {
    udf: ZipUdf<A, B, O>,
    cost: CostHint,
    cache: UdfCache,
    built: Mutex<Option<Arc<BuiltSource>>>,
}

impl<A: Pod, B: Pod, O: Pod> Zip<A, B, O> {
    /// Customise the skeleton with a user-defined function given as source
    /// code. The UDF is the function named `func` (or the only function);
    /// its first two parameters receive the paired elements, further
    /// (scalar) parameters receive the additional arguments.
    pub fn from_source(source: &str) -> Zip<A, B, O> {
        Zip {
            udf: ZipUdf::Source(source.to_string()),
            cost: CostHint::DEFAULT,
            cache: UdfCache::new(),
            built: Mutex::new(None),
        }
    }

    /// Customise the skeleton with a native Rust closure.
    pub fn new<F>(f: F) -> Zip<A, B, O>
    where
        F: Fn(&A, &B, &mut ArgAccess<'_, '_>) -> O + Send + Sync + 'static,
    {
        Zip {
            udf: ZipUdf::Native(Arc::new(f)),
            cost: CostHint::DEFAULT,
            cache: UdfCache::new(),
            built: Mutex::new(None),
        }
    }

    /// Override the per-element cost hint (native UDFs).
    pub fn with_cost(mut self, cost: CostHint) -> Self {
        self.cost = cost;
        self
    }

    /// Begin a launch of this skeleton over the element pairs of `left` and
    /// `right` — two vectors or two equal-shaped matrices:
    /// `saxpy.run(&x, &y).arg(a).exec()?`.
    pub fn run<'a, CA: Container<A>>(
        &'a self,
        left: &CA,
        right: &CA::Rebound<B>,
    ) -> Launch<'a, Self, (CA, CA::Rebound<B>)> {
        Launch::new(self, (left.clone(), right.clone()))
    }

    fn scheduler_cost(&self) -> CostHint {
        match &self.udf {
            ZipUdf::Source(src) => self.cache.cost(src).unwrap_or(self.cost),
            ZipUdf::Native(_) => self.cost,
        }
    }

    /// The analysed source UDF for use in a lazy plan. Native closures have
    /// no source to fuse, so they cannot participate in plans.
    pub(crate) fn plan_udf(&self) -> Result<Arc<kernelgen::UdfInfo>> {
        match &self.udf {
            ZipUdf::Source(src) => self.cache.info(src, 2),
            ZipUdf::Native(_) => Err(SkelError::Plan(
                "zip stage uses a native Rust closure; lazy plans require source UDFs".into(),
            )),
        }
    }

    fn ensure_built(&self, runtime: &Arc<SkelCl>) -> Result<Arc<BuiltSource>> {
        let mut built = self.built.lock();
        if let Some(b) = built.as_ref() {
            return Ok(b.clone());
        }
        let ZipUdf::Source(src) = &self.udf else {
            unreachable!("ensure_built is only called for source UDFs")
        };
        let info = self.cache.info(src, 2)?;
        let kernel_src = kernelgen::zip_kernel(&info)?;
        let program = runtime.context().build_program(&kernel_src)?;
        let kernel = program.kernel(kernelgen::ZIP_KERNEL)?;
        let b = Arc::new(BuiltSource {
            kernel,
            extra_scalars: info.extra_params.len(),
        });
        *built = Some(b.clone());
        Ok(b)
    }

    fn native_kernel(&self) -> Option<oclsim::Kernel> {
        let ZipUdf::Native(f) = &self.udf else {
            return None;
        };
        let f = f.clone();
        let def = NativeKernelDef::new("skelcl_zip_native", self.cost, move |ctx| {
            let n = ctx.global_size();
            let mut views = ctx.arg_views();
            let (left_view, rest) = views
                .split_first_mut()
                .ok_or_else(|| "zip kernel is missing its left input".to_string())?;
            let (right_view, rest) = rest
                .split_first_mut()
                .ok_or_else(|| "zip kernel is missing its right input".to_string())?;
            let (out_view, rest) = rest
                .split_first_mut()
                .ok_or_else(|| "zip kernel is missing its output".to_string())?;
            let (_n_view, extra) = rest
                .split_first_mut()
                .ok_or_else(|| "zip kernel is missing its length argument".to_string())?;
            let left = left_view
                .as_slice::<A>()
                .ok_or_else(|| "zip left input must be a buffer".to_string())?;
            let right = right_view
                .as_slice::<B>()
                .ok_or_else(|| "zip right input must be a buffer".to_string())?;
            let output = out_view
                .as_slice_mut::<O>()
                .ok_or_else(|| "zip output must be a buffer".to_string())?;
            let mut access = ArgAccess::new(extra);
            for i in 0..n {
                output[i] = f(&left[i], &right[i], &mut access);
            }
            Ok(())
        });
        let program = Program::from_native([def]);
        program.kernel("skelcl_zip_native").ok()
    }

    fn resolve_kernel(
        &self,
        runtime: &Arc<SkelCl>,
        prepared: &PreparedArgs,
    ) -> Result<oclsim::Kernel> {
        match &self.udf {
            ZipUdf::Source(_) => {
                let built = self.ensure_built(runtime)?;
                check_source_call(prepared, built.extra_scalars)?;
                Ok(built.kernel.clone())
            }
            ZipUdf::Native(_) => Ok(self
                .native_kernel()
                .expect("native kernel construction cannot fail")),
        }
    }

    /// The shared execution path behind [`Skeleton::execute`] and the
    /// `run_into` terminal form, generic over the input containers. Runs
    /// under replay-based fault recovery (see the `recovery` module); a
    /// device loss re-partitions both inputs with the same weights so the
    /// pair stays distribution-unified for the replay.
    fn execute_zip<CA: Container<A>>(
        &self,
        left: &CA,
        right: &CA::Rebound<B>,
        cfg: &LaunchConfig<'_>,
        reuse: Option<&CA::Rebound<O>>,
    ) -> Result<CA::Rebound<O>> {
        let runtime = left.runtime();
        crate::recovery::run_recoverable(
            &runtime,
            &|| {
                left.refresh_for_replay()?;
                right.refresh_for_replay()
            },
            &|weights| {
                left.repartition_for_recovery(weights)?;
                right.repartition_for_recovery(weights)
            },
            &mut || {
                let scheduler_cost = cfg.scheduler.map(|_| self.scheduler_cost());
                let call = PreparedCall::pair(left, right, cfg, scheduler_cost)?;
                let kernel = self.resolve_kernel(&call.runtime, &call.prepared_args)?;
                let out_buffers = call.output_buffers::<O, CA::Rebound<O>>(reuse)?;
                call.launch_elementwise(&kernel, &out_buffers)?;
                call.finish_output(left, out_buffers, reuse)
            },
        )
    }
}

impl<A: Pod, B: Pod, O: Pod, CA: Container<A>> Skeleton<(CA, CA::Rebound<B>)> for Zip<A, B, O> {
    type Output = CA::Rebound<O>;

    fn name(&self) -> &'static str {
        "zip"
    }

    fn execute(
        &self,
        input: &(CA, CA::Rebound<B>),
        cfg: &LaunchConfig<'_>,
    ) -> Result<CA::Rebound<O>> {
        self.execute_zip(&input.0, &input.1, cfg, None)
    }
}

impl<A: Pod, B: Pod, O: Pod, CA: Container<A>> Launch<'_, Zip<A, B, O>, (CA, CA::Rebound<B>)> {
    /// Execute, writing the result into `out` and reusing `out`'s device
    /// buffers instead of allocating fresh ones.
    pub fn run_into(self, out: &CA::Rebound<O>) -> Result<()> {
        self.skeleton
            .execute_zip(&self.input.0, &self.input.1, &self.cfg, Some(out))?;
        Ok(())
    }
}

impl<A: Pod, B: Pod, O: Pod> Launch<'_, Zip<A, B, O>, (Vector<A>, Vector<B>)> {
    /// Execute and return the output vector (identity terminal form).
    pub fn into_vector(self) -> Result<Vector<O>> {
        self.exec()
    }
}

impl<A: Pod, B: Pod, O: Pod> Launch<'_, Zip<A, B, O>, (Matrix<A>, Matrix<B>)> {
    /// Execute and return the output matrix (identity terminal form).
    pub fn into_matrix(self) -> Result<Matrix<O>> {
        self.exec()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distribution::{Distribution, MatrixDistribution};
    use crate::error::SkelError;
    use crate::runtime::init_gpus;

    const SAXPY: &str = "float func(float x, float y, float a) { return a * x + y; }";

    #[test]
    fn saxpy_matches_listing_1() {
        for devices in 1..=4 {
            let rt = init_gpus(devices);
            let saxpy = Zip::<f32, f32, f32>::from_source(SAXPY);
            let n = 64;
            let x: Vec<f32> = (0..n).map(|i| i as f32).collect();
            let y: Vec<f32> = (0..n).map(|i| (i * 2) as f32).collect();
            let a = 3.0f32;
            let xv = Vector::from_vec(&rt, x.clone());
            let yv = Vector::from_vec(&rt, y.clone());
            let out = saxpy.run(&xv, &yv).arg(a).exec().unwrap();
            let expected: Vec<f32> = x.iter().zip(&y).map(|(x, y)| a * x + y).collect();
            assert_eq!(out.to_vec().unwrap(), expected, "devices = {devices}");
        }
    }

    #[test]
    fn native_zip_without_extra_args() {
        let rt = init_gpus(2);
        let add = Zip::<f32, f32, f32>::new(|a, b, _| a + b);
        let x = Vector::from_vec(&rt, vec![1.0f32, 2.0, 3.0]);
        let y = Vector::from_vec(&rt, vec![0.5f32, 0.5, 0.5]);
        let out = x.zip(&y, &add).unwrap();
        assert_eq!(out.to_vec().unwrap(), vec![1.5, 2.5, 3.5]);
    }

    #[test]
    fn zip_with_mixed_element_types() {
        let rt = init_gpus(2);
        let pick = Zip::<f32, i32, f32>::from_source(
            "float func(float x, int keep) { return keep > 0 ? x : 0.0f; }",
        );
        let x = Vector::from_vec(&rt, vec![1.0f32, 2.0, 3.0, 4.0]);
        let keep = Vector::from_vec(&rt, vec![1i32, 0, 1, 0]);
        let out = x.zip(&keep, &pick).unwrap();
        assert_eq!(out.to_vec().unwrap(), vec![1.0, 0.0, 3.0, 0.0]);
    }

    #[test]
    fn length_mismatch_is_rejected() {
        let rt = init_gpus(1);
        let add = Zip::<f32, f32, f32>::new(|a, b, _| a + b);
        let x = Vector::from_vec(&rt, vec![1.0f32, 2.0]);
        let y = Vector::from_vec(&rt, vec![1.0f32]);
        assert!(matches!(
            add.run(&x, &y).exec(),
            Err(SkelError::LengthMismatch { left: 2, right: 1 })
        ));
    }

    #[test]
    fn mismatched_distributions_are_coerced_to_block() {
        let rt = init_gpus(2);
        let add = Zip::<f32, f32, f32>::new(|a, b, _| a + b);
        let x = Vector::from_vec(&rt, vec![1.0f32; 8]);
        let y = Vector::from_vec(&rt, vec![2.0f32; 8]);
        x.set_distribution(Distribution::Single(0)).unwrap();
        y.set_distribution(Distribution::Copy).unwrap();
        let out = add.run(&x, &y).exec().unwrap();
        assert_eq!(x.distribution(), Distribution::Block);
        assert_eq!(y.distribution(), Distribution::Block);
        assert_eq!(out.distribution(), Distribution::Block);
        assert_eq!(out.to_vec().unwrap(), vec![3.0f32; 8]);
    }

    #[test]
    fn matching_single_distributions_stay_single() {
        let rt = init_gpus(2);
        let add = Zip::<f32, f32, f32>::new(|a, b, _| a + b);
        let x = Vector::from_vec(&rt, vec![1.0f32; 4]);
        let y = Vector::from_vec(&rt, vec![2.0f32; 4]);
        x.set_distribution(Distribution::Single(1)).unwrap();
        y.set_distribution(Distribution::Single(1)).unwrap();
        let out = add.run(&x, &y).exec().unwrap();
        assert_eq!(out.distribution(), Distribution::Single(1));
        assert_eq!(out.to_vec().unwrap(), vec![3.0f32; 4]);
    }

    #[test]
    fn runtime_mismatch_is_rejected() {
        let rt1 = init_gpus(1);
        let rt2 = init_gpus(1);
        let add = Zip::<f32, f32, f32>::new(|a, b, _| a + b);
        let x = Vector::from_vec(&rt1, vec![1.0f32]);
        let y = Vector::from_vec(&rt2, vec![1.0f32]);
        assert!(matches!(
            add.run(&x, &y).exec(),
            Err(SkelError::RuntimeMismatch)
        ));
    }

    #[test]
    fn update_reconstruction_image_like_listing_3() {
        // Step 2 of the OSEM algorithm: f[j] *= c[j] if c[j] > 0 — the
        // zipUpdate skeleton of Listing 3.
        let rt = init_gpus(2);
        let zip_update = Zip::<f32, f32, f32>::from_source(
            "float func(float f, float c) { if (c > 0.0f) { return f * c; } return f; }",
        );
        let f = Vector::from_vec(&rt, vec![1.0f32, 2.0, 3.0, 4.0]);
        let c = Vector::from_vec(&rt, vec![2.0f32, 0.0, 0.5, -1.0]);
        let f2 = f.zip(&c, &zip_update).unwrap();
        assert_eq!(f2.to_vec().unwrap(), vec![2.0, 2.0, 1.5, 4.0]);
    }

    #[test]
    fn zip_run_into_reuses_buffers() {
        let rt = init_gpus(2);
        let add = Zip::<f32, f32, f32>::new(|a, b, _| a + b);
        let x = Vector::from_vec(&rt, vec![1.0f32; 6]);
        let y = Vector::from_vec(&rt, vec![2.0f32; 6]);
        let out = Vector::from_vec(&rt, vec![0.0f32; 6]);
        out.copy_data_to_devices().unwrap();
        add.run(&x, &y).run_into(&out).unwrap();
        assert_eq!(out.to_vec().unwrap(), vec![3.0f32; 6]);
    }

    #[test]
    fn zip_over_matrices_matches_the_vector_zip() {
        for devices in 1..=4 {
            let rt = init_gpus(devices);
            let saxpy = Zip::<f32, f32, f32>::from_source(SAXPY);
            let x: Vec<f32> = (0..15).map(|i| i as f32 * 0.5).collect();
            let y: Vec<f32> = (0..15).map(|i| (i * 3) as f32).collect();
            let mx = Matrix::from_vec(&rt, 5, 3, x.clone()).unwrap();
            let my = Matrix::from_vec(&rt, 5, 3, y.clone()).unwrap();
            let vx = Vector::from_vec(&rt, x);
            let vy = Vector::from_vec(&rt, y);
            let mo = saxpy.run(&mx, &my).arg(2.0f32).exec().unwrap();
            let vo = saxpy.run(&vx, &vy).arg(2.0f32).exec().unwrap();
            assert_eq!(
                mo.to_vec().unwrap(),
                vo.to_vec().unwrap(),
                "devices = {devices}"
            );
            assert_eq!(mo.rows(), 5);
            assert_eq!(mo.cols(), 3);
        }
    }

    #[test]
    fn zip_rejects_matrices_of_different_shapes() {
        let rt = init_gpus(2);
        let add = Zip::<f32, f32, f32>::new(|a, b, _| a + b);
        // Same element count, different shapes: must be rejected.
        let a = Matrix::filled(&rt, 2, 3, 1.0f32);
        let b = Matrix::filled(&rt, 3, 2, 1.0f32);
        assert!(matches!(
            add.run(&a, &b).exec(),
            Err(SkelError::Distribution(_))
        ));
    }

    #[test]
    fn zip_unifies_matrix_distributions_to_row_block() {
        let rt = init_gpus(2);
        let add = Zip::<f32, f32, f32>::new(|a, b, _| a + b);
        let a = Matrix::filled(&rt, 4, 2, 1.0f32);
        let b = Matrix::filled(&rt, 4, 2, 2.0f32);
        a.set_distribution(MatrixDistribution::Single(0)).unwrap();
        b.set_distribution(MatrixDistribution::Copy).unwrap();
        let out = add.run(&a, &b).exec().unwrap();
        assert_eq!(a.distribution(), MatrixDistribution::RowBlock);
        assert_eq!(b.distribution(), MatrixDistribution::RowBlock);
        assert_eq!(out.to_vec().unwrap(), vec![3.0f32; 8]);
    }
}
