//! The zip skeleton: `zip(⊕)([x1..xn],[y1..yn]) = [x1⊕y1 .. xn⊕yn]`.
//!
//! Multi-GPU execution (paper, Section III-C): both input vectors must have
//! the same distribution (and, for single distribution, live on the same
//! device); if not, SkelCL automatically changes both to block distribution.
//! The output adopts the inputs' distribution.

use std::sync::Arc;

use parking_lot::Mutex;

use oclsim::{CostHint, KernelArg, NativeKernelDef, Pod, Program, Value};

use crate::args::{ArgAccess, Args};
use crate::distribution::Distribution;
use crate::error::{Result, SkelError};
use crate::kernelgen::{self, UdfInfo};
use crate::skeletons::{alloc_output, PreparedArgs};
use crate::vector::Vector;

enum ZipUdf<A, B, O> {
    Source(String),
    Native(Arc<dyn Fn(&A, &B, &mut ArgAccess<'_, '_>) -> O + Send + Sync>),
}

struct BuiltSource {
    kernel: oclsim::Kernel,
    extra_scalars: usize,
}

/// The zip skeleton.
///
/// ```
/// use skelcl::prelude::*;
///
/// let rt = skelcl::init_gpus(2);
/// // The SAXPY computation of Listing 1 in the paper: Y <- a*X + Y, with the
/// // scalar `a` passed as an additional argument.
/// let saxpy = Zip::<f32, f32, f32>::from_source(
///     "float func(float x, float y, float a) { return a * x + y; }",
/// );
/// let x = Vector::from_vec(&rt, vec![1.0f32, 2.0, 3.0]);
/// let y = Vector::from_vec(&rt, vec![10.0f32, 10.0, 10.0]);
/// let y = saxpy.call(&x, &y, &Args::new().with_f32(2.0)).unwrap();
/// assert_eq!(y.to_vec().unwrap(), vec![12.0, 14.0, 16.0]);
/// ```
pub struct Zip<A: Pod, B: Pod, O: Pod> {
    udf: ZipUdf<A, B, O>,
    cost: CostHint,
    built: Mutex<Option<Arc<BuiltSource>>>,
}

impl<A: Pod, B: Pod, O: Pod> Zip<A, B, O> {
    /// Customise the skeleton with a user-defined function given as source
    /// code. The last function in the string is the UDF; its first two
    /// parameters receive the paired elements, further (scalar) parameters
    /// receive the additional arguments.
    pub fn from_source(source: &str) -> Zip<A, B, O> {
        Zip {
            udf: ZipUdf::Source(source.to_string()),
            cost: CostHint::DEFAULT,
            built: Mutex::new(None),
        }
    }

    /// Customise the skeleton with a native Rust closure.
    pub fn new<F>(f: F) -> Zip<A, B, O>
    where
        F: Fn(&A, &B, &mut ArgAccess<'_, '_>) -> O + Send + Sync + 'static,
    {
        Zip {
            udf: ZipUdf::Native(Arc::new(f)),
            cost: CostHint::DEFAULT,
            built: Mutex::new(None),
        }
    }

    /// Override the per-element cost hint (native UDFs).
    pub fn with_cost(mut self, cost: CostHint) -> Self {
        self.cost = cost;
        self
    }

    fn ensure_built(&self, runtime: &Arc<crate::runtime::SkelCl>) -> Result<Arc<BuiltSource>> {
        let mut built = self.built.lock();
        if let Some(b) = built.as_ref() {
            return Ok(b.clone());
        }
        let ZipUdf::Source(src) = &self.udf else {
            unreachable!("ensure_built is only called for source UDFs")
        };
        let info = UdfInfo::analyze(src, 2)?;
        let kernel_src = kernelgen::zip_kernel(&info)?;
        let program = runtime.context().build_program(&kernel_src)?;
        let kernel = program.kernel(kernelgen::ZIP_KERNEL)?;
        let b = Arc::new(BuiltSource {
            kernel,
            extra_scalars: info.extra_params.len(),
        });
        *built = Some(b.clone());
        Ok(b)
    }

    fn native_kernel(&self) -> Option<oclsim::Kernel> {
        let ZipUdf::Native(f) = &self.udf else {
            return None;
        };
        let f = f.clone();
        let def = NativeKernelDef::new("skelcl_zip_native", self.cost, move |ctx| {
            let n = ctx.global_size();
            let mut views = ctx.arg_views();
            let (left_view, rest) = views
                .split_first_mut()
                .ok_or_else(|| "zip kernel is missing its left input".to_string())?;
            let (right_view, rest) = rest
                .split_first_mut()
                .ok_or_else(|| "zip kernel is missing its right input".to_string())?;
            let (out_view, rest) = rest
                .split_first_mut()
                .ok_or_else(|| "zip kernel is missing its output".to_string())?;
            let (_n_view, extra) = rest
                .split_first_mut()
                .ok_or_else(|| "zip kernel is missing its length argument".to_string())?;
            let left = left_view
                .as_slice::<A>()
                .ok_or_else(|| "zip left input must be a buffer".to_string())?;
            let right = right_view
                .as_slice::<B>()
                .ok_or_else(|| "zip right input must be a buffer".to_string())?;
            let output = out_view
                .as_slice_mut::<O>()
                .ok_or_else(|| "zip output must be a buffer".to_string())?;
            let mut access = ArgAccess::new(extra);
            for i in 0..n {
                output[i] = f(&left[i], &right[i], &mut access);
            }
            Ok(())
        });
        let program = Program::from_native([def]);
        program.kernel("skelcl_zip_native").ok()
    }

    /// Coerce the two inputs to a common distribution as the paper specifies:
    /// if the distributions differ, or both are single but on different
    /// devices, both vectors are switched to block distribution.
    fn unify_distributions(left: &Vector<A>, right: &Vector<B>) -> Result<Distribution> {
        let dl = left.distribution();
        let dr = right.distribution();
        if dl == dr {
            return Ok(dl);
        }
        left.set_distribution(Distribution::Block)?;
        right.set_distribution(Distribution::Block)?;
        Ok(Distribution::Block)
    }

    /// Execute the skeleton: pair the elements of `left` and `right` and
    /// apply the user function, with `args` as additional arguments.
    pub fn call(&self, left: &Vector<A>, right: &Vector<B>, args: &Args) -> Result<Vector<O>> {
        let runtime = left.runtime();
        right.check_runtime(&runtime)?;
        runtime.charge_skeleton_call();
        if left.is_empty() || right.is_empty() {
            return Err(SkelError::EmptyInput);
        }
        if left.len() != right.len() {
            return Err(SkelError::LengthMismatch {
                left: left.len(),
                right: right.len(),
            });
        }
        let distribution = Self::unify_distributions(left, right)?;
        let (partition, left_buffers) = left.prepare_on_devices()?;
        let (_, right_buffers) = right.prepare_on_devices()?;
        let prepared = PreparedArgs::prepare(&runtime, args)?;
        let out_buffers = alloc_output::<O>(&runtime, &partition)?;

        let kernel = match &self.udf {
            ZipUdf::Source(_) => {
                if prepared.has_vectors() {
                    return Err(SkelError::UnsupportedArg(
                        "vector additional arguments require a native (closure) user function"
                            .into(),
                    ));
                }
                let built = self.ensure_built(&runtime)?;
                if prepared.len() != built.extra_scalars {
                    return Err(SkelError::UdfSignature(format!(
                        "the user function expects {} additional argument(s), the call provides {}",
                        built.extra_scalars,
                        prepared.len()
                    )));
                }
                built.kernel.clone()
            }
            ZipUdf::Native(_) => self
                .native_kernel()
                .expect("native kernel construction cannot fail"),
        };

        for device in partition.active_devices() {
            let n = partition.size(device);
            let lb = left_buffers[device].clone().ok_or_else(|| {
                SkelError::Distribution(format!("left input has no buffer on device {device}"))
            })?;
            let rb = right_buffers[device].clone().ok_or_else(|| {
                SkelError::Distribution(format!("right input has no buffer on device {device}"))
            })?;
            let ob = out_buffers[device].clone().expect("allocated above");
            let mut kargs = vec![
                KernelArg::Buffer(lb),
                KernelArg::Buffer(rb),
                KernelArg::Buffer(ob),
                KernelArg::Scalar(Value::Int(n as i32)),
            ];
            kargs.extend(prepared.kernel_args_for(device)?);
            runtime.queue(device).enqueue_kernel(&kernel, n, &kargs)?;
        }

        Ok(Vector::device_resident(
            &runtime,
            left.len(),
            distribution,
            out_buffers,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::init_gpus;

    const SAXPY: &str = "float func(float x, float y, float a) { return a * x + y; }";

    #[test]
    fn saxpy_matches_listing_1() {
        for devices in 1..=4 {
            let rt = init_gpus(devices);
            let saxpy = Zip::<f32, f32, f32>::from_source(SAXPY);
            let n = 64;
            let x: Vec<f32> = (0..n).map(|i| i as f32).collect();
            let y: Vec<f32> = (0..n).map(|i| (i * 2) as f32).collect();
            let a = 3.0f32;
            let xv = Vector::from_vec(&rt, x.clone());
            let yv = Vector::from_vec(&rt, y.clone());
            let out = saxpy.call(&xv, &yv, &Args::new().with_f32(a)).unwrap();
            let expected: Vec<f32> = x.iter().zip(&y).map(|(x, y)| a * x + y).collect();
            assert_eq!(out.to_vec().unwrap(), expected, "devices = {devices}");
        }
    }

    #[test]
    fn native_zip_without_extra_args() {
        let rt = init_gpus(2);
        let add = Zip::<f32, f32, f32>::new(|a, b, _| a + b);
        let x = Vector::from_vec(&rt, vec![1.0f32, 2.0, 3.0]);
        let y = Vector::from_vec(&rt, vec![0.5f32, 0.5, 0.5]);
        let out = add.call(&x, &y, &Args::none()).unwrap();
        assert_eq!(out.to_vec().unwrap(), vec![1.5, 2.5, 3.5]);
    }

    #[test]
    fn zip_with_mixed_element_types() {
        let rt = init_gpus(2);
        let pick = Zip::<f32, i32, f32>::from_source(
            "float func(float x, int keep) { return keep > 0 ? x : 0.0f; }",
        );
        let x = Vector::from_vec(&rt, vec![1.0f32, 2.0, 3.0, 4.0]);
        let keep = Vector::from_vec(&rt, vec![1i32, 0, 1, 0]);
        let out = pick.call(&x, &keep, &Args::none()).unwrap();
        assert_eq!(out.to_vec().unwrap(), vec![1.0, 0.0, 3.0, 0.0]);
    }

    #[test]
    fn length_mismatch_is_rejected() {
        let rt = init_gpus(1);
        let add = Zip::<f32, f32, f32>::new(|a, b, _| a + b);
        let x = Vector::from_vec(&rt, vec![1.0f32, 2.0]);
        let y = Vector::from_vec(&rt, vec![1.0f32]);
        assert!(matches!(
            add.call(&x, &y, &Args::none()),
            Err(SkelError::LengthMismatch { left: 2, right: 1 })
        ));
    }

    #[test]
    fn mismatched_distributions_are_coerced_to_block() {
        let rt = init_gpus(2);
        let add = Zip::<f32, f32, f32>::new(|a, b, _| a + b);
        let x = Vector::from_vec(&rt, vec![1.0f32; 8]);
        let y = Vector::from_vec(&rt, vec![2.0f32; 8]);
        x.set_distribution(Distribution::Single(0)).unwrap();
        y.set_distribution(Distribution::Copy).unwrap();
        let out = add.call(&x, &y, &Args::none()).unwrap();
        assert_eq!(x.distribution(), Distribution::Block);
        assert_eq!(y.distribution(), Distribution::Block);
        assert_eq!(out.distribution(), Distribution::Block);
        assert_eq!(out.to_vec().unwrap(), vec![3.0f32; 8]);
    }

    #[test]
    fn matching_single_distributions_stay_single() {
        let rt = init_gpus(2);
        let add = Zip::<f32, f32, f32>::new(|a, b, _| a + b);
        let x = Vector::from_vec(&rt, vec![1.0f32; 4]);
        let y = Vector::from_vec(&rt, vec![2.0f32; 4]);
        x.set_distribution(Distribution::Single(1)).unwrap();
        y.set_distribution(Distribution::Single(1)).unwrap();
        let out = add.call(&x, &y, &Args::none()).unwrap();
        assert_eq!(out.distribution(), Distribution::Single(1));
        assert_eq!(out.to_vec().unwrap(), vec![3.0f32; 4]);
    }

    #[test]
    fn runtime_mismatch_is_rejected() {
        let rt1 = init_gpus(1);
        let rt2 = init_gpus(1);
        let add = Zip::<f32, f32, f32>::new(|a, b, _| a + b);
        let x = Vector::from_vec(&rt1, vec![1.0f32]);
        let y = Vector::from_vec(&rt2, vec![1.0f32]);
        assert!(matches!(
            add.call(&x, &y, &Args::none()),
            Err(SkelError::RuntimeMismatch)
        ));
    }

    #[test]
    fn update_reconstruction_image_like_listing_3() {
        // Step 2 of the OSEM algorithm: f[j] *= c[j] if c[j] > 0 — the
        // zipUpdate skeleton of Listing 3.
        let rt = init_gpus(2);
        let zip_update = Zip::<f32, f32, f32>::from_source(
            "float func(float f, float c) { if (c > 0.0f) { return f * c; } return f; }",
        );
        let f = Vector::from_vec(&rt, vec![1.0f32, 2.0, 3.0, 4.0]);
        let c = Vector::from_vec(&rt, vec![2.0f32, 0.0, 0.5, -1.0]);
        let f2 = zip_update.call(&f, &c, &Args::none()).unwrap();
        assert_eq!(f2.to_vec().unwrap(), vec![2.0, 2.0, 1.5, 4.0]);
    }
}
