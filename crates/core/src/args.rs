//! Additional arguments for skeletons (paper, Section II-A).
//!
//! "The novelty of SkelCL skeletons is that they can accept additional
//! arguments which are passed to the skeleton's user-defined function."
//!
//! An [`Args`] value collects the additional arguments of one skeleton call:
//! scalars and whole SkelCL vectors. Scalars are appended to the generated
//! kernel's parameter list (source-string UDFs) or made available through
//! [`ArgAccess`] (native closure UDFs). Vector arguments are passed as device
//! buffers according to *their own* distribution — the paper notes that no
//! meaningful default distribution exists for them, so the user must set it
//! explicitly.
//!
//! Arguments are built through the open [`IntoArg`] trait, so any
//! [`DeviceScalar`](crate::skeletons::DeviceScalar) scalar and any
//! `Vector<T: Pod>` (including `Vector<f64>` and application element types
//! such as the OSEM `Event`) can be appended with one uniform method:
//!
//! ```
//! use skelcl::prelude::*;
//!
//! let rt = skelcl::init_gpus(1);
//! let img = Vector::from_vec(&rt, vec![1.0f32; 8]);
//! let args = Args::new().arg(2.5f32).arg(&img).arg(7i32);
//! assert_eq!(args.scalar_count(), 2);
//! assert_eq!(args.vector_count(), 1);
//!
//! // Or equivalently with the `args![]` macro:
//! let args = skelcl::args![2.5f32, &img, 7i32];
//! assert_eq!(args.len(), 3);
//! ```

use std::sync::Arc;

use oclsim::{ArgView, Buffer, Pod, Value};

use crate::error::Result;
use crate::runtime::SkelCl;
use crate::vector::Vector;

/// Internal interface of a type-erased vector argument: everything a
/// skeleton launch needs without knowing the element type.
pub(crate) trait DynVectorArg: Send + Sync {
    /// Check the vector belongs to `runtime`.
    fn check_runtime(&self, runtime: &Arc<SkelCl>) -> Result<()>;
    /// Ensure the vector is resident on the devices and return its
    /// per-device buffers.
    fn prepare_buffers(&self) -> Result<Vec<Option<Buffer>>>;
    /// Element count (for diagnostics).
    fn len(&self) -> usize;
    /// Element type name (for diagnostics).
    fn elem_type(&self) -> &'static str;
}

impl<T: Pod> DynVectorArg for Vector<T> {
    fn check_runtime(&self, runtime: &Arc<SkelCl>) -> Result<()> {
        Vector::check_runtime(self, runtime)
    }

    fn prepare_buffers(&self) -> Result<Vec<Option<Buffer>>> {
        let (_, buffers) = self.prepare_on_devices()?;
        Ok(buffers)
    }

    fn len(&self) -> usize {
        Vector::len(self)
    }

    fn elem_type(&self) -> &'static str {
        std::any::type_name::<T>()
    }
}

/// A type-erased vector additional argument. Holds a cheap handle to the
/// underlying [`Vector`]; the element type is erased so [`Args`] can carry
/// vectors of any `Pod` element — `f32`, `f64`, `i32`, `u32` or application
/// structs.
#[derive(Clone)]
pub struct VectorArg {
    inner: Arc<dyn DynVectorArg>,
}

impl VectorArg {
    /// Wrap a vector handle.
    pub fn new<T: Pod>(vector: Vector<T>) -> VectorArg {
        VectorArg {
            inner: Arc::new(vector),
        }
    }

    pub(crate) fn check_runtime(&self, runtime: &Arc<SkelCl>) -> Result<()> {
        self.inner.check_runtime(runtime)
    }

    pub(crate) fn prepare_buffers(&self) -> Result<Vec<Option<Buffer>>> {
        self.inner.prepare_buffers()
    }
}

impl std::fmt::Debug for VectorArg {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("VectorArg")
            .field("elem", &self.inner.elem_type())
            .field("len", &self.inner.len())
            .finish()
    }
}

/// One additional argument of a skeleton call: a scalar kernel value or a
/// type-erased vector.
#[derive(Debug, Clone)]
pub enum ArgItem {
    /// A scalar forwarded to the user function.
    Scalar(Value),
    /// A whole SkelCL vector, passed as per-device buffers according to its
    /// own distribution.
    Vector(VectorArg),
}

impl ArgItem {
    /// Whether the argument is a scalar.
    pub fn is_scalar(&self) -> bool {
        matches!(self, ArgItem::Scalar(_))
    }

    /// The scalar value, if the argument is a scalar.
    pub fn scalar_value(&self) -> Option<Value> {
        match self {
            ArgItem::Scalar(v) => Some(*v),
            ArgItem::Vector(_) => None,
        }
    }
}

/// Conversion into one additional argument. Implemented for every
/// [`DeviceScalar`](crate::skeletons::DeviceScalar) scalar type and for
/// vectors (by reference or by handle) of any `Pod` element type — this is
/// the open-ended replacement for the former closed `with_f32` /
/// `with_vec_f32` method family, and is what makes `Vector<f64>` additional
/// arguments possible.
pub trait IntoArg {
    /// Convert `self` into an [`ArgItem`].
    fn into_arg(self) -> ArgItem;
}

impl IntoArg for f32 {
    fn into_arg(self) -> ArgItem {
        ArgItem::Scalar(Value::Float(self))
    }
}

impl IntoArg for f64 {
    fn into_arg(self) -> ArgItem {
        ArgItem::Scalar(Value::Double(self))
    }
}

impl IntoArg for i32 {
    fn into_arg(self) -> ArgItem {
        ArgItem::Scalar(Value::Int(self))
    }
}

impl IntoArg for u32 {
    fn into_arg(self) -> ArgItem {
        ArgItem::Scalar(Value::Uint(self))
    }
}

impl IntoArg for Value {
    fn into_arg(self) -> ArgItem {
        ArgItem::Scalar(self)
    }
}

impl<T: Pod> IntoArg for Vector<T> {
    fn into_arg(self) -> ArgItem {
        ArgItem::Vector(VectorArg::new(self))
    }
}

impl<T: Pod> IntoArg for &Vector<T> {
    fn into_arg(self) -> ArgItem {
        ArgItem::Vector(VectorArg::new(self.clone()))
    }
}

impl IntoArg for ArgItem {
    fn into_arg(self) -> ArgItem {
        self
    }
}

/// Build an [`Args`] list from a comma-separated sequence of values
/// implementing [`IntoArg`]:
///
/// ```
/// use skelcl::prelude::*;
///
/// let rt = skelcl::init_gpus(1);
/// let lut = Vector::from_vec(&rt, vec![1i32, 2, 3]);
/// let args = skelcl::args![2.5f32, 4u32, &lut, 1.5f64];
/// assert_eq!(args.len(), 4);
/// assert_eq!(args.vector_count(), 1);
/// ```
#[macro_export]
macro_rules! args {
    () => { $crate::args::Args::new() };
    ($($value:expr),+ $(,)?) => {
        $crate::args::Args::new()$(.arg($value))+
    };
}

/// The additional arguments of one skeleton call, in user-specified order.
#[derive(Debug, Clone, Default)]
pub struct Args {
    items: Vec<ArgItem>,
}

impl Args {
    /// No additional arguments.
    pub fn none() -> Args {
        Args::default()
    }

    /// Start building an argument list.
    pub fn new() -> Args {
        Args::default()
    }

    /// Append any value implementing [`IntoArg`]: a scalar of any
    /// [`DeviceScalar`](crate::skeletons::DeviceScalar) type or a vector of
    /// any `Pod` element type.
    pub fn arg(mut self, value: impl IntoArg) -> Args {
        self.items.push(value.into_arg());
        self
    }

    /// Append an already-resolved argument item (used by the lazy plan
    /// subsystem to merge per-stage argument lists in stage order).
    pub(crate) fn push_item(&mut self, item: ArgItem) {
        self.items.push(item);
    }

    /// The arguments in order.
    pub fn items(&self) -> &[ArgItem] {
        &self.items
    }

    /// Number of additional arguments.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether there are no additional arguments.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Number of scalar arguments.
    pub fn scalar_count(&self) -> usize {
        self.items.iter().filter(|i| i.is_scalar()).count()
    }

    /// Number of vector arguments.
    pub fn vector_count(&self) -> usize {
        self.items.len() - self.scalar_count()
    }
}

/// Access to the additional arguments from inside a *native* user-defined
/// function. The accessor indices follow the order in which the arguments
/// were added to [`Args`].
///
/// Accessors panic with a descriptive message on index or type mismatches;
/// these are programming errors of the skeleton user, equivalent to an OpenCL
/// kernel reading the wrong argument slot.
pub struct ArgAccess<'v, 'a> {
    views: &'v mut [ArgView<'a>],
}

impl<'v, 'a> ArgAccess<'v, 'a> {
    /// Wrap the extra-argument views of a native kernel launch.
    pub(crate) fn new(views: &'v mut [ArgView<'a>]) -> Self {
        ArgAccess { views }
    }

    /// Number of additional arguments.
    pub fn len(&self) -> usize {
        self.views.len()
    }

    /// Whether there are no additional arguments.
    pub fn is_empty(&self) -> bool {
        self.views.is_empty()
    }

    fn view(&self, index: usize) -> &ArgView<'a> {
        self.views
            .get(index)
            .unwrap_or_else(|| panic!("additional argument index {index} out of range"))
    }

    fn scalar(&self, index: usize) -> Value {
        self.view(index)
            .scalar()
            .unwrap_or_else(|| panic!("additional argument {index} is a vector, not a scalar"))
    }

    /// The scalar at `index` as `f32`.
    pub fn f32(&self, index: usize) -> f32 {
        self.scalar(index).as_f64() as f32
    }

    /// The scalar at `index` as `f64`.
    pub fn f64(&self, index: usize) -> f64 {
        self.scalar(index).as_f64()
    }

    /// The scalar at `index` as `i32`.
    pub fn i32(&self, index: usize) -> i32 {
        self.scalar(index).as_i64() as i32
    }

    /// The scalar at `index` as `u32`.
    pub fn u32(&self, index: usize) -> u32 {
        self.scalar(index).as_i64() as u32
    }

    /// The scalar at `index` as `usize` (panics if negative).
    pub fn usize(&self, index: usize) -> usize {
        let v = self.scalar(index).as_i64();
        usize::try_from(v)
            .unwrap_or_else(|_| panic!("additional argument {index} is negative ({v})"))
    }

    fn slice<T: Pod>(&self, index: usize, type_name: &str) -> &[T] {
        self.view(index)
            .as_slice::<T>()
            .unwrap_or_else(|| panic!("additional argument {index} is not an {type_name} vector"))
    }

    fn slice_mut<T: Pod>(&mut self, index: usize, type_name: &str) -> &mut [T] {
        self.views
            .get_mut(index)
            .unwrap_or_else(|| panic!("additional argument index {index} out of range"))
            .as_slice_mut::<T>()
            .unwrap_or_else(|| panic!("additional argument {index} is not an {type_name} vector"))
    }

    /// The vector argument at `index` as an immutable `f32` slice (this
    /// device's local copy or part, depending on the vector's distribution).
    pub fn slice_f32(&self, index: usize) -> &[f32] {
        self.slice(index, "f32")
    }

    /// The vector argument at `index` as an immutable `f64` slice.
    pub fn slice_f64(&self, index: usize) -> &[f64] {
        self.slice(index, "f64")
    }

    /// The vector argument at `index` as an immutable `i32` slice.
    pub fn slice_i32(&self, index: usize) -> &[i32] {
        self.slice(index, "i32")
    }

    /// The vector argument at `index` as an immutable `u32` slice.
    pub fn slice_u32(&self, index: usize) -> &[u32] {
        self.slice(index, "u32")
    }

    /// The vector argument at `index` as an immutable slice of an arbitrary
    /// `Pod` element type (e.g. an application struct).
    pub fn slice_of<T: Pod>(&self, index: usize) -> &[T] {
        self.slice(index, std::any::type_name::<T>())
    }

    /// The vector argument at `index` as a mutable `f32` slice. Writes go to
    /// this device's copy only; call
    /// [`Vector::mark_device_modified`](crate::vector::Vector::mark_device_modified)
    /// afterwards so the host copy is refreshed before the next CPU access
    /// (Listing 3, line 10 of the paper).
    pub fn slice_mut_f32(&mut self, index: usize) -> &mut [f32] {
        self.slice_mut(index, "f32")
    }

    /// The vector argument at `index` as a mutable `f64` slice.
    pub fn slice_mut_f64(&mut self, index: usize) -> &mut [f64] {
        self.slice_mut(index, "f64")
    }

    /// The vector argument at `index` as a mutable `i32` slice.
    pub fn slice_mut_i32(&mut self, index: usize) -> &mut [i32] {
        self.slice_mut(index, "i32")
    }

    /// The vector argument at `index` as a mutable `u32` slice.
    pub fn slice_mut_u32(&mut self, index: usize) -> &mut [u32] {
        self.slice_mut(index, "u32")
    }

    /// The vector argument at `index` as a mutable slice of an arbitrary
    /// `Pod` element type.
    pub fn slice_mut_of<T: Pod>(&mut self, index: usize) -> &mut [T] {
        self.slice_mut(index, std::any::type_name::<T>())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::init_gpus;

    #[test]
    fn arg_builder_collects_items_in_order() {
        let args = Args::new().arg(1.5f32).arg(7i32).arg(3u32).arg(2.25f64);
        assert_eq!(args.len(), 4);
        assert_eq!(args.scalar_count(), 4);
        assert_eq!(args.vector_count(), 0);
        assert!(matches!(args.items()[0], ArgItem::Scalar(Value::Float(v)) if v == 1.5));
        assert!(matches!(args.items()[1], ArgItem::Scalar(Value::Int(7))));
        assert!(matches!(args.items()[2], ArgItem::Scalar(Value::Uint(3))));
        assert!(matches!(args.items()[3], ArgItem::Scalar(Value::Double(v)) if v == 2.25));
        assert!(Args::none().is_empty());
    }

    #[test]
    fn into_arg_accepts_every_vector_element_type() {
        let rt = init_gpus(1);
        let args = Args::new()
            .arg(Vector::from_vec(&rt, vec![1.0f32]))
            .arg(Vector::from_vec(&rt, vec![1.0f64]))
            .arg(Vector::from_vec(&rt, vec![1i32]))
            .arg(Vector::from_vec(&rt, vec![1u32]))
            .arg(Vector::from_vec(&rt, vec![2.0f64])); // by value too
        assert_eq!(args.vector_count(), 5);
        assert_eq!(args.scalar_count(), 0);
        // The f64 vector is representable — the former ArgItem enum had no
        // VecF64 variant at all.
        assert!(matches!(&args.items()[1], ArgItem::Vector(_)));
    }

    #[test]
    fn args_macro_mixes_scalars_and_vectors() {
        let rt = init_gpus(1);
        let lut = Vector::from_vec(&rt, vec![5i32; 4]);
        let args = crate::args![2.5f32, &lut, 7u32];
        assert_eq!(args.len(), 3);
        assert_eq!(args.scalar_count(), 2);
        assert_eq!(args.vector_count(), 1);
        assert!(crate::args![].is_empty());
    }

    #[test]
    fn scalar_values_convert() {
        assert_eq!(2.0f32.into_arg().scalar_value(), Some(Value::Float(2.0)));
        assert_eq!((-3i32).into_arg().scalar_value(), Some(Value::Int(-3)));
        assert!(0.0f32.into_arg().is_scalar());
        let rt = init_gpus(1);
        let v = Vector::from_vec(&rt, vec![1u32]);
        let item = (&v).into_arg();
        assert!(!item.is_scalar());
        assert_eq!(item.scalar_value(), None);
        let dbg = format!("{item:?}");
        assert!(dbg.contains("u32"), "{dbg}");
    }

    #[test]
    fn arg_access_scalars() {
        let mut views = vec![
            ArgView::Scalar(Value::Float(2.5)),
            ArgView::Scalar(Value::Int(9)),
            ArgView::Scalar(Value::Double(1.25)),
            ArgView::Scalar(Value::Uint(4)),
        ];
        let access = ArgAccess::new(&mut views);
        assert_eq!(access.len(), 4);
        assert_eq!(access.f32(0), 2.5);
        assert_eq!(access.i32(1), 9);
        assert_eq!(access.usize(1), 9);
        assert_eq!(access.f64(2), 1.25);
        assert_eq!(access.u32(3), 4);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn arg_access_out_of_range_panics() {
        let mut views: Vec<ArgView<'_>> = vec![];
        let access = ArgAccess::new(&mut views);
        access.f32(0);
    }

    #[test]
    #[should_panic(expected = "is a vector, not a scalar")]
    fn arg_access_type_mismatch_panics() {
        let mut data = oclsim::BufferData::new(8);
        let mut views = vec![ArgView::Buffer(&mut data)];
        let access = ArgAccess::new(&mut views);
        access.f32(0);
    }

    #[test]
    fn arg_access_slices() {
        let mut data = oclsim::BufferData::new(12);
        data.as_slice_mut::<f32>().copy_from_slice(&[1.0, 2.0, 3.0]);
        let mut views = vec![ArgView::Buffer(&mut data), ArgView::Scalar(Value::Int(3))];
        let mut access = ArgAccess::new(&mut views);
        assert_eq!(access.slice_f32(0), &[1.0, 2.0, 3.0]);
        access.slice_mut_f32(0)[1] = 20.0;
        assert_eq!(access.slice_f32(0), &[1.0, 20.0, 3.0]);
    }

    #[test]
    fn arg_access_f64_slices() {
        let mut data = oclsim::BufferData::new(16);
        data.as_slice_mut::<f64>().copy_from_slice(&[1.5, -2.5]);
        let mut views = vec![ArgView::Buffer(&mut data)];
        let mut access = ArgAccess::new(&mut views);
        assert_eq!(access.slice_f64(0), &[1.5, -2.5]);
        access.slice_mut_f64(0)[0] = 9.0;
        assert_eq!(access.slice_of::<f64>(0), &[9.0, -2.5]);
    }
}
