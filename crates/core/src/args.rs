//! Additional arguments for skeletons (paper, Section II-A).
//!
//! "The novelty of SkelCL skeletons is that they can accept additional
//! arguments which are passed to the skeleton's user-defined function."
//!
//! An [`Args`] value collects the additional arguments of one skeleton call:
//! scalars and whole SkelCL vectors. Scalars are appended to the generated
//! kernel's parameter list (source-string UDFs) or made available through
//! [`ArgAccess`] (native closure UDFs). Vector arguments are passed as device
//! buffers according to *their own* distribution — the paper notes that no
//! meaningful default distribution exists for them, so the user must set it
//! explicitly.

use oclsim::{ArgView, Value};

use crate::vector::Vector;

/// One additional argument of a skeleton call.
#[derive(Debug, Clone)]
pub enum ArgItem {
    /// A `float` scalar.
    Float(f32),
    /// A `double` scalar.
    Double(f64),
    /// An `int` scalar.
    Int(i32),
    /// A `uint` scalar.
    Uint(u32),
    /// A vector of `f32` elements.
    VecF32(Vector<f32>),
    /// A vector of `i32` elements.
    VecI32(Vector<i32>),
    /// A vector of `u32` elements.
    VecU32(Vector<u32>),
}

impl ArgItem {
    /// Whether the argument is a scalar.
    pub fn is_scalar(&self) -> bool {
        matches!(
            self,
            ArgItem::Float(_) | ArgItem::Double(_) | ArgItem::Int(_) | ArgItem::Uint(_)
        )
    }

    /// The scalar value, if the argument is a scalar.
    pub fn scalar_value(&self) -> Option<Value> {
        match self {
            ArgItem::Float(v) => Some(Value::Float(*v)),
            ArgItem::Double(v) => Some(Value::Double(*v)),
            ArgItem::Int(v) => Some(Value::Int(*v)),
            ArgItem::Uint(v) => Some(Value::Uint(*v)),
            _ => None,
        }
    }
}

/// The additional arguments of one skeleton call, in user-specified order.
#[derive(Debug, Clone, Default)]
pub struct Args {
    items: Vec<ArgItem>,
}

impl Args {
    /// No additional arguments.
    pub fn none() -> Args {
        Args::default()
    }

    /// Start building an argument list.
    pub fn new() -> Args {
        Args::default()
    }

    /// Append a `float` scalar.
    pub fn with_f32(mut self, v: f32) -> Args {
        self.items.push(ArgItem::Float(v));
        self
    }

    /// Append a `double` scalar.
    pub fn with_f64(mut self, v: f64) -> Args {
        self.items.push(ArgItem::Double(v));
        self
    }

    /// Append an `int` scalar.
    pub fn with_i32(mut self, v: i32) -> Args {
        self.items.push(ArgItem::Int(v));
        self
    }

    /// Append a `uint` scalar.
    pub fn with_u32(mut self, v: u32) -> Args {
        self.items.push(ArgItem::Uint(v));
        self
    }

    /// Append an `f32` vector argument (passed as a device buffer).
    pub fn with_vec_f32(mut self, v: &Vector<f32>) -> Args {
        self.items.push(ArgItem::VecF32(v.clone()));
        self
    }

    /// Append an `i32` vector argument.
    pub fn with_vec_i32(mut self, v: &Vector<i32>) -> Args {
        self.items.push(ArgItem::VecI32(v.clone()));
        self
    }

    /// Append a `u32` vector argument.
    pub fn with_vec_u32(mut self, v: &Vector<u32>) -> Args {
        self.items.push(ArgItem::VecU32(v.clone()));
        self
    }

    /// The arguments in order.
    pub fn items(&self) -> &[ArgItem] {
        &self.items
    }

    /// Number of additional arguments.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether there are no additional arguments.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Number of scalar arguments.
    pub fn scalar_count(&self) -> usize {
        self.items.iter().filter(|i| i.is_scalar()).count()
    }

    /// Number of vector arguments.
    pub fn vector_count(&self) -> usize {
        self.items.len() - self.scalar_count()
    }
}

/// Access to the additional arguments from inside a *native* user-defined
/// function. The accessor indices follow the order in which the arguments
/// were added to [`Args`].
///
/// Accessors panic with a descriptive message on index or type mismatches;
/// these are programming errors of the skeleton user, equivalent to an OpenCL
/// kernel reading the wrong argument slot.
pub struct ArgAccess<'v, 'a> {
    views: &'v mut [ArgView<'a>],
}

impl<'v, 'a> ArgAccess<'v, 'a> {
    /// Wrap the extra-argument views of a native kernel launch.
    pub(crate) fn new(views: &'v mut [ArgView<'a>]) -> Self {
        ArgAccess { views }
    }

    /// Number of additional arguments.
    pub fn len(&self) -> usize {
        self.views.len()
    }

    /// Whether there are no additional arguments.
    pub fn is_empty(&self) -> bool {
        self.views.is_empty()
    }

    fn view(&self, index: usize) -> &ArgView<'a> {
        self.views
            .get(index)
            .unwrap_or_else(|| panic!("additional argument index {index} out of range"))
    }

    fn scalar(&self, index: usize) -> Value {
        self.view(index)
            .scalar()
            .unwrap_or_else(|| panic!("additional argument {index} is a vector, not a scalar"))
    }

    /// The scalar at `index` as `f32`.
    pub fn f32(&self, index: usize) -> f32 {
        self.scalar(index).as_f64() as f32
    }

    /// The scalar at `index` as `f64`.
    pub fn f64(&self, index: usize) -> f64 {
        self.scalar(index).as_f64()
    }

    /// The scalar at `index` as `i32`.
    pub fn i32(&self, index: usize) -> i32 {
        self.scalar(index).as_i64() as i32
    }

    /// The scalar at `index` as `usize` (panics if negative).
    pub fn usize(&self, index: usize) -> usize {
        let v = self.scalar(index).as_i64();
        usize::try_from(v)
            .unwrap_or_else(|_| panic!("additional argument {index} is negative ({v})"))
    }

    /// The vector argument at `index` as an immutable `f32` slice (this
    /// device's local copy or part, depending on the vector's distribution).
    pub fn slice_f32(&self, index: usize) -> &[f32] {
        self.view(index)
            .as_slice::<f32>()
            .unwrap_or_else(|| panic!("additional argument {index} is not an f32 vector"))
    }

    /// The vector argument at `index` as an immutable `i32` slice.
    pub fn slice_i32(&self, index: usize) -> &[i32] {
        self.view(index)
            .as_slice::<i32>()
            .unwrap_or_else(|| panic!("additional argument {index} is not an i32 vector"))
    }

    /// The vector argument at `index` as a mutable `f32` slice. Writes go to
    /// this device's copy only; call
    /// [`Vector::mark_device_modified`](crate::vector::Vector::mark_device_modified)
    /// afterwards so the host copy is refreshed before the next CPU access
    /// (Listing 3, line 10 of the paper).
    pub fn slice_mut_f32(&mut self, index: usize) -> &mut [f32] {
        self.views
            .get_mut(index)
            .unwrap_or_else(|| panic!("additional argument index {index} out of range"))
            .as_slice_mut::<f32>()
            .unwrap_or_else(|| panic!("additional argument {index} is not an f32 vector"))
    }

    /// The vector argument at `index` as a mutable `i32` slice.
    pub fn slice_mut_i32(&mut self, index: usize) -> &mut [i32] {
        self.views
            .get_mut(index)
            .unwrap_or_else(|| panic!("additional argument index {index} out of range"))
            .as_slice_mut::<i32>()
            .unwrap_or_else(|| panic!("additional argument {index} is not an i32 vector"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_collects_items_in_order() {
        let args = Args::new().with_f32(1.5).with_i32(7).with_u32(3);
        assert_eq!(args.len(), 3);
        assert_eq!(args.scalar_count(), 3);
        assert_eq!(args.vector_count(), 0);
        assert!(matches!(args.items()[0], ArgItem::Float(v) if v == 1.5));
        assert!(matches!(args.items()[1], ArgItem::Int(7)));
        assert!(matches!(args.items()[2], ArgItem::Uint(3)));
        assert!(Args::none().is_empty());
    }

    #[test]
    fn scalar_values_convert() {
        assert_eq!(ArgItem::Float(2.0).scalar_value(), Some(Value::Float(2.0)));
        assert_eq!(ArgItem::Int(-3).scalar_value(), Some(Value::Int(-3)));
        assert!(ArgItem::Float(0.0).is_scalar());
    }

    #[test]
    fn arg_access_scalars() {
        let mut views = vec![
            ArgView::Scalar(Value::Float(2.5)),
            ArgView::Scalar(Value::Int(9)),
        ];
        let access = ArgAccess::new(&mut views);
        assert_eq!(access.len(), 2);
        assert_eq!(access.f32(0), 2.5);
        assert_eq!(access.i32(1), 9);
        assert_eq!(access.usize(1), 9);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn arg_access_out_of_range_panics() {
        let mut views: Vec<ArgView<'_>> = vec![];
        let access = ArgAccess::new(&mut views);
        access.f32(0);
    }

    #[test]
    #[should_panic(expected = "is a vector, not a scalar")]
    fn arg_access_type_mismatch_panics() {
        let mut data = oclsim::BufferData::new(8);
        let mut views = vec![ArgView::Buffer(&mut data)];
        let access = ArgAccess::new(&mut views);
        access.f32(0);
    }

    #[test]
    fn arg_access_slices() {
        let mut data = oclsim::BufferData::new(12);
        data.as_slice_mut::<f32>().copy_from_slice(&[1.0, 2.0, 3.0]);
        let mut views = vec![ArgView::Buffer(&mut data), ArgView::Scalar(Value::Int(3))];
        let mut access = ArgAccess::new(&mut views);
        assert_eq!(access.slice_f32(0), &[1.0, 2.0, 3.0]);
        access.slice_mut_f32(0)[1] = 20.0;
        assert_eq!(access.slice_f32(0), &[1.0, 20.0, 3.0]);
    }
}
