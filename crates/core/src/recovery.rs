//! Replay-based fault recovery for skeleton launches.
//!
//! Every data-parallel skeleton (`Map`, `Zip`, `Reduce`, `MapOverlap`) runs
//! its launch through [`run_recoverable`]. When the attempt fails with an
//! injected fault ([`crate::SkelError::is_injected_fault`]) and recovery is
//! enabled on the runtime ([`crate::SkelCl::set_recovery_enabled`]), the
//! launch is replayed:
//!
//! * a **transient** transfer/launch fault is replayed as-is — the failed
//!   command never executed, so no state was corrupted;
//! * a **device loss** first re-partitions the launch's input containers
//!   onto the surviving devices ([`crate::SkelCl::recovery_weights`]) from
//!   their host-valid (or gatherable) state, then replays.
//!
//! If the lost device held the *only* copy of some input part (a
//! device-resident container with a stale host copy), the re-partition's
//! gather fails with a typed `DeviceLost` error and recovery degrades
//! gracefully — the error propagates to the caller instead of producing
//! wrong data. Iterative stencils add a second line of defence on top of
//! this: `MapOverlap::run_iter` checkpoints and replays whole sweeps (see
//! `LaunchConfig::checkpoint_every`).
//!
//! **Determinism.** Recovery adds zero virtual-time cost on the fault-free
//! path: the wrapper only consults fault state *after* an attempt has
//! failed, so a run with no armed faults is bitwise and virtual-time
//! identical to a run without the recovery layer.

use std::sync::Arc;

use crate::error::Result;
use crate::runtime::SkelCl;

/// Retry headroom on top of one attempt per device: transients are one-shot
/// and each device can die at most once, but coercions during replay (e.g.
/// distribution unification resurrecting an even split) may need one extra
/// round to settle.
const EXTRA_ATTEMPTS: usize = 4;

/// Run `attempt` with replay-based fault recovery.
///
/// `refresh` re-establishes a trustworthy device image for the launch's
/// input containers (a transiently failed transfer is recorded by the
/// coherence flags when enqueued but never executes — replaying without a
/// refresh would trust a buffer the upload never reached). `repartition`
/// moves the inputs onto the surviving devices given per-device weights; it
/// is only called after a device loss. Bounded by `device_count + 4`
/// attempts; non-injected errors, exhausted retries and unrecoverable state
/// all surface the original typed error.
pub(crate) fn run_recoverable<T>(
    runtime: &Arc<SkelCl>,
    refresh: &dyn Fn() -> Result<()>,
    repartition: &dyn Fn(&[f64]) -> Result<()>,
    attempt: &mut dyn FnMut() -> Result<T>,
) -> Result<T> {
    let max_attempts = runtime.device_count() + EXTRA_ATTEMPTS;
    let mut attempts = 0;
    loop {
        attempts += 1;
        match attempt() {
            Ok(value) => {
                if attempts > 1 {
                    runtime.note_recovery();
                }
                return Ok(value);
            }
            Err(e) => {
                if !runtime.recovery_enabled() || !e.is_injected_fault() || attempts >= max_attempts
                {
                    return Err(e);
                }
                // Clear deferred errors the failed attempt latched on other
                // queues so the replay's blocking reads don't surface them
                // as stale root causes.
                let _ = runtime.take_deferred_errors();
                // Graceful degradation: a refresh error means the
                // authoritative copy is no longer gatherable (e.g. it lived
                // on the lost device).
                refresh()?;
                if e.is_device_lost() || !runtime.lost_devices().is_empty() {
                    let Some(weights) = runtime.recovery_weights() else {
                        // No device survives: nothing to replay onto.
                        return Err(e);
                    };
                    // Graceful degradation: a repartition error means the
                    // lost device held the only copy of some input part.
                    repartition(&weights)?;
                    runtime.note_repartition();
                }
                runtime.note_replayed_launches(1);
            }
        }
    }
}
