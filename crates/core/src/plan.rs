//! Lazy pipeline graphs with cross-stage kernel fusion.
//!
//! [`Vector::lazy`] (and [`Matrix::lazy`](crate::matrix::Matrix::lazy))
//! opens a *plan*: fluent skeleton calls append nodes to an expression DAG
//! instead of enqueueing kernels, and nothing executes until a terminal form
//! ([`PlanVec::into_vector`] / [`PlanVec::collect`] / [`PlanScalar::scalar`]
//! / `exec`). Before lowering, a fusion pass rewrites the DAG: adjacent
//! elementwise stages (map∘map, zip∘map) compose their user functions into
//! **one** generated kernel — with hygienic renaming when UDFs collide — and
//! a trailing elementwise chain is inlined into the first phase of a reduce
//! or scan. A fused chain runs as a single kernel launch per device with
//! zero intermediate containers; the per-boundary fuse-vs-split choice is
//! made by the per-device cost model in [`crate::fusion`] (overridable via
//! [`FusionPolicy`]).
//!
//! Fused and unfused plans are **bit-identical**: the fused kernels inline
//! the exact per-element expression the staged pipeline would compute, in
//! the same evaluation order, and the reduce/scan lowering mirrors the eager
//! skeletons' device/host split operation for operation.
//!
//! ```
//! use skelcl::prelude::*;
//!
//! let rt = skelcl::init_gpus(2);
//! let xs = Vector::from_vec(&rt, vec![1.0f32, 2.0, 3.0, 4.0]);
//! let ys = Vector::from_vec(&rt, vec![10.0f32; 4]);
//! let mul = Zip::<f32, f32, f32>::from_source(
//!     "float func(float x, float y) { return x * y; }",
//! );
//! let add = Reduce::<f32>::from_source("float func(float a, float b) { return a + b; }");
//! // Dot product as one fused zip∘reduce launch per device.
//! let dot = xs.lazy().zip(&ys, &mul).reduce(&add).scalar().unwrap();
//! assert_eq!(dot, 100.0);
//! ```

use std::any::TypeId;
use std::fmt::Write as _;
use std::marker::PhantomData;
use std::sync::Arc;

use oclsim::{Buffer, KernelArg, Pod, Value};
use skelcl_kernel::pack::JobSpans;
use skelcl_kernel::types::ScalarType;

use crate::args::Args;
use crate::container::Container;
use crate::distribution::{Distribution, Partition};
use crate::error::{Result, SkelError};
use crate::fusion::{
    boundary_decision, compose_unary_source, BoundaryDecision, FExpr, FusedSpec, FusionPolicy,
    GroupCost, Hygiene, HygienicStage, StageCost, FUSED_MAP_KERNEL, FUSED_REDUCE_KERNEL,
    FUSED_SCAN_KERNEL, FUSED_SCAN_OFFSET_KERNEL,
};
use crate::kernelgen::UdfInfo;
use crate::matrix::Matrix;
use crate::runtime::SkelCl;
use crate::scheduler::PerfModel;
use crate::skeletons::{
    host_eval_operator, wait_kernel_events, DeviceScalar, LaunchConfig, Map, MapOverlap, Reduce,
    Scan, Skeleton, Zip,
};
use crate::vector::Vector;

/// The device scalar type of a Rust element type, if it has one.
pub(crate) fn scalar_type_of<T: 'static>() -> Option<ScalarType> {
    let id = TypeId::of::<T>();
    if id == TypeId::of::<f32>() {
        Some(ScalarType::Float)
    } else if id == TypeId::of::<f64>() {
        Some(ScalarType::Double)
    } else if id == TypeId::of::<i32>() {
        Some(ScalarType::Int)
    } else if id == TypeId::of::<u32>() {
        Some(ScalarType::Uint)
    } else {
        None
    }
}

/// Dispatch a dynamically-typed pipeline element type to monomorphic code.
/// `Bool` never appears as a pipeline element type (builders reject it), but
/// the arm keeps the match exhaustive.
macro_rules! with_scalar {
    ($ty:expr, $T:ident, $body:block) => {
        match $ty {
            ScalarType::Float => {
                type $T = f32;
                $body
            }
            ScalarType::Double => {
                type $T = f64;
                $body
            }
            ScalarType::Int => {
                type $T = i32;
                $body
            }
            ScalarType::Uint => {
                type $T = u32;
                $body
            }
            ScalarType::Bool => {
                return Err(SkelError::Plan(
                    "bool is not a supported pipeline element type".into(),
                ))
            }
        }
    };
}

/// A type-erased view of an input container: everything the execution engine
/// needs from a [`Vector<T>`] without knowing `T`.
trait ErasedSource: Send + Sync {
    fn src_len(&self) -> usize;
    fn src_distribution(&self) -> Distribution;
    fn src_set_distribution(&self, distribution: Distribution) -> Result<()>;
    fn src_ensure_disjoint(&self) -> Result<()>;
    fn src_prepare(&self) -> Result<(Partition, Vec<Option<Buffer>>)>;
    /// The source's elements as raw host bytes (used by job packing, which
    /// lays many jobs' inputs back to back in one device buffer).
    fn src_host_bytes(&self) -> Result<Vec<u8>>;
    /// Re-establish a trustworthy device image before a fault replay (see
    /// [`crate::Container::refresh_for_replay`]).
    fn src_refresh_for_replay(&self) -> Result<()>;
}

impl<T: Pod> ErasedSource for Vector<T> {
    fn src_len(&self) -> usize {
        self.len()
    }

    fn src_distribution(&self) -> Distribution {
        self.distribution()
    }

    fn src_set_distribution(&self, distribution: Distribution) -> Result<()> {
        self.set_distribution(distribution)
    }

    fn src_ensure_disjoint(&self) -> Result<()> {
        Container::ensure_disjoint(self)
    }

    fn src_prepare(&self) -> Result<(Partition, Vec<Option<Buffer>>)> {
        self.prepare_on_devices()
    }

    fn src_host_bytes(&self) -> Result<Vec<u8>> {
        Ok(oclsim::pod::as_bytes(&self.to_vec()?).to_vec())
    }

    fn src_refresh_for_replay(&self) -> Result<()> {
        Container::refresh_for_replay(self)
    }
}

/// One node of the lazy expression DAG.
#[derive(Clone)]
pub(crate) enum PlanNode {
    /// An input container (`source` indexes the graph's source table).
    Source { source: usize, ty: ScalarType },
    /// An elementwise map stage.
    Map {
        input: usize,
        udf: Arc<UdfInfo>,
        args: Args,
    },
    /// An elementwise zip stage; `other` is always a `Source` node.
    Zip {
        input: usize,
        other: usize,
        udf: Arc<UdfInfo>,
        args: Args,
    },
    /// A stencil stage (matrix plans only); never fused across.
    MapOverlap { input: usize, halo: usize },
    /// A full reduction to one scalar.
    Reduce { input: usize, udf: Arc<UdfInfo> },
    /// An inclusive prefix scan.
    Scan { input: usize, udf: Arc<UdfInfo> },
}

/// The chain-input link of a node (`None` for sources).
fn node_input(node: &PlanNode) -> Option<usize> {
    match node {
        PlanNode::Source { .. } => None,
        PlanNode::Map { input, .. }
        | PlanNode::Zip { input, .. }
        | PlanNode::MapOverlap { input, .. }
        | PlanNode::Reduce { input, .. }
        | PlanNode::Scan { input, .. } => Some(*input),
    }
}

/// Element type a node produces.
fn node_out_ty(nodes: &[PlanNode], idx: usize) -> ScalarType {
    match &nodes[idx] {
        PlanNode::Source { ty, .. } => *ty,
        PlanNode::Map { udf, .. }
        | PlanNode::Zip { udf, .. }
        | PlanNode::Reduce { udf, .. }
        | PlanNode::Scan { udf, .. } => udf.return_type,
        PlanNode::MapOverlap { .. } => ScalarType::Float,
    }
}

/// What kind of lowering a fusion group needs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum GroupKind {
    /// One fused data-parallel kernel (`out[i] = expr(i)`).
    Elementwise,
    /// Fused per-device sequential folds + host combine.
    Reduce,
    /// Fused per-device local scans + totals download + offset kernels.
    Scan,
    /// An unfusable stencil stage, lowered through the eager skeleton.
    Overlap,
}

/// A run of pipeline nodes lowered to one launch, plus the boundary
/// decisions the fusion pass took while forming it.
struct Group {
    nodes: Vec<usize>,
    kind: GroupKind,
    decisions: Vec<(usize, BoundaryDecision)>,
}

/// Per-stage cost figures and group kind for the fusion pass.
fn stage_info(nodes: &[PlanNode], idx: usize) -> Option<(StageCost, GroupKind)> {
    match &nodes[idx] {
        PlanNode::Source { .. } => unreachable!("sources are not stages"),
        PlanNode::MapOverlap { .. } => None,
        PlanNode::Map { udf, .. } => Some((
            StageCost::of(udf, 0.0, udf.return_type.size_bytes() as f64),
            GroupKind::Elementwise,
        )),
        PlanNode::Zip { udf, .. } => Some((
            StageCost::of(
                udf,
                udf.main_params[1].size_bytes() as f64,
                udf.return_type.size_bytes() as f64,
            ),
            GroupKind::Elementwise,
        )),
        PlanNode::Reduce { udf, .. } => Some((StageCost::of(udf, 0.0, 0.0), GroupKind::Reduce)),
        PlanNode::Scan { udf, .. } => Some((
            StageCost::of(udf, 0.0, udf.return_type.size_bytes() as f64),
            GroupKind::Scan,
        )),
    }
}

/// The fusion pass: walk the spine (source first), open an elementwise group
/// and consult the cost model at every boundary. Reduce and scan stages may
/// join (and close) an open elementwise group — their first phase absorbs
/// the chain — while stencil stages are barriers that always stand alone.
fn plan_groups(
    nodes: &[PlanNode],
    spine: &[usize],
    policy: FusionPolicy,
    model: &PerfModel,
    device_items: &[(usize, usize)],
) -> Result<Vec<Group>> {
    let mut groups: Vec<Group> = Vec::new();
    let mut open: Option<(GroupCost, Group)> = None;
    let chain_in_bytes = |idx: usize| {
        let input = node_input(&nodes[idx]).expect("stages have an input");
        node_out_ty(nodes, input).size_bytes() as f64
    };
    for &idx in &spine[1..] {
        let Some((cost, kind)) = stage_info(nodes, idx) else {
            // Stencil barrier: close the open group, emit a lone group.
            if let Some((_, group)) = open.take() {
                groups.push(group);
            }
            groups.push(Group {
                nodes: vec![idx],
                kind: GroupKind::Overlap,
                decisions: Vec::new(),
            });
            continue;
        };
        let fresh = |decisions: Vec<(usize, BoundaryDecision)>| {
            (
                GroupCost::start(chain_in_bytes(idx), cost),
                Group {
                    nodes: vec![idx],
                    kind,
                    decisions,
                },
            )
        };
        match open.take() {
            None => {
                let (acc, group) = fresh(Vec::new());
                if kind == GroupKind::Elementwise {
                    open = Some((acc, group));
                } else {
                    groups.push(group);
                }
            }
            Some((mut acc, mut group)) => {
                let decision = boundary_decision(policy, model, device_items, acc, cost)?;
                group.decisions.push((idx, decision));
                if decision.fused {
                    group.nodes.push(idx);
                    acc.fuse(cost);
                    group.kind = kind;
                    if kind == GroupKind::Elementwise {
                        open = Some((acc, group));
                    } else {
                        groups.push(group);
                    }
                } else {
                    groups.push(group);
                    let (acc, group) = fresh(Vec::new());
                    if kind == GroupKind::Elementwise {
                        open = Some((acc, group));
                    } else {
                        groups.push(group);
                    }
                }
            }
        }
    }
    if let Some((_, group)) = open {
        groups.push(group);
    }
    Ok(groups)
}

/// Where a fused kernel's input buffer slot comes from.
enum ChainInput {
    /// The running chain (the previous group's output, or source 0).
    Chain,
    /// Source table slot `usize` (a zip's second vector).
    Source(usize),
}

/// A fusion group lowered to kernel-generation inputs.
struct LoweredGroup {
    spec: FusedSpec,
    /// The hygienically renamed reduce/scan operator, if the group has one.
    op: Option<HygienicStage>,
    /// The operator's *original* source, for the host-side combine (the same
    /// [`host_eval_operator`] path the eager skeletons use).
    op_source: Option<String>,
    /// Buffer provenance per fused-kernel input slot (slot 0 is the chain).
    inputs: Vec<ChainInput>,
    /// Additional scalar arguments, in stage order (matching the generated
    /// kernel's extra-parameter declarations).
    extra_args: Vec<KernelArg>,
    collisions: Vec<String>,
    out_ty: ScalarType,
}

fn lower_group(nodes: &[PlanNode], group: &Group) -> Result<LoweredGroup> {
    let first = group.nodes[0];
    let chain_in_ty = node_out_ty(
        nodes,
        node_input(&nodes[first]).expect("stages have an input"),
    );
    let mut hygiene = Hygiene::new();
    let mut stages: Vec<HygienicStage> = Vec::new();
    let mut inputs_ty = vec![chain_in_ty];
    let mut inputs = vec![ChainInput::Chain];
    let mut expr = FExpr::In(0);
    let mut extra_args: Vec<KernelArg> = Vec::new();
    let mut collisions: Vec<String> = Vec::new();
    let mut op = None;
    let mut op_source = None;
    let mut out_ty = chain_in_ty;
    let push_args = |args: &Args, extra_args: &mut Vec<KernelArg>| {
        for item in args.items() {
            let value = item
                .scalar_value()
                .expect("plan builders only admit scalar additional arguments");
            extra_args.push(KernelArg::Scalar(value));
        }
    };
    for (k, &idx) in group.nodes.iter().enumerate() {
        match &nodes[idx] {
            PlanNode::Map { udf, args, .. } => {
                let stage = hygiene.admit(k, udf)?;
                collisions.extend(stage.collisions.iter().cloned());
                expr = FExpr::Call(stages.len(), vec![expr]);
                stages.push(stage);
                push_args(args, &mut extra_args);
                out_ty = udf.return_type;
            }
            PlanNode::Zip {
                other, udf, args, ..
            } => {
                let stage = hygiene.admit(k, udf)?;
                collisions.extend(stage.collisions.iter().cloned());
                let PlanNode::Source { source, ty } = &nodes[*other] else {
                    unreachable!("a zip's second input is always a source node")
                };
                let slot = inputs.len();
                inputs.push(ChainInput::Source(*source));
                inputs_ty.push(*ty);
                expr = FExpr::Call(stages.len(), vec![expr, FExpr::In(slot)]);
                stages.push(stage);
                push_args(args, &mut extra_args);
                out_ty = udf.return_type;
            }
            PlanNode::Reduce { udf, .. } | PlanNode::Scan { udf, .. } => {
                let stage = hygiene.admit(k, udf)?;
                collisions.extend(stage.collisions.iter().cloned());
                op = Some(stage);
                op_source = Some(udf.source.clone());
                out_ty = udf.return_type;
            }
            PlanNode::Source { .. } | PlanNode::MapOverlap { .. } => {
                unreachable!("sources and stencils never join a fused group")
            }
        }
    }
    Ok(LoweredGroup {
        spec: FusedSpec {
            stages,
            inputs: inputs_ty,
            out_ty,
            expr,
        },
        op,
        op_source,
        inputs,
        extra_args,
        collisions,
        out_ty,
    })
}

/// Allocate per-device output buffers for a dynamically-typed element.
fn alloc_erased(
    runtime: &Arc<SkelCl>,
    partition: &Partition,
    ty: ScalarType,
) -> Result<Vec<Option<Buffer>>> {
    with_scalar!(ty, T, {
        crate::skeletons::alloc_output::<T>(runtime, partition)
    })
}

/// The running intermediate of plan execution: either still an input source
/// or freshly produced device buffers.
enum ExecChain {
    Source(usize),
    Interm(Vec<Option<Buffer>>),
}

/// What a plan execution produced.
enum ExecOutcome {
    Vector {
        len: usize,
        distribution: Distribution,
        buffers: Vec<Option<Buffer>>,
    },
    Scalar(Value),
}

/// The shared lazy DAG behind [`PlanVec`] and [`PlanScalar`]. Build errors
/// poison the graph (first error wins); terminals surface it.
#[derive(Clone)]
pub(crate) struct PlanGraph {
    runtime: Arc<SkelCl>,
    nodes: Vec<PlanNode>,
    sources: Vec<Arc<dyn ErasedSource>>,
    policy: FusionPolicy,
    err: Option<SkelError>,
}

impl PlanGraph {
    /// Append a node built by `build`, or poison the graph on its error. The
    /// returned index is `fallback` when the graph is (or becomes) poisoned.
    fn admit(
        &mut self,
        fallback: usize,
        build: impl FnOnce(&mut PlanGraph) -> Result<PlanNode>,
    ) -> usize {
        if self.err.is_some() {
            return fallback;
        }
        match build(self) {
            Ok(node) => {
                self.nodes.push(node);
                self.nodes.len() - 1
            }
            Err(e) => {
                self.err = Some(e);
                fallback
            }
        }
    }

    /// Refresh every input source for a fault replay (see
    /// [`crate::Container::refresh_for_replay`]): gather each source's
    /// authoritative copy to the host and invalidate its device copies so
    /// the replay re-uploads instead of trusting a buffer a transiently
    /// failed transfer never reached.
    fn refresh_sources(&self) -> Result<()> {
        for source in &self.sources {
            source.src_refresh_for_replay()?;
        }
        Ok(())
    }

    /// The source-to-tip path of stage nodes (source first). Zip side
    /// sources hang off the spine and are resolved during lowering.
    fn spine(&self, tip: usize) -> Vec<usize> {
        let mut chain = vec![tip];
        let mut cur = tip;
        while let Some(prev) = node_input(&self.nodes[cur]) {
            chain.push(prev);
            cur = prev;
        }
        chain.reverse();
        chain
    }

    fn check_chain(&self, tip: usize, udf: &UdfInfo, skeleton: &str) -> Result<()> {
        let chain_ty = node_out_ty(&self.nodes, tip);
        if udf.main_params.is_empty() || udf.main_params[0] != chain_ty {
            return Err(SkelError::Plan(format!(
                "{skeleton} stage expects `{}` input but the pipeline produces `{chain_ty}`",
                udf.main_params
                    .first()
                    .map_or_else(|| "?".to_string(), std::string::ToString::to_string),
            )));
        }
        Ok(())
    }

    fn buffer_of(buffers: &[Option<Buffer>], device: usize, what: &str) -> Result<Buffer> {
        buffers[device].clone().ok_or_else(|| {
            SkelError::Distribution(format!("{what} has no buffer on device {device}"))
        })
    }

    fn slot_buffer(
        &self,
        input: &ChainInput,
        chain: &ExecChain,
        prepared: &[(Partition, Vec<Option<Buffer>>)],
        device: usize,
    ) -> Result<Buffer> {
        match input {
            ChainInput::Chain => match chain {
                ExecChain::Source(s) => Self::buffer_of(&prepared[*s].1, device, "pipeline input"),
                ExecChain::Interm(buffers) => {
                    Self::buffer_of(buffers, device, "pipeline intermediate")
                }
            },
            ChainInput::Source(s) => Self::buffer_of(&prepared[*s].1, device, "pipeline input"),
        }
    }

    /// Release the buffers of a consumed intermediate (fused pipelines own
    /// their intermediates; sources keep theirs).
    fn release_chain(&self, chain: &ExecChain) -> Result<()> {
        if let ExecChain::Interm(buffers) = chain {
            for buffer in buffers.iter().flatten() {
                self.runtime.context().release_buffer(buffer)?;
            }
        }
        Ok(())
    }

    /// Run one fused elementwise group: a single `out[i] = expr(i)` kernel
    /// launch per active device, mirroring the eager map/zip launch layout
    /// `[inputs..., out, n, extras...]`.
    fn run_elementwise(
        &self,
        lowered: &LoweredGroup,
        partition: &Partition,
        active: &[usize],
        prepared: &[(Partition, Vec<Option<Buffer>>)],
        chain: &ExecChain,
    ) -> Result<Vec<Option<Buffer>>> {
        let src = lowered.spec.map_kernel();
        let program = self.runtime.context().build_program(&src)?;
        let kernel = program.kernel(FUSED_MAP_KERNEL)?;
        let out = alloc_erased(&self.runtime, partition, lowered.out_ty)?;
        let mut events = Vec::with_capacity(active.len());
        for &device in active {
            let n = partition.size(device);
            let mut kargs = Vec::with_capacity(lowered.inputs.len() + 2 + lowered.extra_args.len());
            for input in &lowered.inputs {
                kargs.push(KernelArg::Buffer(
                    self.slot_buffer(input, chain, prepared, device)?,
                ));
            }
            kargs.push(KernelArg::Buffer(
                out[device].clone().expect("output allocated above"),
            ));
            kargs.push(KernelArg::Scalar(Value::Int(n as i32)));
            kargs.extend(lowered.extra_args.iter().cloned());
            events.push((
                device,
                self.runtime
                    .queue(device)
                    .enqueue_kernel(&kernel, n, &kargs)?,
            ));
        }
        wait_kernel_events(&self.runtime, events)?;
        Ok(out)
    }

    /// Run a fused reduce group: per-device sequential folds over the inlined
    /// chain, then the host gathers and combines the partials in device
    /// order — exactly the eager reduce's device/host split.
    fn run_reduce(
        &self,
        lowered: &LoweredGroup,
        partition: &Partition,
        active: &[usize],
        prepared: &[(Partition, Vec<Option<Buffer>>)],
        chain: &ExecChain,
    ) -> Result<Value> {
        let op = lowered.op.as_ref().expect("reduce group has an operator");
        let op_source = lowered
            .op_source
            .as_ref()
            .expect("reduce group has an operator source");
        let src = lowered.spec.reduce_kernel(op);
        let program = self.runtime.context().build_program(&src)?;
        let kernel = program.kernel(FUSED_REDUCE_KERNEL)?;
        with_scalar!(lowered.out_ty, T, {
            let mut partial_buffers = Vec::with_capacity(active.len());
            for &device in active {
                let n = partition.size(device);
                let out_buffer = self.runtime.context().create_buffer::<T>(device, 1)?;
                let mut kargs =
                    Vec::with_capacity(lowered.inputs.len() + 2 + lowered.extra_args.len());
                for input in &lowered.inputs {
                    kargs.push(KernelArg::Buffer(
                        self.slot_buffer(input, chain, prepared, device)?,
                    ));
                }
                kargs.push(KernelArg::Buffer(out_buffer.clone()));
                kargs.push(KernelArg::Scalar(Value::Int(n as i32)));
                kargs.extend(lowered.extra_args.iter().cloned());
                self.runtime
                    .queue(device)
                    .enqueue_kernel(&kernel, 1, &kargs)?;
                partial_buffers.push((device, out_buffer));
            }
            // Gather in device order so non-commutative operators stay
            // correct, then fold on the host through the same generated
            // kernel the eager path uses.
            let mut partials: Vec<T> = Vec::with_capacity(partial_buffers.len());
            for (device, buffer) in &partial_buffers {
                let mut one = [T::from_value(Value::Int(0)); 1];
                self.runtime
                    .queue(*device)
                    .enqueue_read_buffer(buffer, &mut one)?;
                partials.push(one[0]);
                self.runtime.context().release_buffer(buffer)?;
            }
            let mut acc = partials[0];
            for &v in &partials[1..] {
                acc = host_eval_operator::<T>(op_source, acc, v);
            }
            Ok(ExecOutcome::Scalar(acc.to_value()))
        })
        .map(|outcome| match outcome {
            ExecOutcome::Scalar(v) => v,
            ExecOutcome::Vector { .. } => unreachable!("reduce groups produce scalars"),
        })
    }

    /// Run a fused scan group: per-device local scans over the inlined
    /// chain, totals download, host-combined offsets, offset kernels —
    /// step for step the eager scan's Figure 2 flow.
    fn run_scan(
        &self,
        lowered: &LoweredGroup,
        partition: &Partition,
        active: &[usize],
        prepared: &[(Partition, Vec<Option<Buffer>>)],
        chain: &ExecChain,
    ) -> Result<Vec<Option<Buffer>>> {
        let op = lowered.op.as_ref().expect("scan group has an operator");
        let op_source = lowered
            .op_source
            .as_ref()
            .expect("scan group has an operator source");
        let src = lowered.spec.scan_kernels(op);
        let program = self.runtime.context().build_program(&src)?;
        let scan_kernel = program.kernel(FUSED_SCAN_KERNEL)?;
        let offset_kernel = program.kernel(FUSED_SCAN_OFFSET_KERNEL)?;
        with_scalar!(lowered.out_ty, T, {
            let out = crate::skeletons::alloc_output::<T>(&self.runtime, partition)?;
            // Step 1: local scans.
            for &device in active {
                let n = partition.size(device);
                let mut kargs =
                    Vec::with_capacity(lowered.inputs.len() + 2 + lowered.extra_args.len());
                for input in &lowered.inputs {
                    kargs.push(KernelArg::Buffer(
                        self.slot_buffer(input, chain, prepared, device)?,
                    ));
                }
                kargs.push(KernelArg::Buffer(
                    out[device].clone().expect("output allocated above"),
                ));
                kargs.push(KernelArg::Scalar(Value::Int(n as i32)));
                kargs.extend(lowered.extra_args.iter().cloned());
                self.runtime
                    .queue(device)
                    .enqueue_kernel(&scan_kernel, 1, &kargs)?;
            }
            // Step 2: download only the per-part totals.
            let mut totals: Vec<T> = Vec::with_capacity(active.len());
            for &device in active {
                let n = partition.size(device);
                let out_buffer = out[device].as_ref().expect("output allocated above");
                let mut last = [T::from_value(Value::Int(0)); 1];
                self.runtime.queue(device).enqueue_read_buffer_region(
                    out_buffer,
                    n - 1,
                    &mut last,
                )?;
                totals.push(last[0]);
            }
            // Steps 3 + 4: combine predecessor totals on the host, apply
            // them to later parts via the offset kernels.
            let mut offset_events = Vec::new();
            let mut running: Option<T> = None;
            for (i, &device) in active.iter().enumerate() {
                let offset = running;
                running = Some(match running {
                    None => totals[i],
                    Some(acc) => host_eval_operator::<T>(op_source, acc, totals[i]),
                });
                if i == 0 {
                    continue;
                }
                let offset = offset.expect("set above for i > 0");
                let n = partition.size(device);
                let out_buffer = out[device].clone().expect("output allocated above");
                offset_events.push((
                    device,
                    self.runtime.queue(device).enqueue_kernel(
                        &offset_kernel,
                        n,
                        &[
                            KernelArg::Buffer(out_buffer),
                            KernelArg::Scalar(Value::Int(n as i32)),
                            KernelArg::Scalar(offset.to_value()),
                        ],
                    )?,
                ));
            }
            wait_kernel_events(&self.runtime, offset_events)?;
            Ok(out)
        })
    }

    /// Execute the plan at `tip`: unify source distributions, run the fusion
    /// pass, lower each group to launches on the existing queue/event
    /// machinery, and account the fusion telemetry.
    fn execute(&self, tip: usize) -> Result<ExecOutcome> {
        if let Some(err) = &self.err {
            return Err(err.clone());
        }
        let spine = self.spine(tip);
        if spine.len() < 2 {
            return Err(SkelError::Plan(
                "a lazy plan needs at least one stage before a terminal; \
                 call map, zip, reduce or scan first"
                    .into(),
            ));
        }
        let len = self.sources[0].src_len();
        if len == 0 {
            return Err(SkelError::EmptyInput);
        }
        // Distribution unification, generalised from the eager zip: if any
        // source disagrees, everything is coerced to block.
        let first_dist = self.sources[0].src_distribution();
        if self
            .sources
            .iter()
            .any(|s| s.src_distribution() != first_dist)
        {
            for source in &self.sources {
                source.src_set_distribution(Distribution::Block)?;
            }
        }
        // A prefix/fold over a copy-distributed input would double-count;
        // the eager reduce/scan coerce to block, so the plan does too.
        let has_fold = spine.iter().any(|&i| {
            matches!(
                self.nodes[i],
                PlanNode::Reduce { .. } | PlanNode::Scan { .. }
            )
        });
        if has_fold {
            for source in &self.sources {
                source.src_ensure_disjoint()?;
            }
        }
        let mut prepared = Vec::with_capacity(self.sources.len());
        for source in &self.sources {
            prepared.push(source.src_prepare()?);
        }
        let partition = prepared[0].0.clone();
        let active = partition.active_devices();
        let device_items: Vec<(usize, usize)> =
            active.iter().map(|&d| (d, partition.size(d))).collect();
        let model = PerfModel::analytical(&self.runtime);
        let groups = plan_groups(&self.nodes, &spine, self.policy, &model, &device_items)?;
        let stored_elems: usize = partition.sizes().iter().sum();

        let mut chain = ExecChain::Source(0);
        let mut scalar = None;
        for group in &groups {
            let lowered = lower_group(&self.nodes, group)?;
            self.runtime.charge_skeleton_call();
            let merged = group.nodes.len() - 1;
            if merged > 0 {
                // Every interior node of the group would have materialised
                // an intermediate container (one buffer per active device)
                // and cost one more launch per device.
                let bytes: usize = group.nodes[..group.nodes.len() - 1]
                    .iter()
                    .map(|&idx| stored_elems * node_out_ty(&self.nodes, idx).size_bytes())
                    .sum();
                self.runtime.charge_fusion(
                    merged,
                    merged * active.len(),
                    merged * active.len(),
                    bytes,
                );
            }
            match group.kind {
                GroupKind::Elementwise => {
                    let out =
                        self.run_elementwise(&lowered, &partition, &active, &prepared, &chain)?;
                    self.release_chain(&chain)?;
                    chain = ExecChain::Interm(out);
                }
                GroupKind::Reduce => {
                    let value =
                        self.run_reduce(&lowered, &partition, &active, &prepared, &chain)?;
                    self.release_chain(&chain)?;
                    scalar = Some(value);
                }
                GroupKind::Scan => {
                    let out = self.run_scan(&lowered, &partition, &active, &prepared, &chain)?;
                    self.release_chain(&chain)?;
                    chain = ExecChain::Interm(out);
                }
                GroupKind::Overlap => {
                    unreachable!("vector plans have no stencil stage")
                }
            }
        }
        match scalar {
            Some(value) => Ok(ExecOutcome::Scalar(value)),
            None => {
                let ExecChain::Interm(buffers) = chain else {
                    unreachable!("the spine has at least one stage")
                };
                Ok(ExecOutcome::Vector {
                    len,
                    distribution: self.sources[0].src_distribution(),
                    buffers,
                })
            }
        }
    }

    /// Render the DAG and the fusion pass's verdicts without executing (and
    /// without touching the sources' distributions).
    fn explain(&self, tip: usize) -> Result<String> {
        if let Some(err) = &self.err {
            return Err(err.clone());
        }
        let spine = self.spine(tip);
        let mut out = String::new();
        let devices = self.runtime.device_count();
        let _ = writeln!(
            out,
            "Plan: {} node(s) over {} source(s), {} device(s), policy {:?}",
            self.nodes.len(),
            self.sources.len(),
            devices,
            self.policy
        );
        let _ = writeln!(out, "Kernel tier: {}", self.runtime.kernel_tier_summary());
        for (i, node) in self.nodes.iter().enumerate() {
            let line = match node {
                PlanNode::Source { source, ty } => format!(
                    "source[{source}] : {ty} (len {}, {:?})",
                    self.sources[*source].src_len(),
                    self.sources[*source].src_distribution()
                ),
                PlanNode::Map { input, udf, .. } => {
                    format!("map(%{input}) -> {}", udf.return_type)
                }
                PlanNode::Zip {
                    input, other, udf, ..
                } => format!("zip(%{input}, %{other}) -> {}", udf.return_type),
                PlanNode::MapOverlap { input, halo } => {
                    format!("map_overlap(%{input}, halo {halo}) -> float")
                }
                PlanNode::Reduce { input, udf } => {
                    format!("reduce(%{input}) -> {}", udf.return_type)
                }
                PlanNode::Scan { input, udf } => {
                    format!("scan(%{input}) -> {}", udf.return_type)
                }
            };
            let _ = writeln!(out, "  %{i} = {line}");
        }
        if spine.len() < 2 {
            let _ = writeln!(out, "After fusion: nothing to run (the plan has no stage)");
            return Ok(out);
        }
        let len = self.sources[0].src_len();
        if len == 0 {
            let _ = writeln!(out, "After fusion: nothing to run (empty input)");
            return Ok(out);
        }
        // Predict what execute() would do, without mutating the sources.
        let first_dist = self.sources[0].src_distribution();
        let mut dist = if self
            .sources
            .iter()
            .any(|s| s.src_distribution() != first_dist)
        {
            Distribution::Block
        } else {
            first_dist
        };
        let has_fold = spine.iter().any(|&i| {
            matches!(
                self.nodes[i],
                PlanNode::Reduce { .. } | PlanNode::Scan { .. }
            )
        });
        if has_fold && dist == Distribution::Copy {
            dist = Distribution::Block;
        }
        let partition = Partition::compute(len, devices, &dist);
        let device_items: Vec<(usize, usize)> = partition
            .active_devices()
            .iter()
            .map(|&d| (d, partition.size(d)))
            .collect();
        let model = PerfModel::analytical(&self.runtime);
        let groups = plan_groups(&self.nodes, &spine, self.policy, &model, &device_items)?;
        render_groups(&mut out, &self.nodes, &groups)?;
        Ok(out)
    }
}

/// Shared after-fusion rendering for vector and matrix plans.
fn render_groups(out: &mut String, nodes: &[PlanNode], groups: &[Group]) -> Result<()> {
    let _ = writeln!(out, "After fusion: {} launch group(s)", groups.len());
    for (gi, group) in groups.iter().enumerate() {
        let members: Vec<String> = group.nodes.iter().map(|i| format!("%{i}")).collect();
        let kernel = match group.kind {
            GroupKind::Elementwise => FUSED_MAP_KERNEL,
            GroupKind::Reduce => FUSED_REDUCE_KERNEL,
            GroupKind::Scan => FUSED_SCAN_KERNEL,
            GroupKind::Overlap => "SKELCL_MAP_OVERLAP",
        };
        let _ = writeln!(
            out,
            "  group {gi}: {kernel} over {} ({} stage(s) fused)",
            members.join(", "),
            group.nodes.len()
        );
        for (idx, decision) in &group.decisions {
            let verdict = if decision.fused { "fuse" } else { "split" };
            let why = if decision.forced {
                "policy"
            } else {
                "cost model"
            };
            let _ = writeln!(
                out,
                "    boundary before %{idx}: {verdict} ({why}; predicted fused {:.3} ms vs split {:.3} ms)",
                decision.fused_time * 1e3,
                decision.split_time * 1e3
            );
        }
        if group.kind != GroupKind::Overlap {
            let lowered = lower_group(nodes, group)?;
            for collision in &lowered.collisions {
                let _ = writeln!(out, "    rename: {collision}");
            }
        }
    }
    Ok(())
}

fn check_stage_args(udf: &UdfInfo, args: &Args) -> Result<()> {
    if args.vector_count() != 0 {
        return Err(SkelError::UnsupportedArg(
            "lazy pipeline stages accept only scalar additional arguments".into(),
        ));
    }
    if args.len() != udf.extra_params.len() {
        return Err(SkelError::UdfSignature(format!(
            "the user function expects {} additional argument(s), the call provides {}",
            udf.extra_params.len(),
            args.len()
        )));
    }
    Ok(())
}

fn check_elem_ty<O: 'static>(udf: &UdfInfo, role: &str) -> Result<ScalarType> {
    let Some(ty) = scalar_type_of::<O>() else {
        return Err(SkelError::Plan(format!(
            "element type {} is not a device scalar type (use f32, f64, i32 or u32)",
            std::any::type_name::<O>()
        )));
    };
    if udf.return_type != ty && role == "output" {
        return Err(SkelError::Plan(format!(
            "the stage's user function returns `{}` but the {role} element type is `{ty}`",
            udf.return_type
        )));
    }
    Ok(ty)
}

/// A lazily built vector pipeline. Created by [`Vector::lazy`]; stage
/// builders consume and return the plan, terminals (`into_vector`,
/// `collect`, `exec`) execute it. Terminals take `&self`, so one plan can
/// run several times.
#[must_use = "a lazy plan does nothing until a terminal such as `into_vector()` runs it"]
pub struct PlanVec<T: Pod> {
    graph: PlanGraph,
    tip: usize,
    _elem: PhantomData<fn() -> T>,
}

impl<T: Pod> Clone for PlanVec<T> {
    fn clone(&self) -> Self {
        PlanVec {
            graph: self.graph.clone(),
            tip: self.tip,
            _elem: PhantomData,
        }
    }
}

impl<T: Pod> PlanVec<T> {
    pub(crate) fn from_vector(vector: &Vector<T>) -> PlanVec<T> {
        let ty = scalar_type_of::<T>();
        let mut graph = PlanGraph {
            runtime: vector.runtime(),
            nodes: vec![PlanNode::Source {
                source: 0,
                ty: ty.unwrap_or(ScalarType::Float),
            }],
            sources: vec![Arc::new(vector.clone())],
            policy: FusionPolicy::default(),
            err: None,
        };
        if ty.is_none() {
            graph.err = Some(SkelError::Plan(format!(
                "element type {} is not a device scalar type (use f32, f64, i32 or u32)",
                std::any::type_name::<T>()
            )));
        }
        PlanVec {
            graph,
            tip: 0,
            _elem: PhantomData,
        }
    }

    /// Override the fusion policy (default: [`FusionPolicy::Auto`]).
    pub fn policy(mut self, policy: FusionPolicy) -> Self {
        self.graph.policy = policy;
        self
    }

    /// Append an elementwise map stage.
    pub fn map<O: Pod>(self, skeleton: &Map<T, O>) -> PlanVec<O> {
        self.map_with(skeleton, Args::none())
    }

    /// Append an elementwise map stage with additional scalar arguments.
    pub fn map_with<O: Pod>(mut self, skeleton: &Map<T, O>, args: Args) -> PlanVec<O> {
        let tip = self.tip;
        let tip = self.graph.admit(tip, |g| {
            let udf = skeleton.plan_udf()?;
            g.check_chain(tip, &udf, "map")?;
            check_stage_args(&udf, &args)?;
            check_elem_ty::<O>(&udf, "output")?;
            Ok(PlanNode::Map {
                input: tip,
                udf,
                args,
            })
        });
        PlanVec {
            graph: self.graph,
            tip,
            _elem: PhantomData,
        }
    }

    /// Append an elementwise zip stage with a second input vector.
    pub fn zip<B: Pod, O: Pod>(self, other: &Vector<B>, skeleton: &Zip<T, B, O>) -> PlanVec<O> {
        self.zip_with(other, skeleton, Args::none())
    }

    /// Append an elementwise zip stage with additional scalar arguments.
    pub fn zip_with<B: Pod, O: Pod>(
        mut self,
        other: &Vector<B>,
        skeleton: &Zip<T, B, O>,
        args: Args,
    ) -> PlanVec<O> {
        let tip = self.tip;
        let tip = self.graph.admit(tip, |g| {
            let udf = skeleton.plan_udf()?;
            other.check_runtime(&g.runtime)?;
            let len = g.sources[0].src_len();
            if other.len() != len {
                return Err(SkelError::LengthMismatch {
                    left: len,
                    right: other.len(),
                });
            }
            g.check_chain(tip, &udf, "zip")?;
            let other_ty = check_elem_ty::<B>(&udf, "second input")?;
            if udf.main_params.len() < 2 || udf.main_params[1] != other_ty {
                return Err(SkelError::Plan(format!(
                    "zip stage expects `{}` as its second input but the vector holds `{other_ty}`",
                    udf.main_params
                        .get(1)
                        .map_or_else(|| "?".to_string(), std::string::ToString::to_string),
                )));
            }
            check_stage_args(&udf, &args)?;
            check_elem_ty::<O>(&udf, "output")?;
            let source = g.sources.len();
            g.sources.push(Arc::new(other.clone()));
            g.nodes.push(PlanNode::Source {
                source,
                ty: other_ty,
            });
            let other_node = g.nodes.len() - 1;
            Ok(PlanNode::Zip {
                input: tip,
                other: other_node,
                udf,
                args,
            })
        });
        PlanVec {
            graph: self.graph,
            tip,
            _elem: PhantomData,
        }
    }

    /// Terminate the chain with a full reduction.
    pub fn reduce(mut self, skeleton: &Reduce<T>) -> PlanScalar<T>
    where
        T: DeviceScalar,
    {
        let tip = self.tip;
        let tip = self.graph.admit(tip, |g| {
            let udf = skeleton.plan_udf()?;
            g.check_chain(tip, &udf, "reduce")?;
            Ok(PlanNode::Reduce { input: tip, udf })
        });
        PlanScalar {
            graph: self.graph,
            tip,
            _elem: PhantomData,
        }
    }

    /// Append an inclusive prefix scan (further stages may follow it).
    pub fn scan(mut self, skeleton: &Scan<T>) -> PlanVec<T>
    where
        T: DeviceScalar,
    {
        let tip = self.tip;
        let tip = self.graph.admit(tip, |g| {
            let udf = skeleton.plan_udf()?;
            g.check_chain(tip, &udf, "scan")?;
            Ok(PlanNode::Scan { input: tip, udf })
        });
        PlanVec {
            graph: self.graph,
            tip,
            _elem: PhantomData,
        }
    }

    /// Execute the plan and return the result vector.
    pub fn into_vector(&self) -> Result<Vector<T>> {
        match self.graph.execute(self.tip)? {
            ExecOutcome::Vector {
                len,
                distribution,
                buffers,
            } => Ok(Vector::device_resident(
                &self.graph.runtime,
                len,
                distribution,
                buffers,
            )),
            ExecOutcome::Scalar(_) => unreachable!("a PlanVec tip lowers to a vector"),
        }
    }

    /// Execute the plan ([`into_vector`](Self::into_vector) alias).
    pub fn exec(&self) -> Result<Vector<T>> {
        self.into_vector()
    }

    /// Execute the plan and download the result to the host.
    pub fn collect(&self) -> Result<Vec<T>> {
        self.into_vector()?.to_vec()
    }

    /// Render the DAG and the fusion pass's per-boundary verdicts without
    /// executing anything.
    pub fn explain(&self) -> Result<String> {
        self.graph.explain(self.tip)
    }

    /// The runtime the plan executes against.
    pub fn runtime(&self) -> Arc<SkelCl> {
        self.graph.runtime.clone()
    }

    /// Element count of the plan's primary input (and therefore its output).
    pub fn input_len(&self) -> usize {
        self.graph.sources[0].src_len()
    }

    /// Estimated device bytes the plan needs at once: every input source
    /// plus the output. Used by admission control to charge tenant quotas
    /// before execution.
    pub fn footprint_bytes(&self) -> usize {
        let mut bytes = self.input_len() * std::mem::size_of::<T>();
        for node in &self.graph.nodes {
            if let PlanNode::Source { source, ty } = node {
                bytes += self.graph.sources[*source].src_len() * ty.size_bytes();
            }
        }
        bytes
    }

    /// Re-establish a trustworthy device image of every input source before
    /// replaying the plan after an injected fault. A transiently failed
    /// upload is recorded by the coherence flags when *enqueued* but never
    /// executes, so a replay that skipped this step could compute on a
    /// buffer the data never reached. Serving-layer retries call this
    /// before re-queueing a job.
    pub fn refresh_for_replay(&self) -> Result<()> {
        self.graph.refresh_sources()
    }

    /// The plan's *coalescing signature*, if it has one: `Ok(Some(_))` when
    /// the whole pipeline is elementwise (a map/zip chain) and therefore
    /// packable into one launch with other plans of the same signature via
    /// [`PlanVec::pack_jobs`]. The signature captures the fused kernel
    /// source **and** the rendered scalar extra arguments, so two plans
    /// with equal signatures compute the exact same per-element function.
    /// `Ok(None)` means the plan contains a fold or stencil stage and must
    /// run on its own.
    pub fn coalesce_signature(&self) -> Result<Option<String>> {
        if let Some(err) = &self.graph.err {
            return Err(err.clone());
        }
        let spine = self.graph.spine(self.tip);
        if spine.len() < 2 {
            return Ok(None);
        }
        if !spine[1..].iter().all(|&i| {
            matches!(
                self.graph.nodes[i],
                PlanNode::Map { .. } | PlanNode::Zip { .. }
            )
        }) {
            return Ok(None);
        }
        let lowered = self.lower_whole_chain(&spine)?;
        Ok(Some(format!(
            "{}|{:?}",
            lowered.spec.map_kernel(),
            lowered.extra_args
        )))
    }

    /// Lower the full spine as one forced elementwise group (callers have
    /// already checked every stage is map/zip).
    fn lower_whole_chain(&self, spine: &[usize]) -> Result<LoweredGroup> {
        let group = Group {
            nodes: spine[1..].to_vec(),
            kind: GroupKind::Elementwise,
            decisions: Vec::new(),
        };
        lower_group(&self.graph.nodes, &group)
    }

    /// Pack many same-signature jobs into **one** kernel launch on `device`:
    /// each job's input elements are laid back to back in one buffer per
    /// kernel argument, the fused kernel runs once over the combined element
    /// count, and the returned [`PackedLaunch`] slices each job's span back
    /// out of the packed output. Both enqueues are non-blocking, so many
    /// packed launches can be in flight at once.
    ///
    /// Every job must share this plan's runtime and
    /// [`coalesce_signature`](Self::coalesce_signature); a single-job pack
    /// is valid (that is exactly how the serving layer runs uncoalesced
    /// jobs, which makes coalesced and uncoalesced results bit-identical by
    /// construction).
    pub fn pack_jobs(jobs: &[&PlanVec<T>], device: usize) -> Result<PackedLaunch<T>>
    where
        T: DeviceScalar,
    {
        let first = jobs
            .first()
            .ok_or_else(|| SkelError::Plan("pack_jobs needs at least one job".into()))?;
        let runtime = first.graph.runtime.clone();
        let signature = first.coalesce_signature()?.ok_or_else(|| {
            SkelError::Plan("job is not coalescible (only all-elementwise plans pack)".into())
        })?;
        for job in &jobs[1..] {
            if !Arc::ptr_eq(&job.graph.runtime, &runtime) {
                return Err(SkelError::RuntimeMismatch);
            }
            match job.coalesce_signature()? {
                Some(sig) if sig == signature => {}
                _ => {
                    return Err(SkelError::Plan(
                        "jobs with different kernels cannot pack into one launch".into(),
                    ))
                }
            }
        }
        let spine = first.graph.spine(first.tip);
        let lowered = first.lower_whole_chain(&spine)?;
        let mut spans = JobSpans::new();
        for job in jobs {
            let len = job.input_len();
            if len == 0 {
                return Err(SkelError::EmptyInput);
            }
            spans.push(len);
        }
        // Same telemetry as `execute()` would account per job: the packed
        // launch fuses the chain's interior stages away on one device.
        let merged = spine.len() - 2;
        if merged > 0 {
            let bytes: usize = spine[1..spine.len() - 1]
                .iter()
                .map(|&idx| spans.total() * node_out_ty(&first.graph.nodes, idx).size_bytes())
                .sum();
            runtime.charge_fusion(merged, merged, merged, bytes);
        }
        let mut buffers: Vec<Buffer> = Vec::new();
        match Self::pack_launch(&runtime, device, &lowered, jobs, &spans, &mut buffers) {
            Ok((kernel_event, read_event)) => Ok(PackedLaunch {
                runtime,
                device,
                spans,
                buffers,
                kernel_event,
                read_event,
                _elem: PhantomData,
            }),
            Err(e) => {
                for buffer in &buffers {
                    let _ = runtime.context().release_buffer(buffer);
                }
                Err(e)
            }
        }
    }

    /// Allocate + fill the packed input buffers and enqueue the fused
    /// kernel and the non-blocking packed-output read. Buffers are recorded
    /// in `buffers` as they are created so the caller can release them on
    /// any error.
    fn pack_launch(
        runtime: &Arc<SkelCl>,
        device: usize,
        lowered: &LoweredGroup,
        jobs: &[&PlanVec<T>],
        spans: &JobSpans,
        buffers: &mut Vec<Buffer>,
    ) -> Result<(oclsim::EventHandle, oclsim::EventHandle)>
    where
        T: DeviceScalar,
    {
        let context = runtime.context();
        let queue = runtime.queue(device);
        let total = spans.total();
        let mut kargs = Vec::with_capacity(lowered.inputs.len() + 2 + lowered.extra_args.len());
        for (slot, input) in lowered.inputs.iter().enumerate() {
            let source_index = match input {
                ChainInput::Chain => 0,
                ChainInput::Source(s) => *s,
            };
            let mut bytes: Vec<u8> = Vec::new();
            for job in jobs {
                bytes.extend_from_slice(&job.graph.sources[source_index].src_host_bytes()?);
            }
            let ty = lowered.spec.inputs[slot];
            with_scalar!(ty, S, {
                let data = oclsim::pod::from_bytes_vec::<S>(&bytes);
                if data.len() != total {
                    return Err(SkelError::Plan(format!(
                        "packed input slot {slot} holds {} elements, expected {total}",
                        data.len()
                    )));
                }
                let buffer = context.create_buffer::<S>(device, total)?;
                buffers.push(buffer.clone());
                queue.enqueue_write_buffer(&buffer, &data)?;
                kargs.push(KernelArg::Buffer(buffer));
            });
        }
        let out = context.create_buffer::<T>(device, total)?;
        buffers.push(out.clone());
        let program = context.build_program(&lowered.spec.map_kernel())?;
        let kernel = program.kernel(FUSED_MAP_KERNEL)?;
        kargs.push(KernelArg::Buffer(out.clone()));
        kargs.push(KernelArg::Scalar(Value::Int(total as i32)));
        kargs.extend(lowered.extra_args.iter().cloned());
        runtime.charge_skeleton_call();
        let kernel_event = queue.enqueue_kernel(&kernel, total, &kargs)?;
        let read_event = queue.enqueue_read_buffer_region_nb::<T>(&out, 0, total)?;
        Ok((kernel_event, read_event))
    }
}

/// An in-flight packed launch produced by [`PlanVec::pack_jobs`]: one fused
/// kernel running every packed job plus the non-blocking read of the packed
/// output. [`PackedLaunch::wait`] joins both events, advances the host's
/// virtual clock to the read's completion, releases the packed buffers back
/// to the device pool and splits the output into one `Vec` per job.
#[must_use = "a packed launch delivers results only through `wait()`"]
pub struct PackedLaunch<T: Pod> {
    runtime: Arc<SkelCl>,
    device: usize,
    spans: JobSpans,
    buffers: Vec<Buffer>,
    kernel_event: oclsim::EventHandle,
    read_event: oclsim::EventHandle,
    _elem: PhantomData<fn() -> T>,
}

impl<T: Pod> PackedLaunch<T> {
    /// The device the packed launch runs on.
    pub fn device(&self) -> usize {
        self.device
    }

    /// Number of jobs packed into the launch.
    pub fn jobs(&self) -> usize {
        self.spans.jobs()
    }

    /// Element layout of the packed jobs.
    pub fn spans(&self) -> &JobSpans {
        &self.spans
    }

    /// Join the launch: wait (real time) for the kernel and the packed read
    /// to settle, advance the host's virtual clock to the read's completion
    /// time, release the packed buffers and return each job's output slice
    /// plus the read's profiling event (whose `end` is the virtual
    /// completion time of every packed job).
    ///
    /// On failure the duplicate error latched on the queue is drained (the
    /// same discipline as the internal kernel-event join) so later packed
    /// launches on the queue start clean, and the buffers are still
    /// released.
    pub fn wait(self) -> Result<(Vec<Vec<T>>, oclsim::Event)>
    where
        T: DeviceScalar,
    {
        let queue = self.runtime.queue(self.device);
        let release = |buffers: &[Buffer]| {
            for buffer in buffers {
                let _ = self.runtime.context().release_buffer(buffer);
            }
        };
        if let Err(e) = self.kernel_event.wait() {
            let _ = queue.take_deferred_error();
            release(&self.buffers);
            return Err(e.into());
        }
        let mut data = vec![T::from_value(Value::Int(0)); self.spans.total()];
        let record = match self.read_event.wait_into(&mut data) {
            Ok(record) => record,
            Err(e) => {
                let _ = queue.take_deferred_error();
                release(&self.buffers);
                return Err(e.into());
            }
        };
        // The packed-output read is non-blocking (`wait_into` joins the
        // event directly), so it bypasses the blocking-read discipline that
        // surfaces the queue's deferred error. Inspect the latch explicitly:
        // a transiently failed packed-input *write* completes its own
        // (unwaited) handle with the error and latches it here — returning
        // the data without this check would hand back the zero-filled
        // buffer the upload never reached.
        if let Some(e) = queue.take_deferred_error() {
            release(&self.buffers);
            return Err(e.into());
        }
        self.runtime.context().sync_host_to(record.end);
        release(&self.buffers);
        Ok((self.spans.unpack(data), record))
    }
}

/// A lazily built pipeline terminated by a reduction; [`scalar`](Self::scalar)
/// executes it.
#[must_use = "a lazy plan does nothing until a terminal such as `scalar()` runs it"]
pub struct PlanScalar<T: DeviceScalar> {
    graph: PlanGraph,
    tip: usize,
    _elem: PhantomData<fn() -> T>,
}

impl<T: DeviceScalar> Clone for PlanScalar<T> {
    fn clone(&self) -> Self {
        PlanScalar {
            graph: self.graph.clone(),
            tip: self.tip,
            _elem: PhantomData,
        }
    }
}

impl<T: DeviceScalar> PlanScalar<T> {
    /// Override the fusion policy (default: [`FusionPolicy::Auto`]).
    pub fn policy(mut self, policy: FusionPolicy) -> Self {
        self.graph.policy = policy;
        self
    }

    /// Execute the plan and return the reduced scalar.
    pub fn scalar(&self) -> Result<T> {
        match self.graph.execute(self.tip)? {
            ExecOutcome::Scalar(value) => Ok(T::from_value(value)),
            ExecOutcome::Vector { .. } => unreachable!("a PlanScalar tip lowers to a scalar"),
        }
    }

    /// Execute the plan ([`scalar`](Self::scalar) alias).
    pub fn exec(&self) -> Result<T> {
        self.scalar()
    }

    /// Render the DAG and the fusion pass's per-boundary verdicts without
    /// executing anything.
    pub fn explain(&self) -> Result<String> {
        self.graph.explain(self.tip)
    }

    /// The runtime the plan executes against.
    pub fn runtime(&self) -> Arc<SkelCl> {
        self.graph.runtime.clone()
    }

    /// Element count of the plan's primary input.
    pub fn input_len(&self) -> usize {
        self.graph.sources[0].src_len()
    }

    /// Estimated device bytes the plan needs at once (every input source
    /// plus the per-device partials). Used by admission control to charge
    /// tenant quotas before execution.
    pub fn footprint_bytes(&self) -> usize {
        let mut bytes = std::mem::size_of::<T>();
        for node in &self.graph.nodes {
            if let PlanNode::Source { source, ty } = node {
                bytes += self.graph.sources[*source].src_len() * ty.size_bytes();
            }
        }
        bytes
    }

    /// Re-establish a trustworthy device image of every input source before
    /// replaying the plan after an injected fault (see
    /// [`PlanVec::refresh_for_replay`]).
    pub fn refresh_for_replay(&self) -> Result<()> {
        self.graph.refresh_sources()
    }
}

/// One stage of a matrix plan. Map stages carry their data in the node
/// table; stencil stages keep a borrow of the eager skeleton they lower to.
enum MatStage<'a> {
    Map,
    Overlap(&'a MapOverlap<f32, f32>, Args),
}

/// A lazily built matrix pipeline over `f32` elements, created by
/// [`Matrix::lazy`]. Adjacent map stages fuse into one composed kernel
/// (through `compose_unary_source`); stencil stages are barriers lowered
/// through the eager [`MapOverlap`] with its halo-exchange distribution.
#[must_use = "a lazy plan does nothing until a terminal such as `exec()` runs it"]
pub struct MatPlan<'a> {
    runtime: Arc<SkelCl>,
    matrix: Matrix<f32>,
    nodes: Vec<PlanNode>,
    stages: Vec<MatStage<'a>>,
    policy: FusionPolicy,
    err: Option<SkelError>,
}

impl<'a> MatPlan<'a> {
    pub(crate) fn new(matrix: &Matrix<f32>) -> MatPlan<'a> {
        MatPlan {
            runtime: matrix.runtime(),
            matrix: matrix.clone(),
            nodes: vec![PlanNode::Source {
                source: 0,
                ty: ScalarType::Float,
            }],
            stages: Vec::new(),
            policy: FusionPolicy::default(),
            err: None,
        }
    }

    fn admit(&mut self, build: impl FnOnce(&MatPlan<'a>) -> Result<(PlanNode, MatStage<'a>)>) {
        if self.err.is_some() {
            return;
        }
        match build(self) {
            Ok((node, stage)) => {
                self.nodes.push(node);
                self.stages.push(stage);
            }
            Err(e) => self.err = Some(e),
        }
    }

    /// Override the fusion policy (default: [`FusionPolicy::Auto`]).
    pub fn policy(mut self, policy: FusionPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Append an elementwise map stage.
    pub fn map(self, skeleton: &Map<f32, f32>) -> Self {
        self.map_with(skeleton, Args::none())
    }

    /// Append an elementwise map stage with additional scalar arguments.
    pub fn map_with(mut self, skeleton: &Map<f32, f32>, args: Args) -> Self {
        let input = self.nodes.len() - 1;
        self.admit(|_| {
            let udf = skeleton.plan_udf()?;
            if udf.main_params[0] != ScalarType::Float || udf.return_type != ScalarType::Float {
                return Err(SkelError::Plan(
                    "matrix pipeline stages must map float to float".into(),
                ));
            }
            check_stage_args(&udf, &args)?;
            Ok((
                PlanNode::Map {
                    input,
                    udf,
                    args: args.clone(),
                },
                MatStage::Map,
            ))
        });
        self
    }

    /// Append a stencil stage. Stencils never fuse with their neighbours
    /// (they read a halo, not one element), so this is a pipeline barrier.
    pub fn map_overlap(self, skeleton: &'a MapOverlap<f32, f32>) -> Self {
        self.map_overlap_with(skeleton, Args::none())
    }

    /// Append a stencil stage with additional arguments.
    pub fn map_overlap_with(mut self, skeleton: &'a MapOverlap<f32, f32>, args: Args) -> Self {
        let input = self.nodes.len() - 1;
        self.admit(|_| {
            Ok((
                PlanNode::MapOverlap {
                    input,
                    halo: skeleton.halo(),
                },
                MatStage::Overlap(skeleton, args.clone()),
            ))
        });
        self
    }

    fn device_items(&self) -> Vec<(usize, usize)> {
        Container::part_sizes(&self.matrix)
            .iter()
            .enumerate()
            .filter(|&(_, &n)| n > 0)
            .map(|(d, &n)| (d, n))
            .collect()
    }

    fn groups(&self) -> Result<Vec<Group>> {
        let spine: Vec<usize> = (0..self.nodes.len()).collect();
        let model = PerfModel::analytical(&self.runtime);
        plan_groups(
            &self.nodes,
            &spine,
            self.policy,
            &model,
            &self.device_items(),
        )
    }

    /// Execute the plan and return the result matrix.
    pub fn exec(&self) -> Result<Matrix<f32>> {
        if let Some(err) = &self.err {
            return Err(err.clone());
        }
        if self.nodes.len() < 2 {
            return Err(SkelError::Plan(
                "a lazy plan needs at least one stage before a terminal; \
                 call map or map_overlap first"
                    .into(),
            ));
        }
        if self.matrix.is_empty() {
            return Err(SkelError::EmptyInput);
        }
        let groups = self.groups()?;
        let mut current = self.matrix.clone();
        for group in &groups {
            match group.kind {
                GroupKind::Elementwise => {
                    let udfs: Vec<Arc<UdfInfo>> = group
                        .nodes
                        .iter()
                        .map(|&i| match &self.nodes[i] {
                            PlanNode::Map { udf, .. } => udf.clone(),
                            _ => unreachable!("matrix elementwise groups hold map stages"),
                        })
                        .collect();
                    let mut merged_args = Args::new();
                    for &i in &group.nodes {
                        if let PlanNode::Map { args, .. } = &self.nodes[i] {
                            for item in args.items() {
                                merged_args.push_item(item.clone());
                            }
                        }
                    }
                    let map = if udfs.len() == 1 {
                        Map::<f32, f32>::from_source(&udfs[0].source)
                    } else {
                        let (src, _) = compose_unary_source(&udfs)?;
                        Map::<f32, f32>::from_source(&src)
                    };
                    let cfg = LaunchConfig {
                        args: merged_args,
                        ..Default::default()
                    };
                    let next = Skeleton::execute(&map, &current, &cfg)?;
                    let merged = group.nodes.len() - 1;
                    if merged > 0 {
                        let items = self.device_items();
                        let active = items.len();
                        let stored: usize = items.iter().map(|&(_, n)| n).sum();
                        self.runtime.charge_fusion(
                            merged,
                            merged * active,
                            merged * active,
                            merged * stored * ScalarType::Float.size_bytes(),
                        );
                    }
                    current = next;
                }
                GroupKind::Overlap => {
                    let MatStage::Overlap(skeleton, args) = &self.stages[group.nodes[0] - 1] else {
                        unreachable!("overlap groups hold stencil stages")
                    };
                    let cfg = LaunchConfig {
                        args: args.clone(),
                        ..Default::default()
                    };
                    current = Skeleton::execute(*skeleton, &current, &cfg)?;
                }
                GroupKind::Reduce | GroupKind::Scan => {
                    unreachable!("matrix plans have no reduce/scan stage")
                }
            }
        }
        Ok(current)
    }

    /// Render the DAG and the fusion pass's per-boundary verdicts without
    /// executing anything.
    pub fn explain(&self) -> Result<String> {
        if let Some(err) = &self.err {
            return Err(err.clone());
        }
        let mut out = String::new();
        let _ = writeln!(
            out,
            "Plan: {} node(s) over 1 matrix ({}x{}), {} device(s), policy {:?}",
            self.nodes.len(),
            self.matrix.rows(),
            self.matrix.cols(),
            self.runtime.device_count(),
            self.policy
        );
        let _ = writeln!(out, "Kernel tier: {}", self.runtime.kernel_tier_summary());
        for (i, node) in self.nodes.iter().enumerate() {
            let line = match node {
                PlanNode::Source { .. } => format!(
                    "source[0] : float ({}x{}, {:?})",
                    self.matrix.rows(),
                    self.matrix.cols(),
                    self.matrix.distribution()
                ),
                PlanNode::Map { input, .. } => format!("map(%{input}) -> float"),
                PlanNode::MapOverlap { input, halo } => {
                    format!("map_overlap(%{input}, halo {halo}) -> float")
                }
                _ => unreachable!("matrix plans hold only map and map_overlap stages"),
            };
            let _ = writeln!(out, "  %{i} = {line}");
        }
        if self.nodes.len() < 2 {
            let _ = writeln!(out, "After fusion: nothing to run (the plan has no stage)");
            return Ok(out);
        }
        if self.matrix.is_empty() {
            let _ = writeln!(out, "After fusion: nothing to run (empty input)");
            return Ok(out);
        }
        let groups = self.groups()?;
        let _ = writeln!(out, "After fusion: {} launch group(s)", groups.len());
        for (gi, group) in groups.iter().enumerate() {
            let members: Vec<String> = group.nodes.iter().map(|i| format!("%{i}")).collect();
            let kernel = match group.kind {
                GroupKind::Elementwise => "SKELCL_MAP (composed)",
                GroupKind::Overlap => "SKELCL_MAP_OVERLAP",
                _ => unreachable!(),
            };
            let _ = writeln!(
                out,
                "  group {gi}: {kernel} over {} ({} stage(s) fused)",
                members.join(", "),
                group.nodes.len()
            );
            for (idx, decision) in &group.decisions {
                let verdict = if decision.fused { "fuse" } else { "split" };
                let why = if decision.forced {
                    "policy"
                } else {
                    "cost model"
                };
                let _ = writeln!(
                    out,
                    "    boundary before %{idx}: {verdict} ({why}; predicted fused {:.3} ms vs split {:.3} ms)",
                    decision.fused_time * 1e3,
                    decision.split_time * 1e3
                );
            }
        }
        Ok(out)
    }
}
