//! Error type of the SkelCL library.

use std::fmt;

use oclsim::OclError;
use skelcl_kernel::diag::KernelError;

/// Errors returned by SkelCL operations.
#[derive(Debug, Clone, PartialEq)]
pub enum SkelError {
    /// The underlying simulated OpenCL runtime reported an error.
    Ocl(OclError),
    /// Building or analysing a user-defined function failed.
    Udf(KernelError),
    /// Two vectors passed to one skeleton call belong to different SkelCL
    /// runtime instances.
    RuntimeMismatch,
    /// Two vectors passed to one skeleton call have incompatible lengths.
    LengthMismatch {
        /// Length of the first vector.
        left: usize,
        /// Length of the second vector.
        right: usize,
    },
    /// A skeleton was called with an empty input vector.
    EmptyInput,
    /// A user-defined function's signature does not match what the skeleton
    /// expects (wrong parameter count or unsupported parameter kinds).
    UdfSignature(String),
    /// An additional argument is not supported in the requested configuration
    /// (e.g. vector additional arguments with a source-string UDF).
    UnsupportedArg(String),
    /// A distribution-related operation was invalid.
    Distribution(String),
    /// A scheduling request could not be satisfied.
    Scheduler(String),
    /// A lazy pipeline plan could not be built or lowered (e.g. a stage uses
    /// a native Rust closure, which cannot be fused into generated source).
    Plan(String),
    /// An internal invariant was violated on a runtime path. Kept as a typed
    /// error instead of a panic so waiters and serving layers degrade
    /// gracefully instead of poisoning locks or deadlocking.
    Internal(String),
}

impl SkelError {
    /// Whether the error is (or wraps) the loss of a device — the permanent
    /// fault class the recovery layer re-partitions around.
    pub fn is_device_lost(&self) -> bool {
        matches!(self, SkelError::Ocl(e) if e.is_device_lost())
    }

    /// Whether the error originates from deterministic fault injection
    /// (device loss or a transient transfer/launch fault) and is therefore
    /// eligible for replay by the recovery layer.
    pub fn is_injected_fault(&self) -> bool {
        matches!(self, SkelError::Ocl(e) if e.is_injected_fault())
    }
}

impl fmt::Display for SkelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SkelError::Ocl(e) => write!(f, "OpenCL error: {e}"),
            SkelError::Udf(e) => write!(f, "user-defined function error: {e}"),
            SkelError::RuntimeMismatch => {
                write!(f, "vectors belong to different SkelCL runtime instances")
            }
            SkelError::LengthMismatch { left, right } => {
                write!(f, "vector length mismatch: {left} vs {right}")
            }
            SkelError::EmptyInput => write!(f, "skeleton called with an empty input vector"),
            SkelError::UdfSignature(msg) => write!(f, "user-defined function signature: {msg}"),
            SkelError::UnsupportedArg(msg) => write!(f, "unsupported additional argument: {msg}"),
            SkelError::Distribution(msg) => write!(f, "distribution error: {msg}"),
            SkelError::Scheduler(msg) => write!(f, "scheduler error: {msg}"),
            SkelError::Plan(msg) => write!(f, "pipeline plan error: {msg}"),
            SkelError::Internal(msg) => write!(f, "internal runtime error: {msg}"),
        }
    }
}

impl std::error::Error for SkelError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SkelError::Ocl(e) => Some(e),
            SkelError::Udf(e) => Some(e),
            _ => None,
        }
    }
}

impl From<OclError> for SkelError {
    fn from(e: OclError) -> Self {
        SkelError::Ocl(e)
    }
}

impl From<KernelError> for SkelError {
    fn from(e: KernelError) -> Self {
        SkelError::Udf(e)
    }
}

/// Convenience result alias.
pub type Result<T> = std::result::Result<T, SkelError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_conversions() {
        let e: SkelError = OclError::NoSuchKernel("x".into()).into();
        assert!(e.to_string().contains("OpenCL error"));
        let e: SkelError = KernelError::run("bad").into();
        assert!(e.to_string().contains("user-defined function"));
        assert!(SkelError::LengthMismatch { left: 3, right: 4 }
            .to_string()
            .contains("3 vs 4"));
    }
}
