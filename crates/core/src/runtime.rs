//! The SkelCL runtime: device discovery, queues and global bookkeeping.
//!
//! Mirrors the `skelcl::init()` entry point of the C++ library: the user
//! initialises the runtime once, stating which devices to use, and then
//! creates [`crate::vector::Vector`]s and skeletons against it.

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use oclsim::{ApiModel, CommandQueue, Context, DeviceProfile, SimDuration, SimTime, Tier};

use crate::error::Result;

/// Which devices to use: at runtime initialisation this selects the devices
/// the runtime is built from; passed to a skeleton `Launch` it restricts the
/// devices participating in that call.
#[derive(Debug, Clone)]
pub enum DeviceSelection {
    /// Every available device: all GPUs of the default platform at init
    /// time, or all devices of the runtime at launch time.
    All,
    /// All GPUs of the default platform (the paper's default).
    AllGpus,
    /// The first `n` GPUs of the default platform.
    Gpus(usize),
    /// An explicit list of device profiles (used for heterogeneous set-ups
    /// and by the dOpenCL layer, which contributes remote devices).
    Profiles(Vec<DeviceProfile>),
}

/// The SkelCL runtime. Holds the underlying (simulated) OpenCL context, one
/// in-order command queue per device, and counters used by the benchmark
/// harnesses.
pub struct SkelCl {
    context: Context,
    queues: Vec<CommandQueue>,
    skeleton_calls: AtomicUsize,
    vector_ids: AtomicU64,
    /// Per-device halo-exchange transfer counts (stencil redistribution).
    halo_transfers: Vec<AtomicUsize>,
    /// Per-device halo-exchange bytes moved.
    halo_bytes: Vec<AtomicUsize>,
    /// Pipeline stages merged into another stage's kernel by plan fusion.
    kernels_fused: AtomicUsize,
    /// Per-device kernel launches avoided by plan fusion.
    launches_elided: AtomicUsize,
    /// Intermediate device buffers never allocated thanks to plan fusion.
    intermediate_buffers_elided: AtomicUsize,
    /// Bytes of intermediate device storage never allocated thanks to plan
    /// fusion.
    intermediate_bytes_elided: AtomicUsize,
    /// Node id of each device — devices sharing a node fail together under
    /// node-level fault injection and are preferred when re-homing a lost
    /// device's share of the data. Defaults to one node per device.
    node_topology: Mutex<Vec<usize>>,
    /// Whether the fault-recovery layer wraps skeleton launches (on by
    /// default; see [`SkelCl::set_recovery_enabled`]).
    recovery_enabled: AtomicBool,
    /// Skeleton launches successfully recovered after an injected fault.
    recoveries: AtomicUsize,
    /// Kernel launches replayed by the recovery layer.
    replayed_launches: AtomicUsize,
    /// Container re-partitions performed to move work off lost devices.
    repartitions: AtomicUsize,
    /// Bytes gathered to the host by iterative-stencil checkpoints.
    checkpoint_bytes: AtomicUsize,
}

/// One runtime telemetry snapshot: the library-level view of the execution
/// counters that benches and the scheduler previously had to collect by
/// poking [`oclsim::Context`] and its devices directly. Obtained from
/// [`SkelCl::exec_trace`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ExecTrace {
    /// Skeleton invocations so far.
    pub skeleton_calls: usize,
    /// Allocations served from the device buffer pools.
    pub buffer_pool_hits: usize,
    /// Released allocations currently parked across all pools.
    pub pooled_buffers: usize,
    /// Bytes of storage currently parked across all pools.
    pub pooled_bytes: usize,
    /// Distinct kernel programs built (and cached) so far.
    pub programs_built: usize,
    /// Pipeline stages merged into another stage's kernel by plan fusion
    /// (a fused group of `k` stages contributes `k - 1`).
    pub kernels_fused: usize,
    /// Per-device kernel launches avoided by plan fusion.
    pub launches_elided: usize,
    /// Intermediate device buffers never allocated thanks to plan fusion.
    pub intermediate_buffers_elided: usize,
    /// Bytes of intermediate device storage never allocated thanks to plan
    /// fusion.
    pub intermediate_bytes_elided: usize,
    /// Parked allocations evicted by buffer-pool cap trims (see
    /// [`oclsim::Context::set_pool_cap_bytes`]).
    pub pool_evictions: usize,
    /// Bytes evicted by buffer-pool cap trims.
    pub pool_evicted_bytes: usize,
    /// Injected faults that actually fired (primary trigger firings only —
    /// the cascade of failures a lost device produces afterwards is not
    /// counted again).
    pub faults_injected: usize,
    /// Skeleton launches successfully recovered after an injected fault.
    pub recoveries: usize,
    /// Kernel launches replayed by the recovery layer.
    pub replayed_launches: usize,
    /// Container re-partitions performed to move work off lost devices.
    pub repartitions: usize,
    /// Bytes gathered to the host by iterative-stencil checkpoints.
    pub checkpoint_bytes: usize,
    /// Per-device counters, indexed by device.
    pub devices: Vec<DeviceTrace>,
}

impl ExecTrace {
    /// Total halo-exchange transfers across all devices.
    pub fn halo_transfers(&self) -> usize {
        self.devices.iter().map(|d| d.halo_transfers).sum()
    }

    /// Total halo-exchange bytes across all devices.
    pub fn halo_bytes(&self) -> usize {
        self.devices.iter().map(|d| d.halo_bytes).sum()
    }

    /// Total kernel-language launches handled by the AST interpreter.
    pub fn interp_launches(&self) -> usize {
        self.devices.iter().map(|d| d.interp_launches).sum()
    }

    /// Total kernel-language launches handled by the scalar VM.
    pub fn scalar_launches(&self) -> usize {
        self.devices.iter().map(|d| d.scalar_launches).sum()
    }

    /// Total kernel-language launches handled by the lane-batched VM.
    pub fn batched_launches(&self) -> usize {
        self.devices.iter().map(|d| d.batched_launches).sum()
    }

    /// Total kernel-language launches handled by the native tier.
    pub fn native_launches(&self) -> usize {
        self.devices.iter().map(|d| d.native_launches).sum()
    }

    /// Total kernels compiled to the native tier across all devices.
    pub fn native_compiles(&self) -> usize {
        self.devices.iter().map(|d| d.native_compiles).sum()
    }

    /// Total nanoseconds spent compiling kernels to the native tier.
    pub fn native_compile_ns(&self) -> u64 {
        self.devices.iter().map(|d| d.native_compile_ns).sum()
    }

    /// Total commands that failed asynchronously and latched a deferred
    /// error on their queue, across all devices.
    pub fn deferred_errors(&self) -> usize {
        self.devices.iter().map(|d| d.deferred_errors).sum()
    }
}

/// Per-device slice of an [`ExecTrace`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DeviceTrace {
    /// Device index within the runtime.
    pub device: usize,
    /// Halo-exchange transfers this device took part in (as source or
    /// destination).
    pub halo_transfers: usize,
    /// Bytes this device moved in halo exchanges.
    pub halo_bytes: usize,
    /// Allocations served from this device's buffer pool.
    pub pool_hits: usize,
    /// Bytes of storage parked in this device's buffer pool.
    pub pooled_bytes: usize,
    /// Kernel-language launches executed by the AST interpreter.
    pub interp_launches: usize,
    /// Kernel-language launches executed by the scalar VM.
    pub scalar_launches: usize,
    /// Kernel-language launches executed by the lane-batched VM.
    pub batched_launches: usize,
    /// Kernel-language launches executed by the closure-compiled native tier.
    pub native_launches: usize,
    /// Kernels compiled to the native tier on this device.
    pub native_compiles: usize,
    /// Nanoseconds spent compiling kernels to the native tier on this device.
    pub native_compile_ns: u64,
    /// Commands on this device's queue that failed asynchronously and
    /// latched a deferred error (see
    /// [`oclsim::CommandQueue::take_deferred_error`]).
    pub deferred_errors: usize,
}

impl SkelCl {
    /// Initialise the runtime with the default SkelCL API model.
    pub fn init(selection: DeviceSelection) -> Arc<SkelCl> {
        Self::init_with_api(selection, ApiModel::skelcl())
    }

    /// Initialise the runtime with an explicit API model (used by the
    /// benchmark harnesses to run the same program under OpenCL- or
    /// CUDA-equivalent cost constants).
    pub fn init_with_api(selection: DeviceSelection, api: ApiModel) -> Arc<SkelCl> {
        let profiles = match selection {
            DeviceSelection::All | DeviceSelection::AllGpus => {
                oclsim::select_gpus(4).unwrap_or_default()
            }
            DeviceSelection::Gpus(n) => oclsim::select_gpus(n).unwrap_or_default(),
            DeviceSelection::Profiles(p) => p,
        };
        let profiles = if profiles.is_empty() {
            vec![DeviceProfile::tesla_c1060()]
        } else {
            profiles
        };
        let context = Context::new(profiles, api);
        let queues = (0..context.device_count())
            .map(|i| context.queue(i).expect("device index within range"))
            .collect();
        let devices = context.device_count();
        Arc::new(SkelCl {
            context,
            queues,
            skeleton_calls: AtomicUsize::new(0),
            vector_ids: AtomicU64::new(1),
            halo_transfers: (0..devices).map(|_| AtomicUsize::new(0)).collect(),
            halo_bytes: (0..devices).map(|_| AtomicUsize::new(0)).collect(),
            kernels_fused: AtomicUsize::new(0),
            launches_elided: AtomicUsize::new(0),
            intermediate_buffers_elided: AtomicUsize::new(0),
            intermediate_bytes_elided: AtomicUsize::new(0),
            node_topology: Mutex::new((0..devices).collect()),
            recovery_enabled: AtomicBool::new(true),
            recoveries: AtomicUsize::new(0),
            replayed_launches: AtomicUsize::new(0),
            repartitions: AtomicUsize::new(0),
            checkpoint_bytes: AtomicUsize::new(0),
        })
    }

    /// The underlying simulated OpenCL context.
    pub fn context(&self) -> &Context {
        &self.context
    }

    /// Pin the kernel-language execution tier for every kernel the runtime
    /// launches from now on — [`Tier::Interp`] through [`Tier::Native`] force
    /// one engine, [`Tier::Auto`] (the default) graduates hot kernels to the
    /// native tier heuristically. Applies to already-built (cached) programs
    /// as well as future builds, and overrides the `SKELCL_KERNEL_TIER`
    /// environment variable. All tiers are bit-identical in results and
    /// execution statistics; only throughput differs.
    pub fn set_kernel_tier(&self, tier: Tier) {
        self.context.set_kernel_tier(tier);
    }

    /// One-line description of the kernel-tier selection in effect (rendered
    /// by `Plan::explain`): the pinned tier if one was set via
    /// [`SkelCl::set_kernel_tier`] or `SKELCL_KERNEL_TIER`, otherwise the
    /// auto-graduation heuristic with its thresholds.
    pub fn kernel_tier_summary(&self) -> String {
        use skelcl_kernel::native::{AUTO_MIN_LAUNCHES, AUTO_MIN_SIZE, AUTO_SIZE_IMMEDIATE};
        if let Some(tier) = self.context.kernel_tier() {
            if tier != Tier::Auto {
                return format!("{tier} (pinned via set_kernel_tier)");
            }
        } else if let Ok(v) = std::env::var("SKELCL_KERNEL_TIER") {
            if let Ok(tier) = Tier::parse(&v) {
                if tier != Tier::Auto {
                    return format!("{tier} (pinned via SKELCL_KERNEL_TIER)");
                }
            }
        }
        format!(
            "auto (native from {AUTO_SIZE_IMMEDIATE} items, \
             or after {AUTO_MIN_LAUNCHES} launches at {AUTO_MIN_SIZE}+ items)"
        )
    }

    /// Number of devices the runtime uses.
    pub fn device_count(&self) -> usize {
        self.context.device_count()
    }

    /// The command queue of device `index`.
    pub fn queue(&self, index: usize) -> &CommandQueue {
        &self.queues[index]
    }

    /// All command queues, indexed by device.
    pub fn queues(&self) -> &[CommandQueue] {
        &self.queues
    }

    /// Current host virtual time — the value reported by the benchmark
    /// harnesses as "runtime".
    pub fn now(&self) -> SimTime {
        self.context.host_now()
    }

    /// Virtual time elapsed since `earlier`.
    pub fn elapsed_since(&self, earlier: SimTime) -> SimDuration {
        self.now() - earlier
    }

    /// Record one skeleton invocation and charge the SkelCL dispatch
    /// overhead (the library-layer cost on top of raw OpenCL measured as
    /// < 5 % in the paper).
    pub(crate) fn charge_skeleton_call(&self) {
        self.skeleton_calls.fetch_add(1, Ordering::Relaxed);
        let overhead = self.context.api().dispatch_overhead;
        self.context.charge_host(overhead);
    }

    /// Number of skeleton invocations so far.
    pub fn skeleton_calls(&self) -> usize {
        self.skeleton_calls.load(Ordering::Relaxed)
    }

    /// Record one halo-exchange transfer of `bytes` bytes involving
    /// `device` (called by the matrix halo machinery for both the source
    /// read and the destination write of each exchange).
    pub(crate) fn charge_halo_transfer(&self, device: usize, bytes: usize) {
        self.halo_transfers[device].fetch_add(1, Ordering::Relaxed);
        self.halo_bytes[device].fetch_add(bytes, Ordering::Relaxed);
    }

    /// Record the effect of one fused plan group: `stages_merged` pipeline
    /// stages disappeared into another stage's kernel, eliding
    /// `launches_elided` per-device launches, `buffers_elided` intermediate
    /// device buffers and `bytes_elided` bytes of intermediate storage.
    pub(crate) fn charge_fusion(
        &self,
        stages_merged: usize,
        launches_elided: usize,
        buffers_elided: usize,
        bytes_elided: usize,
    ) {
        self.kernels_fused
            .fetch_add(stages_merged, Ordering::Relaxed);
        self.launches_elided
            .fetch_add(launches_elided, Ordering::Relaxed);
        self.intermediate_buffers_elided
            .fetch_add(buffers_elided, Ordering::Relaxed);
        self.intermediate_bytes_elided
            .fetch_add(bytes_elided, Ordering::Relaxed);
    }

    /// Snapshot the runtime's execution telemetry: skeleton calls, buffer
    /// pool statistics and the per-device halo-exchange counters. This is
    /// the supported read path for benches and schedulers — no need to walk
    /// [`SkelCl::context`] and its devices by hand.
    pub fn exec_trace(&self) -> ExecTrace {
        let devices = (0..self.device_count())
            .map(|d| {
                let dev = self
                    .context
                    .device(d)
                    .expect("device index within runtime range");
                let tiers = dev.kernel_tiers();
                DeviceTrace {
                    device: d,
                    halo_transfers: self.halo_transfers[d].load(Ordering::Relaxed),
                    halo_bytes: self.halo_bytes[d].load(Ordering::Relaxed),
                    pool_hits: dev.pool_hit_count(),
                    pooled_bytes: dev.pooled_bytes(),
                    interp_launches: tiers.interp_launches,
                    scalar_launches: tiers.scalar_launches,
                    batched_launches: tiers.batched_launches,
                    native_launches: tiers.native_launches,
                    native_compiles: tiers.native_compiles,
                    native_compile_ns: tiers.native_compile_ns,
                    deferred_errors: self.queues[d].deferred_error_count(),
                }
            })
            .collect();
        ExecTrace {
            skeleton_calls: self.skeleton_calls(),
            buffer_pool_hits: self.context.buffer_pool_hits(),
            pooled_buffers: self.context.pooled_buffers(),
            pooled_bytes: self.context.pooled_bytes(),
            programs_built: self.context.built_program_count(),
            kernels_fused: self.kernels_fused.load(Ordering::Relaxed),
            launches_elided: self.launches_elided.load(Ordering::Relaxed),
            intermediate_buffers_elided: self.intermediate_buffers_elided.load(Ordering::Relaxed),
            intermediate_bytes_elided: self.intermediate_bytes_elided.load(Ordering::Relaxed),
            pool_evictions: self.context.pool_evictions(),
            pool_evicted_bytes: self.context.pool_evicted_bytes(),
            faults_injected: self.context.faults_injected(),
            recoveries: self.recoveries.load(Ordering::Relaxed),
            replayed_launches: self.replayed_launches.load(Ordering::Relaxed),
            repartitions: self.repartitions.load(Ordering::Relaxed),
            checkpoint_bytes: self.checkpoint_bytes.load(Ordering::Relaxed),
            devices,
        }
    }

    // -----------------------------------------------------------------------
    // Fault tolerance
    // -----------------------------------------------------------------------

    /// Declare which node each device lives on (one entry per device).
    /// Devices on the same node fail together under node-level fault
    /// injection, and the recovery layer prefers surviving same-node devices
    /// when re-homing a lost device's share of the data. The default
    /// topology places every device on its own node. Entries beyond the
    /// device count are ignored; missing entries keep their default.
    pub fn set_node_topology(&self, nodes: Vec<usize>) {
        let mut topo = self.node_topology.lock();
        for (d, node) in nodes.into_iter().enumerate().take(topo.len()) {
            topo[d] = node;
        }
    }

    /// The node id of each device (see [`SkelCl::set_node_topology`]).
    pub fn node_topology(&self) -> Vec<usize> {
        self.node_topology.lock().clone()
    }

    /// Enable or disable replay-based fault recovery (enabled by default).
    /// With recovery disabled, injected faults surface directly as typed
    /// [`crate::SkelError::Ocl`] errors.
    pub fn set_recovery_enabled(&self, enabled: bool) {
        self.recovery_enabled.store(enabled, Ordering::SeqCst);
    }

    /// Whether replay-based fault recovery is enabled.
    pub fn recovery_enabled(&self) -> bool {
        self.recovery_enabled.load(Ordering::SeqCst)
    }

    /// Arm a deterministic fault plan on the runtime's devices (convenience
    /// passthrough to [`oclsim::Context::inject_faults`]).
    pub fn inject_faults(&self, plan: &oclsim::FaultPlan) {
        self.context.inject_faults(plan);
    }

    /// Devices that have been lost (permanently failed).
    pub fn lost_devices(&self) -> Vec<usize> {
        self.context.lost_devices()
    }

    /// Per-device weights for re-partitioning work onto the surviving
    /// devices: survivors start at weight 1, lost devices get 0, and each
    /// lost device's share goes preferentially to surviving devices on the
    /// same node (split evenly among them). Returns `None` when no device
    /// survives.
    pub fn recovery_weights(&self) -> Option<Vec<f64>> {
        let n = self.device_count();
        let lost: Vec<bool> = (0..n)
            .map(|d| {
                self.context
                    .device(d)
                    .map(|dev| dev.is_lost())
                    .unwrap_or(true)
            })
            .collect();
        if lost.iter().all(|&l| l) {
            return None;
        }
        let topo = self.node_topology.lock().clone();
        let mut weights: Vec<f64> = lost.iter().map(|&l| if l { 0.0 } else { 1.0 }).collect();
        for d in 0..n {
            if !lost[d] {
                continue;
            }
            let peers: Vec<usize> = (0..n).filter(|&p| !lost[p] && topo[p] == topo[d]).collect();
            if peers.is_empty() {
                // No same-node survivor: the share spreads evenly across all
                // survivors through weight normalisation.
                continue;
            }
            let share = 1.0 / peers.len() as f64;
            for p in peers {
                weights[p] += share;
            }
        }
        Some(weights)
    }

    /// Record one successful launch recovery.
    pub(crate) fn note_recovery(&self) {
        self.recoveries.fetch_add(1, Ordering::Relaxed);
    }

    /// Record `n` kernel launches replayed by the recovery layer.
    pub(crate) fn note_replayed_launches(&self, n: usize) {
        self.replayed_launches.fetch_add(n, Ordering::Relaxed);
    }

    /// Record one recovery re-partition.
    pub(crate) fn note_repartition(&self) {
        self.repartitions.fetch_add(1, Ordering::Relaxed);
    }

    /// Record `bytes` gathered to the host by an iterative-stencil
    /// checkpoint.
    pub(crate) fn note_checkpoint_bytes(&self, bytes: usize) {
        self.checkpoint_bytes.fetch_add(bytes, Ordering::Relaxed);
    }

    /// Drain the deferred (asynchronously latched) error of every queue,
    /// returning the first error found per device. Fire-and-forget callers
    /// — the serving layer above all — use this to make sure failed
    /// launches surface instead of being swallowed until the next blocking
    /// read on the same queue. The latched-error *count* stays visible in
    /// [`ExecTrace::deferred_errors`] even after draining.
    pub fn take_deferred_errors(&self) -> Vec<(usize, oclsim::OclError)> {
        self.queues
            .iter()
            .enumerate()
            .filter_map(|(d, q)| q.take_deferred_error().map(|e| (d, e)))
            .collect()
    }

    /// Allocate a fresh vector id (used to detect runtime mismatches).
    pub(crate) fn next_vector_id(&self) -> u64 {
        self.vector_ids.fetch_add(1, Ordering::Relaxed)
    }

    /// Synchronise: wait (in virtual time) for all devices to finish.
    pub fn finish_all(&self) -> SimTime {
        let mut latest = self.now();
        for q in &self.queues {
            latest = latest.max(q.finish());
        }
        latest
    }

    /// Drain the profiling events of every queue (oldest first, grouped by
    /// device). Used by harnesses that report per-phase breakdowns.
    pub fn drain_events(&self) -> Vec<Vec<oclsim::Event>> {
        self.queues
            .iter()
            .map(|q| {
                let evs = q.events();
                q.clear_events();
                evs
            })
            .collect()
    }
}

impl std::fmt::Debug for SkelCl {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SkelCl")
            .field("devices", &self.device_count())
            .field("api", &self.context.api().name)
            .field("skeleton_calls", &self.skeleton_calls())
            .finish()
    }
}

/// Initialise a SkelCL runtime on `n` simulated Tesla GPUs — the most common
/// configuration in tests and examples.
pub fn init_gpus(n: usize) -> Arc<SkelCl> {
    SkelCl::init(DeviceSelection::Profiles(vec![
        DeviceProfile::tesla_c1060();
        n
    ]))
}

/// Convenience used throughout the test-suite: a small runtime whose device
/// count is easy to vary.
pub fn init_profiles(profiles: Vec<DeviceProfile>) -> Arc<SkelCl> {
    SkelCl::init(DeviceSelection::Profiles(profiles))
}

/// Result alias re-export for convenience in examples.
pub type SkelResult<T> = Result<T>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn init_selects_devices() {
        let rt = SkelCl::init(DeviceSelection::AllGpus);
        assert_eq!(rt.device_count(), 4, "the default platform has 4 GPUs");
        let rt = SkelCl::init(DeviceSelection::Gpus(2));
        assert_eq!(rt.device_count(), 2);
        let rt = init_gpus(3);
        assert_eq!(rt.device_count(), 3);
        assert_eq!(rt.context().api().name, "SkelCL");
    }

    #[test]
    fn init_with_empty_selection_falls_back_to_one_gpu() {
        let rt = SkelCl::init(DeviceSelection::Profiles(vec![]));
        assert_eq!(rt.device_count(), 1);
    }

    #[test]
    fn skeleton_calls_charge_dispatch_overhead() {
        let rt = init_gpus(1);
        let before = rt.now();
        rt.charge_skeleton_call();
        rt.charge_skeleton_call();
        assert_eq!(rt.skeleton_calls(), 2);
        assert!(rt.now() > before);
    }

    #[test]
    fn finish_all_advances_host_to_latest_queue() {
        let rt = init_gpus(2);
        let buf = rt.context().create_buffer::<f32>(1, 1 << 16).unwrap();
        rt.queue(1)
            .enqueue_write_buffer(&buf, &vec![0.0f32; 1 << 16])
            .unwrap();
        let t = rt.finish_all();
        assert!(t >= rt.queue(1).available_at());
    }

    #[test]
    fn vector_ids_are_unique() {
        let rt = init_gpus(1);
        let a = rt.next_vector_id();
        let b = rt.next_vector_id();
        assert_ne!(a, b);
    }
}
