//! The SkelCL runtime: device discovery, queues and global bookkeeping.
//!
//! Mirrors the `skelcl::init()` entry point of the C++ library: the user
//! initialises the runtime once, stating which devices to use, and then
//! creates [`crate::vector::Vector`]s and skeletons against it.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

use oclsim::{ApiModel, CommandQueue, Context, DeviceProfile, SimDuration, SimTime};

use crate::error::Result;

/// Which devices to use: at runtime initialisation this selects the devices
/// the runtime is built from; passed to a skeleton `Launch` it restricts the
/// devices participating in that call.
#[derive(Debug, Clone)]
pub enum DeviceSelection {
    /// Every available device: all GPUs of the default platform at init
    /// time, or all devices of the runtime at launch time.
    All,
    /// All GPUs of the default platform (the paper's default).
    AllGpus,
    /// The first `n` GPUs of the default platform.
    Gpus(usize),
    /// An explicit list of device profiles (used for heterogeneous set-ups
    /// and by the dOpenCL layer, which contributes remote devices).
    Profiles(Vec<DeviceProfile>),
}

/// The SkelCL runtime. Holds the underlying (simulated) OpenCL context, one
/// in-order command queue per device, and counters used by the benchmark
/// harnesses.
pub struct SkelCl {
    context: Context,
    queues: Vec<CommandQueue>,
    skeleton_calls: AtomicUsize,
    vector_ids: AtomicU64,
}

impl SkelCl {
    /// Initialise the runtime with the default SkelCL API model.
    pub fn init(selection: DeviceSelection) -> Arc<SkelCl> {
        Self::init_with_api(selection, ApiModel::skelcl())
    }

    /// Initialise the runtime with an explicit API model (used by the
    /// benchmark harnesses to run the same program under OpenCL- or
    /// CUDA-equivalent cost constants).
    pub fn init_with_api(selection: DeviceSelection, api: ApiModel) -> Arc<SkelCl> {
        let profiles = match selection {
            DeviceSelection::All | DeviceSelection::AllGpus => {
                oclsim::select_gpus(4).unwrap_or_default()
            }
            DeviceSelection::Gpus(n) => oclsim::select_gpus(n).unwrap_or_default(),
            DeviceSelection::Profiles(p) => p,
        };
        let profiles = if profiles.is_empty() {
            vec![DeviceProfile::tesla_c1060()]
        } else {
            profiles
        };
        let context = Context::new(profiles, api);
        let queues = (0..context.device_count())
            .map(|i| context.queue(i).expect("device index within range"))
            .collect();
        Arc::new(SkelCl {
            context,
            queues,
            skeleton_calls: AtomicUsize::new(0),
            vector_ids: AtomicU64::new(1),
        })
    }

    /// The underlying simulated OpenCL context.
    pub fn context(&self) -> &Context {
        &self.context
    }

    /// Number of devices the runtime uses.
    pub fn device_count(&self) -> usize {
        self.context.device_count()
    }

    /// The command queue of device `index`.
    pub fn queue(&self, index: usize) -> &CommandQueue {
        &self.queues[index]
    }

    /// All command queues, indexed by device.
    pub fn queues(&self) -> &[CommandQueue] {
        &self.queues
    }

    /// Current host virtual time — the value reported by the benchmark
    /// harnesses as "runtime".
    pub fn now(&self) -> SimTime {
        self.context.host_now()
    }

    /// Virtual time elapsed since `earlier`.
    pub fn elapsed_since(&self, earlier: SimTime) -> SimDuration {
        self.now() - earlier
    }

    /// Record one skeleton invocation and charge the SkelCL dispatch
    /// overhead (the library-layer cost on top of raw OpenCL measured as
    /// < 5 % in the paper).
    pub(crate) fn charge_skeleton_call(&self) {
        self.skeleton_calls.fetch_add(1, Ordering::Relaxed);
        let overhead = self.context.api().dispatch_overhead;
        self.context.charge_host(overhead);
    }

    /// Number of skeleton invocations so far.
    pub fn skeleton_calls(&self) -> usize {
        self.skeleton_calls.load(Ordering::Relaxed)
    }

    /// Allocate a fresh vector id (used to detect runtime mismatches).
    pub(crate) fn next_vector_id(&self) -> u64 {
        self.vector_ids.fetch_add(1, Ordering::Relaxed)
    }

    /// Synchronise: wait (in virtual time) for all devices to finish.
    pub fn finish_all(&self) -> SimTime {
        let mut latest = self.now();
        for q in &self.queues {
            latest = latest.max(q.finish());
        }
        latest
    }

    /// Drain the profiling events of every queue (oldest first, grouped by
    /// device). Used by harnesses that report per-phase breakdowns.
    pub fn drain_events(&self) -> Vec<Vec<oclsim::Event>> {
        self.queues
            .iter()
            .map(|q| {
                let evs = q.events();
                q.clear_events();
                evs
            })
            .collect()
    }
}

impl std::fmt::Debug for SkelCl {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SkelCl")
            .field("devices", &self.device_count())
            .field("api", &self.context.api().name)
            .field("skeleton_calls", &self.skeleton_calls())
            .finish()
    }
}

/// Initialise a SkelCL runtime on `n` simulated Tesla GPUs — the most common
/// configuration in tests and examples.
pub fn init_gpus(n: usize) -> Arc<SkelCl> {
    SkelCl::init(DeviceSelection::Profiles(vec![
        DeviceProfile::tesla_c1060();
        n
    ]))
}

/// Convenience used throughout the test-suite: a small runtime whose device
/// count is easy to vary.
pub fn init_profiles(profiles: Vec<DeviceProfile>) -> Arc<SkelCl> {
    SkelCl::init(DeviceSelection::Profiles(profiles))
}

/// Result alias re-export for convenience in examples.
pub type SkelResult<T> = Result<T>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn init_selects_devices() {
        let rt = SkelCl::init(DeviceSelection::AllGpus);
        assert_eq!(rt.device_count(), 4, "the default platform has 4 GPUs");
        let rt = SkelCl::init(DeviceSelection::Gpus(2));
        assert_eq!(rt.device_count(), 2);
        let rt = init_gpus(3);
        assert_eq!(rt.device_count(), 3);
        assert_eq!(rt.context().api().name, "SkelCL");
    }

    #[test]
    fn init_with_empty_selection_falls_back_to_one_gpu() {
        let rt = SkelCl::init(DeviceSelection::Profiles(vec![]));
        assert_eq!(rt.device_count(), 1);
    }

    #[test]
    fn skeleton_calls_charge_dispatch_overhead() {
        let rt = init_gpus(1);
        let before = rt.now();
        rt.charge_skeleton_call();
        rt.charge_skeleton_call();
        assert_eq!(rt.skeleton_calls(), 2);
        assert!(rt.now() > before);
    }

    #[test]
    fn finish_all_advances_host_to_latest_queue() {
        let rt = init_gpus(2);
        let buf = rt.context().create_buffer::<f32>(1, 1 << 16).unwrap();
        rt.queue(1)
            .enqueue_write_buffer(&buf, &vec![0.0f32; 1 << 16])
            .unwrap();
        let t = rt.finish_all();
        assert!(t >= rt.queue(1).available_at());
    }

    #[test]
    fn vector_ids_are_unique() {
        let rt = init_gpus(1);
        let a = rt.next_vector_id();
        let b = rt.next_vector_id();
        assert_ne!(a, b);
    }
}
