//! Cross-stage kernel fusion for lazy pipeline plans.
//!
//! A [`crate::plan`] DAG describes a chain of elementwise stages (map, zip)
//! optionally terminated by a reduction or scan. This module turns a run of
//! adjacent stages into **one** generated kernel:
//!
//! * `Hygiene` concatenates the stages' UDF sources safely — every defined
//!   function is renamed to a per-stage `skelcl_s{k}_…` name so independent
//!   UDFs can never collide (or capture each other's helpers), and actual
//!   collisions are recorded as diagnostics for [`crate::plan`]'s `explain`,
//! * `FusedSpec` generates the fused kernels — the elementwise expression
//!   is inlined into the map body, the reduce/scan first phase, and mirrors
//!   the eager templates in [`crate::kernelgen`] operation-for-operation so
//!   fused results stay bit-identical to the unfused path,
//! * `boundary_decision` is the per-device cost model: using the static
//!   per-instruction FLOP/byte estimates and the scheduler's analytical
//!   [`PerfModel`], it predicts fused vs split time for each stage boundary
//!   and lets [`FusionPolicy::Auto`] choose.
//!
//! On the simulated devices the decision is heavily tilted towards fusion —
//! a fused kernel saves a launch overhead *and* one intermediate store+load
//! per element, while the roofline model charges the same FLOPs either way.
//! That is the honest prediction for memory-bound elementwise pipelines on
//! real GPUs too, which is why the paper's successors (SkelCL's `stencil`
//! sequences, Lift, SYCL fusion runtimes) fuse by default.

use std::collections::{BTreeMap, HashSet};
use std::sync::Arc;

use oclsim::CostHint;
use skelcl_kernel::compose;
use skelcl_kernel::cost::estimate_source;
use skelcl_kernel::types::ScalarType;

use crate::error::{Result, SkelError};
use crate::kernelgen::UdfInfo;
use crate::scheduler::PerfModel;

/// When the fusion pass may merge adjacent pipeline stages into one kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FusionPolicy {
    /// Fuse when the per-device cost model predicts the fused kernel is no
    /// slower than the split pair (the default; on the simulated devices
    /// this fuses essentially always).
    #[default]
    Auto,
    /// Fuse every fusable boundary regardless of predicted cost.
    Always,
    /// Never fuse: lower every stage to its own kernel. This is the
    /// reference path the differential tests compare against.
    Never,
}

/// Name of the generated fused elementwise kernel.
pub(crate) const FUSED_MAP_KERNEL: &str = "SKELCL_FUSED_MAP";
/// Name of the generated fused (per-device, sequential) reduce kernel.
pub(crate) const FUSED_REDUCE_KERNEL: &str = "SKELCL_FUSED_REDUCE";
/// Name of the generated fused (per-device, sequential) scan kernel.
pub(crate) const FUSED_SCAN_KERNEL: &str = "SKELCL_FUSED_SCAN";
/// Name of the offset kernel paired with [`FUSED_SCAN_KERNEL`].
pub(crate) const FUSED_SCAN_OFFSET_KERNEL: &str = "SKELCL_FUSED_SCAN_OFFSET";

/// One pipeline stage after hygienic renaming: its rewritten source, the
/// name its entry function ended up with, and the fused-kernel parameter
/// names of its additional scalar arguments.
#[derive(Debug, Clone)]
pub(crate) struct HygienicStage {
    /// The stage's UDF source with every defined function renamed.
    pub source: String,
    /// Post-rename name of the stage's entry function.
    pub fn_name: String,
    /// `(kernel_param_name, type)` for each additional scalar argument, in
    /// declaration order.
    pub extras: Vec<(String, ScalarType)>,
    /// Human-readable rename diagnostics for names that actually collided
    /// with an earlier stage's definitions.
    pub collisions: Vec<String>,
}

/// Renaming context for one fused kernel: tracks every function name the
/// concatenated source defines so far.
///
/// Every stage's defined functions are renamed to `skelcl_s{k}_{name}`
/// unconditionally. Uniform prefixing (rather than renaming only on
/// collision) also prevents *capture*: stage A defining `clamp` must not
/// hijack stage B's call to the `clamp` builtin merely by being concatenated
/// first.
#[derive(Debug, Default)]
pub(crate) struct Hygiene {
    /// Post-rename names in use (guards against generated-name clashes).
    taken: HashSet<String>,
    /// Original (pre-rename) names defined by earlier stages — a later stage
    /// defining one of these *collided* and gets a diagnostic.
    seen: HashSet<String>,
}

impl Hygiene {
    pub(crate) fn new() -> Hygiene {
        Hygiene::default()
    }

    /// Rename stage `stage_index`'s UDF for inclusion in the fused source.
    pub(crate) fn admit(&mut self, stage_index: usize, info: &UdfInfo) -> Result<HygienicStage> {
        let defined = compose::defined_functions(&info.source).map_err(SkelError::Udf)?;
        let mut renames = BTreeMap::new();
        let mut collisions = Vec::new();
        for name in &defined {
            let mut new_name = format!("skelcl_s{stage_index}_{name}");
            // A user function literally named like a generated name cannot
            // collide silently either; push a deterministic suffix until the
            // name is free.
            while self.taken.contains(&new_name) {
                new_name.push('x');
            }
            if self.seen.contains(name) {
                collisions.push(format!(
                    "stage {stage_index}: `{name}` collides with an earlier stage; renamed to `{new_name}`"
                ));
            }
            self.taken.insert(new_name.clone());
            self.seen.insert(name.clone());
            renames.insert(name.clone(), new_name);
        }
        let source = compose::rename_identifiers(&info.source, &renames).map_err(SkelError::Udf)?;
        let fn_name = renames
            .get(&info.name)
            .cloned()
            .unwrap_or_else(|| info.name.clone());
        let extras = info
            .extra_params
            .iter()
            .map(|(name, ty)| (format!("skelcl_s{stage_index}_arg_{name}"), *ty))
            .collect();
        Ok(HygienicStage {
            source,
            fn_name,
            extras,
            collisions,
        })
    }
}

/// The inlined elementwise expression of a fused kernel, built over input
/// buffer loads and stage-UDF calls.
#[derive(Debug, Clone)]
pub(crate) enum FExpr {
    /// Load of fused-kernel input buffer `index` at the iteration index.
    In(usize),
    /// Call of stage `index`'s entry function over the argument expressions
    /// (the stage's additional arguments are appended automatically).
    Call(usize, Vec<FExpr>),
}

/// Everything needed to generate one fused kernel: the hygienically renamed
/// stages, the input buffer types, the output element type and the inlined
/// expression tree.
#[derive(Debug, Clone)]
pub(crate) struct FusedSpec {
    pub stages: Vec<HygienicStage>,
    pub inputs: Vec<ScalarType>,
    pub out_ty: ScalarType,
    pub expr: FExpr,
}

impl FusedSpec {
    fn preamble(&self) -> String {
        let mut out = String::new();
        for stage in &self.stages {
            out.push_str(&stage.source);
            out.push('\n');
        }
        out
    }

    fn input_decls(&self) -> String {
        self.inputs
            .iter()
            .enumerate()
            .map(|(i, ty)| format!("__global {ty}* skelcl_in{i}, "))
            .collect()
    }

    fn extra_decls(&self) -> String {
        self.stages
            .iter()
            .flat_map(|s| &s.extras)
            .map(|(name, ty)| format!(", {ty} {name}"))
            .collect()
    }

    /// Render the expression with `idx` as the iteration index.
    fn expr_code(&self, expr: &FExpr, idx: &str) -> String {
        match expr {
            FExpr::In(i) => format!("skelcl_in{i}[{idx}]"),
            FExpr::Call(stage, args) => {
                let s = &self.stages[*stage];
                let mut rendered: Vec<String> =
                    args.iter().map(|a| self.expr_code(a, idx)).collect();
                rendered.extend(s.extras.iter().map(|(name, _)| name.clone()));
                format!("{}({})", s.fn_name, rendered.join(", "))
            }
        }
    }

    /// The fused elementwise kernel: `out[i] = expr(i)` — the shape of the
    /// eager map/zip kernels with the whole stage chain inlined.
    pub(crate) fn map_kernel(&self) -> String {
        format!(
            "{preamble}\
             __kernel void {kernel}({ins}__global {out_ty}* skelcl_out, int skelcl_n{extras}) {{\n\
             \x20   int skelcl_gid = get_global_id(0);\n\
             \x20   if (skelcl_gid < skelcl_n) {{\n\
             \x20       skelcl_out[skelcl_gid] = {expr};\n\
             \x20   }}\n\
             }}\n",
            preamble = self.preamble(),
            kernel = FUSED_MAP_KERNEL,
            ins = self.input_decls(),
            out_ty = self.out_ty,
            extras = self.extra_decls(),
            expr = self.expr_code(&self.expr, "skelcl_gid"),
        )
    }

    /// The fused reduce kernel: the eager sequential fold with the
    /// elementwise chain inlined in place of the input load. `op` must have
    /// been admitted through the same [`Hygiene`] as the stages.
    pub(crate) fn reduce_kernel(&self, op: &HygienicStage) -> String {
        format!(
            "{preamble}{op_src}\n\
             __kernel void {kernel}({ins}__global {ty}* skelcl_out, int skelcl_n{extras}) {{\n\
             \x20   {ty} skelcl_acc = {first};\n\
             \x20   for (int skelcl_i = 1; skelcl_i < skelcl_n; skelcl_i++) {{\n\
             \x20       skelcl_acc = {f}(skelcl_acc, {step});\n\
             \x20   }}\n\
             \x20   skelcl_out[0] = skelcl_acc;\n\
             }}\n",
            preamble = self.preamble(),
            op_src = op.source,
            kernel = FUSED_REDUCE_KERNEL,
            ins = self.input_decls(),
            ty = self.out_ty,
            extras = self.extra_decls(),
            first = self.expr_code(&self.expr, "0"),
            step = self.expr_code(&self.expr, "skelcl_i"),
            f = op.fn_name,
        )
    }

    /// The fused scan kernel pair: the eager sequential inclusive scan with
    /// the elementwise chain inlined, plus the (unfused) offset kernel that
    /// combines predecessor totals into a device's part.
    pub(crate) fn scan_kernels(&self, op: &HygienicStage) -> String {
        format!(
            "{preamble}{op_src}\n\
             __kernel void {scan}({ins}__global {ty}* skelcl_out, int skelcl_n{extras}) {{\n\
             \x20   {ty} skelcl_acc = {first};\n\
             \x20   skelcl_out[0] = skelcl_acc;\n\
             \x20   for (int skelcl_i = 1; skelcl_i < skelcl_n; skelcl_i++) {{\n\
             \x20       skelcl_acc = {f}(skelcl_acc, {step});\n\
             \x20       skelcl_out[skelcl_i] = skelcl_acc;\n\
             \x20   }}\n\
             }}\n\
             __kernel void {offset}(__global {ty}* skelcl_data, int skelcl_n, {ty} skelcl_offset) {{\n\
             \x20   int skelcl_gid = get_global_id(0);\n\
             \x20   if (skelcl_gid < skelcl_n) {{\n\
             \x20       skelcl_data[skelcl_gid] = {f}(skelcl_offset, skelcl_data[skelcl_gid]);\n\
             \x20   }}\n\
             }}\n",
            preamble = self.preamble(),
            op_src = op.source,
            scan = FUSED_SCAN_KERNEL,
            offset = FUSED_SCAN_OFFSET_KERNEL,
            ins = self.input_decls(),
            ty = self.out_ty,
            extras = self.extra_decls(),
            first = self.expr_code(&self.expr, "0"),
            step = self.expr_code(&self.expr, "skelcl_i"),
            f = op.fn_name,
        )
    }
}

/// Compose a chain of unary stages into a single, self-contained UDF source
/// whose entry function is named `func` — the shape every eager skeleton
/// accepts. Used by the matrix plan, which lowers fused map groups through
/// the container-generic eager `Map`.
///
/// All stages must chain type-correctly (caller-validated). Returns the
/// composed source and the collision diagnostics.
pub(crate) fn compose_unary_source(stages: &[Arc<UdfInfo>]) -> Result<(String, Vec<String>)> {
    let mut hygiene = Hygiene::new();
    // The wrapper itself owns the name `func`.
    hygiene.taken.insert("func".to_string());
    let mut renamed = Vec::with_capacity(stages.len());
    for (k, info) in stages.iter().enumerate() {
        renamed.push(hygiene.admit(k, info)?);
    }
    let in_ty = stages[0].main_params[0];
    let out_ty = stages[stages.len() - 1].return_type;
    let mut body = "skelcl_x".to_string();
    for stage in &renamed {
        let mut call_args = vec![body];
        call_args.extend(stage.extras.iter().map(|(name, _)| name.clone()));
        body = format!("{}({})", stage.fn_name, call_args.join(", "));
    }
    let extra_decls: String = renamed
        .iter()
        .flat_map(|s| &s.extras)
        .map(|(name, ty)| format!(", {ty} {name}"))
        .collect();
    let mut source = String::new();
    for stage in &renamed {
        source.push_str(&stage.source);
        source.push('\n');
    }
    source.push_str(&format!(
        "{out_ty} func({in_ty} skelcl_x{extra_decls}) {{ return {body}; }}\n"
    ));
    let collisions = renamed.into_iter().flat_map(|s| s.collisions).collect();
    Ok((source, collisions))
}

/// Per-element cost figures of one pipeline stage, used by the boundary
/// decision model.
#[derive(Debug, Clone, Copy)]
pub(crate) struct StageCost {
    /// FLOP-equivalent work of one UDF invocation (static estimate).
    pub flops: f64,
    /// Bytes read per element from inputs *other than* the chain input
    /// (e.g. a zip's second vector).
    pub side_bytes: f64,
    /// Bytes written per produced element (0 for a reduction's single
    /// result).
    pub out_bytes: f64,
}

impl StageCost {
    /// Static estimate for a UDF, with structural read/write byte figures
    /// supplied by the caller.
    pub(crate) fn of(info: &UdfInfo, side_bytes: f64, out_bytes: f64) -> StageCost {
        let flops = estimate_source(&info.source, &info.name)
            .ok()
            .flatten()
            .map(|est| est.flops_equivalent())
            .unwrap_or(1.0);
        StageCost {
            flops,
            side_bytes,
            out_bytes,
        }
    }
}

/// Accumulated cost of the group of stages fused so far.
#[derive(Debug, Clone, Copy)]
pub(crate) struct GroupCost {
    /// Summed FLOP-equivalents of all stages in the group.
    pub flops: f64,
    /// Bytes read per element from the group's source inputs.
    pub read_bytes: f64,
    /// Element size of the group's output, i.e. the bytes one intermediate
    /// element would occupy if the group were materialised here.
    pub chain_bytes: f64,
}

impl GroupCost {
    /// A group containing one stage that reads `in_bytes` per element.
    pub(crate) fn start(in_bytes: f64, stage: StageCost) -> GroupCost {
        GroupCost {
            flops: stage.flops,
            read_bytes: in_bytes + stage.side_bytes,
            chain_bytes: stage.out_bytes,
        }
    }

    /// Absorb `stage` into the group (after a fuse decision).
    pub(crate) fn fuse(&mut self, stage: StageCost) {
        self.flops += stage.flops;
        self.read_bytes += stage.side_bytes;
        self.chain_bytes = stage.out_bytes;
    }
}

/// The cost model's verdict for one stage boundary.
#[derive(Debug, Clone, Copy)]
pub(crate) struct BoundaryDecision {
    /// Whether the downstream stage joins the group.
    pub fused: bool,
    /// Whether the policy forced the outcome (Always/Never) rather than the
    /// cost model choosing it.
    pub forced: bool,
    /// Predicted time of the fused alternative, seconds (slowest device).
    pub fused_time: f64,
    /// Predicted time of the split alternative, seconds.
    pub split_time: f64,
}

/// Decide fuse-vs-split for the boundary between `group` (the stages fused
/// so far) and `next`. `device_items` holds `(device, items)` for every
/// active device; devices execute in parallel, so each alternative is scored
/// by its slowest device, and the split alternative pays two launches.
pub(crate) fn boundary_decision(
    policy: FusionPolicy,
    model: &PerfModel,
    device_items: &[(usize, usize)],
    group: GroupCost,
    next: StageCost,
) -> Result<BoundaryDecision> {
    let split_a = CostHint::new(group.flops, group.read_bytes + group.chain_bytes);
    let split_b = CostHint::new(
        next.flops,
        group.chain_bytes + next.side_bytes + next.out_bytes,
    );
    let fused_hint = CostHint::new(
        group.flops + next.flops,
        group.read_bytes + next.side_bytes + next.out_bytes,
    );
    let mut split_time = 0.0f64;
    let mut fused_time = 0.0f64;
    for &(device, items) in device_items {
        let a = model.predict(device, items, split_a)?.as_secs_f64();
        let b = model.predict(device, items, split_b)?.as_secs_f64();
        let f = model.predict(device, items, fused_hint)?.as_secs_f64();
        split_time = split_time.max(a + b);
        fused_time = fused_time.max(f);
    }
    let (fused, forced) = match policy {
        FusionPolicy::Always => (true, true),
        FusionPolicy::Never => (false, true),
        FusionPolicy::Auto => (fused_time <= split_time, false),
    };
    Ok(BoundaryDecision {
        fused,
        forced,
        fused_time,
        split_time,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn info(src: &str, main: usize) -> UdfInfo {
        UdfInfo::analyze(src, main).unwrap()
    }

    #[test]
    fn hygiene_renames_colliding_helpers_with_diagnostic() {
        let a = info(
            "float offset(float x) { return x + 1.0f; }\n\
             float func(float x) { return offset(x); }",
            1,
        );
        let b = info(
            "float offset(float x) { return x + 2.0f; }\n\
             float func(float x) { return offset(x); }",
            1,
        );
        let mut hygiene = Hygiene::new();
        let sa = hygiene.admit(0, &a).unwrap();
        let sb = hygiene.admit(1, &b).unwrap();
        assert_eq!(sa.fn_name, "skelcl_s0_func");
        assert_eq!(sb.fn_name, "skelcl_s1_func");
        assert!(sa.collisions.is_empty());
        // Stage 1 collides on BOTH `offset` and `func`.
        assert_eq!(sb.collisions.len(), 2, "{:?}", sb.collisions);
        // Diagnostics follow source order: `offset` is defined before `func`.
        assert!(sb.collisions[0].contains("`offset`"), "{:?}", sb.collisions);
        assert!(sb.collisions[1].contains("`func`"), "{:?}", sb.collisions);
        assert!(sb.source.contains("skelcl_s1_offset"));
        // The concatenation is a valid translation unit with distinct names.
        let spec = FusedSpec {
            stages: vec![sa, sb],
            inputs: vec![ScalarType::Float],
            out_ty: ScalarType::Float,
            expr: FExpr::Call(1, vec![FExpr::Call(0, vec![FExpr::In(0)])]),
        };
        let program = skelcl_kernel::Program::build(&spec.map_kernel()).unwrap();
        assert!(program.kernel(FUSED_MAP_KERNEL).is_ok());
    }

    #[test]
    fn fused_map_kernel_inlines_the_chain_and_extras() {
        let scale = info("float func(float x, float a) { return x * a; }", 1);
        let add = info("float func(float l, float r) { return l + r; }", 2);
        let mut hygiene = Hygiene::new();
        let s0 = hygiene.admit(0, &scale).unwrap();
        let s1 = hygiene.admit(1, &add).unwrap();
        let spec = FusedSpec {
            stages: vec![s0, s1],
            inputs: vec![ScalarType::Float, ScalarType::Float],
            out_ty: ScalarType::Float,
            expr: FExpr::Call(1, vec![FExpr::Call(0, vec![FExpr::In(0)]), FExpr::In(1)]),
        };
        let src = spec.map_kernel();
        assert!(
            src.contains(
                "skelcl_s1_func(skelcl_s0_func(skelcl_in0[skelcl_gid], skelcl_s0_arg_a), \
                 skelcl_in1[skelcl_gid])"
            ),
            "{src}"
        );
        assert!(src.contains(", float skelcl_s0_arg_a"), "{src}");
        assert!(skelcl_kernel::Program::build(&src).is_ok(), "{src}");
    }

    #[test]
    fn compose_unary_source_produces_a_valid_udf() {
        let stages = vec![
            Arc::new(info("float func(float x) { return x + 1.0f; }", 1)),
            Arc::new(info("float func(float x, float a) { return x * a; }", 1)),
        ];
        let (src, collisions) = compose_unary_source(&stages).unwrap();
        // Both stages named `func`: the second collides with the first.
        assert_eq!(collisions.len(), 1, "{collisions:?}");
        let composed = UdfInfo::analyze(&src, 1).unwrap();
        assert_eq!(composed.name, "func");
        assert_eq!(composed.extra_params.len(), 1);
        assert_eq!(composed.return_type, ScalarType::Float);
    }

    #[test]
    fn auto_policy_fuses_elementwise_chains_on_the_analytical_model() {
        let rt = crate::runtime::init_gpus(2);
        let model = PerfModel::analytical(&rt);
        let group = GroupCost::start(
            4.0,
            StageCost {
                flops: 2.0,
                side_bytes: 0.0,
                out_bytes: 4.0,
            },
        );
        let next = StageCost {
            flops: 1.0,
            side_bytes: 0.0,
            out_bytes: 4.0,
        };
        let d = boundary_decision(
            FusionPolicy::Auto,
            &model,
            &[(0, 1 << 19), (1, 1 << 19)],
            group,
            next,
        )
        .unwrap();
        assert!(d.fused && !d.forced);
        assert!(d.fused_time < d.split_time);
        let never =
            boundary_decision(FusionPolicy::Never, &model, &[(0, 1 << 19)], group, next).unwrap();
        assert!(!never.fused && never.forced);
    }
}
