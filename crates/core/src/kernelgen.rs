//! Kernel source generation: merging user-defined functions with
//! skeleton-specific code (paper, Section II-A).
//!
//! "To customize a skeleton, the application developer passes the source code
//! of the user-defined function as a plain string to the skeleton. SkelCL
//! merges the user-defined function's source code with pre-implemented
//! skeleton-specific program code, thus creating a valid OpenCL kernel
//! automatically."
//!
//! The generated kernel is then built by the (simulated) OpenCL runtime at
//! first use. The *additional arguments* feature is implemented here as in
//! the paper: the extra parameters of the user function — beyond the
//! skeleton's main element inputs — are appended to the generated kernel's
//! parameter list and forwarded to the user function call.

use skelcl_kernel::ast::Function;
use skelcl_kernel::types::{ScalarType, Type};

use crate::error::{Result, SkelError};

/// Information extracted from a user-defined function's source.
#[derive(Debug, Clone, PartialEq)]
pub struct UdfInfo {
    /// Name of the user function (the only function in the source, or the
    /// one named `func` among helpers).
    pub name: String,
    /// Scalar types of the skeleton's main element parameters.
    pub main_params: Vec<ScalarType>,
    /// Extra (additional-argument) parameters: name and scalar type.
    pub extra_params: Vec<(String, ScalarType)>,
    /// Scalar return type.
    pub return_type: ScalarType,
    /// The full UDF source (including any helper functions).
    pub source: String,
}

/// Resolve the user-defined function within a parsed translation unit — the
/// single source of truth shared by kernel generation and cost estimation,
/// so the function that is compiled is always the function that is costed.
///
/// A unit with a single function is unambiguous. With several functions the
/// UDF is the one named `func` (the convention of every listing in the
/// paper; the other functions are helpers it may call). Anything else — no
/// functions, or several candidates none/many of which are named `func` —
/// is reported as a clear [`SkelError::UdfSignature`] instead of silently
/// picking an arbitrary function.
pub(crate) fn resolve_udf<'u>(
    unit: &'u skelcl_kernel::ast::TranslationUnit,
    source_kind: &str,
) -> Result<&'u Function> {
    match unit.functions.as_slice() {
        [] => Err(SkelError::UdfSignature(format!(
            "empty {source_kind}: the source defines no function"
        ))),
        [only] => Ok(only),
        many => {
            let named: Vec<&Function> = many.iter().filter(|f| f.name == "func").collect();
            match named.as_slice() {
                [udf] => Ok(udf),
                [] => Err(SkelError::UdfSignature(format!(
                    "the {source_kind} defines {} functions ({}) but none is named `func`; \
                     name the user-defined function `func` so it can be distinguished from \
                     its helpers",
                    many.len(),
                    many.iter()
                        .map(|f| f.name.as_str())
                        .collect::<Vec<_>>()
                        .join(", ")
                ))),
                _ => Err(SkelError::UdfSignature(format!(
                    "the {source_kind} defines {} functions named `func`; the user-defined \
                     function must be unique",
                    named.len()
                ))),
            }
        }
    }
}

impl UdfInfo {
    /// Analyse a user-defined function source string.
    ///
    /// * The UDF is resolved by `resolve_udf`: the only function in the
    ///   source, or — among several — the one named `func` (the others are
    ///   helpers it may call).
    /// * Its first `main_inputs` parameters are the skeleton's element
    ///   inputs; the rest are additional arguments, which must be scalars
    ///   (vector additional arguments require a native UDF, see DESIGN.md).
    pub fn analyze(source: &str, main_inputs: usize) -> Result<UdfInfo> {
        let tokens = skelcl_kernel::lexer::lex(source)?;
        let unit = skelcl_kernel::parser::parse(&tokens, source)?;
        let func: &Function = resolve_udf(&unit, "user function source")?;
        if func.is_kernel {
            return Err(SkelError::UdfSignature(
                "pass a plain function, not a __kernel; SkelCL generates the kernel".into(),
            ));
        }
        if func.params.len() < main_inputs {
            return Err(SkelError::UdfSignature(format!(
                "the user function `{}` takes {} parameter(s) but this skeleton supplies {} element input(s)",
                func.name,
                func.params.len(),
                main_inputs
            )));
        }
        let return_type = match func.return_type {
            Type::Scalar(s) => s,
            Type::Void => {
                return Err(SkelError::UdfSignature(
                    "the user function must return a value".into(),
                ))
            }
            Type::GlobalPtr(_) => {
                return Err(SkelError::UdfSignature(
                    "the user function cannot return a pointer".into(),
                ))
            }
        };
        let mut main_params = Vec::with_capacity(main_inputs);
        let mut extra_params = Vec::new();
        for (i, p) in func.params.iter().enumerate() {
            match p.ty {
                Type::Scalar(s) => {
                    if i < main_inputs {
                        main_params.push(s);
                    } else {
                        extra_params.push((p.name.clone(), s));
                    }
                }
                Type::GlobalPtr(_) => {
                    return Err(SkelError::UnsupportedArg(format!(
                        "parameter `{}` of the user function is a pointer; vector additional \
                         arguments are supported with native (closure) user functions only",
                        p.name
                    )));
                }
                Type::Void => unreachable!("void parameters are rejected by the parser"),
            }
        }
        Ok(UdfInfo {
            name: func.name.clone(),
            main_params,
            extra_params,
            return_type,
            source: source.to_string(),
        })
    }

    fn extra_param_decls(&self) -> String {
        self.extra_params
            .iter()
            .map(|(name, ty)| format!(", {ty} skelcl_arg_{name}"))
            .collect()
    }

    fn extra_param_uses(&self) -> String {
        self.extra_params
            .iter()
            .map(|(name, _)| format!(", skelcl_arg_{name}"))
            .collect()
    }
}

/// Name of the generated map kernel.
pub const MAP_KERNEL: &str = "SKELCL_MAP";
/// Name of the generated index-map kernel (map over an implicit index range).
pub const MAP_INDEX_KERNEL: &str = "SKELCL_MAP_INDEX";
/// Name of the generated zip kernel.
pub const ZIP_KERNEL: &str = "SKELCL_ZIP";
/// Name of the generated map-overlap (stencil) kernel.
pub const MAP_OVERLAP_KERNEL: &str = "SKELCL_MAP_OVERLAP";
/// Name of the generated (per-device, sequential) reduce kernel.
pub const REDUCE_KERNEL: &str = "SKELCL_REDUCE";
/// Name of the generated chunked reduce kernel (one partial result per
/// chunk), used by the scheduler-aware reduction of Section V.
pub const REDUCE_CHUNKED_KERNEL: &str = "SKELCL_REDUCE_CHUNKED";
/// Name of the generated (per-device, sequential) scan kernel.
pub const SCAN_KERNEL: &str = "SKELCL_SCAN";
/// Name of the generated scan offset kernel (the implicit map of Figure 2).
pub const SCAN_OFFSET_KERNEL: &str = "SKELCL_SCAN_OFFSET";

/// Generate the map kernel: `out[i] = f(in[i], extra...)`.
pub fn map_kernel(udf: &UdfInfo) -> Result<String> {
    if udf.main_params.len() != 1 {
        return Err(SkelError::UdfSignature(format!(
            "map expects a unary user function; `{}` has {} main parameter(s)",
            udf.name,
            udf.main_params.len()
        )));
    }
    Ok(format!(
        "{udf_src}\n\
         __kernel void {kernel}(__global {in_ty}* skelcl_in, __global {out_ty}* skelcl_out, int skelcl_n{extra_decls}) {{\n\
         \x20   int skelcl_gid = get_global_id(0);\n\
         \x20   if (skelcl_gid < skelcl_n) {{\n\
         \x20       skelcl_out[skelcl_gid] = {f}(skelcl_in[skelcl_gid]{extra_uses});\n\
         \x20   }}\n\
         }}\n",
        udf_src = udf.source,
        kernel = MAP_KERNEL,
        in_ty = udf.main_params[0],
        out_ty = udf.return_type,
        extra_decls = udf.extra_param_decls(),
        extra_uses = udf.extra_param_uses(),
        f = udf.name,
    ))
}

/// Generate the index-map kernel: `out[i] = f(offset + i, extra...)`.
///
/// Used by [`crate::skeletons::Map::run_index`]: the skeleton's input is the
/// implicit index range `[0, n)` rather than a stored vector, so no input
/// buffer exists and no host→device transfer is needed — each device computes
/// its elements directly from its global ids plus a per-device offset. This
/// is how index-based workloads such as the Mandelbrot benchmark avoid paying
/// for an input upload.
pub fn map_index_kernel(udf: &UdfInfo) -> Result<String> {
    if udf.main_params.len() != 1 {
        return Err(SkelError::UdfSignature(format!(
            "index map expects a unary user function; `{}` has {} main parameter(s)",
            udf.name,
            udf.main_params.len()
        )));
    }
    if !matches!(udf.main_params[0], ScalarType::Int | ScalarType::Uint) {
        return Err(SkelError::UdfSignature(format!(
            "index map requires the user function to take an int (or uint) index; `{}` takes {}",
            udf.name, udf.main_params[0]
        )));
    }
    Ok(format!(
        "{udf_src}\n\
         __kernel void {kernel}(__global {out_ty}* skelcl_out, int skelcl_n, int skelcl_offset{extra_decls}) {{\n\
         \x20   int skelcl_gid = get_global_id(0);\n\
         \x20   if (skelcl_gid < skelcl_n) {{\n\
         \x20       skelcl_out[skelcl_gid] = {f}(skelcl_offset + skelcl_gid{extra_uses});\n\
         \x20   }}\n\
         }}\n",
        udf_src = udf.source,
        kernel = MAP_INDEX_KERNEL,
        out_ty = udf.return_type,
        extra_decls = udf.extra_param_decls(),
        extra_uses = udf.extra_param_uses(),
        f = udf.name,
    ))
}

/// Generate the map-overlap (stencil) kernel:
/// `out[r, c] = f(in[r, c], extra...)` where the user function may read
/// neighbouring elements through the `get(dx, dy)` builtin.
///
/// The kernel runs over the device's *core* elements (`n = core_rows × w`)
/// while its input buffer is the halo-padded part (`(core_rows + 2·halo) × w`
/// elements): row accesses of `get` resolve directly into the padding —
/// out-of-bound rows were materialised when the halo was filled — and column
/// accesses apply the boundary policy in the engines. The reserved
/// `skelcl_stencil_*` parameters bind the builtin's execution context (see
/// `skelcl_kernel::builtins::stencil`). The output part is padded the same
/// way, so iterative stencils can flip output to input with a halo-only
/// exchange; its halo rows are left untouched by the kernel.
pub fn map_overlap_kernel(udf: &UdfInfo) -> Result<String> {
    if udf.main_params.len() != 1 {
        return Err(SkelError::UdfSignature(format!(
            "map-overlap expects a unary user function (the centre element); `{}` has {} main parameter(s)",
            udf.name,
            udf.main_params.len()
        )));
    }
    if udf.main_params[0] != ScalarType::Float {
        return Err(SkelError::UdfSignature(format!(
            "map-overlap requires a float centre element (the stencil input is a float matrix); \
             `{}` takes {}",
            udf.name, udf.main_params[0]
        )));
    }
    Ok(format!(
        "{udf_src}\n\
         __kernel void {kernel}(__global float* skelcl_stencil_in, __global {out_ty}* skelcl_out, \
         int skelcl_n, int skelcl_stencil_w, int skelcl_stencil_halo, int skelcl_stencil_policy, \
         float skelcl_stencil_oob{extra_decls}) {{\n\
         \x20   int skelcl_gid = get_global_id(0);\n\
         \x20   if (skelcl_gid < skelcl_n) {{\n\
         \x20       int skelcl_idx = (skelcl_gid / skelcl_stencil_w + skelcl_stencil_halo) * skelcl_stencil_w + skelcl_gid % skelcl_stencil_w;\n\
         \x20       skelcl_out[skelcl_idx] = {f}(skelcl_stencil_in[skelcl_idx]{extra_uses});\n\
         \x20   }}\n\
         }}\n",
        udf_src = udf.source,
        kernel = MAP_OVERLAP_KERNEL,
        out_ty = udf.return_type,
        extra_decls = udf.extra_param_decls(),
        extra_uses = udf.extra_param_uses(),
        f = udf.name,
    ))
}

/// Generate the zip kernel: `out[i] = f(left[i], right[i], extra...)`.
pub fn zip_kernel(udf: &UdfInfo) -> Result<String> {
    if udf.main_params.len() != 2 {
        return Err(SkelError::UdfSignature(format!(
            "zip expects a binary user function; `{}` has {} main parameter(s)",
            udf.name,
            udf.main_params.len()
        )));
    }
    Ok(format!(
        "{udf_src}\n\
         __kernel void {kernel}(__global {l_ty}* skelcl_left, __global {r_ty}* skelcl_right, __global {out_ty}* skelcl_out, int skelcl_n{extra_decls}) {{\n\
         \x20   int skelcl_gid = get_global_id(0);\n\
         \x20   if (skelcl_gid < skelcl_n) {{\n\
         \x20       skelcl_out[skelcl_gid] = {f}(skelcl_left[skelcl_gid], skelcl_right[skelcl_gid]{extra_uses});\n\
         \x20   }}\n\
         }}\n",
        udf_src = udf.source,
        kernel = ZIP_KERNEL,
        l_ty = udf.main_params[0],
        r_ty = udf.main_params[1],
        out_ty = udf.return_type,
        extra_decls = udf.extra_param_decls(),
        extra_uses = udf.extra_param_uses(),
        f = udf.name,
    ))
}

pub(crate) fn check_binary_op(udf: &UdfInfo, skeleton: &str) -> Result<ScalarType> {
    if udf.main_params.len() != 2 || !udf.extra_params.is_empty() {
        return Err(SkelError::UdfSignature(format!(
            "{skeleton} expects a binary operator function (two parameters, no additional arguments); \
             `{}` has {} parameter(s)",
            udf.name,
            udf.main_params.len() + udf.extra_params.len()
        )));
    }
    if udf.main_params[0] != udf.main_params[1] || udf.main_params[0] != udf.return_type {
        return Err(SkelError::UdfSignature(format!(
            "{skeleton} requires an operator of type (T, T) -> T; `{}` maps ({}, {}) -> {}",
            udf.name, udf.main_params[0], udf.main_params[1], udf.return_type
        )));
    }
    Ok(udf.return_type)
}

/// Generate the per-device reduce kernel: a sequential fold of the local part
/// (one logical work-item; the roofline cost model already accounts for the
/// device's internal parallelism).
pub fn reduce_kernel(udf: &UdfInfo) -> Result<String> {
    let ty = check_binary_op(udf, "reduce")?;
    Ok(format!(
        "{udf_src}\n\
         __kernel void {kernel}(__global {ty}* skelcl_in, __global {ty}* skelcl_out, int skelcl_n) {{\n\
         \x20   {ty} skelcl_acc = skelcl_in[0];\n\
         \x20   for (int skelcl_i = 1; skelcl_i < skelcl_n; skelcl_i++) {{\n\
         \x20       skelcl_acc = {f}(skelcl_acc, skelcl_in[skelcl_i]);\n\
         \x20   }}\n\
         \x20   skelcl_out[0] = skelcl_acc;\n\
         }}\n",
        udf_src = udf.source,
        kernel = REDUCE_KERNEL,
        ty = ty,
        f = udf.name,
    ))
}

/// Generate the chunked per-device reduce kernel: work-item `g` folds the
/// elements of chunk `g` (`chunk` consecutive elements) into `out[g]`, so a
/// launch with `ceil(n / chunk)` work-items leaves an *intermediate result
/// vector* instead of a single value.
///
/// Section V of the paper motivates this shape: "the local reduction on each
/// GPU should not compute a single value but an intermediate, small result
/// vector. CPUs will be faster to perform the final reduction of these
/// vectors than GPUs which provide poor performance when reducing only few
/// elements."
pub fn reduce_chunked_kernel(udf: &UdfInfo) -> Result<String> {
    let ty = check_binary_op(udf, "reduce")?;
    Ok(format!(
        "{udf_src}\n\
         __kernel void {kernel}(__global {ty}* skelcl_in, __global {ty}* skelcl_out, int skelcl_n, int skelcl_chunk) {{\n\
         \x20   int skelcl_gid = get_global_id(0);\n\
         \x20   int skelcl_start = skelcl_gid * skelcl_chunk;\n\
         \x20   if (skelcl_start < skelcl_n) {{\n\
         \x20       {ty} skelcl_acc = skelcl_in[skelcl_start];\n\
         \x20       for (int skelcl_i = skelcl_start + 1; skelcl_i < skelcl_n && skelcl_i < skelcl_start + skelcl_chunk; skelcl_i++) {{\n\
         \x20           skelcl_acc = {f}(skelcl_acc, skelcl_in[skelcl_i]);\n\
         \x20       }}\n\
         \x20       skelcl_out[skelcl_gid] = skelcl_acc;\n\
         \x20   }}\n\
         }}\n",
        udf_src = udf.source,
        kernel = REDUCE_CHUNKED_KERNEL,
        ty = ty,
        f = udf.name,
    ))
}

/// Generate the per-device scan kernel (inclusive prefix) plus the offset
/// kernel used to combine each device's part with its predecessors' totals —
/// the "map skeletons \[that\] are created automatically" in Figure 2 of the
/// paper. Both kernels live in one program.
pub fn scan_kernels(udf: &UdfInfo) -> Result<String> {
    let ty = check_binary_op(udf, "scan")?;
    Ok(format!(
        "{udf_src}\n\
         __kernel void {scan}(__global {ty}* skelcl_in, __global {ty}* skelcl_out, int skelcl_n) {{\n\
         \x20   {ty} skelcl_acc = skelcl_in[0];\n\
         \x20   skelcl_out[0] = skelcl_acc;\n\
         \x20   for (int skelcl_i = 1; skelcl_i < skelcl_n; skelcl_i++) {{\n\
         \x20       skelcl_acc = {f}(skelcl_acc, skelcl_in[skelcl_i]);\n\
         \x20       skelcl_out[skelcl_i] = skelcl_acc;\n\
         \x20   }}\n\
         }}\n\
         __kernel void {offset}(__global {ty}* skelcl_data, int skelcl_n, {ty} skelcl_offset) {{\n\
         \x20   int skelcl_gid = get_global_id(0);\n\
         \x20   if (skelcl_gid < skelcl_n) {{\n\
         \x20       skelcl_data[skelcl_gid] = {f}(skelcl_offset, skelcl_data[skelcl_gid]);\n\
         \x20   }}\n\
         }}\n",
        udf_src = udf.source,
        scan = SCAN_KERNEL,
        offset = SCAN_OFFSET_KERNEL,
        ty = ty,
        f = udf.name,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAXPY: &str = "float func(float x, float y, float a) { return a * x + y; }";
    const ADD: &str = "float add(float a, float b) { return a + b; }";

    #[test]
    fn analyze_extracts_signature() {
        let info = UdfInfo::analyze(SAXPY, 2).unwrap();
        assert_eq!(info.name, "func");
        assert_eq!(info.main_params, vec![ScalarType::Float, ScalarType::Float]);
        assert_eq!(
            info.extra_params,
            vec![("a".to_string(), ScalarType::Float)]
        );
        assert_eq!(info.return_type, ScalarType::Float);
    }

    #[test]
    fn analyze_resolves_func_among_helpers() {
        let src = "float sq(float x) { return x * x; }\nfloat func(float x, float y) { return sqrt(sq(x) + sq(y)); }";
        let info = UdfInfo::analyze(src, 2).unwrap();
        assert_eq!(info.name, "func");
        assert!(info.source.contains("float sq"));
        // The helper's position does not matter: `func` wins by name.
        let reordered = "float func(float x, float y) { return sqrt(sq(x) + sq(y)); }\nfloat sq(float x) { return x * x; }";
        assert_eq!(UdfInfo::analyze(reordered, 2).unwrap().name, "func");
    }

    #[test]
    fn analyze_rejects_multi_function_sources_without_func() {
        let src = "float alpha(float a, float b) { return a + b; }\nfloat beta(float a, float b) { return a * b; }";
        let err = UdfInfo::analyze(src, 2).unwrap_err();
        let SkelError::UdfSignature(msg) = err else {
            panic!("expected UdfSignature, got {err:?}");
        };
        assert!(msg.contains("alpha") && msg.contains("beta"), "{msg}");
        assert!(msg.contains("func"), "{msg}");
    }

    #[test]
    fn analyze_rejects_bad_udfs() {
        assert!(UdfInfo::analyze("", 1).is_err());
        assert!(
            UdfInfo::analyze("__kernel void k(__global float* v) { v[0] = 0.0f; }", 1).is_err()
        );
        assert!(UdfInfo::analyze("float f(float a) { return a; }", 2).is_err());
        // Pointer additional arguments need a native UDF.
        let err = UdfInfo::analyze(
            "float f(float x, __global float* img) { return x + img[0]; }",
            1,
        )
        .unwrap_err();
        assert!(matches!(err, SkelError::UnsupportedArg(_)));
    }

    #[test]
    fn generated_map_kernel_compiles() {
        let info = UdfInfo::analyze("float f(float x, float s) { return x * s; }", 1).unwrap();
        let src = map_kernel(&info).unwrap();
        let program = skelcl_kernel::Program::build(&src).unwrap();
        assert!(program.kernel(MAP_KERNEL).is_ok());
        assert!(src.contains(", float skelcl_arg_s"));
    }

    #[test]
    fn generated_index_map_kernel_compiles() {
        let info = UdfInfo::analyze(
            "int f(int i, int width, int max_iter) { return i % width; }",
            1,
        )
        .unwrap();
        let src = map_index_kernel(&info).unwrap();
        let program = skelcl_kernel::Program::build(&src).unwrap();
        let k = program.kernel(MAP_INDEX_KERNEL).unwrap();
        // out, n, offset, width, max_iter
        assert_eq!(k.params.len(), 5);
        assert!(src.contains("skelcl_offset + skelcl_gid"));
    }

    #[test]
    fn index_map_requires_an_integer_index_parameter() {
        let info = UdfInfo::analyze("float f(float x) { return x; }", 1).unwrap();
        assert!(matches!(
            map_index_kernel(&info),
            Err(SkelError::UdfSignature(_))
        ));
        let binary = UdfInfo::analyze(ADD, 2).unwrap();
        assert!(map_index_kernel(&binary).is_err());
    }

    #[test]
    fn generated_map_overlap_kernel_compiles_and_reads_neighbours() {
        let info = UdfInfo::analyze(
            "float func(float x, float a) { return a * (get(-1, 0) + get(1, 0)) + x; }",
            1,
        )
        .unwrap();
        let src = map_overlap_kernel(&info).unwrap();
        let program = skelcl_kernel::Program::build(&src).unwrap();
        let k = program.kernel(MAP_OVERLAP_KERNEL).unwrap();
        // in, out, n, w, halo, policy, oob, a
        assert_eq!(k.params.len(), 8);
        assert!(src.contains("skelcl_stencil_in"));
        assert!(src.contains("skelcl_stencil_halo"));

        // Run it directly: 2x2 matrix, halo 1 → padded input has 4 rows.
        let mut input = vec![
            0.0f32, 0.0, // top halo (policy-filled by the runtime)
            1.0, 2.0, // row 0
            3.0, 4.0, // row 1
            0.0, 0.0, // bottom halo
        ];
        let mut out = vec![0.0f32; 8];
        let mut args = vec![
            skelcl_kernel::interp::ArgBinding::buffer_f32(&mut input),
            skelcl_kernel::interp::ArgBinding::buffer_f32(&mut out),
            skelcl_kernel::interp::ArgBinding::Scalar(skelcl_kernel::value::Value::Int(4)),
            skelcl_kernel::interp::ArgBinding::Scalar(skelcl_kernel::value::Value::Int(2)),
            skelcl_kernel::interp::ArgBinding::Scalar(skelcl_kernel::value::Value::Int(1)),
            skelcl_kernel::interp::ArgBinding::Scalar(skelcl_kernel::value::Value::Int(0)),
            skelcl_kernel::interp::ArgBinding::Scalar(skelcl_kernel::value::Value::Float(0.0)),
            skelcl_kernel::interp::ArgBinding::Scalar(skelcl_kernel::value::Value::Float(10.0)),
        ];
        program.run_ndrange(&k, 4, &mut args).unwrap();
        drop(args);
        // Element (0,0): x=1, left neighbour clamps to 1, right is 2.
        assert_eq!(out[2], 10.0 * (1.0 + 2.0) + 1.0);
        // The output's halo rows are untouched.
        assert_eq!(&out[0..2], &[0.0, 0.0]);
        assert_eq!(&out[6..8], &[0.0, 0.0]);
    }

    #[test]
    fn map_overlap_rejects_non_unary_and_non_float_udfs() {
        let binary = UdfInfo::analyze(ADD, 2).unwrap();
        assert!(matches!(
            map_overlap_kernel(&binary),
            Err(SkelError::UdfSignature(_))
        ));
        let int_centre = UdfInfo::analyze("int func(int x) { return x; }", 1).unwrap();
        assert!(matches!(
            map_overlap_kernel(&int_centre),
            Err(SkelError::UdfSignature(_))
        ));
    }

    #[test]
    fn generated_zip_kernel_compiles_with_extra_args() {
        let info = UdfInfo::analyze(SAXPY, 2).unwrap();
        let src = zip_kernel(&info).unwrap();
        let program = skelcl_kernel::Program::build(&src).unwrap();
        let k = program.kernel(ZIP_KERNEL).unwrap();
        // left, right, out, n, a
        assert_eq!(k.params.len(), 5);
    }

    #[test]
    fn generated_reduce_and_scan_kernels_compile() {
        let info = UdfInfo::analyze(ADD, 2).unwrap();
        let reduce = reduce_kernel(&info).unwrap();
        assert!(skelcl_kernel::Program::build(&reduce).is_ok());
        let scan = scan_kernels(&info).unwrap();
        let p = skelcl_kernel::Program::build(&scan).unwrap();
        assert!(p.kernel(SCAN_KERNEL).is_ok());
        assert!(p.kernel(SCAN_OFFSET_KERNEL).is_ok());
    }

    #[test]
    fn generated_chunked_reduce_kernel_compiles_and_folds_chunks() {
        let info = UdfInfo::analyze(ADD, 2).unwrap();
        let src = reduce_chunked_kernel(&info).unwrap();
        let program = skelcl_kernel::Program::build(&src).unwrap();
        let k = program.kernel(REDUCE_CHUNKED_KERNEL).unwrap();
        assert_eq!(k.params.len(), 4);

        // 7 elements, chunks of 3 → partials [1+2+3, 4+5+6, 7].
        let mut input = vec![1.0f32, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0];
        let mut out = vec![0.0f32; 3];
        let mut args = vec![
            skelcl_kernel::interp::ArgBinding::buffer_f32(&mut input),
            skelcl_kernel::interp::ArgBinding::buffer_f32(&mut out),
            skelcl_kernel::interp::ArgBinding::Scalar(skelcl_kernel::value::Value::Int(7)),
            skelcl_kernel::interp::ArgBinding::Scalar(skelcl_kernel::value::Value::Int(3)),
        ];
        program.run_ndrange(&k, 3, &mut args).unwrap();
        assert_eq!(out, vec![6.0, 15.0, 7.0]);
    }

    #[test]
    fn reduce_rejects_non_operator_udfs() {
        let err = UdfInfo::analyze(SAXPY, 2)
            .and_then(|i| reduce_kernel(&i))
            .unwrap_err();
        assert!(matches!(err, SkelError::UdfSignature(_)));
        let mixed = UdfInfo::analyze("int f(int a, float b) { return a; }", 2).unwrap();
        assert!(reduce_kernel(&mixed).is_err());
    }

    #[test]
    fn map_rejects_binary_udf() {
        let info = UdfInfo::analyze(ADD, 2).unwrap();
        assert!(map_kernel(&info).is_err());
        let unary = UdfInfo::analyze("float g(float x) { return -x; }", 1).unwrap();
        assert!(zip_kernel(&unary).is_err());
    }
}
