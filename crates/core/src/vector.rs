//! The abstract vector data type (paper, Section II-B).
//!
//! A [`Vector`] is "a contiguous memory range where data is accessible by
//! both CPU and GPU". It is a thin 1-D view over the shared
//! `container::Storage` core, which holds the host copy and the
//! per-device buffers and keeps them consistent automatically and *lazily*:
//! CPU access triggers a download only if the device copies are newer;
//! skeleton execution triggers an upload only if the host copy is newer.
//! Consecutive skeleton calls therefore chain on the devices without any
//! host transfers, exactly as described in the paper. All transfer and
//! validity logic lives in `Storage` — the vector contributes only the 1-D
//! shape (its length) and the fluent pipeline API.

use std::ops::Range;
use std::sync::Arc;

use parking_lot::Mutex;

use oclsim::{Buffer, CostHint, Pod};

pub use crate::container::Residence;
use crate::container::{Container, EdgePolicy, Storage};
use crate::distribution::{Combine, Distribution, Partition};
use crate::error::Result;
use crate::runtime::{DeviceSelection, SkelCl};
use crate::scheduler::StaticScheduler;

/// The SkelCL vector: host + multi-device storage with lazy coherence.
///
/// Cloning a `Vector` is cheap and yields a handle to the *same* underlying
/// data (like the C++ SkelCL vector, which is passed by reference to
/// skeletons).
pub struct Vector<T: Pod> {
    id: u64,
    inner: Arc<Mutex<Storage<T, Distribution>>>,
}

impl<T: Pod> Clone for Vector<T> {
    fn clone(&self) -> Self {
        Vector {
            id: self.id,
            inner: self.inner.clone(),
        }
    }
}

impl<T: Pod> std::fmt::Debug for Vector<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.inner.lock();
        f.debug_struct("Vector")
            .field("id", &self.id)
            .field("len", &inner.shape)
            .field("distribution", &inner.distribution)
            .field("residence", &inner.residence())
            .finish()
    }
}

impl<T: Pod> Vector<T> {
    /// Create a vector from host data. The initial distribution is block
    /// (the paper's default for skeleton inputs); no device transfer happens
    /// until the vector is first used on the devices.
    pub fn from_vec(runtime: &Arc<SkelCl>, data: Vec<T>) -> Vector<T> {
        let len = data.len();
        Vector {
            id: runtime.next_vector_id(),
            inner: Arc::new(Mutex::new(Storage::new_host(
                runtime.clone(),
                data,
                len,
                Distribution::default_for_inputs(),
            ))),
        }
    }

    /// Create a vector of `len` copies of `value`.
    pub fn filled(runtime: &Arc<SkelCl>, len: usize, value: T) -> Vector<T> {
        Vector::from_vec(runtime, vec![value; len])
    }

    /// Internal constructor for skeleton outputs: the data already lives in
    /// per-device buffers; the host copy is stale until first CPU access.
    pub(crate) fn device_resident(
        runtime: &Arc<SkelCl>,
        len: usize,
        distribution: Distribution,
        buffers: Vec<Option<Buffer>>,
    ) -> Vector<T> {
        Vector {
            id: runtime.next_vector_id(),
            inner: Arc::new(Mutex::new(Storage::new_device_resident(
                runtime.clone(),
                len,
                distribution,
                buffers,
                EdgePolicy::Clamp,
                None,
            ))),
        }
    }

    /// Stable identity of the vector (used to detect aliasing).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// The runtime this vector belongs to.
    pub fn runtime(&self) -> Arc<SkelCl> {
        self.inner.lock().runtime.clone()
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.inner.lock().shape
    }

    /// Whether the vector has no elements.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The current distribution.
    pub fn distribution(&self) -> Distribution {
        self.inner.lock().distribution.clone()
    }

    /// Where the authoritative data currently lives.
    pub fn residence(&self) -> Residence {
        self.inner.lock().residence()
    }

    /// Per-device part sizes under the current distribution (the paper's
    /// `events.sizes()` in Listing 3).
    pub fn sizes(&self) -> Vec<usize> {
        self.inner.lock().layout.sizes()
    }

    /// The element range device `d` holds under the current distribution.
    pub fn range_of(&self, device: usize) -> Range<usize> {
        self.inner.lock().layout.range(device)
    }

    /// Set the combine function used when the distribution changes away from
    /// [`Distribution::Copy`] (`Distribution::copy(add)` in the paper).
    pub fn set_combine(&self, combine: Combine<T>) {
        self.inner.lock().combine = combine;
    }

    /// Change the distribution. Data exchanges implied by the change are
    /// performed implicitly; like every SkelCL transfer they are lazy — the
    /// actual upload to the devices happens on next device use.
    pub fn set_distribution(&self, distribution: Distribution) -> Result<()> {
        let mut inner = self.inner.lock();
        if inner.distribution == distribution {
            return Ok(());
        }
        inner.redistribute(distribution, EdgePolicy::Clamp, None)
    }

    /// Shorthand for `set_distribution(Distribution::Copy)` followed by
    /// [`Vector::set_combine`] — mirrors `Distribution::copy(add)`.
    pub fn set_copy_distribution_with(&self, combine: Combine<T>) -> Result<()> {
        self.set_combine(combine);
        self.set_distribution(Distribution::Copy)
    }

    /// Declare that a skeleton has modified this vector's data on the devices
    /// through an additional argument (the runtime cannot detect this), so
    /// the host copy is stale. Mirrors `dataOnDevicesModified()` from
    /// Listing 3 of the paper.
    pub fn mark_device_modified(&self) {
        self.inner.lock().mark_device_modified();
    }

    /// Copy the vector's contents to a host `Vec`, downloading from the
    /// devices if they hold the newer copy.
    pub fn to_vec(&self) -> Result<Vec<T>> {
        let mut inner = self.inner.lock();
        inner.download_to_host()?;
        Ok(inner.host.clone())
    }

    /// Run `f` over the host copy (downloading first if necessary).
    pub fn with_host<R>(&self, f: impl FnOnce(&[T]) -> R) -> Result<R> {
        let mut inner = self.inner.lock();
        inner.download_to_host()?;
        Ok(f(&inner.host))
    }

    /// Mutate the host copy (downloading first if necessary); the device
    /// copies become stale and will be re-uploaded lazily.
    pub fn update_host(&self, f: impl FnOnce(&mut Vec<T>)) -> Result<()> {
        let mut inner = self.inner.lock();
        inner.download_to_host()?;
        f(&mut inner.host);
        let len = inner.host.len();
        if len != inner.shape {
            inner.reshape(len);
        }
        inner.invalidate_devices();
        Ok(())
    }

    /// Force the lazy upload now: make the vector's data present on the
    /// devices according to its distribution. Mirrors
    /// `copyDataToDevices()` of the C++ library; normally not needed because
    /// skeletons trigger the upload implicitly.
    pub fn copy_data_to_devices(&self) -> Result<()> {
        self.inner.lock().ensure_on_devices()
    }

    /// Ensure the vector's data is present on the devices according to its
    /// distribution (lazy upload). Returns the per-device buffers (`None` for
    /// devices that hold no part) and the partition.
    pub(crate) fn prepare_on_devices(&self) -> Result<(Partition, Vec<Option<Buffer>>)> {
        let mut inner = self.inner.lock();
        inner.ensure_on_devices()?;
        Ok((inner.layout.clone(), inner.buffers.clone()))
    }

    /// Check that this vector belongs to `runtime`.
    pub(crate) fn check_runtime(&self, runtime: &Arc<SkelCl>) -> Result<()> {
        if Arc::ptr_eq(&self.inner.lock().runtime, runtime) {
            Ok(())
        } else {
            Err(crate::error::SkelError::RuntimeMismatch)
        }
    }

    /// The buffer of device `d`, if the vector currently has one there.
    pub fn buffer_of(&self, device: usize) -> Option<Buffer> {
        self.inner.lock().buffers.get(device).cloned().flatten()
    }

    /// Commit this vector as the output of a skeleton launch that wrote the
    /// given buffers: adopt length, distribution and buffers; the devices now
    /// hold the authoritative copy and the host copy is stale.
    pub(crate) fn commit_as_output(
        &self,
        len: usize,
        distribution: Distribution,
        buffers: Vec<Option<Buffer>>,
    ) -> Result<()> {
        self.inner
            .lock()
            .commit_as_output(len, distribution, buffers)
    }
}

impl<T: Pod> Container<T> for Vector<T> {
    type Rebound<O: Pod> = Vector<O>;

    fn runtime(&self) -> Arc<SkelCl> {
        Vector::runtime(self)
    }

    fn id(&self) -> u64 {
        Vector::id(self)
    }

    fn elem_count(&self) -> usize {
        self.len()
    }

    fn part_sizes(&self) -> Vec<usize> {
        self.sizes()
    }

    fn check_runtime(&self, runtime: &Arc<SkelCl>) -> Result<()> {
        Vector::check_runtime(self, runtime)
    }

    fn ensure_on_devices(&self) -> Result<()> {
        self.copy_data_to_devices()
    }

    fn mark_device_modified(&self) {
        Vector::mark_device_modified(self)
    }

    fn gather(&self) -> Result<Vec<T>> {
        self.to_vec()
    }

    fn apply_selection(&self, selection: &DeviceSelection) -> Result<()> {
        match crate::skeletons::exec::selection_distribution(
            selection,
            self.runtime().device_count(),
        )? {
            Some(distribution) => self.set_distribution(distribution),
            None => Ok(()),
        }
    }

    fn apply_scheduler(&self, scheduler: &StaticScheduler, cost: CostHint) -> Result<()> {
        self.set_distribution(scheduler.weighted_block(cost))
    }

    fn unify_with<B: Pod>(&self, other: &Vector<B>) -> Result<()> {
        if self.len() != other.len() {
            return Err(crate::error::SkelError::LengthMismatch {
                left: self.len(),
                right: other.len(),
            });
        }
        // Unify: if the distributions differ (or both are single but on
        // different devices, which compares unequal), coerce both to block
        // (paper, Section III-C).
        if self.distribution() != other.distribution() {
            self.set_distribution(Distribution::Block)?;
            other.set_distribution(Distribution::Block)?;
        }
        Ok(())
    }

    fn ensure_disjoint(&self) -> Result<()> {
        if self.distribution() == Distribution::Copy {
            self.set_distribution(Distribution::Block)?;
        }
        Ok(())
    }

    fn repartition_for_recovery(&self, weights: &[f64]) -> Result<()> {
        self.set_distribution(Distribution::block_weighted(weights))
    }

    fn refresh_for_replay(&self) -> Result<()> {
        self.inner.lock().refresh_for_replay()
    }

    fn prepare_elementwise(&self) -> Result<(Partition, Vec<Option<Buffer>>)> {
        self.prepare_on_devices()
    }

    fn obtain_output_buffers(&self, partition: &Partition) -> Result<Vec<Option<Buffer>>> {
        self.inner.lock().obtain_output_buffers(partition)
    }

    fn wrap_output<O: Pod>(&self, buffers: Vec<Option<Buffer>>) -> Vector<O> {
        Vector::device_resident(&self.runtime(), self.len(), self.distribution(), buffers)
    }

    fn commit_output<O: Pod>(&self, out: &Vector<O>, buffers: Vec<Option<Buffer>>) -> Result<()> {
        out.commit_as_output(self.len(), self.distribution(), buffers)
    }

    fn flat_distribution(&self) -> Option<Distribution> {
        Some(self.distribution())
    }
}

// ---------------------------------------------------------------------------
// Fluent pipeline API
// ---------------------------------------------------------------------------

use crate::args::Args;
use crate::skeletons::{DeviceScalar, Map, Reduce, Scan, Skeleton, Zip};

impl<T: Pod> Vector<T> {
    /// Apply a [`Map`] skeleton to this vector:
    /// `v.map(&square)?` is shorthand for `square.run(&v).exec()?`.
    ///
    /// ```
    /// use skelcl::prelude::*;
    ///
    /// let rt = skelcl::init_gpus(2);
    /// let square = Map::<f32, f32>::from_source("float func(float x) { return x * x; }");
    /// let sum = Reduce::<f32>::from_source("float func(float a, float b) { return a + b; }");
    /// let v = Vector::from_vec(&rt, (1..=4).map(|i| i as f32).collect());
    /// let total = v.map(&square)?.reduce(&sum)?;
    /// assert_eq!(total, 30.0);
    /// # skelcl::Result::Ok(())
    /// ```
    pub fn map<O: Pod>(&self, skeleton: &Map<T, O>) -> Result<Vector<O>> {
        skeleton.run(self).exec()
    }

    /// Apply a [`Map`] skeleton with additional arguments.
    pub fn map_with<O: Pod>(&self, skeleton: &Map<T, O>, args: Args) -> Result<Vector<O>> {
        skeleton.run(self).args(args).exec()
    }

    /// Apply a [`Map`] skeleton writing into `out`, reusing `out`'s device
    /// buffers instead of allocating fresh ones (see `Launch::run_into`).
    pub fn map_into<O: Pod>(&self, skeleton: &Map<T, O>, out: &Vector<O>) -> Result<()> {
        skeleton.run(self).run_into(out)
    }

    /// Pair this vector with `other` under a [`Zip`] skeleton:
    /// `x.zip(&y, &saxpy)?`.
    pub fn zip<B: Pod, O: Pod>(
        &self,
        other: &Vector<B>,
        skeleton: &Zip<T, B, O>,
    ) -> Result<Vector<O>> {
        skeleton.run(self, other).exec()
    }

    /// Apply a [`Zip`] skeleton with additional arguments.
    pub fn zip_with<B: Pod, O: Pod>(
        &self,
        other: &Vector<B>,
        skeleton: &Zip<T, B, O>,
        args: Args,
    ) -> Result<Vector<O>> {
        skeleton.run(self, other).args(args).exec()
    }

    /// Apply a [`Zip`] skeleton writing into `out` (buffer reuse).
    pub fn zip_into<B: Pod, O: Pod>(
        &self,
        other: &Vector<B>,
        skeleton: &Zip<T, B, O>,
        out: &Vector<O>,
    ) -> Result<()> {
        skeleton.run(self, other).run_into(out)
    }
}

impl<T: Pod> Vector<T> {
    /// Open a lazy pipeline plan over this vector: fluent stage calls build
    /// an expression DAG, a fusion pass merges adjacent stages into single
    /// kernels, and nothing executes until a terminal form runs —
    /// see [`crate::plan::PlanVec`].
    pub fn lazy(&self) -> crate::plan::PlanVec<T> {
        crate::plan::PlanVec::from_vector(self)
    }
}

impl<T: DeviceScalar> Vector<T> {
    /// Reduce this vector to a single value: `v.reduce(&sum)?`.
    pub fn reduce(&self, skeleton: &Reduce<T>) -> Result<T> {
        Skeleton::execute(skeleton, self, &crate::skeletons::LaunchConfig::default())
    }

    /// Inclusive prefix combination of this vector: `v.scan(&prefix_sum)?`.
    pub fn scan(&self, skeleton: &Scan<T>) -> Result<Vector<T>> {
        Skeleton::execute(skeleton, self, &crate::skeletons::LaunchConfig::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::SkelError;
    use crate::runtime::init_gpus;

    #[test]
    fn from_vec_round_trip_without_devices() {
        let rt = init_gpus(2);
        let v = Vector::from_vec(&rt, vec![1.0f32, 2.0, 3.0]);
        assert_eq!(v.len(), 3);
        assert!(!v.is_empty());
        assert_eq!(v.residence(), Residence::HostOnly);
        assert_eq!(v.to_vec().unwrap(), vec![1.0, 2.0, 3.0]);
        assert_eq!(v.distribution(), Distribution::Block);
    }

    #[test]
    fn upload_and_download_block_distribution() {
        let rt = init_gpus(3);
        let data: Vec<f32> = (0..10).map(|i| i as f32).collect();
        let v = Vector::from_vec(&rt, data.clone());
        let (partition, buffers) = v.prepare_on_devices().unwrap();
        assert_eq!(partition.sizes().iter().sum::<usize>(), 10);
        assert_eq!(buffers.iter().filter(|b| b.is_some()).count(), 3);
        assert_eq!(v.residence(), Residence::Shared);
        // Invalidate the host copy and force a download.
        v.mark_device_modified();
        assert_eq!(v.residence(), Residence::DevicesOnly);
        assert_eq!(v.to_vec().unwrap(), data);
    }

    #[test]
    fn single_distribution_uses_one_device() {
        let rt = init_gpus(4);
        let v = Vector::from_vec(&rt, vec![5.0f32; 8]);
        v.set_distribution(Distribution::Single(2)).unwrap();
        let (partition, buffers) = v.prepare_on_devices().unwrap();
        assert_eq!(partition.sizes(), vec![0, 0, 8, 0]);
        assert!(buffers[2].is_some());
        assert!(buffers[0].is_none());
        assert_eq!(v.to_vec().unwrap(), vec![5.0f32; 8]);
    }

    #[test]
    fn invalid_single_device_is_rejected() {
        let rt = init_gpus(2);
        let v = Vector::from_vec(&rt, vec![1i32; 4]);
        assert!(v.set_distribution(Distribution::Single(5)).is_err());
    }

    #[test]
    fn copy_distribution_replicates_and_keep_first_on_change() {
        let rt = init_gpus(2);
        let v = Vector::from_vec(&rt, vec![1.0f32, 2.0]);
        v.set_distribution(Distribution::Copy).unwrap();
        let (partition, buffers) = v.prepare_on_devices().unwrap();
        assert_eq!(partition.sizes(), vec![2, 2]);
        assert!(buffers[0].is_some() && buffers[1].is_some());
        // Change back to block: device 0's copy wins (no combine function).
        v.set_distribution(Distribution::Block).unwrap();
        assert_eq!(v.to_vec().unwrap(), vec![1.0, 2.0]);
    }

    #[test]
    fn copy_distribution_combines_with_add_on_change() {
        let rt = init_gpus(2);
        let v = Vector::from_vec(&rt, vec![1.0f32, 10.0]);
        v.set_copy_distribution_with(Combine::add()).unwrap();
        let (_, buffers) = v.prepare_on_devices().unwrap();
        // Simulate each device modifying its own copy (as the OSEM step 1
        // kernel does through an additional argument).
        for d in 0..2 {
            let buf = buffers[d].as_ref().unwrap();
            rt.queue(d)
                .enqueue_write_buffer(buf, &[(d + 1) as f32, (d + 1) as f32 * 10.0])
                .unwrap();
        }
        v.mark_device_modified();
        // Switching to block must element-wise add the two device copies.
        v.set_distribution(Distribution::Block).unwrap();
        assert_eq!(v.to_vec().unwrap(), vec![3.0, 30.0]);
    }

    #[test]
    fn update_host_invalidates_devices_and_supports_resize() {
        let rt = init_gpus(2);
        let v = Vector::from_vec(&rt, vec![1.0f32, 2.0, 3.0, 4.0]);
        v.prepare_on_devices().unwrap();
        v.update_host(|h| {
            h.push(5.0);
            h[0] = 10.0;
        })
        .unwrap();
        assert_eq!(v.len(), 5);
        assert_eq!(v.residence(), Residence::HostOnly);
        assert_eq!(v.to_vec().unwrap(), vec![10.0, 2.0, 3.0, 4.0, 5.0]);
        let (partition, _) = v.prepare_on_devices().unwrap();
        assert_eq!(partition.sizes().iter().sum::<usize>(), 5);
    }

    #[test]
    fn setting_same_distribution_is_a_noop() {
        let rt = init_gpus(2);
        let v = Vector::from_vec(&rt, vec![0u32; 6]);
        v.prepare_on_devices().unwrap();
        let before = rt.now();
        v.set_distribution(Distribution::Block).unwrap();
        assert_eq!(
            rt.now(),
            before,
            "no data movement for an unchanged distribution"
        );
        assert_eq!(v.residence(), Residence::Shared);
    }

    #[test]
    fn redistribution_releases_old_buffers() {
        let rt = init_gpus(2);
        let v = Vector::from_vec(&rt, vec![1.0f32; 100]);
        v.prepare_on_devices().unwrap();
        let live_before: usize = (0..2)
            .map(|d| rt.context().device(d).unwrap().live_buffers())
            .sum();
        v.set_distribution(Distribution::Single(0)).unwrap();
        v.prepare_on_devices().unwrap();
        let live_after: usize = (0..2)
            .map(|d| rt.context().device(d).unwrap().live_buffers())
            .sum();
        assert_eq!(live_before, 2);
        assert_eq!(live_after, 1);
    }

    #[test]
    fn drop_releases_device_memory() {
        let rt = init_gpus(1);
        {
            let v = Vector::from_vec(&rt, vec![0.0f32; 1000]);
            v.prepare_on_devices().unwrap();
            assert!(rt.context().device(0).unwrap().allocated_bytes() > 0);
        }
        assert_eq!(rt.context().device(0).unwrap().allocated_bytes(), 0);
    }

    #[test]
    fn weighted_block_distribution_partitions_proportionally() {
        let rt = init_gpus(2);
        let v = Vector::from_vec(&rt, vec![1u32; 100]);
        v.set_distribution(Distribution::block_weighted(&[3.0, 1.0]))
            .unwrap();
        assert_eq!(v.sizes(), vec![75, 25]);
        assert_eq!(v.to_vec().unwrap(), vec![1u32; 100]);
    }

    #[test]
    fn runtime_mismatch_is_detected() {
        let rt1 = init_gpus(1);
        let rt2 = init_gpus(1);
        let v = Vector::from_vec(&rt1, vec![1.0f32]);
        assert!(v.check_runtime(&rt1).is_ok());
        assert!(matches!(
            v.check_runtime(&rt2),
            Err(SkelError::RuntimeMismatch)
        ));
    }

    #[test]
    fn clone_shares_data() {
        let rt = init_gpus(1);
        let v = Vector::from_vec(&rt, vec![1.0f32, 2.0]);
        let w = v.clone();
        v.update_host(|h| h[0] = 9.0).unwrap();
        assert_eq!(w.to_vec().unwrap(), vec![9.0, 2.0]);
        assert_eq!(v.id(), w.id());
    }

    #[test]
    fn empty_vector_round_trips_through_every_distribution() {
        let rt = init_gpus(3);
        let v = Vector::from_vec(&rt, Vec::<f32>::new());
        for dist in [
            Distribution::Block,
            Distribution::Copy,
            Distribution::Single(1),
            Distribution::block_weighted(&[1.0, 2.0, 3.0]),
            Distribution::Block,
        ] {
            v.set_distribution(dist).unwrap();
            v.prepare_on_devices().unwrap();
            v.mark_device_modified();
            assert_eq!(v.to_vec().unwrap(), Vec::<f32>::new());
        }
    }
}
